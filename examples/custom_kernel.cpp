// Integrating a NEW benchmark through the shared problem interface —
// the extension path the paper designs BAT 2.0 around ("our framework
// facilitates easy integration of new autotuners and benchmarks by
// defining a shared problem interface").
//
// We add a tunable vector-add (SAXPY-like) kernel: trivial as a kernel,
// but it exercises every integration point: parameter space,
// constraints, a performance model on the gpusim substrate, and a tuner
// driving it.
#include <algorithm>
#include <cstdio>

#include "gpusim/launch_model.hpp"
#include "gpusim/perf_utils.hpp"
#include "kernels/kernel_benchmark.hpp"
#include "tuners/tuner.hpp"

namespace {

using namespace bat;

/// y = a*x + y over 2^26 elements; tunables: block size, elements per
/// thread, vector width.
class SaxpyBenchmark final : public kernels::KernelBenchmark {
 public:
  static constexpr std::uint64_t kN = 1ULL << 26;

  SaxpyBenchmark() : KernelBenchmark("saxpy", make_space()) {}

  static core::SearchSpace make_space() {
    core::ParamSpace space;
    space.add(core::Parameter::list("block_size",
                                    {32, 64, 128, 256, 512, 1024}))
        .add(core::Parameter::list("work_per_thread", {1, 2, 4, 8, 16}))
        .add(core::Parameter::list("vector_width", {1, 2, 4}));
    core::ConstraintSet constraints;
    constraints.add("vector width divides work per thread",
                    [](const core::Config& c) { return c[1] % c[2] == 0; });
    return core::SearchSpace(std::move(space), std::move(constraints));
  }

 protected:
  std::optional<double> model_time_ms(
      const core::Config& config,
      const gpusim::DeviceSpec& device) const override {
    const auto block = static_cast<int>(config[0]);
    const auto wpt = static_cast<int>(config[1]);
    const auto vec = static_cast<int>(config[2]);

    gpusim::KernelProfile profile;
    profile.grid_blocks =
        gpusim::div_up(kN, static_cast<std::uint64_t>(block) * wpt);
    profile.block_threads = block;
    profile.regs_per_thread = 16 + 2 * vec;
    profile.flops = 2.0 * static_cast<double>(kN);
    profile.dram_bytes = 12.0 * static_cast<double>(kN);  // 2 reads + 1 write
    profile.mem_efficiency = std::min(
        1.0, gpusim::vector_load_boost(vec) * (wpt > vec ? 0.92 : 1.0));
    profile.compute_efficiency = 0.9;
    profile.ilp = static_cast<double>(wpt);
    return gpusim::LaunchModel::estimate_ms(device, profile);
  }
};

}  // namespace

int main() {
  SaxpyBenchmark saxpy;
  std::printf("custom benchmark '%s': %llu configurations (%llu valid)\n",
              saxpy.name().c_str(),
              static_cast<unsigned long long>(saxpy.space().cardinality()),
              static_cast<unsigned long long>(
                  saxpy.space().count_constrained()));

  // Any built-in tuner can now drive it — nothing else to implement.
  for (const auto& tuner_name : {"random", "local", "surrogate"}) {
    auto tuner = bat::tuners::make_tuner(tuner_name);
    for (bat::core::DeviceIndex d = 0; d < saxpy.device_count(); ++d) {
      const auto run = bat::tuners::run_tuner(*tuner, saxpy, d, 40, 7);
      if (!run.best) continue;
      const auto best =
          saxpy.space().params().config_at(run.best->index);
      std::printf("  %-9s on %-11s: %.4f ms  [%s]\n", tuner_name,
                  saxpy.device_name(d).c_str(), run.best->objective,
                  saxpy.space().params().describe(best).c_str());
    }
  }
  return 0;
}
