// The suite's raison d'être (paper §I): comparing optimization
// algorithms from different tuners on the same benchmarks through one
// shared problem interface.
//
//   $ ./compare_tuners [benchmark] [budget] [repeats] [backend]
//
// Runs every built-in optimizer with the same budget on every paper GPU
// and reports the mean best time (and how far from the true optimum it
// landed, when the space is small enough to know the optimum).
//
// backend = auto | live | replay:
//   * live   — every evaluation goes through the gpusim model (batched
//              tuners fan generations out over the thread pool);
//   * replay — one Runner sweep per device builds a tabular dataset and
//              all tuner evaluations become free lookups (only sound
//              when the sweep is exhaustive);
//   * auto   — replay when the space is exhaustively enumerable,
//              live otherwise (default).
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.hpp"
#include "common/statistics.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/backend.hpp"
#include "core/runner.hpp"
#include "kernels/all_kernels.hpp"
#include "tuners/tuner.hpp"

int main(int argc, char** argv) {
  using namespace bat;
  const std::string benchmark_name = argc > 1 ? argv[1] : "gemm";
  const std::size_t budget = argc > 2 ? std::stoul(argv[2]) : 150;
  const std::size_t repeats = argc > 3 ? std::stoul(argv[3]) : 5;
  const std::string backend_mode = argc > 4 ? argv[4] : "auto";

  const auto benchmark = kernels::make(benchmark_name);
  const bool exhaustive =
      benchmark->space().cardinality() <= bench::kExhaustiveLimit;
  const bool replay =
      backend_mode == "replay" || (backend_mode == "auto" && exhaustive);
  if (replay && !exhaustive) {
    std::fprintf(stderr,
                 "replay needs an exhaustively enumerable space; '%s' has "
                 "%llu configurations\n",
                 benchmark->name().c_str(),
                 static_cast<unsigned long long>(
                     benchmark->space().cardinality()));
    return 1;
  }
  std::printf("comparing %zu tuners on '%s' (budget %zu, %zu repeats, %s "
              "backend)\n",
              tuners::tuner_names().size(), benchmark->name().c_str(),
              budget, repeats, replay ? "replay" : "live");

  const auto t0 = std::chrono::steady_clock::now();

  // One sweep per device: gives the true optimum where exhaustive, and
  // doubles as the replay table so tuner evaluations are free lookups.
  std::vector<core::Dataset> datasets;
  std::vector<double> optimum(benchmark->device_count(), 0.0);
  if (exhaustive) {
    for (core::DeviceIndex d = 0; d < benchmark->device_count(); ++d) {
      datasets.push_back(core::Runner::run_exhaustive(*benchmark, d));
      optimum[d] = datasets.back().best_time();
    }
  }

  // One backend per device, shared by every run on that device: both
  // LiveBackend and ReplayBackend are stateless under evaluate_batch, and
  // per-run bookkeeping lives in each run's own CountingBackend.
  std::vector<std::unique_ptr<core::EvaluationBackend>> backends;
  for (core::DeviceIndex d = 0; d < benchmark->device_count(); ++d) {
    if (replay) {
      backends.push_back(std::make_unique<core::ReplayBackend>(
          benchmark->space(), datasets[d]));
    } else {
      backends.push_back(std::make_unique<core::LiveBackend>(*benchmark, d));
    }
  }

  // Every (tuner, device, repeat) run is independent, so the whole grid
  // fans out over the thread pool; nested parallelism inside a run (GBDT
  // fits, batched generations) degrades to inline execution.
  const auto names = tuners::tuner_names();
  const std::size_t devices = benchmark->device_count();
  struct Job {
    std::size_t tuner;
    core::DeviceIndex device;
    std::size_t repeat;
  };
  std::vector<Job> jobs;
  for (std::size_t t = 0; t < names.size(); ++t) {
    for (core::DeviceIndex d = 0; d < devices; ++d) {
      for (std::size_t r = 0; r < repeats; ++r) jobs.push_back({t, d, r});
    }
  }
  constexpr double kNoBest = -1.0;
  std::vector<double> best_of(jobs.size(), kNoBest);
  common::parallel_for(0, jobs.size(), [&](std::size_t j) {
    const Job& job = jobs[j];
    auto tuner = tuners::make_tuner(names[job.tuner]);
    const auto run = tuners::run_tuner(*tuner, *backends[job.device], budget,
                                       1000 + job.repeat);
    if (run.best) best_of[j] = run.best->objective;
  });

  std::vector<std::string> header{"tuner"};
  for (core::DeviceIndex d = 0; d < devices; ++d) {
    header.push_back(benchmark->device_name(d));
  }
  common::AsciiTable table(header);

  for (std::size_t t = 0; t < names.size(); ++t) {
    std::vector<std::string> row{names[t]};
    for (core::DeviceIndex d = 0; d < devices; ++d) {
      std::vector<double> bests;
      for (std::size_t r = 0; r < repeats; ++r) {
        const double b = best_of[(t * devices + d) * repeats + r];
        if (b != kNoBest) bests.push_back(b);
      }
      if (bests.empty()) {
        row.push_back("-");
        continue;
      }
      const double mean_best = common::mean(bests);
      std::string cell = common::format_double(mean_best, 3) + "ms";
      if (exhaustive) {
        cell += " (" +
                common::format_double(100.0 * optimum[d] / mean_best, 1) +
                "%)";
      }
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.to_string().c_str(), stdout);
  if (exhaustive) {
    std::printf("(%% = achieved fraction of the true optimum)\n");
  }
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  std::printf("total wall-clock: %.2fs\n", elapsed);
  return 0;
}
