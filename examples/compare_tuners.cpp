// The suite's raison d'être (paper §I): comparing optimization
// algorithms from different tuners on the same benchmarks through one
// shared problem interface.
//
//   $ ./compare_tuners [benchmark] [budget] [repeats] [backend]
//
// Runs every built-in optimizer with the same budget on every paper GPU
// and reports the mean best time (and how far from the true optimum it
// landed, when the space is small enough to know the optimum).
//
// backend = auto | live | replay:
//   * live   — every evaluation goes through the gpusim model;
//   * replay — one Runner sweep per device builds a tabular dataset and
//              all tuner evaluations become free lookups (only sound
//              when the sweep is exhaustive);
//   * auto   — replay when the space is exhaustively enumerable,
//              live otherwise (default).
//
// The whole grid runs as concurrent sessions of one
// service::TuningService: every (tuner, device, repeat) is a session,
// sessions on the same device share one workload (benchmark + backend +
// sharded measurement cache), so tuners revisiting each other's
// configurations dedupe evaluations — the cache footer shows how often.
#include <chrono>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>

#include "bench/bench_util.hpp"
#include "common/statistics.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "core/runner.hpp"
#include "kernels/all_kernels.hpp"
#include "service/tuning_service.hpp"

int main(int argc, char** argv) {
  using namespace bat;
  const std::string benchmark_name = argc > 1 ? argv[1] : "gemm";
  const std::size_t budget = argc > 2 ? std::stoul(argv[2]) : 150;
  const std::size_t repeats = argc > 3 ? std::stoul(argv[3]) : 5;
  const std::string backend_mode = argc > 4 ? argv[4] : "auto";

  const auto benchmark = kernels::make(benchmark_name);
  const bool exhaustive =
      benchmark->space().cardinality() <= bench::kExhaustiveLimit;
  const bool replay =
      backend_mode == "replay" || (backend_mode == "auto" && exhaustive);
  if (replay && !exhaustive) {
    std::fprintf(stderr,
                 "replay needs an exhaustively enumerable space; '%s' has "
                 "%llu configurations\n",
                 benchmark->name().c_str(),
                 static_cast<unsigned long long>(
                     benchmark->space().cardinality()));
    return 1;
  }
  std::printf("comparing %zu tuners on '%s' (budget %zu, %zu repeats, %s "
              "backend)\n",
              tuners::tuner_names().size(), benchmark->name().c_str(),
              budget, repeats, replay ? "replay" : "live");

  const auto t0 = std::chrono::steady_clock::now();

  service::TuningService svc;

  // One sweep per device: gives the true optimum where exhaustive, and
  // registered with the service it doubles as the shared replay table
  // so tuner evaluations are free lookups.
  std::vector<double> optimum(benchmark->device_count(), 0.0);
  if (exhaustive) {
    for (core::DeviceIndex d = 0; d < benchmark->device_count(); ++d) {
      auto ds = core::Runner::run_exhaustive(*benchmark, d);
      optimum[d] = ds.best_time();
      if (replay) svc.register_dataset(benchmark_name, d, std::move(ds));
    }
  }

  // Every (tuner, device, repeat) run is an independent session; the
  // service's worker pool executes them concurrently and sessions on
  // the same device share one measurement cache.
  const auto names = tuners::tuner_names();
  const std::size_t devices = benchmark->device_count();
  std::vector<service::SessionSpec> specs;
  specs.reserve(names.size() * devices * repeats);
  for (std::size_t t = 0; t < names.size(); ++t) {
    for (core::DeviceIndex d = 0; d < devices; ++d) {
      for (std::size_t r = 0; r < repeats; ++r) {
        service::SessionSpec spec;
        spec.kernel = benchmark_name;
        spec.tuner = names[t];
        spec.device = d;
        spec.budget = budget;
        spec.seed = 1000 + r;
        spec.backend = replay ? "replay" : "live";
        specs.push_back(std::move(spec));
      }
    }
  }
  const auto results = svc.run_all(specs);
  for (const auto& r : results) {
    // Fail loudly instead of rendering a failed session as "-".
    if (r.status != service::SessionStatus::kCompleted) {
      throw std::runtime_error("compare_tuners: session " + r.spec.kernel +
                               "/" + r.spec.tuner + " " + to_string(r.status) +
                               (r.error.empty() ? "" : ": " + r.error));
    }
  }

  std::vector<std::string> header{"tuner"};
  for (core::DeviceIndex d = 0; d < devices; ++d) {
    header.push_back(benchmark->device_name(d));
  }
  common::AsciiTable table(header);

  for (std::size_t t = 0; t < names.size(); ++t) {
    std::vector<std::string> row{names[t]};
    for (core::DeviceIndex d = 0; d < devices; ++d) {
      std::vector<double> bests;
      for (std::size_t r = 0; r < repeats; ++r) {
        const auto& result = results[(t * devices + d) * repeats + r];
        if (result.run.best) bests.push_back(result.run.best->objective);
      }
      if (bests.empty()) {
        row.push_back("-");
        continue;
      }
      const double mean_best = common::mean(bests);
      std::string cell = common::format_double(mean_best, 3) + "ms";
      if (exhaustive) {
        cell += " (" +
                common::format_double(100.0 * optimum[d] / mean_best, 1) +
                "%)";
      }
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.to_string().c_str(), stdout);
  if (exhaustive) {
    std::printf("(%% = achieved fraction of the true optimum)\n");
  }
  const auto stats = svc.cache_stats();
  std::printf("shared cache: %llu evaluations served %llu lookups "
              "(%llu cross-session hits)\n",
              static_cast<unsigned long long>(stats.evaluations),
              static_cast<unsigned long long>(stats.lookups),
              static_cast<unsigned long long>(stats.cross_session_hits()));
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  std::printf("total wall-clock: %.2fs\n", elapsed);
  return 0;
}
