// The suite's raison d'être (paper §I): comparing optimization
// algorithms from different tuners on the same benchmarks through one
// shared problem interface.
//
//   $ ./compare_tuners [benchmark] [budget] [repeats]
//
// Runs every built-in optimizer with the same budget on every paper GPU
// and reports the mean best time (and how far from the true optimum it
// landed, when the space is small enough to know the optimum).
#include <cstdio>
#include <string>

#include "common/statistics.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "core/runner.hpp"
#include "kernels/all_kernels.hpp"
#include "tuners/tuner.hpp"

int main(int argc, char** argv) {
  using namespace bat;
  const std::string benchmark_name = argc > 1 ? argv[1] : "gemm";
  const std::size_t budget = argc > 2 ? std::stoul(argv[2]) : 150;
  const std::size_t repeats = argc > 3 ? std::stoul(argv[3]) : 5;

  const auto benchmark = kernels::make(benchmark_name);
  std::printf("comparing %zu tuners on '%s' (budget %zu, %zu repeats)\n",
              tuners::tuner_names().size(), benchmark->name().c_str(),
              budget, repeats);

  // True optima where the space is exhaustively enumerable.
  std::vector<double> optimum(benchmark->device_count(), 0.0);
  const bool know_optimum = benchmark->space().cardinality() <= 100'000;
  if (know_optimum) {
    for (core::DeviceIndex d = 0; d < benchmark->device_count(); ++d) {
      optimum[d] = core::Runner::run_exhaustive(*benchmark, d).best_time();
    }
  }

  std::vector<std::string> header{"tuner"};
  for (core::DeviceIndex d = 0; d < benchmark->device_count(); ++d) {
    header.push_back(benchmark->device_name(d));
  }
  common::AsciiTable table(header);

  for (const auto& tuner_name : tuners::tuner_names()) {
    std::vector<std::string> row{tuner_name};
    for (core::DeviceIndex d = 0; d < benchmark->device_count(); ++d) {
      std::vector<double> bests;
      for (std::size_t r = 0; r < repeats; ++r) {
        auto tuner = tuners::make_tuner(tuner_name);
        const auto run =
            tuners::run_tuner(*tuner, *benchmark, d, budget, 1000 + r);
        if (run.best) bests.push_back(run.best->objective);
      }
      if (bests.empty()) {
        row.push_back("-");
        continue;
      }
      const double mean_best = common::mean(bests);
      std::string cell = common::format_double(mean_best, 3) + "ms";
      if (know_optimum) {
        cell += " (" +
                common::format_double(100.0 * optimum[d] / mean_best, 1) +
                "%)";
      }
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.to_string().c_str(), stdout);
  if (know_optimum) {
    std::printf("(%% = achieved fraction of the true optimum)\n");
  }
  return 0;
}
