// The paper's portability study (§VI-E) as a reusable application: find
// the optimal configuration per GPU, transfer it to every other GPU, and
// quantify how much performance survives — including the within-family
// vs cross-family split the paper highlights.
#include <cstdio>

#include "analysis/portability.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "core/runner.hpp"
#include "kernels/all_kernels.hpp"

int main(int argc, char** argv) {
  using namespace bat;
  const std::string benchmark_name = argc > 1 ? argv[1] : "pnpoly";
  const auto benchmark = kernels::make(benchmark_name);

  std::printf("portability study for '%s'\n", benchmark->name().c_str());
  std::vector<core::Dataset> datasets;
  for (core::DeviceIndex d = 0; d < benchmark->device_count(); ++d) {
    datasets.push_back(core::Runner::run_default(*benchmark, d));
    const auto best = datasets.back().config(datasets.back().best_row());
    std::printf("  %-11s optimum %.4f ms: %s\n",
                benchmark->device_name(d).c_str(),
                datasets.back().best_time(),
                benchmark->space().params().describe(best).c_str());
  }

  const auto matrix = analysis::portability_matrix(*benchmark, datasets);
  std::vector<std::string> header{"optimal of \\ run on"};
  header.insert(header.end(), matrix.devices.begin(), matrix.devices.end());
  common::AsciiTable table(header);
  for (std::size_t from = 0; from < matrix.devices.size(); ++from) {
    std::vector<std::string> row{matrix.devices[from]};
    for (std::size_t to = 0; to < matrix.devices.size(); ++to) {
      row.push_back(
          common::format_double(100.0 * matrix.relative[from][to], 1) + "%");
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.to_string().c_str(), stdout);

  // Family split: Turing = {2080Ti, Titan} (0, 3); Ampere = {3060, 3090}.
  double within = 0.0, cross = 0.0;
  int nw = 0, nc = 0;
  const auto family = [](std::size_t d) { return d == 1 || d == 2; };
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i == j) continue;
      if (family(i) == family(j)) {
        within += matrix.relative[i][j];
        ++nw;
      } else {
        cross += matrix.relative[i][j];
        ++nc;
      }
    }
  }
  std::printf("mean within-family transfer: %.1f%%\n", 100.0 * within / nw);
  std::printf("mean cross-family transfer : %.1f%%\n", 100.0 * cross / nc);
  std::printf("worst transfer             : %.1f%%\n",
              100.0 * matrix.worst_transfer());
  return 0;
}
