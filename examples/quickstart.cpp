// Quickstart: tune one kernel on one GPU with one optimizer.
//
//   $ ./quickstart [benchmark] [device] [tuner] [budget] [backend]
//   defaults:       gemm        RTX_3090 random  200      live
//
// Shows the three core concepts of the BAT problem interface:
//   1. a Benchmark (search space + constraints + evaluation),
//   2. a Tuner driving it through a budgeted CachingEvaluator over a
//      pluggable EvaluationBackend (live gpusim model, or tabular
//      replay of a Runner-built dataset — pass "replay" to see that
//      both paths produce the identical run),
//   3. the resulting trace/best configuration.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.hpp"
#include "core/backend.hpp"
#include "core/runner.hpp"
#include "kernels/all_kernels.hpp"
#include "tuners/tuner.hpp"

int main(int argc, char** argv) {
  using namespace bat;
  const std::string benchmark_name = argc > 1 ? argv[1] : "gemm";
  const std::string device_name = argc > 2 ? argv[2] : "RTX_3090";
  const std::string tuner_name = argc > 3 ? argv[3] : "random";
  const std::size_t budget = argc > 4 ? std::stoul(argv[4]) : 200;
  const std::string backend_name = argc > 5 ? argv[5] : "live";

  const auto benchmark = kernels::make(benchmark_name);
  const auto device = benchmark->device_index(device_name);

  std::printf("benchmark : %s\n", benchmark->name().c_str());
  std::printf("device    : %s\n", device_name.c_str());
  std::printf("space     : %llu configurations (%llu constraint-valid)\n",
              static_cast<unsigned long long>(benchmark->space().cardinality()),
              static_cast<unsigned long long>(
                  benchmark->space().count_constrained()));

  core::Dataset dataset;  // keeps replay rows alive for the run
  std::unique_ptr<core::EvaluationBackend> backend;
  if (backend_name == "replay") {
    if (benchmark->space().cardinality() > bench::kExhaustiveLimit) {
      std::fprintf(stderr,
                   "replay needs an exhaustively enumerable space; '%s' has "
                   "%llu configurations\n",
                   benchmark->name().c_str(),
                   static_cast<unsigned long long>(
                       benchmark->space().cardinality()));
      return 1;
    }
    dataset = core::Runner::run_exhaustive(*benchmark, device);
    backend =
        std::make_unique<core::ReplayBackend>(benchmark->space(), dataset);
  } else {
    backend = std::make_unique<core::LiveBackend>(*benchmark, device);
  }
  std::printf("backend   : %s\n", backend->name().c_str());

  auto tuner = tuners::make_tuner(tuner_name);
  const auto run = tuners::run_tuner(*tuner, *backend, budget, /*seed=*/42);

  std::printf("tuner     : %s, %zu evaluations\n", run.tuner.c_str(),
              run.trace.size());
  if (!run.best) {
    std::printf("no valid configuration found within the budget\n");
    return 1;
  }
  const auto best_config =
      benchmark->space().params().config_at(run.best->index);
  std::printf("best time : %.4f ms\n", run.best->objective);
  std::printf("best conf : %s\n",
              benchmark->space().params().describe(best_config).c_str());

  // Best-so-far curve at a few checkpoints.
  std::printf("progress  :");
  for (std::size_t k : {1u, 5u, 10u, 25u, 50u, 100u, 200u}) {
    if (k <= run.best_so_far.size()) {
      std::printf(" @%u:%.3fms", k, run.best_so_far[k - 1]);
    }
  }
  std::printf("\n");
  return 0;
}
