// Exports the paper's evaluation datasets to CSV for external plotting
// (the actual Fig 1-6 figures are drawn from exactly these files).
//
//   $ ./export_datasets [output_dir] [samples]
//
// Writes one CSV per (benchmark, device) with the paper's §V design:
// exhaustive for the four small spaces, `samples` random configurations
// for the three large ones. Files round-trip through
// core::Dataset::load_csv for downstream C++ analysis too.
#include <cstdio>
#include <string>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace bat;
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const std::size_t samples = argc > 2 ? std::stoul(argv[2]) : 10'000;

  for (const auto& name : kernels::paper_benchmark_names()) {
    const auto benchmark = kernels::make(name);
    for (core::DeviceIndex d = 0; d < benchmark->device_count(); ++d) {
      const auto ds = core::Runner::run_default(
          *benchmark, d, bench::kDatasetSeed, samples,
          bench::kExhaustiveLimit);
      const std::string path =
          out_dir + "/" + name + "_" + benchmark->device_name(d) + ".csv";
      ds.save_csv(path);
      std::printf("wrote %-45s (%zu rows, %zu valid, best %.4f ms)\n",
                  path.c_str(), ds.size(), ds.num_valid(), ds.best_time());
    }
  }
  return 0;
}
