// Exports the paper's evaluation datasets for external plotting and
// replay (the actual Fig 1-6 figures are drawn from exactly these
// rows).
//
//   $ ./export_datasets [output_dir] [samples]
//
// Writes one CSV (interchange) and one binary columnar archive
// (performance: `tune replay --dataset x.bin` opens it zero-copy) per
// (benchmark, device) with the paper's §V design: exhaustive for the
// four small spaces, `samples` random configurations for the three
// large ones. Datasets resolve through the shared io::DatasetRepository
// — the same sweep the figure harnesses use — and both files read back
// through io::load_dataset for downstream C++ analysis.
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench/bench_util.hpp"
#include "io/dataset_file.hpp"

int main(int argc, char** argv) {
  using namespace bat;
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const std::size_t samples = argc > 2 ? std::stoul(argv[2]) : 10'000;
  std::filesystem::create_directories(out_dir);

  for (const auto& name : kernels::paper_benchmark_names()) {
    const auto benchmark = kernels::make(name);
    for (core::DeviceIndex d = 0; d < benchmark->device_count(); ++d) {
      const auto& ds = bench::dataset(name, d, samples);
      // Repository resolution can return a cached archive swept with a
      // different sample count — say so rather than silently exporting
      // rows the user didn't ask for.
      if (benchmark->space().cardinality() > bench::kExhaustiveLimit &&
          ds.size() != samples) {
        std::fprintf(stderr,
                     "note: %s@%s resolved from the dataset cache with %zu "
                     "rows (requested %zu samples); clear BAT_DATASET_DIR's "
                     "archive to re-sweep\n",
                     name.c_str(), benchmark->device_name(d).c_str(),
                     ds.size(), samples);
      }
      const std::string stem =
          out_dir + "/" + name + "_" + benchmark->device_name(d);
      io::save_dataset(stem + ".csv", ds, io::DatasetFormat::kCsv);
      io::save_dataset(stem + ".bin", ds, io::DatasetFormat::kBinary);
      std::printf("wrote %-45s (.csv + .bin, %zu rows, %zu valid, "
                  "best %.4f ms)\n",
                  stem.c_str(), ds.size(), ds.num_valid(), ds.best_time());
    }
  }
  return 0;
}
