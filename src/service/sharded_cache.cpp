#include "service/sharded_cache.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace bat::service {

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

// More shards than this buys nothing (they only spread lock
// contention) and the clamp keeps round_up_pow2 away from shift
// overflow on absurd inputs.
constexpr std::size_t kMaxShards = std::size_t{1} << 16;

ShardedMeasurementCache::ShardedMeasurementCache(
    std::shared_ptr<const core::CompiledSpace> compiled, std::size_t shards)
    : compiled_(std::move(compiled)),
      shards_(round_up_pow2(std::clamp<std::size_t>(shards, 1, kMaxShards))) {
  mask_ = shards_.size() - 1;
  if (compiled_ && compiled_->has_valid_set()) {
    by_ordinal_ = true;
    invalid_offset_ = compiled_->num_valid();
  }
}

std::uint64_t ShardedMeasurementCache::key_of(core::ConfigIndex index) const {
  if (!by_ordinal_) return index;
  if (const auto ordinal = compiled_->rank(index)) return *ordinal;
  // Invalid configurations key past the dense ordinal range; no overflow
  // because materialized spaces have cardinality <= 2^20 (Options::
  // materialize_limit), far below 2^64 - num_valid.
  return invalid_offset_ + index;
}

ShardedMeasurementCache::Claim ShardedMeasurementCache::claim(
    core::ConfigIndex index) {
  const auto key = key_of(index);
  auto& shard = shard_of(key);
  std::lock_guard lock(shard.mutex);
  ++shard.lookups;
  const auto [it, inserted] = shard.map.try_emplace(key);
  if (inserted) {
    return Claim{ClaimState::kClaimed, {}};
  }
  if (it->second.ready) {
    ++shard.hits;
    return Claim{ClaimState::kHit, it->second.measurement};
  }
  return Claim{ClaimState::kPending, {}};
}

void ShardedMeasurementCache::publish(core::ConfigIndex index,
                                      const core::Measurement& m) {
  const auto key = key_of(index);
  auto& shard = shard_of(key);
  {
    std::lock_guard lock(shard.mutex);
    auto it = shard.map.find(key);
    BAT_EXPECTS(it != shard.map.end() && !it->second.ready);
    it->second.measurement = m;
    it->second.ready = true;
    ++shard.evaluations;
  }
  shard.cv.notify_all();
}

void ShardedMeasurementCache::abandon(core::ConfigIndex index) {
  const auto key = key_of(index);
  auto& shard = shard_of(key);
  {
    std::lock_guard lock(shard.mutex);
    auto it = shard.map.find(key);
    BAT_EXPECTS(it != shard.map.end() && !it->second.ready);
    shard.map.erase(it);
    ++shard.abandoned;
  }
  shard.cv.notify_all();
}

std::optional<core::Measurement> ShardedMeasurementCache::wait(
    core::ConfigIndex index) {
  const auto key = key_of(index);
  auto& shard = shard_of(key);
  std::unique_lock lock(shard.mutex);
  for (;;) {
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) return std::nullopt;  // abandoned / unclaimed
    if (it->second.ready) {
      ++shard.waited;
      return it->second.measurement;
    }
    // The claim owner is evaluating; publish() and abandon() both
    // notify_all, so every state change re-runs the checks above.
    // (notify_all over notify_one: distinct keys of one shard share
    // this condition variable.)
    shard.cv.wait(lock);
  }
}

std::optional<core::Measurement> ShardedMeasurementCache::lookup(
    core::ConfigIndex index) const {
  const auto key = key_of(index);
  const auto& shard = shard_of(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end() || !it->second.ready) return std::nullopt;
  return it->second.measurement;
}

ShardedMeasurementCache::Probe ShardedMeasurementCache::probe(
    core::ConfigIndex index) const {
  const auto key = key_of(index);
  const auto& shard = shard_of(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) return {ProbeState::kAbsent, {}};
  if (!it->second.ready) return {ProbeState::kPending, {}};
  return {ProbeState::kReady, it->second.measurement};
}

bool ShardedMeasurementCache::force_publish(core::ConfigIndex index,
                                            const core::Measurement& m) {
  const auto key = key_of(index);
  auto& shard = shard_of(key);
  bool transitioned = false;
  {
    std::lock_guard lock(shard.mutex);
    auto [it, inserted] = shard.map.try_emplace(key);
    if (inserted || !it->second.ready) {
      it->second.measurement = m;
      it->second.ready = true;
      ++shard.evaluations;
      transitioned = true;
    }
  }
  if (transitioned) shard.cv.notify_all();
  return transitioned;
}

bool ShardedMeasurementCache::try_abandon(core::ConfigIndex index) {
  const auto key = key_of(index);
  auto& shard = shard_of(key);
  bool released = false;
  {
    std::lock_guard lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end() && !it->second.ready) {
      shard.map.erase(it);
      ++shard.abandoned;
      released = true;
    }
  }
  if (released) shard.cv.notify_all();
  return released;
}

std::size_t ShardedMeasurementCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    for (const auto& [key, entry] : shard.map) {
      (void)key;
      total += entry.ready ? 1 : 0;
    }
  }
  return total;
}

ShardedMeasurementCache::Stats ShardedMeasurementCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    total.lookups += shard.lookups;
    total.hits += shard.hits;
    total.waited += shard.waited;
    total.evaluations += shard.evaluations;
    total.abandoned += shard.abandoned;
  }
  return total;
}

}  // namespace bat::service
