// SessionLog: the durable session registry — SessionSpec submissions
// and terminal SessionResults as CRC-framed records in an io::Journal,
// plus the recovery bookkeeping that turns a journal replay back into
// live service state.
//
// Record stream (payload layouts in docs/durability.md):
//
//   kSubmit(id, spec)    appended + committed (fsync) by record_submit
//                        *before* the id is acknowledged to a client —
//                        once a caller holds an id, no crash forgets it;
//   kResult(id, result)  appended + committed when a tracked session
//                        reaches a terminal state worth persisting
//                        (completed or failed; the service deliberately
//                        never journals kCancelled, so sessions cut
//                        short by shutdown or a crash stay *pending*
//                        and re-run on the next boot).
//
// Recovery: replaying the journal partitions ids into completed
// (submit + result: the full SessionResult — trace included — is
// rebuilt so clients can still fetch it) and pending (submit only:
// the service resubmits them under their original ids; deterministic
// backends make the re-run's result identical to the one the crash
// destroyed, so at-least-once execution is observably exactly-once).
// A torn or corrupt journal tail is dropped by the io::Journal layer:
// the surviving record prefix is authoritative.
//
// Checkpoint + truncate: the log keeps at most `retain_completed`
// completed sessions. When the file outgrows `checkpoint_bytes`, it is
// atomically rewritten with only the pending sessions plus the most
// recent retained completed ones — record_result returns the evicted
// ids so the owner can drop them from its in-memory registry too
// (after a restart they are simply unknown). The rewrite preserves
// replay semantics exactly: replaying a checkpointed journal yields
// the same logical state as replaying the original
// (tests/service_recovery_test.cpp proves the equivalence).
//
// Thread-safety: all methods are safe to call concurrently. Two locks
// cooperate: `mutex_` guards the id map, and `log_mutex_` (a
// reader-writer lock) orders journal writes against checkpoints —
// record_submit/record_result hold it shared across "mutate map, then
// append+commit" (so concurrent writers still group-commit), while a
// checkpoint holds it exclusive across "snapshot map, rewrite file".
// Every submission is therefore either entirely inside the checkpoint
// snapshot or entirely after the rewrite — never appended to the new
// file *and* present in the snapshot, which would replay as a
// duplicate submit record and refuse to boot.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "io/journal.hpp"
#include "obs/metrics.hpp"
#include "service/session.hpp"

namespace bat::service {

struct SessionLogOptions {
  /// Directory holding the journal (created if missing); the file
  /// itself is `dir`/sessions.batjnl.
  std::string dir;
  /// Completed sessions retained across checkpoints; older ones are
  /// evicted (their ids become unknown). Pending sessions are always
  /// retained — durability of unfinished work is the whole point.
  std::size_t retain_completed = 1024;
  /// Journal size that triggers a compacting checkpoint on the next
  /// record_result.
  std::uint64_t checkpoint_bytes = 256 * 1024;
  /// Registry hosting the bat_journal_* series; null makes a private
  /// one. The counters are scrape-time bridges over io::Journal::stats
  /// — the journal stays the single source of truth.
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

/// The /v1/stats "durability" section, aggregated by TuningService.
struct DurabilityStats {
  bool enabled = false;
  std::uint64_t file_bytes = 0;
  std::uint64_t records_appended = 0;
  std::uint64_t commits = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t recovered_pending = 0;    // resubmitted on boot
  std::uint64_t restored_completed = 0;   // results rebuilt on boot
  std::uint64_t evicted_completed = 0;    // dropped by checkpoints
  std::uint64_t replay_dropped_bytes = 0; // torn tail cut on boot
};

class SessionLog {
 public:
  struct PendingSession {
    std::uint64_t id = 0;
    SessionSpec spec;
  };
  struct CompletedSession {
    std::uint64_t id = 0;
    SessionResult result;
  };

  /// Opens (creating the directory if needed) and replays the journal.
  /// Throws std::invalid_argument on a foreign/incompatible file and
  /// std::runtime_error on I/O failure.
  explicit SessionLog(SessionLogOptions options);

  SessionLog(const SessionLog&) = delete;
  SessionLog& operator=(const SessionLog&) = delete;

  /// Sessions recovered as submitted-but-unfinished, in id order.
  [[nodiscard]] const std::vector<PendingSession>& pending() const noexcept {
    return pending_;
  }
  /// Sessions recovered with a journaled terminal result, in id order.
  [[nodiscard]] const std::vector<CompletedSession>& completed()
      const noexcept {
    return completed_;
  }
  /// One past the largest id ever journaled (>= 1): where the owning
  /// service's id counter must resume so ids are never reused.
  [[nodiscard]] std::uint64_t next_id() const noexcept { return next_id_; }

  /// Durably records a submission (append + fsync before returning).
  void record_submit(std::uint64_t id, const SessionSpec& spec);

  /// Durably records a terminal result; returns the ids evicted if the
  /// write tripped a compacting checkpoint (usually empty).
  [[nodiscard]] std::vector<std::uint64_t> record_result(
      std::uint64_t id, const SessionResult& result);

  /// Forces a compacting checkpoint; returns the evicted ids.
  [[nodiscard]] std::vector<std::uint64_t> checkpoint();

  [[nodiscard]] DurabilityStats stats() const;

  [[nodiscard]] const std::string& journal_path() const noexcept {
    return journal_->path();
  }

  // --- record codecs, exposed for tests and tooling ---

  static constexpr std::uint8_t kSubmitRecord = 1;
  static constexpr std::uint8_t kResultRecord = 2;

  [[nodiscard]] static std::string encode_submit(std::uint64_t id,
                                                 const SessionSpec& spec);
  [[nodiscard]] static std::string encode_result(std::uint64_t id,
                                                 const SessionResult& result);
  /// Strict decoders: throw std::invalid_argument on any leftover or
  /// missing bytes (a record that passed its CRC but does not parse
  /// was written by an incompatible build — reject, don't guess).
  [[nodiscard]] static std::pair<std::uint64_t, SessionSpec> decode_submit(
      const std::string& payload);
  [[nodiscard]] static std::pair<std::uint64_t, SessionResult> decode_result(
      const std::string& payload);

 private:
  struct Entry {
    SessionSpec spec;
    std::optional<SessionResult> result;
  };

  /// Requires log_mutex_ held exclusive and mutex_ held.
  [[nodiscard]] std::vector<std::uint64_t> checkpoint_locked();

  SessionLogOptions options_;
  std::unique_ptr<io::Journal> journal_;

  std::vector<PendingSession> pending_;
  std::vector<CompletedSession> completed_;
  std::uint64_t next_id_ = 1;
  std::uint64_t replay_dropped_bytes_ = 0;

  /// Ordered before mutex_ (never acquire log_mutex_ while holding
  /// mutex_). Shared by journal writers, exclusive for checkpoints.
  mutable std::shared_mutex log_mutex_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, Entry> sessions_;  // journal's logical content
  std::uint64_t evicted_completed_ = 0;

  std::shared_ptr<obs::MetricsRegistry> metrics_;
  obs::Histogram* commit_duration_ = nullptr;
  // Declared last: the callbacks read journal_ and must unregister
  // before it dies.
  std::vector<obs::CallbackGuard> metric_guards_;
};

}  // namespace bat::service
