#include "service/tuning_service.hpp"

#include <chrono>
#include <stdexcept>

#include "cluster/cluster_node.hpp"
#include "common/log.hpp"
#include "core/backend.hpp"
#include "core/runner.hpp"
#include "io/replay_view.hpp"
#include "kernels/all_kernels.hpp"
#include "obs/trace.hpp"

namespace bat::service {

namespace {
/// Replay sessions that have to sweep the space themselves are only
/// sound (and affordable) on exhaustively enumerable spaces; matches
/// bench::kExhaustiveLimit.
constexpr std::uint64_t kReplaySweepLimit = 100'000;

io::RepositoryOptions repository_options(const ServiceOptions& options) {
  io::RepositoryOptions repo;
  repo.cache_dir = options.dataset_dir;
  repo.exhaustive_limit = kReplaySweepLimit;
  return repo;
}
}  // namespace

TuningService::TuningService(ServiceOptions options)
    : options_(options),
      repo_(repository_options(options)),
      pool_(options.workers) {
  // queue_capacity = 0 would make every submit() block forever on the
  // backlog predicate; treat it as "minimal backlog", not a deadlock.
  options_.queue_capacity = std::max<std::size_t>(1, options_.queue_capacity);
  metrics_ = options_.metrics ? options_.metrics
                              : std::make_shared<obs::MetricsRegistry>();
  register_metrics();
  if (!options_.journal_dir.empty()) {
    SessionLogOptions log_options;
    log_options.dir = options_.journal_dir;
    log_options.retain_completed = options_.journal_retain_completed;
    log_options.checkpoint_bytes = options_.journal_checkpoint_bytes;
    log_options.metrics = metrics_;
    log_ = std::make_unique<SessionLog>(std::move(log_options));
    recover_from_journal();
  }
}

void TuningService::register_metrics() {
  submitted_total_ = metrics_->counter("bat_sessions_submitted_total",
                                       "Sessions submitted (lifetime)");
  const std::string finished_help = "Sessions finished, by terminal status";
  finished_completed_ =
      metrics_->counter("bat_sessions_finished_total", finished_help,
                        {{"status", "completed"}});
  finished_failed_ = metrics_->counter("bat_sessions_finished_total",
                                       finished_help, {{"status", "failed"}});
  finished_cancelled_ =
      metrics_->counter("bat_sessions_finished_total", finished_help,
                        {{"status", "cancelled"}});
  // 1ms..~2200s log-scale: replay probes to marathon live sessions.
  session_duration_ = metrics_->histogram(
      "bat_session_duration_seconds", "Session wall time, any terminal status",
      obs::Histogram::exponential(1e-3, 3.0, 14));

  using CallbackKind = obs::MetricsRegistry::CallbackKind;
  const auto add = [this](const char* name, const char* help,
                          CallbackKind kind, std::function<double()> fn) {
    metric_guards_.push_back(
        metrics_->callback(name, help, kind, {}, std::move(fn)));
  };
  add("bat_sessions_active", "Sessions submitted but not finished",
      CallbackKind::kGauge,
      [this] { return static_cast<double>(sessions_active()); });
  add("bat_sessions_queued", "Sessions waiting for a worker",
      CallbackKind::kGauge, [this] {
        std::lock_guard lock(mutex_);
        return static_cast<double>(queued_);
      });
  // Cache and jit series bridge the per-workload aggregations — the
  // same single source of truth /v1/stats reports.
  const auto cache_series = [&](const char* name, const char* help,
                                auto getter) {
    add(name, help, CallbackKind::kCounter, [this, getter] {
      return static_cast<double>(getter(cache_stats()));
    });
  };
  using CacheStats = ShardedMeasurementCache::Stats;
  cache_series("bat_cache_lookups_total", "Shared-cache lookups",
               [](const CacheStats& s) { return s.lookups; });
  cache_series("bat_cache_hits_total", "Shared-cache hits",
               [](const CacheStats& s) { return s.hits; });
  cache_series("bat_cache_waited_total",
               "Lookups that waited on a concurrent evaluation",
               [](const CacheStats& s) { return s.waited; });
  cache_series("bat_cache_evaluations_total",
               "Evaluations performed through the shared cache",
               [](const CacheStats& s) { return s.evaluations; });
  cache_series("bat_cache_abandoned_total", "Abandoned claims",
               [](const CacheStats& s) { return s.abandoned; });
  cache_series("bat_cache_cross_session_hits_total",
               "Hits + waits served by another session's work",
               [](const CacheStats& s) { return s.cross_session_hits(); });
  const auto jit_series = [&](const char* name, const char* help,
                              auto getter) {
    add(name, help, CallbackKind::kCounter, [this, getter] {
      return static_cast<double>(getter(jit_stats()));
    });
  };
  using JitStats = jit::BackendStats;
  jit_series("bat_jit_evaluations_total", "Configs dispatched through a .so",
             [](const JitStats& s) { return s.evaluations; });
  jit_series("bat_jit_fallback_evals_total",
             "Configs served by the live fallback",
             [](const JitStats& s) { return s.fallback_evals; });
  jit_series("bat_jit_compiles_total", "JIT compiles",
             [](const JitStats& s) { return s.compiles; });
  jit_series("bat_jit_compile_failures_total", "JIT compile failures",
             [](const JitStats& s) { return s.compile_failures; });
  jit_series("bat_jit_artifact_cache_hits_total", "Artifact cache hits",
             [](const JitStats& s) { return s.artifact_cache_hits; });
  jit_series("bat_jit_artifact_cache_misses_total", "Artifact cache misses",
             [](const JitStats& s) { return s.artifact_cache_misses; });
  jit_series("bat_jit_corrupt_rebuilds_total",
             "Artifacts rebuilt after corruption",
             [](const JitStats& s) { return s.corrupt_rebuilds; });
  jit_series("bat_jit_evictions_total", "Artifacts evicted (LRU)",
             [](const JitStats& s) { return s.evictions; });
  add("bat_jit_backends", "JIT workload backends built",
      CallbackKind::kGauge,
      [this] { return static_cast<double>(jit_stats().backends); });
}

TuningService::~TuningService() { shutdown(); }

std::future<SessionResult> TuningService::submit(SessionSpec spec) {
  return enqueue(std::move(spec), 0, 0);
}

std::future<SessionResult> TuningService::enqueue(SessionSpec spec,
                                                  std::uint64_t id,
                                                  std::uint64_t trace_id) {
  auto promise = std::make_shared<std::promise<SessionResult>>();
  auto future = promise->get_future();
  {
    std::unique_lock lock(mutex_);
    backlog_cv_.wait(lock, [&] {
      return !accepting_ || queued_ < options_.queue_capacity;
    });
    if (!accepting_) {
      throw std::runtime_error("TuningService: submit after shutdown");
    }
    ++queued_;
    ++outstanding_;
  }
  submitted_total_->add();
  pool_.submit([this, id, trace_id, promise, spec = std::move(spec)] {
    {
      std::lock_guard lock(mutex_);
      --queued_;
    }
    backlog_cv_.notify_one();
    // Re-enter the session's trace on the worker thread: evaluate,
    // backend batches, jit compiles and the journal commit below all
    // land on the timeline minted at submit.
    obs::TraceScope trace(trace_id);
    SessionResult result;
    {
      obs::ScopedSpan span("evaluate");
      result = run_session(spec);  // never throws: failures in-band
    }
    if (id != 0 && log_ && result.status != SessionStatus::kCancelled) {
      // Journal the terminal result *before* the future resolves:
      // once a client observed "done", a restart must agree. A
      // cancelled session is deliberately not journaled — it stays
      // pending and re-runs on the next boot (docs/durability.md).
      try {
        const auto evicted = log_->record_result(id, result);
        if (!evicted.empty()) {
          std::lock_guard lock(jobs_mutex_);
          for (const auto old : evicted) jobs_.erase(old);
        }
      } catch (const std::exception& e) {
        // Journal write failure degrades durability (the session will
        // re-run after a crash), never in-process correctness.
        common::log_error("service: journaling result of session ", id,
                          " failed: ", e.what());
      }
    }
    promise->set_value(std::move(result));
    {
      std::lock_guard lock(mutex_);
      --outstanding_;
    }
    idle_cv_.notify_all();
  });
  return future;
}

std::uint64_t TuningService::submit_tracked(SessionSpec spec) {
  std::uint64_t id = 0;
  {
    std::lock_guard lock(jobs_mutex_);
    id = next_tracked_id_++;
  }
  // Tracked sessions are the traced ones: the id minted here is what
  // GET /v1/sessions/<id>/trace resolves, and the TraceScope makes the
  // journal submit record a span on the same timeline.
  const std::uint64_t trace_id = obs::mint_trace_id();
  obs::TraceScope trace(trace_id);
  obs::ScopedSpan span("submit");
  // Durability before acknowledgement: the submit record is fsynced
  // before the session is even queued, so a crash at any later point
  // recovers it. (If enqueue then throws — service shut down — the
  // journal keeps a pending entry that the *next* boot runs; the
  // caller saw an exception, not an id, so nothing was promised.)
  if (log_) log_->record_submit(id, spec);
  auto future = enqueue(spec, id, trace_id).share();
  std::lock_guard lock(jobs_mutex_);
  jobs_.emplace(id,
                TrackedSession{std::move(spec), std::move(future), trace_id});
  return id;
}

std::optional<TuningService::TrackedSession> TuningService::tracked(
    std::uint64_t id) const {
  std::lock_guard lock(jobs_mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<std::uint64_t, bool>> TuningService::tracked_sessions()
    const {
  std::vector<std::pair<std::uint64_t, bool>> out;
  std::lock_guard lock(jobs_mutex_);
  out.reserve(jobs_.size());
  for (const auto& [id, session] : jobs_) {
    out.emplace_back(id, session.future.wait_for(std::chrono::seconds(0)) ==
                             std::future_status::ready);
  }
  return out;
}

DurabilityStats TuningService::durability_stats() const {
  return log_ ? log_->stats() : DurabilityStats{};
}

void TuningService::recover_from_journal() {
  // Completed sessions come back as already-resolved futures: a client
  // that submitted before the crash polls the same id and reads the
  // same result (trace included).
  for (const auto& done : log_->completed()) {
    std::promise<SessionResult> promise;
    promise.set_value(done.result);
    std::lock_guard lock(jobs_mutex_);
    jobs_.emplace(done.id,
                  TrackedSession{done.result.spec,
                                 promise.get_future().share()});
  }
  // Pending sessions re-run under their original ids without a new
  // submit record (the journal already has one). This may block on the
  // backlog while the pool drains — recovery of a big queue is just a
  // busy boot, not a deadlock.
  for (const auto& pending : log_->pending()) {
    // Recovered runs get a fresh trace: the pre-crash spans are gone
    // with the old process, but the re-run's timeline is live.
    const std::uint64_t trace_id = obs::mint_trace_id();
    auto future = enqueue(pending.spec, pending.id, trace_id).share();
    std::lock_guard lock(jobs_mutex_);
    jobs_.emplace(pending.id,
                  TrackedSession{pending.spec, std::move(future), trace_id});
  }
  next_tracked_id_ = std::max(next_tracked_id_, log_->next_id());
}

std::vector<SessionResult> TuningService::run_all(
    const std::vector<SessionSpec>& specs) {
  std::vector<std::future<SessionResult>> futures;
  futures.reserve(specs.size());
  for (const auto& spec : specs) futures.push_back(submit(spec));
  std::vector<SessionResult> results;
  results.reserve(specs.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

SessionResult TuningService::run_inline(const SessionSpec& spec) {
  {
    std::lock_guard lock(mutex_);
    if (!accepting_) {
      throw std::runtime_error("TuningService: run_inline after shutdown");
    }
    ++outstanding_;
  }
  submitted_total_->add();
  auto result = run_session(spec);  // noexcept in practice: in-band errors
  {
    std::lock_guard lock(mutex_);
    --outstanding_;
  }
  idle_cv_.notify_all();
  return result;
}

void TuningService::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

void TuningService::shutdown() {
  {
    std::lock_guard lock(mutex_);
    accepting_ = false;
  }
  cancel_.store(true, std::memory_order_relaxed);
  backlog_cv_.notify_all();  // blocked submitters wake up and throw
  wait_idle();
}

void TuningService::register_dataset(const std::string& kernel,
                                     core::DeviceIndex device,
                                     core::Dataset dataset) {
  // Repository keys are (benchmark, device *name*): resolve the index
  // through the kernel registry so disk archives and registrations
  // agree on the key.
  const auto bench = kernels::make(kernel);
  repo_.put(kernel, bench->device_name(device), std::move(dataset));
}

ShardedMeasurementCache::Stats TuningService::cache_stats() const {
  // Collect the caches (not the slots) under the service mutex:
  // build_workload publishes slot->workload under the same mutex, so
  // this never races a concurrent first-session build.
  std::vector<std::shared_ptr<ShardedMeasurementCache>> caches;
  {
    std::lock_guard lock(mutex_);
    caches.reserve(workloads_.size());
    for (const auto& [key, slot] : workloads_) {
      if (slot->workload && slot->workload->cache) {
        caches.push_back(slot->workload->cache);
      }
    }
  }
  ShardedMeasurementCache::Stats total;
  for (const auto& cache : caches) {
    const auto s = cache->stats();
    total.lookups += s.lookups;
    total.hits += s.hits;
    total.waited += s.waited;
    total.evaluations += s.evaluations;
    total.abandoned += s.abandoned;
  }
  return total;
}

jit::BackendStats TuningService::jit_stats() const {
  // Workloads are never removed, so the jit pointers stay valid; the
  // mutex only guards against racing a concurrent first-session
  // publish of slot->workload.
  jit::BackendStats total;
  std::lock_guard lock(mutex_);
  for (const auto& [key, slot] : workloads_) {
    if (!slot->workload || slot->workload->jit == nullptr) continue;
    const auto s = slot->workload->jit->stats();
    total.evaluations += s.evaluations;
    total.fallback_evals += s.fallback_evals;
    total.compiles += s.compiles;
    total.compile_failures += s.compile_failures;
    total.artifact_cache_hits += s.artifact_cache_hits;
    total.artifact_cache_misses += s.artifact_cache_misses;
    total.corrupt_rebuilds += s.corrupt_rebuilds;
    total.evictions += s.evictions;
    total.compile_ms += s.compile_ms;
    ++total.backends;
  }
  return total;
}

std::size_t TuningService::sessions_submitted() const {
  return static_cast<std::size_t>(submitted_total_->value());
}

std::size_t TuningService::sessions_active() const {
  std::lock_guard lock(mutex_);
  return outstanding_;
}

bool TuningService::accepting() const {
  std::lock_guard lock(mutex_);
  return accepting_;
}

SessionResult TuningService::run_session(const SessionSpec& spec) {
  SessionResult result;
  result.spec = spec;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    if (cancel_.load(std::memory_order_relaxed)) {
      result.status = SessionStatus::kCancelled;
    } else {
      auto& workload = workload_for(spec);
      const auto tuner = tuners::make_tuner(spec.tuner);
      core::EvaluationHooks hooks;
      if (options_.share_cache) hooks.shared_cache = workload.shared.get();
      hooks.cancel = &cancel_;
      jit::BackendStats jit_before;
      if (workload.jit != nullptr) jit_before = workload.jit->stats();
      result.run = tuners::run_tuner(*tuner, *workload.backend, spec.budget,
                                     spec.seed, hooks);
      if (workload.jit != nullptr) {
        const auto jit_after = workload.jit->stats();
        result.jit.compile_ms = jit_after.compile_ms - jit_before.compile_ms;
        result.jit.compiles = jit_after.compiles - jit_before.compiles;
        result.jit.artifact_cache_hits =
            jit_after.artifact_cache_hits - jit_before.artifact_cache_hits;
        result.jit.artifact_cache_misses =
            jit_after.artifact_cache_misses - jit_before.artifact_cache_misses;
        result.jit.fallback_evals =
            jit_after.fallback_evals - jit_before.fallback_evals;
      }
      // run.cancelled records whether the token actually aborted an
      // evaluation — a session that converged below budget in the same
      // instant shutdown() flipped the token still counts as completed.
      result.status = result.run.cancelled ? SessionStatus::kCancelled
                                           : SessionStatus::kCompleted;
    }
  } catch (const std::exception& e) {
    result.status = SessionStatus::kFailed;
    result.error = e.what();
  }
  result.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  session_duration_->observe(result.wall_ms / 1000.0);
  switch (result.status) {
    case SessionStatus::kCompleted: finished_completed_->add(); break;
    case SessionStatus::kFailed: finished_failed_->add(); break;
    case SessionStatus::kCancelled: finished_cancelled_->add(); break;
  }
  return result;
}

TuningService::Workload& TuningService::workload_for(const SessionSpec& spec) {
  if (spec.backend != "live" && spec.backend != "replay" &&
      spec.backend != "jit") {
    throw std::invalid_argument("unknown session backend: " + spec.backend);
  }
  std::shared_ptr<WorkloadSlot> slot;
  {
    std::lock_guard lock(mutex_);
    auto& entry = workloads_[WorkloadKey{spec.kernel, spec.device,
                                         spec.backend}];
    if (!entry) entry = std::make_shared<WorkloadSlot>();
    slot = entry;
  }
  // The build itself (benchmark construction, replay sweeps) runs
  // outside the service mutex; concurrent sessions on the same workload
  // rendezvous on the slot's once-flag. A throwing build leaves the
  // flag unset, so the next session retries instead of inheriting a
  // half-built workload.
  std::call_once(slot->once, [&] { build_workload(spec, *slot); });
  if (!slot->workload) {
    throw std::runtime_error("workload construction failed earlier for " +
                             spec.kernel);
  }
  return *slot->workload;
}

void TuningService::build_workload(const SessionSpec& spec,
                                   WorkloadSlot& slot) {
  auto workload = std::make_unique<Workload>();
  workload->benchmark = kernels::make(spec.kernel);
  if (spec.device >= workload->benchmark->device_count()) {
    throw std::out_of_range(
        spec.kernel + ": device index " + std::to_string(spec.device) +
        " out of range (device_count = " +
        std::to_string(workload->benchmark->device_count()) + ")");
  }
  if (spec.backend == "replay") {
    const std::string device_name =
        workload->benchmark->device_name(spec.device);
    // Zero-copy first: a binary archive in dataset_dir (and no
    // registered in-memory dataset shadowing it) replays straight off
    // the mmap'ed columns.
    if (auto view = repo_.view(spec.kernel, device_name)) {
      common::log_info("service: replaying ", spec.kernel, "@", device_name,
                       " zero-copy from ", view->source());
      workload->backend = std::make_unique<io::MmapReplayBackend>(
          workload->benchmark->space(), view);
      workload->view = std::move(view);
    } else {
      auto dataset = repo_.find(spec.kernel, device_name);
      if (!dataset) {
        if (workload->benchmark->space().cardinality() > kReplaySweepLimit) {
          throw std::invalid_argument(
              spec.kernel +
              ": replay sessions need a registered dataset (space too large "
              "to sweep exhaustively)");
        }
        common::log_info("service: sweeping ", spec.kernel, " device ",
                         spec.device, " for the shared replay dataset");
        dataset = repo_.get(*workload->benchmark, spec.device);
      }
      workload->backend = std::make_unique<core::ReplayBackend>(
          workload->benchmark->space(), *dataset);
      workload->dataset = std::move(dataset);
    }
  } else if (spec.backend == "jit") {
    const auto* kernel_bench =
        dynamic_cast<const kernels::KernelBenchmark*>(workload->benchmark.get());
    if (kernel_bench == nullptr) {
      throw std::invalid_argument(spec.kernel +
                                  ": jit sessions need a kernel benchmark");
    }
    jit::CompiledBackendOptions jit_options;
    jit_options.artifact_dir = options_.artifact_dir;
    jit_options.max_artifacts = options_.artifact_max_entries;
    jit_options.metrics = metrics_;
    auto jit_backend = std::make_unique<jit::CompiledKernelBackend>(
        *kernel_bench, spec.device, std::move(jit_options));
    workload->jit = jit_backend.get();
    workload->backend = std::move(jit_backend);
  } else {
    workload->backend =
        std::make_unique<core::LiveBackend>(*workload->benchmark, spec.device);
  }
  if (options_.cluster) {
    // Cluster-wide exactly-once: the node hands out the workload's
    // DistributedMeasurementCache (building or adopting the local
    // shard — peer RPCs may have created it before any local session).
    auto dist = options_.cluster->cache_for(
        spec.kernel, spec.device, spec.backend,
        workload->benchmark->space().compiled_shared());
    workload->cache = dist->local();
    workload->shared = std::move(dist);
  } else {
    workload->cache = std::make_shared<ShardedMeasurementCache>(
        workload->benchmark->space().compiled_shared(), options_.cache_shards);
    workload->shared = workload->cache;
  }
  // Publish under the service mutex: cache_stats() reads slot->workload
  // concurrently (sessions rendezvousing on the slot synchronize via
  // the once-flag instead and never need the lock).
  std::lock_guard lock(mutex_);
  slot.workload = std::move(workload);
}

}  // namespace bat::service
