#include "service/session_json.hpp"

#include <stdexcept>

namespace bat::service {

using common::Json;
using common::JsonArray;
using common::JsonObject;

Json to_json(const SessionSpec& spec) {
  JsonObject object;
  object.emplace("kernel", spec.kernel);
  object.emplace("tuner", spec.tuner);
  object.emplace("device", static_cast<std::uint64_t>(spec.device));
  object.emplace("budget", static_cast<std::uint64_t>(spec.budget));
  object.emplace("seed", spec.seed);
  object.emplace("backend", spec.backend);
  return Json(std::move(object));
}

SessionSpec spec_from_json(const Json& json) {
  const JsonObject& object = json.as_object();  // throws unless object
  SessionSpec spec;
  for (const auto& [key, value] : object) {
    if (key == "kernel") {
      spec.kernel = value.as_string();
    } else if (key == "tuner") {
      spec.tuner = value.as_string();
    } else if (key == "device") {
      spec.device = static_cast<core::DeviceIndex>(value.as_uint());
    } else if (key == "budget") {
      spec.budget = static_cast<std::size_t>(value.as_uint());
    } else if (key == "seed") {
      spec.seed = value.as_uint();
    } else if (key == "backend") {
      spec.backend = value.as_string();
    } else {
      throw std::invalid_argument("session spec: unknown key \"" + key +
                                  "\"");
    }
  }
  return spec;
}

Json to_json(const SessionResult& result, bool include_trace) {
  JsonObject object;
  object.emplace("spec", to_json(result.spec));
  object.emplace("status", to_string(result.status));
  object.emplace("error", result.error);
  object.emplace("wall_ms", result.wall_ms);
  object.emplace("evaluations",
                 static_cast<std::uint64_t>(result.run.trace.size()));
  object.emplace("cancelled", result.run.cancelled);
  // Compile-cost dimension: only for jit sessions, so live/replay
  // session documents are byte-identical to what they always were.
  if (result.spec.backend == "jit") {
    JsonObject jit;
    jit.emplace("compile_ms", result.jit.compile_ms);
    jit.emplace("compiles", result.jit.compiles);
    jit.emplace("artifact_cache_hits", result.jit.artifact_cache_hits);
    jit.emplace("artifact_cache_misses", result.jit.artifact_cache_misses);
    jit.emplace("fallback_evals", result.jit.fallback_evals);
    object.emplace("jit", Json(std::move(jit)));
  }
  if (result.run.best) {
    JsonObject best;
    best.emplace("index", result.run.best->index);
    best.emplace("objective", result.run.best->objective);
    object.emplace("best", Json(std::move(best)));
  } else {
    object.emplace("best", nullptr);
  }
  if (include_trace) {
    JsonArray trace;
    trace.reserve(result.run.trace.size());
    for (const auto& entry : result.run.trace) {
      JsonObject e;
      e.emplace("index", entry.index);
      e.emplace("objective", entry.objective);
      trace.emplace_back(std::move(e));
    }
    object.emplace("trace", Json(std::move(trace)));
  }
  return Json(std::move(object));
}

}  // namespace bat::service
