#include "service/session_log.hpp"

#include <bit>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "core/trace.hpp"
#include "obs/trace.hpp"

namespace bat::service {

namespace {

// Little-endian payload codec, the BATDSB01 string-table conventions
// (u32-length-prefixed strings) applied to journal record payloads.

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked strict reader; decode must consume every byte.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(&bytes) {}

  std::uint8_t u8() {
    std::uint8_t v;
    take(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    take(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    take(&v, sizeof v);
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    if (n > bytes_->size() - pos_) fail("truncated string");
    std::string s(bytes_->data() + pos_, n);
    pos_ += n;
    return s;
  }
  void expect_done() const {
    if (pos_ != bytes_->size()) fail("trailing bytes");
  }
  [[nodiscard]] std::size_t remaining() const { return bytes_->size() - pos_; }

  [[noreturn]] void fail(const char* what) const {
    throw std::invalid_argument(
        std::string("BAT session journal: malformed record payload (") +
        what + ") - written by an incompatible build?");
  }

 private:
  void take(void* out, std::size_t n) {
    if (n > bytes_->size() - pos_) fail("truncated payload");
    std::memcpy(out, bytes_->data() + pos_, n);
    pos_ += n;
  }

  const std::string* bytes_;
  std::size_t pos_ = 0;
};

SessionStatus status_from_u8(std::uint8_t v) {
  switch (v) {
    case 0: return SessionStatus::kCompleted;
    case 1: return SessionStatus::kCancelled;
    case 2: return SessionStatus::kFailed;
    default: break;
  }
  throw std::invalid_argument(
      "BAT session journal: unknown session status " + std::to_string(v));
}

std::uint8_t status_to_u8(SessionStatus s) {
  switch (s) {
    case SessionStatus::kCompleted: return 0;
    case SessionStatus::kCancelled: return 1;
    case SessionStatus::kFailed: return 2;
  }
  return 2;
}

}  // namespace

std::string SessionLog::encode_submit(std::uint64_t id,
                                      const SessionSpec& spec) {
  std::string out;
  put_u64(out, id);
  put_string(out, spec.kernel);
  put_string(out, spec.tuner);
  put_u32(out, static_cast<std::uint32_t>(spec.device));
  put_u64(out, spec.budget);
  put_u64(out, spec.seed);
  put_string(out, spec.backend);
  return out;
}

std::pair<std::uint64_t, SessionSpec> SessionLog::decode_submit(
    const std::string& payload) {
  Reader in(payload);
  const std::uint64_t id = in.u64();
  SessionSpec spec;
  spec.kernel = in.str();
  spec.tuner = in.str();
  spec.device = static_cast<core::DeviceIndex>(in.u32());
  spec.budget = static_cast<std::size_t>(in.u64());
  spec.seed = in.u64();
  spec.backend = in.str();
  in.expect_done();
  return {id, std::move(spec)};
}

std::string SessionLog::encode_result(std::uint64_t id,
                                      const SessionResult& result) {
  // The trace is persisted entry by entry (objective as IEEE-754 bits:
  // restored results must be byte-identical on the JSON wire) — best
  // and best_so_far are derived, so they are rebuilt on decode rather
  // than stored.
  std::string out;
  put_u64(out, id);
  put_u8(out, status_to_u8(result.status));
  put_u8(out, result.run.cancelled ? 1 : 0);
  put_f64(out, result.wall_ms);
  put_string(out, result.error);
  put_u32(out, static_cast<std::uint32_t>(result.run.trace.size()));
  for (const auto& entry : result.run.trace) {
    put_u64(out, entry.index);
    put_f64(out, entry.objective);
  }
  // Compile-cost dimension (all zero for non-jit sessions). Appended
  // after the trace so the trace-count plausibility bound keeps
  // holding; the strict expect_done() on decode makes the extension a
  // clean break, not a silent reinterpretation, for older journals.
  put_f64(out, result.jit.compile_ms);
  put_u64(out, result.jit.compiles);
  put_u64(out, result.jit.artifact_cache_hits);
  put_u64(out, result.jit.artifact_cache_misses);
  put_u64(out, result.jit.fallback_evals);
  return out;
}

std::pair<std::uint64_t, SessionResult> SessionLog::decode_result(
    const std::string& payload) {
  Reader in(payload);
  const std::uint64_t id = in.u64();
  SessionResult result;
  result.status = status_from_u8(in.u8());
  result.run.cancelled = in.u8() != 0;
  result.wall_ms = in.f64();
  result.error = in.str();
  const std::uint32_t entries = in.u32();
  // Validate the declared count against the bytes actually present
  // (16 per entry) *before* reserving: a corrupt count must reject as
  // invalid_argument, not request a multi-gigabyte allocation.
  if (entries > in.remaining() / 16) in.fail("implausible trace length");
  result.run.trace.reserve(entries);
  for (std::uint32_t i = 0; i < entries; ++i) {
    core::TraceEntry entry;
    entry.index = in.u64();
    entry.objective = in.f64();
    result.run.trace.push_back(entry);
  }
  result.jit.compile_ms = in.f64();
  result.jit.compiles = in.u64();
  result.jit.artifact_cache_hits = in.u64();
  result.jit.artifact_cache_misses = in.u64();
  result.jit.fallback_evals = in.u64();
  in.expect_done();
  result.run.best = core::trace_best(result.run.trace);
  result.run.best_so_far = core::trace_best_so_far(result.run.trace);
  return {id, std::move(result)};
}

SessionLog::SessionLog(SessionLogOptions options)
    : options_(std::move(options)) {
  if (options_.dir.empty()) {
    throw std::invalid_argument("SessionLog: journal directory is empty");
  }
  options_.retain_completed = std::max<std::size_t>(1,
                                                    options_.retain_completed);
  std::filesystem::create_directories(options_.dir);
  journal_ = std::make_unique<io::Journal>(
      (std::filesystem::path(options_.dir) / "sessions.batjnl").string());

  const auto& replay = journal_->replayed();
  replay_dropped_bytes_ = replay.dropped_bytes;
  for (const auto& record : replay.records) {
    if (record.type == kSubmitRecord) {
      auto [id, spec] = decode_submit(record.payload);
      // Replaying a checkpointed journal may legitimately see an id
      // twice only if corruption survived CRC — treat it strictly.
      if (!sessions_.emplace(id, Entry{std::move(spec), std::nullopt})
               .second) {
        throw std::invalid_argument(journal_->path() +
                                    ": duplicate submit record for id " +
                                    std::to_string(id));
      }
      next_id_ = std::max(next_id_, id + 1);
    } else if (record.type == kResultRecord) {
      auto [id, result] = decode_result(record.payload);
      const auto it = sessions_.find(id);
      if (it == sessions_.end()) {
        throw std::invalid_argument(journal_->path() +
                                    ": result record for unknown id " +
                                    std::to_string(id));
      }
      it->second.result = std::move(result);
      next_id_ = std::max(next_id_, id + 1);
    } else {
      throw std::invalid_argument(
          journal_->path() + ": unknown record type " +
          std::to_string(record.type) + " - journal from a newer build?");
    }
  }
  for (const auto& [id, entry] : sessions_) {
    if (entry.result) {
      CompletedSession done;
      done.id = id;
      done.result = *entry.result;
      done.result.spec = entry.spec;
      completed_.push_back(std::move(done));
    } else {
      pending_.push_back(PendingSession{id, entry.spec});
    }
  }

  metrics_ = options_.metrics ? options_.metrics
                              : std::make_shared<obs::MetricsRegistry>();
  commit_duration_ = metrics_->histogram(
      "bat_journal_commit_duration_seconds",
      "Append + fsync wall time per journaled record",
      obs::Histogram::exponential(5e-5, 2.0, 15));
  using CallbackKind = obs::MetricsRegistry::CallbackKind;
  const auto bridge = [this](const char* name, const char* help,
                             CallbackKind kind, auto getter) {
    metric_guards_.push_back(metrics_->callback(
        name, help, kind, {},
        [this, getter] { return static_cast<double>(getter(*journal_)); }));
  };
  bridge("bat_journal_file_bytes", "Current journal file size",
         CallbackKind::kGauge,
         [](const io::Journal& j) { return j.stats().file_bytes; });
  bridge("bat_journal_records_appended_total", "Records appended",
         CallbackKind::kCounter,
         [](const io::Journal& j) { return j.stats().records_appended; });
  bridge("bat_journal_commits_total", "Durable commits (fsync)",
         CallbackKind::kCounter,
         [](const io::Journal& j) { return j.stats().commits; });
  bridge("bat_journal_checkpoints_total", "Compacting checkpoints",
         CallbackKind::kCounter,
         [](const io::Journal& j) { return j.stats().checkpoints; });
}

void SessionLog::record_submit(std::uint64_t id, const SessionSpec& spec) {
  // Shared log lock across "mutate map, then append+commit": a
  // concurrent checkpoint (exclusive) either snapshots this entry with
  // its append already on the old file (discarded by the rewrite) or
  // runs entirely before, so the append lands on the new file and is
  // absent from the snapshot. Either way the id is journaled exactly
  // once — two submit records for one id would refuse to replay.
  std::shared_lock log(log_mutex_);
  {
    std::lock_guard lock(mutex_);
    sessions_[id] = Entry{spec, std::nullopt};
  }
  obs::ScopedSpan span("journal.submit");
#ifndef BAT_OBS_OFF
  const std::uint64_t start_ns = obs::monotonic_now_ns();
#endif
  journal_->append(kSubmitRecord, encode_submit(id, spec));
  journal_->commit();  // durable before the id is acknowledged
#ifndef BAT_OBS_OFF
  commit_duration_->observe(
      static_cast<double>(obs::monotonic_now_ns() - start_ns) / 1e9);
#endif
}

std::vector<std::uint64_t> SessionLog::record_result(
    std::uint64_t id, const SessionResult& result) {
  {
    std::shared_lock log(log_mutex_);
    {
      std::lock_guard lock(mutex_);
      const auto it = sessions_.find(id);
      if (it != sessions_.end()) it->second.result = result;
    }
    obs::ScopedSpan span("journal.result");
#ifndef BAT_OBS_OFF
    const std::uint64_t start_ns = obs::monotonic_now_ns();
#endif
    journal_->append(kResultRecord, encode_result(id, result));
    journal_->commit();
#ifndef BAT_OBS_OFF
    commit_duration_->observe(
        static_cast<double>(obs::monotonic_now_ns() - start_ns) / 1e9);
#endif
    if (journal_->stats().file_bytes <= options_.checkpoint_bytes) return {};
  }
  std::unique_lock log(log_mutex_);
  // Re-check under the exclusive lock: a concurrent record_result may
  // already have compacted the file while we waited.
  if (journal_->stats().file_bytes <= options_.checkpoint_bytes) return {};
  std::lock_guard lock(mutex_);
  return checkpoint_locked();
}

std::vector<std::uint64_t> SessionLog::checkpoint() {
  std::unique_lock log(log_mutex_);
  std::lock_guard lock(mutex_);
  return checkpoint_locked();
}

std::vector<std::uint64_t> SessionLog::checkpoint_locked() {
  // Retention: every pending session, plus the `retain_completed`
  // completed ones with the highest ids (the ones clients most
  // plausibly still poll).
  std::vector<std::uint64_t> evicted;
  std::size_t completed_count = 0;
  for (const auto& [id, entry] : sessions_) {
    if (entry.result) ++completed_count;
  }
  if (completed_count > options_.retain_completed) {
    std::size_t to_evict = completed_count - options_.retain_completed;
    for (auto it = sessions_.begin();
         it != sessions_.end() && to_evict != 0;) {
      if (it->second.result) {
        evicted.push_back(it->first);
        it = sessions_.erase(it);
        --to_evict;
      } else {
        ++it;
      }
    }
  }

  // Rewrite: submit records for everything retained (id order), then
  // result records for the completed ones — exactly the stream a
  // fresh journal of the same state would contain.
  std::vector<io::JournalRecord> records;
  records.reserve(sessions_.size() * 2);
  for (const auto& [id, entry] : sessions_) {
    records.push_back(
        io::JournalRecord{kSubmitRecord, encode_submit(id, entry.spec)});
  }
  for (const auto& [id, entry] : sessions_) {
    if (entry.result) {
      records.push_back(
          io::JournalRecord{kResultRecord, encode_result(id, *entry.result)});
    }
  }
  journal_->checkpoint(records);
  evicted_completed_ += evicted.size();
  return evicted;
}

DurabilityStats SessionLog::stats() const {
  const auto j = journal_->stats();
  DurabilityStats out;
  out.enabled = true;
  out.file_bytes = j.file_bytes;
  out.records_appended = j.records_appended;
  out.commits = j.commits;
  out.checkpoints = j.checkpoints;
  out.recovered_pending = pending_.size();
  out.restored_completed = completed_.size();
  out.replay_dropped_bytes = replay_dropped_bytes_;
  std::lock_guard lock(mutex_);
  out.evicted_completed = evicted_completed_;
  return out;
}

}  // namespace bat::service
