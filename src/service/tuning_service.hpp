// TuningService: many concurrent tuning sessions, one shared cache.
//
// The paper's experiments are a fixed grid of (kernel x tuner x budget)
// runs executed one at a time; the service turns that into an
// orchestration layer fit for serving many workloads at once:
//
//   * a bounded async job queue — submit() returns a future and blocks
//     (backpressure) while `queue_capacity` sessions are already
//     waiting for a worker;
//   * a worker pool (a dedicated common::ThreadPool) running whole
//     sessions concurrently — note the pool's inline-nesting rule:
//     batch fan-out *inside* a session runs inline on that session's
//     worker, so session-level parallelism replaces batch-level;
//   * per-(kernel, device, backend) "workloads" created lazily and
//     shared by every session that matches: one Benchmark instance, one
//     stateless evaluation backend, and one ShardedMeasurementCache so
//     concurrent sessions on the same space dedupe evaluations and hit
//     each other's results (exactly once per distinct valid-ordinal);
//   * cooperative cancellation: shutdown() flips one token that every
//     session checks at its next batch boundary, so no worker is ever
//     stuck mid-run;
//   * an id-keyed tracked-session registry (submit_tracked/tracked):
//     what the HTTP API's job routes serve. With `journal_dir` set the
//     registry is *durable* — submissions and terminal results are
//     written through a service::SessionLog (write-ahead journal with
//     fsync-on-commit), and the constructor replays it: completed
//     sessions come back with their full results, unfinished ones are
//     resubmitted under their original ids and re-run (deterministic
//     backends make the re-run indistinguishable from the one a crash
//     destroyed). Sessions cancelled by shutdown are deliberately left
//     pending in the journal for the same reason. See
//     docs/durability.md.
//
// Determinism is preserved: backends are deterministic, so a session
// produces the identical trace whether its measurements were computed
// locally, recalled from the shared cache, or awaited from a concurrent
// session (tests/service_test.cpp enforces this).
//
// Ownership / thread-safety: the service owns benchmarks, backends,
// caches and the worker pool; sessions borrow them and must not outlive
// it (futures returned by submit() are safe to resolve after shutdown,
// not after destruction). All public methods are thread-safe.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/dataset.hpp"
#include "io/dataset_repository.hpp"
#include "io/dataset_view.hpp"
#include "jit/compiled_backend.hpp"
#include "obs/metrics.hpp"
#include "service/session.hpp"
#include "service/session_log.hpp"
#include "service/sharded_cache.hpp"

namespace bat::cluster {
class ClusterNode;
}  // namespace bat::cluster

namespace bat::service {

struct ServiceOptions {
  /// Worker threads running sessions; 0 = hardware_concurrency().
  std::size_t workers = 0;
  /// Max sessions admitted but not yet started; submit() blocks beyond.
  std::size_t queue_capacity = 64;
  /// Shards per workload cache (rounded up to a power of two).
  std::size_t cache_shards = 16;
  /// Route sessions through the shared per-workload cache. Off = every
  /// session evaluates everything itself (for A/B comparisons).
  bool share_cache = true;
  /// Disk cache for replay datasets, handed to the service's
  /// DatasetRepository: binary archives found there replay zero-copy
  /// (mmap), and service-swept datasets persist back into it. "" keeps
  /// the repository memory-only (the pre-io behavior).
  std::string dataset_dir;
  /// Joined cluster node (borrowed; must outlive the service). When
  /// set, per-workload caches come from ClusterNode::cache_for — the
  /// cluster-wide exactly-once layer — instead of a node-local
  /// ShardedMeasurementCache. Null (default) keeps the single-node
  /// behavior unchanged.
  cluster::ClusterNode* cluster = nullptr;
  /// Durable session journal directory. "" (default) keeps the
  /// tracked-session registry memory-only (a restart forgets it); set,
  /// every submit_tracked id and terminal result is journaled
  /// (sessions.batjnl) and the constructor replays it — restoring
  /// completed results and re-running unfinished sessions under their
  /// original ids. docs/durability.md is the full contract.
  std::string journal_dir;
  /// Completed sessions the journal retains across checkpoints; older
  /// ones are evicted from the registry (their ids 404 after that).
  std::size_t journal_retain_completed = 1024;
  /// Journal size that triggers a compacting checkpoint + truncate.
  std::uint64_t journal_checkpoint_bytes = 256 * 1024;
  /// Artifact cache directory for "jit" workloads. "" uses the shared
  /// per-user directory under the system temp root, which is what makes
  /// compiles amortize across service restarts and across processes.
  std::string artifact_dir;
  /// LRU bound on on-disk jit artifacts per workload cache.
  std::size_t artifact_max_entries = 256;
  /// Registry hosting the bat_sessions_*/bat_cache_*/bat_jit_* series;
  /// null makes a private one. Forwarded into the session journal and
  /// every jit backend the service builds, so one `tune serve` process
  /// scrapes as one coherent surface.
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

class TuningService {
 public:
  explicit TuningService(ServiceOptions options = {});
  ~TuningService();  // shutdown() + joins the pool

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Enqueues one session. Blocks while the backlog is at capacity;
  /// throws std::runtime_error after shutdown(). The future always
  /// resolves to a SessionResult (failures are reported in-band as
  /// kFailed, never as a broken promise).
  [[nodiscard]] std::future<SessionResult> submit(SessionSpec spec);

  /// One entry of the tracked-session registry.
  struct TrackedSession {
    SessionSpec spec;
    std::shared_future<SessionResult> future;
    /// The obs trace this session's spans record under (0 = untraced:
    /// sessions restored as already-completed have no live timeline).
    std::uint64_t trace_id = 0;
  };

  /// submit() plus registration in the id-keyed registry; returns the
  /// id (monotonic from 1, or from the journal's high-water mark after
  /// recovery — ids are never reused). When journaled, the submission
  /// is fsync-durable *before* this returns: a crash after the caller
  /// sees the id can only delay the session, never lose it. Blocks and
  /// throws like submit().
  [[nodiscard]] std::uint64_t submit_tracked(SessionSpec spec);

  /// Registry lookup; nullopt for unknown (or checkpoint-evicted) ids.
  [[nodiscard]] std::optional<TrackedSession> tracked(
      std::uint64_t id) const;

  /// (id, finished?) for every registered session, in id order.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, bool>>
  tracked_sessions() const;

  /// Journal counters for /v1/stats; enabled == false when
  /// journal_dir was empty.
  [[nodiscard]] DurabilityStats durability_stats() const;

  /// Convenience: submit every spec, wait for all, results in order.
  [[nodiscard]] std::vector<SessionResult> run_all(
      const std::vector<SessionSpec>& specs);

  /// Runs one session synchronously on the *calling* thread instead of
  /// a pool worker, still sharing workloads/cache/cancellation with any
  /// concurrently submitted sessions. Because the caller is outside the
  /// worker pool, batch fan-out inside the session parallelizes over
  /// the global pool — the right call for one-off sessions (tune run),
  /// where routing through a worker would serialize every generation.
  [[nodiscard]] SessionResult run_inline(const SessionSpec& spec);

  /// Blocks until every submitted session has finished.
  void wait_idle();

  /// Stops accepting, cancels in-flight sessions (they stop at their
  /// next batch boundary with partial traces) and waits for the workers
  /// to drain. Idempotent.
  void shutdown();

  /// Provides the dataset a "replay" session on (kernel, device) will
  /// serve, instead of the service sweeping the space itself (or
  /// resolving an archive from `dataset_dir`) on first use. Must be
  /// called before the first such session starts. Registered datasets
  /// are authoritative: they shadow on-disk archives for their key.
  void register_dataset(const std::string& kernel, core::DeviceIndex device,
                        core::Dataset dataset);

  /// The repository replay workloads resolve their datasets through.
  [[nodiscard]] io::DatasetRepository& datasets() noexcept { return repo_; }

  /// Cache counters aggregated over every workload built so far.
  /// stats().cross_session_hits() > 0 is the service's raison d'être.
  [[nodiscard]] ShardedMeasurementCache::Stats cache_stats() const;

  /// JIT compile/artifact-cache counters aggregated over every "jit"
  /// workload built so far (`backends` = number aggregated). All-zero
  /// when no jit session ever ran.
  [[nodiscard]] jit::BackendStats jit_stats() const;

  [[nodiscard]] std::size_t workers() const noexcept { return pool_.size(); }
  [[nodiscard]] std::size_t sessions_submitted() const;
  [[nodiscard]] std::size_t sessions_active() const;
  /// False once shutdown() has started — /v1/healthz reports draining.
  [[nodiscard]] bool accepting() const;

 private:
  /// Everything sessions on one (kernel, device, backend) triple share.
  /// Replay workloads hold exactly one of dataset/view: an in-memory
  /// (repository-resolved) dataset behind a ReplayBackend, or a mmap'ed
  /// binary archive behind a zero-copy io::MmapReplayBackend.
  struct Workload {
    std::unique_ptr<core::Benchmark> benchmark;
    std::shared_ptr<const core::Dataset> dataset;
    std::shared_ptr<const io::DatasetView> view;
    std::unique_ptr<core::EvaluationBackend> backend;
    /// Non-owning view of `backend` when it is a CompiledKernelBackend
    /// ("jit" workloads): where the compile-cost counters come from.
    jit::CompiledKernelBackend* jit = nullptr;
    std::shared_ptr<ShardedMeasurementCache> cache;
    /// What sessions actually share through: the cache above when
    /// single-node, the cluster's DistributedMeasurementCache (whose
    /// local shard is `cache`) when clustered.
    std::shared_ptr<core::SharedMeasurementCache> shared;
  };
  /// Lazily-built workload slot: the map entry is created cheaply under
  /// the service mutex, the (possibly slow: replay sweeps) build runs
  /// under the slot's own once-flag so it never blocks submit/shutdown.
  struct WorkloadSlot {
    std::once_flag once;
    std::unique_ptr<Workload> workload;
  };
  using WorkloadKey =
      std::tuple<std::string, core::DeviceIndex, std::string>;

  [[nodiscard]] SessionResult run_session(const SessionSpec& spec);
  [[nodiscard]] Workload& workload_for(const SessionSpec& spec);
  void build_workload(const SessionSpec& spec, WorkloadSlot& slot);
  /// The shared submit path. id != 0 marks a tracked session whose
  /// terminal result is journaled (cancellations excepted) before its
  /// future resolves. trace_id != 0 makes the worker record the
  /// session's spans (evaluate, backend batches, jit compiles, journal
  /// commits) under that trace.
  [[nodiscard]] std::future<SessionResult> enqueue(SessionSpec spec,
                                                   std::uint64_t id,
                                                   std::uint64_t trace_id);
  void register_metrics();
  /// Replays the journal into the registry: restores completed
  /// results as ready futures, resubmits pending sessions.
  void recover_from_journal();

  ServiceOptions options_;

  std::unique_ptr<SessionLog> log_;  // null when journal_dir is empty

  // Tracked-session registry. Its own mutex (not mutex_): lookups must
  // not contend with the backlog/waiter machinery, and workers touch
  // it while holding nothing else (no ordering to get wrong).
  mutable std::mutex jobs_mutex_;
  std::map<std::uint64_t, TrackedSession> jobs_;
  std::uint64_t next_tracked_id_ = 1;

  mutable std::mutex mutex_;
  std::condition_variable backlog_cv_;  // queued_ dropped below capacity
  std::condition_variable idle_cv_;     // outstanding_ reached zero
  bool accepting_ = true;
  // Control state (backpressure + idle predicates), not telemetry —
  // the lifetime submitted counter lives on the registry instead.
  std::size_t queued_ = 0;       // submitted, no worker picked it up yet
  std::size_t outstanding_ = 0;  // submitted, not finished
  std::map<WorkloadKey, std::shared_ptr<WorkloadSlot>> workloads_;
  io::DatasetRepository repo_;

  std::atomic<bool> cancel_{false};

  std::shared_ptr<obs::MetricsRegistry> metrics_;
  obs::Counter* submitted_total_ = nullptr;
  obs::Counter* finished_completed_ = nullptr;
  obs::Counter* finished_failed_ = nullptr;
  obs::Counter* finished_cancelled_ = nullptr;
  obs::Histogram* session_duration_ = nullptr;
  // Scrape-time bridges over cache_stats()/jit_stats()/queue state.
  // Declared after everything they read (destroyed first).
  std::vector<obs::CallbackGuard> metric_guards_;

  // Last member: destroyed first, so no worker can touch service state
  // after the maps above are gone (shutdown() has already drained it).
  common::ThreadPool pool_;
};

}  // namespace bat::service
