// ShardedMeasurementCache: the cross-session cache behind TuningService.
//
// Implements core::SharedMeasurementCache (the claim/publish/abandon/
// wait exactly-once protocol) with per-shard mutexes so that concurrent
// sessions on the same search space dedupe work lock-cheaply. Keys are
// *valid ordinals* from CompiledSpace::rank when the space is
// materialized: ordinals are dense and uniformly spread over shards by a
// cheap modulo, and two sessions probing the same configuration always
// collide on the same key regardless of how they produced the index.
// Invalid indices (tuners do propose them: crossover children, PSO
// snapping) key as num_valid + raw index — disjoint from the ordinal
// range because materialized spaces have cardinality <= 2^20. Streamed
// (huge) spaces key by raw ConfigIndex directly.
//
// Concurrency: each shard owns one mutex, one condition variable and one
// hash map; claim/publish/abandon touch exactly one shard, so 16+ shards
// keep concurrent sessions mostly uncontended where a single global
// mutex would serialize every probe (bench/micro_framework.cpp carries
// the BM_CacheUncontended / BM_CacheSingleMutex16Threads /
// BM_CacheSharded16Threads evidence; shards = 1 *is* the single-mutex
// baseline). wait() blocks on the shard's condition variable until the
// claim owner publishes or abandons.
//
// Ownership: the cache shares ownership of the CompiledSpace (so it
// stays valid independently of the SearchSpace it came from) and is
// itself owned by the service's per-(kernel, device) workload; sessions
// borrow it through core::EvaluationHooks.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/compiled_space.hpp"
#include "core/shared_cache.hpp"

namespace bat::service {

class ShardedMeasurementCache final : public core::SharedMeasurementCache {
 public:
  /// Aggregated counters (summed over shards at call time). A claim
  /// that found a ready measurement is a `hit`; one resolved by another
  /// session while we waited is `waited` — both mean this session got a
  /// measurement it never paid to evaluate, so
  /// cross_session_hits() = hits + waited.
  struct Stats {
    std::uint64_t lookups = 0;      // claim() calls
    std::uint64_t hits = 0;         // claim() returned kHit
    std::uint64_t waited = 0;       // wait() resolved with a measurement
    std::uint64_t evaluations = 0;  // publish() calls (distinct evals)
    std::uint64_t abandoned = 0;    // abandon() calls
    [[nodiscard]] std::uint64_t cross_session_hits() const noexcept {
      return hits + waited;
    }
  };

  /// `compiled` may be null (raw ConfigIndex keys; used by unit tests).
  /// `shards` is rounded up to a power of two; 1 = single-mutex baseline.
  explicit ShardedMeasurementCache(
      std::shared_ptr<const core::CompiledSpace> compiled,
      std::size_t shards = 16);

  [[nodiscard]] Claim claim(core::ConfigIndex index) override;
  void publish(core::ConfigIndex index, const core::Measurement& m) override;
  void abandon(core::ConfigIndex index) override;
  [[nodiscard]] std::optional<core::Measurement> wait(
      core::ConfigIndex index) override;

  /// Non-claiming peek: the measurement if ready, nullopt otherwise.
  /// Does not count as a lookup/hit.
  [[nodiscard]] std::optional<core::Measurement> lookup(
      core::ConfigIndex index) const;

  // --- peer-tolerant variants (cluster forwarding) -----------------
  // publish()/abandon() assert protocol discipline for in-process
  // callers (a violation there is a bug). Cross-node traffic races
  // against peer failure — a relay frame can arrive after a local
  // claimant already evaluated, an abandon sweep can cross a late
  // publish RPC in flight — so the distributed layer uses these
  // idempotent forms instead of crashing the node on a lost race.

  enum class ProbeState { kReady, kPending, kAbsent };
  struct Probe {
    ProbeState state = ProbeState::kAbsent;
    core::Measurement measurement;  // meaningful only when kReady
  };
  /// Non-claiming state inspection; does not count as a lookup/hit.
  [[nodiscard]] Probe probe(core::ConfigIndex index) const;

  /// Insert-or-fill a ready measurement regardless of current state:
  /// absent -> inserted ready, pending -> filled (waiters wake), ready
  /// -> no-op (first publish wins). Counts an evaluation only when the
  /// entry transitions to ready. Returns true on transition.
  bool force_publish(core::ConfigIndex index, const core::Measurement& m);

  /// abandon() that tolerates absent/ready entries (no-op, returns
  /// false); true when a pending claim was actually released.
  bool try_abandon(core::ConfigIndex index);

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }
  /// Number of ready (published) measurements.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    core::Measurement measurement;
    bool ready = false;  // false while the claim owner is evaluating
  };
  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::unordered_map<std::uint64_t, Entry> map;
    // Counters live under the shard mutex: incrementing them costs
    // nothing extra and a global atomic would reintroduce the very
    // cross-shard contention the sharding removes.
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t waited = 0;
    std::uint64_t evaluations = 0;
    std::uint64_t abandoned = 0;
  };

  [[nodiscard]] std::uint64_t key_of(core::ConfigIndex index) const;
  [[nodiscard]] Shard& shard_of(std::uint64_t key) {
    return shards_[static_cast<std::size_t>(key) & mask_];
  }
  [[nodiscard]] const Shard& shard_of(std::uint64_t key) const {
    return shards_[static_cast<std::size_t>(key) & mask_];
  }

  std::shared_ptr<const core::CompiledSpace> compiled_;
  bool by_ordinal_ = false;
  std::uint64_t invalid_offset_ = 0;  // num_valid when keying by ordinal
  std::vector<Shard> shards_;
  std::size_t mask_ = 0;
};

}  // namespace bat::service
