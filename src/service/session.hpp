// TuningSession value types: what you submit to a TuningService and
// what you get back.
//
// A session is one complete tuning run — kernel x tuner x device x
// budget x seed — identical in meaning to a standalone
// tuners::run_tuner call; the service only changes *where* it executes
// (a pooled worker) and where measurements come from (the shared
// per-workload cache). Specs are plain values, copied into the service;
// results come back through the std::future returned by submit().
//
// Thread-safety: SessionSpec/SessionResult are value types with no
// shared state; a SessionResult is written by exactly one worker and
// handed off through the future.
#pragma once

#include <cstdint>
#include <string>

#include "core/benchmark.hpp"
#include "tuners/tuner.hpp"

namespace bat::service {

/// One tuning workload unit. `backend` selects how the service
/// evaluates: "live" (gpusim model), "replay" (a registered or
/// service-swept tabular dataset; requires an exhaustively enumerable
/// space or a registered dataset) or "jit" (per-config compiled shared
/// objects, results bit-identical to "live"; gemm/hotspot/pnpoly only).
struct SessionSpec {
  std::string kernel = "gemm";
  std::string tuner = "local";
  core::DeviceIndex device = 0;
  std::size_t budget = 150;
  std::uint64_t seed = 42;
  std::string backend = "live";
};

/// Compile-cost telemetry for "jit" sessions (all zero otherwise):
/// deltas of the shared workload backend's counters across this
/// session's execution. Concurrent sessions on the same workload share
/// the artifact cache, so a delta attributes whatever happened while
/// this session ran — compile amortization is the point, not perfect
/// attribution.
struct JitSessionCost {
  double compile_ms = 0.0;
  std::uint64_t compiles = 0;
  std::uint64_t artifact_cache_hits = 0;
  std::uint64_t artifact_cache_misses = 0;
  std::uint64_t fallback_evals = 0;
};

enum class SessionStatus {
  kCompleted,  // ran to its natural end (budget exhausted or converged)
  kCancelled,  // stopped at a batch boundary by service shutdown
  kFailed,     // threw (unknown kernel/tuner, bad device, ...)
};

[[nodiscard]] inline const char* to_string(SessionStatus s) {
  switch (s) {
    case SessionStatus::kCompleted: return "completed";
    case SessionStatus::kCancelled: return "cancelled";
    case SessionStatus::kFailed: return "failed";
  }
  return "unknown";
}

struct SessionResult {
  SessionSpec spec;
  SessionStatus status = SessionStatus::kFailed;
  std::string error;      // what() when status == kFailed
  tuners::TuningRun run;  // trace/best; partial when cancelled
  double wall_ms = 0.0;   // execution wall clock (excludes queue wait)
  JitSessionCost jit;     // compile-cost dimension ("jit" backend only)
};

}  // namespace bat::service
