// SessionSpec / SessionResult <-> JSON: the wire representation shared
// by the HTTP API server, the `tune remote` client and the tests.
//
// One serializer on both sides is what makes the end-to-end determinism
// check meaningful: a trace serialized by the server and one serialized
// locally from run_inline of the same spec must be byte-identical, so
// the encoding (key order via JsonObject's sorted map, number formatting
// via common::Json) lives here and nowhere else.
//
// Deserialization is strict: unknown keys are an error (a misspelled
// "budjet" must not silently run a 150-evaluation default session),
// wrong types are an error, all fields are optional with the
// SessionSpec defaults.
#pragma once

#include "common/json.hpp"
#include "service/session.hpp"

namespace bat::service {

/// {"kernel","tuner","device","budget","seed","backend"} — always all
/// six keys, so specs echo back complete even where defaults applied.
[[nodiscard]] common::Json to_json(const SessionSpec& spec);

/// Strict inverse; throws std::invalid_argument on unknown keys and
/// common::JsonTypeError on type mismatches.
[[nodiscard]] SessionSpec spec_from_json(const common::Json& json);

/// {"spec","status","error","wall_ms","evaluations","best","trace",
///  "cancelled"}; "trace" (array of {"index","objective"}) is included
/// when `include_trace` — status polls don't need the full history.
[[nodiscard]] common::Json to_json(const SessionResult& result,
                                   bool include_trace = true);

}  // namespace bat::service
