// Table VIII: search-space sizes of the benchmarks.
//
//   Cardinality        |product of value-set sizes|
//   Constrained        configurations passing static constraints
//   Valid              per-device range of launchable configurations
//                      (exhaustive benchmarks only; "N/A" otherwise,
//                      matching the paper)
//   Reduced            cardinality restricted to parameters whose PFI is
//                      >= 0.05 on at least one device
//   Reduce-Constrained Reduced with constraints re-applied (counted on
//                      the projected subspace; non-reduced parameters are
//                      pinned to their overall-best value)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/importance.hpp"
#include "core/benchmark.hpp"

namespace bat::analysis {

struct SpaceStats {
  std::string benchmark;
  std::uint64_t cardinality = 0;
  std::uint64_t constrained = 0;
  std::optional<std::uint64_t> valid_min;  // per-device min/max of Valid
  std::optional<std::uint64_t> valid_max;
  std::uint64_t reduced = 0;
  std::uint64_t reduce_constrained = 0;
  std::vector<std::string> reduced_params;  // the kept parameters
};

struct SpaceStatsOptions {
  double pfi_threshold = 0.05;
  /// Spaces at most this large get the exhaustive Valid count.
  std::uint64_t exhaustive_limit = 100'000;
  /// Sample size for the PFI datasets of the large benchmarks.
  std::size_t samples = 10'000;
  std::uint64_t seed = 0xBA7BA7ULL;
};

/// Computes the full Table VIII row for one benchmark; `reports[d]` must
/// hold the Fig 6 importance result per device (so the expensive PFI
/// work is shared with the Fig 6 harness).
[[nodiscard]] SpaceStats space_stats(
    const core::Benchmark& benchmark,
    const std::vector<ImportanceReport>& reports,
    const SpaceStatsOptions& options = {});

}  // namespace bat::analysis
