#include "analysis/space_stats.hpp"

#include <algorithm>
#include <set>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"
#include "core/runner.hpp"

namespace bat::analysis {

namespace {

/// Counts configurations of the projected space (reduced params free,
/// others pinned to `pinned`) that satisfy the constraints.
std::uint64_t count_reduce_constrained(const core::SearchSpace& space,
                                       const std::vector<std::size_t>& kept,
                                       const core::Config& pinned) {
  const auto& params = space.params();
  // Mixed-radix enumeration over the kept parameters only.
  std::uint64_t total = 1;
  for (const auto p : kept) total *= params.param(p).cardinality();

  const auto decode = [&](std::uint64_t index, core::Config& config) {
    config = pinned;
    for (std::size_t i = kept.size(); i-- > 0;) {
      const auto& values = params.param(kept[i]).values();
      config[kept[i]] = values[index % values.size()];
      index /= values.size();
    }
  };

  auto& pool = common::ThreadPool::global();
  std::vector<std::uint64_t> partial(pool.size(), 0);
  pool.parallel_for_chunked(
      0, static_cast<std::size_t>(total),
      [&](std::size_t lo, std::size_t hi, std::size_t worker) {
        core::Config config;
        std::uint64_t count = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          decode(i, config);
          if (space.constraints().satisfied(config)) ++count;
        }
        partial[worker] = count;
      });
  std::uint64_t count = 0;
  for (const auto c : partial) count += c;
  return count;
}

}  // namespace

SpaceStats space_stats(const core::Benchmark& benchmark,
                       const std::vector<ImportanceReport>& reports,
                       const SpaceStatsOptions& options) {
  BAT_EXPECTS(reports.size() == benchmark.device_count());
  const auto& space = benchmark.space();
  const auto& params = space.params();

  SpaceStats stats;
  stats.benchmark = benchmark.name();
  stats.cardinality = space.cardinality();
  stats.constrained = space.count_constrained();

  // Valid (per-device) only for exhaustively enumerable spaces.
  if (stats.cardinality <= options.exhaustive_limit) {
    std::uint64_t vmin = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t vmax = 0;
    for (core::DeviceIndex d = 0; d < benchmark.device_count(); ++d) {
      const auto ds = core::Runner::run_exhaustive(benchmark, d);
      const std::uint64_t valid = ds.num_valid();
      vmin = std::min(vmin, valid);
      vmax = std::max(vmax, valid);
    }
    stats.valid_min = vmin;
    stats.valid_max = vmax;
  }

  // Reduced: parameters important (PFI >= threshold) on ANY device.
  std::set<std::size_t> important;
  core::Config pinned;  // best config of device 0 pins dropped params
  for (const auto& report : reports) {
    BAT_EXPECTS(report.importance.size() == params.num_params());
    for (std::size_t p = 0; p < report.importance.size(); ++p) {
      if (report.importance[p] >= options.pfi_threshold) important.insert(p);
    }
  }
  std::vector<std::size_t> kept(important.begin(), important.end());
  stats.reduced = 1;
  for (const auto p : kept) {
    stats.reduced *= params.param(p).cardinality();
    stats.reduced_params.push_back(params.param(p).name());
  }

  // Reduce-Constrained: constraints re-applied on the projected subspace,
  // with the non-reduced parameters pinned to the best-known values.
  {
    common::Rng rng(options.seed);
    const auto ds = core::Runner::run_default(benchmark, 0, options.seed,
                                              options.samples,
                                              options.exhaustive_limit);
    pinned = ds.config(ds.best_row());
  }
  stats.reduce_constrained =
      kept.empty() ? (space.constraints().satisfied(pinned) ? 1 : 0)
                   : count_reduce_constrained(space, kept, pinned);
  return stats;
}

}  // namespace bat::analysis
