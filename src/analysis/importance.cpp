#include "analysis/importance.hpp"

#include "common/contracts.hpp"
#include "ml/matrix.hpp"

namespace bat::analysis {

std::vector<std::size_t> ImportanceReport::important_params(
    double threshold) const {
  std::vector<std::size_t> out;
  for (std::size_t p = 0; p < importance.size(); ++p) {
    if (importance[p] >= threshold) out.push_back(p);
  }
  return out;
}

ImportanceReport feature_importance(const core::Dataset& ds,
                                    const ImportanceOptions& options) {
  ImportanceReport report;
  report.benchmark = ds.benchmark_name();
  report.device = ds.device_name();
  report.parameter_names = ds.param_names();

  const auto features = ds.feature_matrix();
  const auto targets = ds.target_vector();
  BAT_EXPECTS(features.size() == targets.size());
  BAT_EXPECTS(features.size() >= 20);

  const auto x = ml::Matrix::from_rows(features);
  const auto split =
      ml::train_test_split(x, targets, options.test_fraction, options.seed);

  ml::GbdtRegressor model(options.gbdt);
  model.fit(split.x_train, split.y_train);

  const auto predictions = model.predict_all(split.x_test);
  report.r2 = ml::r2_score(split.y_test, predictions);

  const auto pfi = ml::permutation_importance(model, split.x_test,
                                              split.y_test, options.pfi);
  report.importance = pfi.importance;
  report.importance_sum = pfi.total();
  return report;
}

}  // namespace bat::analysis
