#include "analysis/distribution.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/statistics.hpp"

namespace bat::analysis {

DistributionSeries distribution_series(const core::Dataset& ds,
                                       std::size_t bins) {
  BAT_EXPECTS(bins >= 2);
  DistributionSeries out;
  out.benchmark = ds.benchmark_name();
  out.device = ds.device_name();

  auto times = ds.valid_times();
  BAT_EXPECTS(!times.empty());
  std::sort(times.begin(), times.end());
  out.best_time = times.front();
  out.worst_time = times.back();
  out.median_time = common::quantile_sorted(times, 0.5);

  out.speedup_over_median.reserve(times.size());
  for (const double t : times) {
    out.speedup_over_median.push_back(out.median_time / t);
  }
  std::sort(out.speedup_over_median.begin(), out.speedup_over_median.end());

  // Log-spaced bins from the worst to the best speedup (the distribution
  // spans orders of magnitude; Fig 1 uses a log-like axis).
  const double lo = std::log(out.speedup_over_median.front());
  const double hi = std::log(out.speedup_over_median.back());
  const double span = std::max(1e-12, hi - lo);
  common::Histogram hist(lo, lo + span, bins);
  for (const double s : out.speedup_over_median) hist.add(std::log(s));

  out.bin_centers.reserve(bins);
  const auto densities = hist.densities();
  for (std::size_t b = 0; b < bins; ++b) {
    out.bin_centers.push_back(std::exp(hist.bin_center(b)));
  }
  out.densities = densities;
  return out;
}

}  // namespace bat::analysis
