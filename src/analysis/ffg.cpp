#include "analysis/ffg.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"
#include "core/compiled_space.hpp"

namespace bat::analysis {

namespace {

constexpr std::uint32_t kNoNode = std::numeric_limits<std::uint32_t>::max();

}  // namespace

FitnessFlowGraph::FitnessFlowGraph(const core::SearchSpace& space,
                                   const core::Dataset& ds) {
  const auto& compiled = space.compiled();

  // Nodes: the valid rows, in dataset order.
  std::vector<core::ConfigIndex> index_of_node;
  index_of_node.reserve(ds.size());
  for (std::size_t r = 0; r < ds.size(); ++r) {
    if (!ds.row_ok(r)) continue;
    index_of_node.push_back(ds.config_index(r));
    times_.push_back(ds.time_ms(r));
  }
  BAT_EXPECTS(!times_.empty());
  const std::size_t n = times_.size();

  // Index-native build: ConfigIndex -> valid-ordinal (rank) -> node id
  // via one flat array. A dataset row outside the compiled valid set
  // (foreign or stale CSV) disables ordinal mode; such datasets take the
  // tolerant hash-keyed path below, like ReplayBackend.
  bool ordinal_mode = compiled.has_valid_set();
  std::vector<std::uint32_t> node_of_ordinal;
  if (ordinal_mode) {
    node_of_ordinal.assign(static_cast<std::size_t>(compiled.num_valid()),
                           kNoNode);
    for (std::size_t node = 0; node < n; ++node) {
      const auto ordinal = compiled.rank(index_of_node[node]);
      if (!ordinal) {
        ordinal_mode = false;
        break;
      }
      node_of_ordinal[static_cast<std::size_t>(*ordinal)] =
          static_cast<std::uint32_t>(node);
    }
  }

  if (ordinal_mode) {
    // One parallel pass emits edges into per-worker buffers whose
    // concatenation is already in node order (chunks are contiguous
    // ascending node ranges).
    auto& pool = common::ThreadPool::global();
    std::vector<std::size_t> degree(n, 0);
    std::vector<std::vector<std::uint32_t>> worker_edges(pool.size());
    pool.parallel_for_chunked(
        0, n, [&](std::size_t lo, std::size_t hi, std::size_t worker) {
          core::NeighborScratch scratch;
          auto& out = worker_edges[worker];
          for (std::size_t node = lo; node < hi; ++node) {
            const double time = times_[node];
            std::size_t emitted = 0;
            compiled.for_each_neighbor_index(
                index_of_node[node], scratch, [&](core::ConfigIndex nidx) {
                  const auto ordinal = compiled.rank(nidx);
                  if (!ordinal) return;  // invalid: not part of the graph
                  const auto v =
                      node_of_ordinal[static_cast<std::size_t>(*ordinal)];
                  if (v == kNoNode) return;  // unmeasured/failed row
                  if (times_[v] < time) {
                    out.push_back(v);
                    ++emitted;
                  }
                });
            degree[node] = emitted;
          }
        });

    graph_.offsets.assign(n + 1, 0);
    for (std::size_t node = 0; node < n; ++node) {
      graph_.offsets[node + 1] = graph_.offsets[node] + degree[node];
    }
    graph_.edges.reserve(graph_.offsets[n]);
    for (const auto& chunk : worker_edges) {
      graph_.edges.insert(graph_.edges.end(), chunk.begin(), chunk.end());
    }
    BAT_EXPECTS(graph_.edges.size() == graph_.offsets[n]);
    return;
  }

  // Streamed (huge) space: hash-keyed fallback.
  std::unordered_map<core::ConfigIndex, std::uint32_t> node_of;
  node_of.reserve(n);
  for (std::size_t node = 0; node < n; ++node) {
    node_of.emplace(index_of_node[node], static_cast<std::uint32_t>(node));
  }
  std::vector<std::vector<std::uint32_t>> adjacency(n);
  common::parallel_for_chunked(
      0, n, [&](std::size_t lo, std::size_t hi, std::size_t) {
        core::NeighborScratch scratch;
        for (std::size_t node = lo; node < hi; ++node) {
          auto& out = adjacency[node];
          compiled.for_each_neighbor_index(
              index_of_node[node], scratch, [&](core::ConfigIndex nidx) {
                const auto it = node_of.find(nidx);
                if (it == node_of.end()) return;
                if (times_[it->second] < times_[node]) {
                  out.push_back(it->second);
                }
              });
        }
      });
  graph_ = CsrGraph::from_adjacency(adjacency);
}

std::vector<std::uint32_t> FitnessFlowGraph::local_minima() const {
  std::vector<std::uint32_t> minima;
  for (std::size_t n = 0; n < num_nodes(); ++n) {
    if (graph_.out_degree(n) == 0) {
      minima.push_back(static_cast<std::uint32_t>(n));
    }
  }
  return minima;
}

double FitnessFlowGraph::best_time() const {
  return *std::min_element(times_.begin(), times_.end());
}

}  // namespace bat::analysis
