#include "analysis/ffg.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"

namespace bat::analysis {

FitnessFlowGraph::FitnessFlowGraph(const core::SearchSpace& space,
                                   const core::Dataset& ds) {
  // Map ConfigIndex -> node id over valid rows.
  std::unordered_map<core::ConfigIndex, std::uint32_t> node_of;
  std::vector<core::ConfigIndex> index_of_node;
  node_of.reserve(ds.size());
  for (std::size_t r = 0; r < ds.size(); ++r) {
    if (!ds.row_ok(r)) continue;
    const auto id = static_cast<std::uint32_t>(index_of_node.size());
    node_of.emplace(ds.config_index(r), id);
    index_of_node.push_back(ds.config_index(r));
    times_.push_back(ds.time_ms(r));
  }
  BAT_EXPECTS(!times_.empty());

  edges_.resize(times_.size());
  const auto& params = space.params();
  common::parallel_for_chunked(
      0, times_.size(), [&](std::size_t lo, std::size_t hi, std::size_t) {
        core::Config config;
        for (std::size_t node = lo; node < hi; ++node) {
          params.decode_into(index_of_node[node], config);
          auto& out = edges_[node];
          params.for_each_neighbor(config, [&](const core::Config& n) {
            // Invalid/unmeasured neighbors are not part of the graph.
            const auto it = node_of.find(params.index_of_config(n));
            if (it == node_of.end()) return;
            if (times_[it->second] < times_[node]) {
              out.push_back(it->second);
            }
          });
        }
      });
}

std::vector<std::uint32_t> FitnessFlowGraph::local_minima() const {
  std::vector<std::uint32_t> minima;
  for (std::size_t n = 0; n < edges_.size(); ++n) {
    if (edges_[n].empty()) minima.push_back(static_cast<std::uint32_t>(n));
  }
  return minima;
}

double FitnessFlowGraph::best_time() const {
  return *std::min_element(times_.begin(), times_.end());
}

}  // namespace bat::analysis
