// Fitness-flow graph (Schoonhoven et al., paper §II-B2).
//
// Nodes are all valid configurations of a dataset; a directed edge goes
// from a configuration to each Hamming-1 neighbor with strictly lower
// fitness (runtime). A random walk on this graph mimics randomized
// first-improvement local search. Local minima are the sink nodes.
//
// The graph is built directly in flat CSR arrays: node lookup goes
// through the compiled valid-index set (ConfigIndex -> valid-ordinal
// rank, then an array load) and neighbor enumeration is pure index
// arithmetic — one parallel pass over the nodes, no hash probes and no
// per-node edge vectors. Datasets over spaces too large to materialize
// fall back to a hash-keyed build.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/csr_graph.hpp"
#include "core/dataset.hpp"
#include "core/search_space.hpp"

namespace bat::analysis {

class FitnessFlowGraph {
 public:
  /// Builds the FFG over the valid rows of an exhaustive dataset for the
  /// given space. The dataset must cover every valid configuration
  /// (exhaustive benchmarks only — the paper skips the large spaces too).
  FitnessFlowGraph(const core::SearchSpace& space, const core::Dataset& ds);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return times_.size();
  }
  /// The downhill edges in flat CSR form (what pagerank consumes).
  [[nodiscard]] const CsrGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] std::span<const std::uint32_t> out_edges_of(
      std::size_t node) const {
    return graph_.out(node);
  }
  [[nodiscard]] double time_of(std::size_t node) const {
    return times_[node];
  }
  /// Nodes with no outgoing edge (local minima).
  [[nodiscard]] std::vector<std::uint32_t> local_minima() const;

  /// Minimum (best) runtime over all nodes.
  [[nodiscard]] double best_time() const;

 private:
  std::vector<double> times_;
  CsrGraph graph_;  // node -> strictly lower neighbors
};

}  // namespace bat::analysis
