// Fitness-flow graph (Schoonhoven et al., paper §II-B2).
//
// Nodes are all valid configurations of a dataset; a directed edge goes
// from a configuration to each Hamming-1 neighbor with strictly lower
// fitness (runtime). A random walk on this graph mimics randomized
// first-improvement local search. Local minima are the sink nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dataset.hpp"
#include "core/search_space.hpp"

namespace bat::analysis {

class FitnessFlowGraph {
 public:
  /// Builds the FFG over the valid rows of an exhaustive dataset for the
  /// given space. The dataset must cover every valid configuration
  /// (exhaustive benchmarks only — the paper skips the large spaces too).
  FitnessFlowGraph(const core::SearchSpace& space, const core::Dataset& ds);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return times_.size();
  }
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& out_edges()
      const noexcept {
    return edges_;
  }
  [[nodiscard]] double time_of(std::size_t node) const {
    return times_[node];
  }
  /// Nodes with no outgoing edge (local minima).
  [[nodiscard]] std::vector<std::uint32_t> local_minima() const;

  /// Minimum (best) runtime over all nodes.
  [[nodiscard]] double best_time() const;

 private:
  std::vector<double> times_;
  std::vector<std::vector<std::uint32_t>> edges_;  // node -> lower neighbors
};

}  // namespace bat::analysis
