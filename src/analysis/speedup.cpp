#include "analysis/speedup.hpp"

namespace bat::analysis {

SpeedupEntry max_speedup_over_median(const core::Dataset& ds) {
  SpeedupEntry out;
  out.benchmark = ds.benchmark_name();
  out.device = ds.device_name();
  out.best_time = ds.best_time();
  out.median_time = ds.median_time();
  out.speedup = out.median_time / out.best_time;
  return out;
}

}  // namespace bat::analysis
