// Fig 5: performance portability matrix.
//
// Entry (from, to) = relative performance on device `to` of the
// configuration that is optimal on device `from`:
//   best_time(to) / time(optimal_config_of_from, on to)
// so the diagonal is 1.0 and low off-diagonals mean poor transfer.
#pragma once

#include <string>
#include <vector>

#include "core/benchmark.hpp"
#include "core/dataset.hpp"

namespace bat::analysis {

struct PortabilityMatrix {
  std::string benchmark;
  std::vector<std::string> devices;
  // matrix[from][to] in [0, 1]; 0 when the transferred configuration is
  // invalid on the target device.
  std::vector<std::vector<double>> relative;

  [[nodiscard]] double worst_transfer() const;
  [[nodiscard]] double best_off_diagonal() const;
};

/// `datasets[d]` must be the evaluation archive for device d of
/// `benchmark` (exhaustive for faithful optima, as in the paper).
[[nodiscard]] PortabilityMatrix portability_matrix(
    const core::Benchmark& benchmark,
    const std::vector<core::Dataset>& datasets);

}  // namespace bat::analysis
