// Fig 3: proportion-of-centrality — the search-difficulty metric of
// Schoonhoven et al.
//
// For a proportion p, take the set of local minima with fitness below
// (1 + p) * f_opt ("suitably good" minima for minimization). The metric
// is the share of PageRank mass (on the FFG) those minima hold relative
// to all local minima: high values mean local search tends to arrive at
// good minima, i.e. an easy space.
#pragma once

#include <vector>

#include "analysis/ffg.hpp"
#include "analysis/pagerank.hpp"

namespace bat::analysis {

struct CentralityCurve {
  std::vector<double> proportions;  // the p values
  std::vector<double> centrality;   // metric per p, in [0, 1]
  std::size_t num_minima = 0;
  std::size_t num_nodes = 0;
};

/// Computes the proportion-of-centrality curve for the given p values.
[[nodiscard]] CentralityCurve proportion_of_centrality(
    const FitnessFlowGraph& graph, const std::vector<double>& proportions,
    const PageRankOptions& pr_options = {});

}  // namespace bat::analysis
