#include "analysis/convergence.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "common/thread_pool.hpp"

namespace bat::analysis {

ConvergenceCurve random_search_convergence(const core::Dataset& ds,
                                           std::size_t max_evals,
                                           std::size_t repeats,
                                           std::uint64_t seed) {
  BAT_EXPECTS(max_evals >= 1);
  BAT_EXPECTS(repeats >= 1);
  const auto times = ds.valid_times();
  BAT_EXPECTS(!times.empty());
  const double best = *std::min_element(times.begin(), times.end());
  const std::size_t evals = std::min(max_evals, times.size());

  // relative_perf[r][k]: relative perf of repeat r after k+1 evals.
  std::vector<std::vector<double>> relative(repeats,
                                            std::vector<double>(evals));
  common::parallel_for(0, repeats, [&](std::size_t r) {
    common::Rng rng(common::hash_combine(seed, r));
    // Sampling without replacement mimics a tuner that never re-measures.
    const auto picks = rng.sample_indices(times.size(), evals);
    std::vector<double> sampled(evals);
    for (std::size_t k = 0; k < evals; ++k) sampled[k] = times[picks[k]];
    const auto best_so_far = common::running_minimum(sampled);
    for (std::size_t k = 0; k < evals; ++k) {
      relative[r][k] = best / best_so_far[k];
    }
  });

  ConvergenceCurve out;
  out.benchmark = ds.benchmark_name();
  out.device = ds.device_name();
  out.median_relative_perf.resize(evals);
  std::vector<double> column(repeats);
  for (std::size_t k = 0; k < evals; ++k) {
    for (std::size_t r = 0; r < repeats; ++r) column[r] = relative[r][k];
    out.median_relative_perf[k] = common::median(column);
  }

  out.evals_to_90 = evals + 1;
  for (std::size_t k = 0; k < evals; ++k) {
    if (out.median_relative_perf[k] >= 0.90) {
      out.evals_to_90 = k + 1;
      break;
    }
  }
  return out;
}

}  // namespace bat::analysis
