// PageRank by power iteration, used to weigh the reachability of local
// minima in the fitness-flow graph (paper §II-B2).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/csr_graph.hpp"

namespace bat::analysis {

struct PageRankOptions {
  double damping = 0.85;
  double tolerance = 1e-10;
  std::size_t max_iterations = 200;
};

/// Computes PageRank over a directed graph in flat CSR form (the native
/// layout of the fitness-flow graph). Dangling nodes (sinks — the FFG's
/// local minima) distribute their mass uniformly, the standard
/// correction. Returns a probability vector (sums to 1).
[[nodiscard]] std::vector<double> pagerank(const CsrGraph& graph,
                                           const PageRankOptions& options = {});

/// Adjacency-list convenience overload (converts to CSR once).
[[nodiscard]] std::vector<double> pagerank(
    const std::vector<std::vector<std::uint32_t>>& out_edges,
    const PageRankOptions& options = {});

}  // namespace bat::analysis
