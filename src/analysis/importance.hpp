// Fig 6: permutation feature importance of the tunable parameters, via a
// GBDT fit of (configuration -> runtime) per (benchmark, device); also
// reports the model's R^2 like the paper (>= 0.992 everywhere except
// Convolution at 0.9268-0.9361).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "ml/gbdt.hpp"
#include "ml/pfi.hpp"

namespace bat::analysis {

struct ImportanceReport {
  std::string benchmark;
  std::string device;
  std::vector<std::string> parameter_names;
  std::vector<double> importance;   // PFI per parameter (R^2 drop)
  double r2 = 0.0;                  // held-out R^2 of the GBDT
  double importance_sum = 0.0;      // > 1 signals parameter interactions

  /// Parameters with importance >= threshold on this device.
  [[nodiscard]] std::vector<std::size_t> important_params(
      double threshold = 0.05) const;
};

struct ImportanceOptions {
  ml::GbdtParams gbdt;
  double test_fraction = 0.25;
  std::uint64_t seed = 0x1396ULL;
  ml::PfiOptions pfi;
};

[[nodiscard]] ImportanceReport feature_importance(
    const core::Dataset& ds, const ImportanceOptions& options = {});

}  // namespace bat::analysis
