#include "analysis/pagerank.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace bat::analysis {

std::vector<double> pagerank(const CsrGraph& graph,
                             const PageRankOptions& options) {
  const std::size_t n = graph.num_nodes();
  BAT_EXPECTS(n > 0);
  BAT_EXPECTS(options.damping > 0.0 && options.damping < 1.0);

  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> rank(n, uniform);
  std::vector<double> next(n, 0.0);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double dangling_mass = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t u = 0; u < n; ++u) {
      const std::size_t degree = graph.out_degree(u);
      if (degree == 0) {
        dangling_mass += rank[u];
        continue;
      }
      const double share = rank[u] / static_cast<double>(degree);
      for (const auto v : graph.out(u)) next[v] += share;
    }
    double delta = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      const double value = (1.0 - options.damping) * uniform +
                           options.damping *
                               (next[v] + dangling_mass * uniform);
      delta += std::abs(value - rank[v]);
      rank[v] = value;
    }
    if (delta < options.tolerance) break;
  }
  return rank;
}

std::vector<double> pagerank(
    const std::vector<std::vector<std::uint32_t>>& out_edges,
    const PageRankOptions& options) {
  return pagerank(CsrGraph::from_adjacency(out_edges), options);
}

}  // namespace bat::analysis
