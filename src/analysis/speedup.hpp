// Fig 4: max speedup of the best configuration over the median one.
#pragma once

#include <string>

#include "core/dataset.hpp"

namespace bat::analysis {

struct SpeedupEntry {
  std::string benchmark;
  std::string device;
  double best_time = 0.0;
  double median_time = 0.0;
  double speedup = 0.0;  // median / best
};

[[nodiscard]] SpeedupEntry max_speedup_over_median(const core::Dataset& ds);

}  // namespace bat::analysis
