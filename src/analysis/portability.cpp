#include "analysis/portability.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace bat::analysis {

double PortabilityMatrix::worst_transfer() const {
  double worst = 1.0;
  for (std::size_t i = 0; i < relative.size(); ++i) {
    for (std::size_t j = 0; j < relative[i].size(); ++j) {
      if (i != j) worst = std::min(worst, relative[i][j]);
    }
  }
  return worst;
}

double PortabilityMatrix::best_off_diagonal() const {
  double best = 0.0;
  for (std::size_t i = 0; i < relative.size(); ++i) {
    for (std::size_t j = 0; j < relative[i].size(); ++j) {
      if (i != j) best = std::max(best, relative[i][j]);
    }
  }
  return best;
}

PortabilityMatrix portability_matrix(
    const core::Benchmark& benchmark,
    const std::vector<core::Dataset>& datasets) {
  BAT_EXPECTS(datasets.size() == benchmark.device_count());
  PortabilityMatrix out;
  out.benchmark = benchmark.name();
  const std::size_t n = datasets.size();
  out.devices.reserve(n);
  for (std::size_t d = 0; d < n; ++d) {
    out.devices.push_back(benchmark.device_name(d));
  }

  out.relative.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t from = 0; from < n; ++from) {
    const core::Config optimal = datasets[from].config(
        datasets[from].best_row());
    for (std::size_t to = 0; to < n; ++to) {
      const auto measurement = benchmark.evaluate(optimal, to);
      if (!measurement.ok()) {
        out.relative[from][to] = 0.0;  // launch fails on the target device
        continue;
      }
      out.relative[from][to] =
          datasets[to].best_time() / measurement.time_ms;
    }
  }
  return out;
}

}  // namespace bat::analysis
