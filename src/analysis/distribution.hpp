// Fig 1: performance distribution of configurations, centered on the
// median-performing configuration and extending from worst to best.
//
// We express each configuration's performance relative to the median
// (median/time: >1 is faster than median) and build a histogram whose
// support runs from the worst to the best configuration.
#pragma once

#include <vector>

#include "core/dataset.hpp"

namespace bat::analysis {

struct DistributionSeries {
  std::string benchmark;
  std::string device;
  // Speedup-over-median per valid configuration, sorted ascending.
  std::vector<double> speedup_over_median;
  // Histogram over log-spaced bins of the above.
  std::vector<double> bin_centers;
  std::vector<double> densities;
  double median_time = 0.0;
  double best_time = 0.0;
  double worst_time = 0.0;
};

/// Builds the Fig 1 series for one dataset. `bins` controls histogram
/// resolution.
[[nodiscard]] DistributionSeries distribution_series(const core::Dataset& ds,
                                                     std::size_t bins = 40);

}  // namespace bat::analysis
