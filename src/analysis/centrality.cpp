#include "analysis/centrality.hpp"

#include "common/contracts.hpp"

namespace bat::analysis {

CentralityCurve proportion_of_centrality(const FitnessFlowGraph& graph,
                                         const std::vector<double>& proportions,
                                         const PageRankOptions& pr_options) {
  BAT_EXPECTS(!proportions.empty());
  CentralityCurve out;
  out.proportions = proportions;
  out.num_nodes = graph.num_nodes();

  // PageRank over the *reversed* edge direction is not needed: the FFG
  // already points "downhill", so walks accumulate at minima; PageRank on
  // the FFG as-is concentrates mass at sinks, which is exactly the
  // arrival likelihood the metric wants. The FFG's CSR arrays feed the
  // power iteration directly.
  const auto rank = pagerank(graph.graph(), pr_options);
  const auto minima = graph.local_minima();
  out.num_minima = minima.size();
  BAT_EXPECTS(!minima.empty());

  double total_minima_mass = 0.0;
  for (const auto m : minima) total_minima_mass += rank[m];

  const double best = graph.best_time();
  out.centrality.reserve(proportions.size());
  for (const double p : proportions) {
    const double threshold = (1.0 + p) * best;
    double good_mass = 0.0;
    for (const auto m : minima) {
      if (graph.time_of(m) <= threshold) good_mass += rank[m];
    }
    out.centrality.push_back(
        total_minima_mass > 0.0 ? good_mass / total_minima_mass : 0.0);
  }
  return out;
}

}  // namespace bat::analysis
