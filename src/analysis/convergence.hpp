// Fig 2: convergence towards the optimum under random search.
//
// As in the paper: sample uniformly (without replacement) from the
// archived dataset, track the best-so-far after each function
// evaluation, repeat `repeats` times, and report the per-evaluation
// median of relative performance (best_time / best_so_far, so 1.0 means
// the optimum was found).
#pragma once

#include <cstdint>
#include <vector>

#include "core/dataset.hpp"

namespace bat::analysis {

struct ConvergenceCurve {
  std::string benchmark;
  std::string device;
  /// median over repeats of relative performance after k+1 evaluations.
  std::vector<double> median_relative_perf;
  /// evaluations needed (median) to reach 0.90 relative performance;
  /// equal to max_evals + 1 when never reached.
  std::size_t evals_to_90 = 0;
};

[[nodiscard]] ConvergenceCurve random_search_convergence(
    const core::Dataset& ds, std::size_t max_evals, std::size_t repeats = 100,
    std::uint64_t seed = 0xC0117ULL);

}  // namespace bat::analysis
