// Flat CSR (compressed sparse row) adjacency storage for the analysis
// graphs. One offsets array + one edge array replaces a
// vector<vector<...>> — edge iteration is a contiguous scan, and the
// fitness-flow graph builds straight into this form from the compiled
// valid-index set.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bat::analysis {

struct CsrGraph {
  std::vector<std::size_t> offsets;    // size num_nodes()+1; offsets[0]==0
  std::vector<std::uint32_t> edges;    // concatenated out-edge lists

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edges.size();
  }
  [[nodiscard]] std::size_t out_degree(std::size_t u) const {
    return offsets[u + 1] - offsets[u];
  }
  [[nodiscard]] std::span<const std::uint32_t> out(std::size_t u) const {
    return {edges.data() + offsets[u], offsets[u + 1] - offsets[u]};
  }

  [[nodiscard]] static CsrGraph from_adjacency(
      const std::vector<std::vector<std::uint32_t>>& adjacency) {
    CsrGraph g;
    g.offsets.reserve(adjacency.size() + 1);
    g.offsets.push_back(0);
    std::size_t total = 0;
    for (const auto& out : adjacency) total += out.size();
    g.edges.reserve(total);
    for (const auto& out : adjacency) {
      g.edges.insert(g.edges.end(), out.begin(), out.end());
      g.offsets.push_back(g.edges.size());
    }
    return g;
  }
};

}  // namespace bat::analysis
