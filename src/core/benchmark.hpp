// The shared problem interface of BAT (paper §I, §IV).
//
// A Benchmark bundles a tunable kernel: its search space (parameters +
// constraints, Tables I-VII) and an evaluation function producing a
// Measurement per (configuration, device). Devices are exposed as an
// ordered list of names so the analysis layer can iterate architectures
// without depending on the simulator types.
//
// Ownership / thread-safety: kernels::make returns a uniquely-owned
// Benchmark; implementations are immutable after construction and
// evaluate() is const and deterministic, so one instance may serve
// concurrent callers (LiveBackend batches fan out over the thread pool,
// and service::TuningService shares one Benchmark per workload across
// sessions). space() returns a reference the Benchmark owns — keep the
// Benchmark alive as long as anything holds its space or a backend over
// it.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/measurement.hpp"
#include "core/search_space.hpp"
#include "core/types.hpp"

namespace bat::core {

using DeviceIndex = std::size_t;

class Benchmark {
 public:
  virtual ~Benchmark() = default;

  /// Short identifier ("gemm", "hotspot", ...).
  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Parameters + static constraints.
  [[nodiscard]] virtual const SearchSpace& space() const = 0;

  /// Devices this benchmark can run on (the paper's four GPUs).
  [[nodiscard]] virtual std::size_t device_count() const = 0;
  [[nodiscard]] virtual const std::string& device_name(DeviceIndex d) const = 0;

  /// Evaluates one configuration on one device. Must be deterministic:
  /// identical (config, device) always yields the identical Measurement.
  [[nodiscard]] virtual Measurement evaluate(const Config& config,
                                             DeviceIndex device) const = 0;

  /// Index of a device by name; throws std::out_of_range if unknown.
  [[nodiscard]] DeviceIndex device_index(const std::string& name) const;
};

/// Registry mapping benchmark names to factories; the kernels module
/// registers all seven paper benchmarks at static-init time via
/// RegisterBenchmark, and harnesses look them up by name.
class BenchmarkRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Benchmark>()>;

  static BenchmarkRegistry& instance();

  void register_factory(const std::string& name, Factory factory);
  [[nodiscard]] std::unique_ptr<Benchmark> create(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] bool contains(const std::string& name) const;

 private:
  std::map<std::string, Factory> factories_;
};

struct RegisterBenchmark {
  RegisterBenchmark(const std::string& name, BenchmarkRegistry::Factory f) {
    BenchmarkRegistry::instance().register_factory(name, std::move(f));
  }
};

}  // namespace bat::core
