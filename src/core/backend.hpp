// Pluggable evaluation backends: where measurements come from.
//
// EvaluationBackend is the seam between "what to evaluate" (tuners,
// runners, analyses — all speak ConfigIndex batches) and "how it is
// evaluated". Three implementations cover the paper's modes:
//
//   * LiveBackend    — calls Benchmark::evaluate, fanning batches out over
//                      the shared ThreadPool (many independent simulated
//                      kernel launches per batch).
//   * ReplayBackend  — serves a precomputed Dataset: the paper's tabular-
//                      benchmark mode, making tuner comparisons free after
//                      one Runner sweep.
//   * CountingBackend— decorator adding the tuner-side bookkeeping: a
//                      distinct-evaluation budget, a memoization cache and
//                      the chronological trace (cache hits are free).
//
// All backends are deterministic: identical index batches always yield
// identical measurements, so live and replay paths are interchangeable.
//
// Ownership / thread-safety: backends borrow the Benchmark / SearchSpace
// / Dataset they are built over (the caller keeps those alive).
// LiveBackend and ReplayBackend are stateless under evaluate_batch and
// may be shared by concurrent sessions; CountingBackend is per-session
// state (budget, cache, trace) and must only be driven by one thread at
// a time. Cross-session sharing and cancellation are opt-in via
// EvaluationHooks (core/shared_cache.hpp), threaded in by the service
// layer.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/benchmark.hpp"
#include "core/compiled_space.hpp"
#include "core/dataset.hpp"
#include "core/measurement.hpp"
#include "core/search_space.hpp"
#include "core/shared_cache.hpp"
#include "core/trace.hpp"

namespace bat::core {

/// Diagnostic for replay backends falling out of valid-ordinal mode:
/// distinguishes a *stale schema* — the dataset's parameter names/order
/// disagree with the space it is replayed against, so its config indices
/// decode differently and ranks collide or miss — from a genuinely
/// foreign dataset (rows outside the valid set with a matching schema).
/// Returns "" when the schemas agree, otherwise a human-readable hint
/// naming the first disagreement.
[[nodiscard]] std::string replay_schema_hint(
    const std::vector<std::string>& space_params,
    const std::vector<std::string>& dataset_params);

class EvaluationBackend {
 public:
  virtual ~EvaluationBackend() = default;

  /// Human-readable identifier ("live:gemm@RTX_3090", "replay:...").
  [[nodiscard]] virtual const std::string& name() const = 0;

  /// The search space configurations are drawn from (tuners use it for
  /// sampling, neighborhoods and index<->config mapping).
  [[nodiscard]] virtual const SearchSpace& space() const = 0;

  /// Evaluates a batch of configurations identified by ConfigIndex.
  /// Results align with `indices` (result[i] belongs to indices[i]).
  /// Implementations may evaluate in parallel but must be deterministic.
  [[nodiscard]] virtual std::vector<Measurement> evaluate_batch(
      std::span<const ConfigIndex> indices) = 0;

  /// Single-evaluation convenience on top of evaluate_batch.
  [[nodiscard]] Measurement evaluate(ConfigIndex index);
};

/// Live evaluation through a (benchmark, device) pair. Batches of at
/// least `parallel_threshold` fan out over ThreadPool::global(); smaller
/// batches stay on the calling thread (a single evaluation is far cheaper
/// than a pool handoff).
class LiveBackend final : public EvaluationBackend {
 public:
  LiveBackend(const Benchmark& benchmark, DeviceIndex device,
              std::size_t parallel_threshold = 8);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const SearchSpace& space() const override {
    return benchmark_->space();
  }
  [[nodiscard]] std::vector<Measurement> evaluate_batch(
      std::span<const ConfigIndex> indices) override;

  [[nodiscard]] const Benchmark& benchmark() const noexcept {
    return *benchmark_;
  }
  [[nodiscard]] DeviceIndex device() const noexcept { return device_; }

 private:
  const Benchmark* benchmark_;
  DeviceIndex device_;
  std::size_t parallel_threshold_;
  std::string name_;
};

/// Tabular replay of a precomputed Dataset. Requesting an index the
/// dataset does not cover throws std::out_of_range — replay is only
/// sound when the dataset covers every configuration a client may ask
/// for (e.g. an exhaustive Runner sweep).
///
/// Storage is batched by valid-ordinal when the compiled space has a
/// materialized valid set: a lookup is one rank probe plus an array
/// index instead of a hash probe. Datasets over streamed (huge) spaces,
/// or containing rows outside the valid set, fall back to a hash table.
class ReplayBackend final : public EvaluationBackend {
 public:
  /// `space` must be the search space the dataset was built from (and
  /// must outlive this backend); the dataset rows are keyed by their
  /// ConfigIndex within that space.
  ReplayBackend(const SearchSpace& space, const Dataset& dataset);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const SearchSpace& space() const override { return *space_; }
  [[nodiscard]] std::vector<Measurement> evaluate_batch(
      std::span<const ConfigIndex> indices) override;

  [[nodiscard]] bool contains(ConfigIndex index) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  const SearchSpace* space_;
  std::shared_ptr<const CompiledSpace> compiled_;  // kept alive with us
  bool ordinal_mode_ = false;
  std::vector<Measurement> by_ordinal_;     // valid-ordinal -> measurement
  std::vector<unsigned char> covered_;      // valid-ordinal covered by ds
  std::unordered_map<ConfigIndex, Measurement> table_;  // fallback
  std::size_t size_ = 0;
  std::string name_;
};

/// Decorator adding budget + cache + trace on top of any backend.
///
/// The budget counts *distinct* configurations (cache hits are free,
/// matching how tuners are usually charged). A batch whose cache misses
/// would overflow the remaining budget is truncated: the misses that
/// still fit are evaluated and recorded, then BudgetExhausted is thrown —
/// so the trace always ends exactly at the budget boundary, identical to
/// charging one evaluation at a time.
///
/// With EvaluationHooks: a set cancellation token makes every
/// evaluate_batch throw EvaluationCancelled up front, and a shared
/// cross-session cache is consulted for each budget-charged miss before
/// falling through to the inner backend (exactly-once evaluation across
/// sessions; this session's budget/trace accounting is unchanged).
class CountingBackend final : public EvaluationBackend {
 public:
  CountingBackend(EvaluationBackend& inner, std::size_t budget,
                  EvaluationHooks hooks = {});

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const SearchSpace& space() const override {
    return inner_->space();
  }
  [[nodiscard]] std::vector<Measurement> evaluate_batch(
      std::span<const ConfigIndex> indices) override;

  [[nodiscard]] std::size_t evaluations() const noexcept {
    return trace_.size();
  }
  [[nodiscard]] std::size_t budget() const noexcept { return budget_; }
  [[nodiscard]] bool exhausted() const noexcept {
    return trace_.size() >= budget_;
  }
  /// True once a set cancellation hook aborted an evaluate_batch (i.e.
  /// EvaluationCancelled was thrown): the run stopped *because* of the
  /// token, as opposed to ending naturally below budget.
  [[nodiscard]] bool cancelled() const noexcept { return cancelled_; }

  /// Chronological distinct-evaluation trace.
  [[nodiscard]] const std::vector<TraceEntry>& trace() const noexcept {
    return trace_;
  }

  [[nodiscard]] EvaluationBackend& inner() noexcept { return *inner_; }

 private:
  /// Resolves `misses` through the shared cross-session cache: claims
  /// every miss first (non-blocking), evaluates + publishes the claimed
  /// ones through the inner backend, then waits for the pending ones.
  /// Results align with `misses`.
  [[nodiscard]] std::vector<Measurement> resolve_through_shared_cache(
      const std::vector<ConfigIndex>& misses);

  EvaluationBackend* inner_;
  std::size_t budget_;
  EvaluationHooks hooks_;
  bool cancelled_ = false;
  std::unordered_map<ConfigIndex, Measurement> cache_;
  std::vector<TraceEntry> trace_;
  std::string name_;
};

}  // namespace bat::core
