#include "core/compiled_space.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "common/thread_pool.hpp"

namespace bat::core {

CompiledSpace::CompiledSpace(const ParamSpace& params,
                             const ConstraintSet& constraints)
    : CompiledSpace(params, constraints, Options{}) {}

CompiledSpace::CompiledSpace(const ParamSpace& params,
                             const ConstraintSet& constraints,
                             Options options)
    : constraints_(constraints.all()) {
  const std::size_t n = params.num_params();
  names_.reserve(n);
  values_.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    names_.push_back(params.param(p).name());
    values_.push_back(params.param(p).values());
  }
  strides_.assign(n, 1);
  cardinality_ = 1;
  for (std::size_t p = n; p-- > 0;) {
    strides_[p] = cardinality_;
    cardinality_ *= static_cast<ConfigIndex>(values_[p].size());
  }

  // Constraint plan: bind each constraint to the parameter positions it
  // declares; an empty declaration conservatively touches everything.
  touching_.assign(n, {});
  for (std::size_t c = 0; c < constraints_.size(); ++c) {
    const auto& reads = constraints_[c].reads();
    if (reads.empty()) {
      for (auto& t : touching_) t.push_back(static_cast<std::uint16_t>(c));
      continue;
    }
    std::vector<std::size_t> positions;
    positions.reserve(reads.size());
    for (const auto& name : reads) {
      const auto it = std::find(names_.begin(), names_.end(), name);
      if (it == names_.end()) {
        throw std::invalid_argument("constraint '" + constraints_[c].name() +
                                    "' reads unknown parameter '" + name +
                                    "'");
      }
      positions.push_back(static_cast<std::size_t>(it - names_.begin()));
    }
    // Dedupe: a repeated name must not double-count the constraint in
    // the per-parameter plan (failing_touching would overshoot).
    std::sort(positions.begin(), positions.end());
    positions.erase(std::unique(positions.begin(), positions.end()),
                    positions.end());
    for (const auto p : positions) {
      touching_[p].push_back(static_cast<std::uint16_t>(c));
    }
  }

  if (cardinality_ > 0 && cardinality_ <= options.materialize_limit) {
    materialize();
  }
}

void CompiledSpace::materialize() {
  const auto n = static_cast<std::size_t>(cardinality_);
  if (constraints_.empty()) {
    valid_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      valid_[i] = static_cast<ConfigIndex>(i);
    }
  } else {
    auto& pool = common::ThreadPool::global();
    std::vector<std::vector<ConfigIndex>> partial(pool.size());
    pool.parallel_for_chunked(
        0, n, [&](std::size_t lo, std::size_t hi, std::size_t worker) {
          Config scratch;
          auto& out = partial[worker];
          for (std::size_t i = lo; i < hi; ++i) {
            decode_into(static_cast<ConfigIndex>(i), scratch);
            if (satisfied(scratch)) out.push_back(static_cast<ConfigIndex>(i));
          }
        });
    std::size_t total = 0;
    for (const auto& p : partial) total += p.size();
    valid_.reserve(total);
    // Chunks are contiguous ascending ranges: concatenation stays sorted.
    for (const auto& p : partial) {
      valid_.insert(valid_.end(), p.begin(), p.end());
    }
  }

  // Bucket the sorted valid set so rank() probes one ~2-entry slice:
  // shrink buckets until there are at least half as many as valid
  // entries (capped well below cardinality to bound the offsets array).
  bucket_shift_ = 64;
  const std::uint64_t target =
      std::max<std::uint64_t>(1024, 2 * valid_.size());
  while (bucket_shift_ > 0 && (cardinality_ >> (bucket_shift_ - 1)) <= target) {
    --bucket_shift_;
  }
  const std::size_t buckets =
      static_cast<std::size_t>(((cardinality_ - 1) >> bucket_shift_) + 1);
  bucket_offsets_.assign(buckets + 1, 0);
  for (const auto idx : valid_) {
    ++bucket_offsets_[static_cast<std::size_t>(idx >> bucket_shift_) + 1];
  }
  for (std::size_t b = 1; b <= buckets; ++b) {
    bucket_offsets_[b] += bucket_offsets_[b - 1];
  }
  materialized_ = true;
}

void CompiledSpace::decode_digits(ConfigIndex index,
                                  std::vector<std::uint32_t>& digits) const {
  BAT_EXPECTS(index < cardinality_);
  digits.resize(values_.size());
  for (std::size_t p = 0; p < values_.size(); ++p) {
    digits[p] = static_cast<std::uint32_t>(
        (index / strides_[p]) % static_cast<ConfigIndex>(values_[p].size()));
  }
}

ConfigIndex CompiledSpace::index_of_digits(
    const std::vector<std::uint32_t>& digits) const {
  BAT_EXPECTS(digits.size() == values_.size());
  ConfigIndex index = 0;
  for (std::size_t p = 0; p < values_.size(); ++p) {
    BAT_EXPECTS(digits[p] < values_[p].size());
    index += static_cast<ConfigIndex>(digits[p]) * strides_[p];
  }
  return index;
}

void CompiledSpace::decode_into(ConfigIndex index, Config& out) const {
  BAT_EXPECTS(index < cardinality_);
  out.resize(values_.size());
  for (std::size_t p = 0; p < values_.size(); ++p) {
    const auto digit = static_cast<std::size_t>(
        (index / strides_[p]) % static_cast<ConfigIndex>(values_[p].size()));
    out[p] = values_[p][digit];
  }
}

void CompiledSpace::decode_values(const std::vector<std::uint32_t>& digits,
                                  Config& out) const {
  out.resize(values_.size());
  for (std::size_t p = 0; p < values_.size(); ++p) {
    out[p] = values_[p][digits[p]];
  }
}

bool CompiledSpace::satisfied(const Config& values) const {
  for (const auto& c : constraints_) {
    if (!c.check(values)) return false;
  }
  return true;
}

bool CompiledSpace::is_valid_index(ConfigIndex index) const {
  if (materialized_) return rank(index).has_value();
  Config scratch;
  decode_into(index, scratch);
  return satisfied(scratch);
}

std::optional<std::uint64_t> CompiledSpace::rank(ConfigIndex index) const {
  BAT_EXPECTS(materialized_);
  if (index >= cardinality_) return std::nullopt;
  const auto bucket = static_cast<std::size_t>(index >> bucket_shift_);
  const auto lo = valid_.begin() +
                  static_cast<std::ptrdiff_t>(bucket_offsets_[bucket]);
  const auto hi = valid_.begin() +
                  static_cast<std::ptrdiff_t>(bucket_offsets_[bucket + 1]);
  const auto it = std::lower_bound(lo, hi, index);
  if (it == hi || *it != index) return std::nullopt;
  return static_cast<std::uint64_t>(it - valid_.begin());
}

ConfigIndex CompiledSpace::random_valid_index(common::Rng& rng) const {
  BAT_EXPECTS(cardinality_ > 0);
  if (materialized_) {
    if (valid_.empty()) {
      throw std::runtime_error(
          "random_valid_index: the constraint set admits no configuration");
    }
    return valid_[static_cast<std::size_t>(rng.next_below(valid_.size()))];
  }
  Config scratch;
  for (std::uint64_t attempts = 0; attempts < 10'000'000; ++attempts) {
    const ConfigIndex idx = rng.next_below(cardinality_);
    decode_into(idx, scratch);
    if (satisfied(scratch)) return idx;
  }
  throw std::runtime_error(
      "random_valid_index: rejection sampling failed; space over-constrained");
}

std::vector<ConfigIndex> CompiledSpace::sample_valid(std::size_t n,
                                                     common::Rng& rng) const {
  std::vector<ConfigIndex> out;
  if (materialized_) {
    if (valid_.size() <= n) return valid_;  // all of them (possibly none)
    const auto picks = rng.sample_indices(valid_.size(), n);
    out.reserve(n);
    for (const auto p : picks) out.push_back(valid_[p]);
    std::sort(out.begin(), out.end());
    return out;
  }

  BAT_EXPECTS(cardinality_ > 0);
  out.reserve(n);
  std::unordered_set<ConfigIndex> seen;
  seen.reserve(n * 2);
  Config scratch;
  // Bounded rejection: the caller (SearchSpace::sample_constrained)
  // falls back to enumeration when the space is too sparse for this to
  // fill up — rejection never spins unboundedly.
  const std::uint64_t max_attempts = std::max<std::uint64_t>(1000, 400ULL * n);
  std::uint64_t attempts = 0;
  while (out.size() < n && attempts < max_attempts) {
    ++attempts;
    const ConfigIndex idx = rng.next_below(cardinality_);
    if (seen.count(idx)) continue;
    decode_into(idx, scratch);
    if (!satisfied(scratch)) continue;
    seen.insert(idx);
    out.push_back(idx);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bat::core
