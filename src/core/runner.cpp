#include "core/runner.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "core/backend.hpp"
#include "core/compiled_space.hpp"

namespace bat::core {

Dataset Runner::evaluate_indices(const Benchmark& benchmark,
                                 DeviceIndex device,
                                 const std::vector<ConfigIndex>& indices) {
  const auto& space = benchmark.space().params();
  Dataset ds(benchmark.name(), benchmark.device_name(device),
             space.param_names());
  ds.reserve(indices.size());

  // One backend batch: LiveBackend fans the evaluations out over the
  // thread pool and returns results aligned with `indices`, so the
  // dataset layout stays deterministic.
  LiveBackend backend(benchmark, device);
  const auto results = backend.evaluate_batch(indices);

  Config scratch;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    space.decode_into(indices[i], scratch);
    ds.add(indices[i], scratch, results[i]);
  }
  return ds;
}

Dataset Runner::run_exhaustive(const Benchmark& benchmark,
                               DeviceIndex device) {
  const auto indices = benchmark.space().enumerate_constrained();
  return evaluate_indices(benchmark, device, indices);
}

Dataset Runner::run_sampled(const Benchmark& benchmark, DeviceIndex device,
                            std::size_t samples, std::uint64_t seed) {
  common::Rng rng(seed);
  const auto indices = benchmark.space().sample_constrained(samples, rng);
  return evaluate_indices(benchmark, device, indices);
}

Dataset Runner::run_default(const Benchmark& benchmark, DeviceIndex device,
                            std::uint64_t seed, std::size_t samples,
                            std::uint64_t exhaustive_limit) {
  // The cheap upper bound (cardinality) decides first; only when the full
  // product is small do we pay for an exact constrained count.
  if (benchmark.space().cardinality() <= exhaustive_limit) {
    return run_exhaustive(benchmark, device);
  }
  return run_sampled(benchmark, device, samples, seed);
}

// ------------------------------------------------------- streaming sweeps --

std::size_t Runner::stream_batch(const Benchmark& benchmark,
                                 DeviceIndex device,
                                 const std::vector<ConfigIndex>& indices,
                                 const RowSink& sink) {
  // One backend batch fans out over the pool; draining into the sink is
  // sequential so the sink (a DatasetWriter, typically) needs no locks.
  LiveBackend backend(benchmark, device);
  const auto results = backend.evaluate_batch(indices);
  const auto& compiled = benchmark.space().compiled();
  Config scratch;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    compiled.decode_into(indices[i], scratch);
    sink(indices[i], scratch, results[i]);
  }
  return indices.size();
}

std::size_t Runner::stream_exhaustive(const Benchmark& benchmark,
                                      DeviceIndex device, const RowSink& sink,
                                      std::size_t batch_rows) {
  batch_rows = std::max<std::size_t>(1, batch_rows);
  const auto& compiled = benchmark.space().compiled();
  std::size_t emitted = 0;
  std::vector<ConfigIndex> batch;
  batch.reserve(batch_rows);
  if (compiled.has_valid_set()) {
    // Materialized spaces: walk the compiled valid-index array in
    // slices; no per-sweep index copy at all.
    const auto& valid = compiled.valid_indices();
    for (std::size_t lo = 0; lo < valid.size(); lo += batch_rows) {
      const std::size_t hi = std::min(valid.size(), lo + batch_rows);
      batch.assign(valid.begin() + static_cast<std::ptrdiff_t>(lo),
                   valid.begin() + static_cast<std::ptrdiff_t>(hi));
      emitted += stream_batch(benchmark, device, batch, sink);
    }
    return emitted;
  }
  // Streamed spaces: filter the full product through the constraint
  // plan block by block. Memory stays at one batch regardless of
  // cardinality — this is the out-of-core sweep path.
  for (ConfigIndex index = 0; index < compiled.cardinality(); ++index) {
    if (!compiled.is_valid_index(index)) continue;
    batch.push_back(index);
    if (batch.size() == batch_rows) {
      emitted += stream_batch(benchmark, device, batch, sink);
      batch.clear();
    }
  }
  if (!batch.empty()) emitted += stream_batch(benchmark, device, batch, sink);
  return emitted;
}

std::size_t Runner::stream_sampled(const Benchmark& benchmark,
                                   DeviceIndex device, std::size_t samples,
                                   std::uint64_t seed, const RowSink& sink,
                                   std::size_t batch_rows) {
  batch_rows = std::max<std::size_t>(1, batch_rows);
  common::Rng rng(seed);
  // Identical draw to run_sampled: same seed, same rows, same order.
  const auto indices = benchmark.space().sample_constrained(samples, rng);
  std::size_t emitted = 0;
  std::vector<ConfigIndex> batch;
  for (std::size_t lo = 0; lo < indices.size(); lo += batch_rows) {
    const std::size_t hi = std::min(indices.size(), lo + batch_rows);
    batch.assign(indices.begin() + static_cast<std::ptrdiff_t>(lo),
                 indices.begin() + static_cast<std::ptrdiff_t>(hi));
    emitted += stream_batch(benchmark, device, batch, sink);
  }
  return emitted;
}

std::size_t Runner::stream_default(const Benchmark& benchmark,
                                   DeviceIndex device, const RowSink& sink,
                                   std::uint64_t seed, std::size_t samples,
                                   std::uint64_t exhaustive_limit,
                                   std::size_t batch_rows) {
  if (benchmark.space().cardinality() <= exhaustive_limit) {
    return stream_exhaustive(benchmark, device, sink, batch_rows);
  }
  return stream_sampled(benchmark, device, samples, seed, sink, batch_rows);
}

}  // namespace bat::core
