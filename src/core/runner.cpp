#include "core/runner.hpp"

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"

namespace bat::core {

Dataset Runner::evaluate_indices(const Benchmark& benchmark,
                                 DeviceIndex device,
                                 const std::vector<ConfigIndex>& indices) {
  const auto& space = benchmark.space().params();
  Dataset ds(benchmark.name(), benchmark.device_name(device),
             space.param_names());
  ds.reserve(indices.size());

  // Evaluate in parallel into a flat result buffer, then append in order
  // so the dataset layout is deterministic.
  std::vector<Measurement> results(indices.size());
  common::parallel_for_chunked(
      0, indices.size(), [&](std::size_t lo, std::size_t hi, std::size_t) {
        Config scratch;
        for (std::size_t i = lo; i < hi; ++i) {
          space.decode_into(indices[i], scratch);
          results[i] = benchmark.evaluate(scratch, device);
        }
      });

  Config scratch;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    space.decode_into(indices[i], scratch);
    ds.add(indices[i], scratch, results[i]);
  }
  return ds;
}

Dataset Runner::run_exhaustive(const Benchmark& benchmark,
                               DeviceIndex device) {
  const auto indices = benchmark.space().enumerate_constrained();
  return evaluate_indices(benchmark, device, indices);
}

Dataset Runner::run_sampled(const Benchmark& benchmark, DeviceIndex device,
                            std::size_t samples, std::uint64_t seed) {
  common::Rng rng(seed);
  const auto indices = benchmark.space().sample_constrained(samples, rng);
  return evaluate_indices(benchmark, device, indices);
}

Dataset Runner::run_default(const Benchmark& benchmark, DeviceIndex device,
                            std::uint64_t seed, std::size_t samples,
                            std::uint64_t exhaustive_limit) {
  // The cheap upper bound (cardinality) decides first; only when the full
  // product is small do we pay for an exact constrained count.
  if (benchmark.space().cardinality() <= exhaustive_limit) {
    return run_exhaustive(benchmark, device);
  }
  return run_sampled(benchmark, device, samples, seed);
}

}  // namespace bat::core
