#include "core/runner.hpp"

#include "core/backend.hpp"

namespace bat::core {

Dataset Runner::evaluate_indices(const Benchmark& benchmark,
                                 DeviceIndex device,
                                 const std::vector<ConfigIndex>& indices) {
  const auto& space = benchmark.space().params();
  Dataset ds(benchmark.name(), benchmark.device_name(device),
             space.param_names());
  ds.reserve(indices.size());

  // One backend batch: LiveBackend fans the evaluations out over the
  // thread pool and returns results aligned with `indices`, so the
  // dataset layout stays deterministic.
  LiveBackend backend(benchmark, device);
  const auto results = backend.evaluate_batch(indices);

  Config scratch;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    space.decode_into(indices[i], scratch);
    ds.add(indices[i], scratch, results[i]);
  }
  return ds;
}

Dataset Runner::run_exhaustive(const Benchmark& benchmark,
                               DeviceIndex device) {
  const auto indices = benchmark.space().enumerate_constrained();
  return evaluate_indices(benchmark, device, indices);
}

Dataset Runner::run_sampled(const Benchmark& benchmark, DeviceIndex device,
                            std::size_t samples, std::uint64_t seed) {
  common::Rng rng(seed);
  const auto indices = benchmark.space().sample_constrained(samples, rng);
  return evaluate_indices(benchmark, device, indices);
}

Dataset Runner::run_default(const Benchmark& benchmark, DeviceIndex device,
                            std::uint64_t seed, std::size_t samples,
                            std::uint64_t exhaustive_limit) {
  // The cheap upper bound (cardinality) decides first; only when the full
  // product is small do we pay for an exact constrained count.
  if (benchmark.space().cardinality() <= exhaustive_limit) {
    return run_exhaustive(benchmark, device);
  }
  return run_sampled(benchmark, device, samples, seed);
}

}  // namespace bat::core
