#include "core/trace.hpp"

#include <limits>

#include "common/statistics.hpp"

namespace bat::core {

std::optional<TraceEntry> trace_best(std::span<const TraceEntry> trace) {
  std::optional<TraceEntry> best_entry;
  for (const auto& e : trace) {
    if (!best_entry || e.objective < best_entry->objective) best_entry = e;
  }
  if (best_entry &&
      best_entry->objective == std::numeric_limits<double>::infinity()) {
    return std::nullopt;
  }
  return best_entry;
}

std::vector<double> trace_best_so_far(std::span<const TraceEntry> trace) {
  std::vector<double> objectives;
  objectives.reserve(trace.size());
  for (const auto& e : trace) objectives.push_back(e.objective);
  return common::running_minimum(objectives);
}

}  // namespace bat::core
