#include "core/benchmark.hpp"

#include <stdexcept>

namespace bat::core {

DeviceIndex Benchmark::device_index(const std::string& device) const {
  for (DeviceIndex d = 0; d < device_count(); ++d) {
    if (device_name(d) == device) return d;
  }
  throw std::out_of_range("benchmark '" + name() + "' has no device '" +
                          device + "'");
}

BenchmarkRegistry& BenchmarkRegistry::instance() {
  static BenchmarkRegistry registry;
  return registry;
}

void BenchmarkRegistry::register_factory(const std::string& name,
                                         Factory factory) {
  if (!factories_.emplace(name, std::move(factory)).second) {
    throw std::invalid_argument("benchmark already registered: " + name);
  }
}

std::unique_ptr<Benchmark> BenchmarkRegistry::create(
    const std::string& name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw std::out_of_range("no benchmark registered under '" + name + "'");
  }
  return it->second();
}

std::vector<std::string> BenchmarkRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, _] : factories_) out.push_back(name);
  return out;
}

bool BenchmarkRegistry::contains(const std::string& name) const {
  return factories_.count(name) != 0;
}

}  // namespace bat::core
