// Evaluation traces and the statistics every consumer derives from them.
//
// A trace is the chronological list of *distinct* evaluations a tuner
// paid for; the paper's convergence plots (Fig 2) are "best objective so
// far vs number of distinct function evaluations". trace_best /
// trace_best_so_far are the single source of those statistics, shared by
// CountingBackend, run_tuner and analysis/convergence.
//
// Traces are plain values owned by the session that produced them; the
// exception types below are the cross-layer stop signals (tuners treat
// both as "the run is over").
#pragma once

#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/types.hpp"

namespace bat::core {

/// One evaluation in the trace.
struct TraceEntry {
  ConfigIndex index;
  double objective;
};

/// Thrown when a cache miss would exceed the evaluation budget; tuners
/// treat it as their stop signal.
class BudgetExhausted : public std::runtime_error {
 public:
  BudgetExhausted() : std::runtime_error("evaluation budget exhausted") {}

 protected:
  explicit BudgetExhausted(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown at a batch boundary when the session's cancellation token is
/// set (service shutdown). Derives from BudgetExhausted so every tuner
/// treats it as a normal stop signal and ends with its partial trace;
/// the service layer distinguishes the two via its own token.
class EvaluationCancelled : public BudgetExhausted {
 public:
  EvaluationCancelled() : BudgetExhausted("evaluation cancelled") {}
};

/// Best (lowest-objective) entry, if any finite one exists.
[[nodiscard]] std::optional<TraceEntry> trace_best(
    std::span<const TraceEntry> trace);

/// Best-so-far objective after each evaluation (length == trace.size()).
[[nodiscard]] std::vector<double> trace_best_so_far(
    std::span<const TraceEntry> trace);

}  // namespace bat::core
