// The result of evaluating one configuration on one device — what a real
// tuner gets back from a compile+launch+time cycle.
//
// Plain value type; freely copied across threads (it is what the
// service's shared cache hands between sessions).
#pragma once

#include <limits>
#include <string>

namespace bat::core {

enum class MeasureStatus {
  kOk = 0,              // kernel ran; time_ms is meaningful
  kInvalidConstraint,   // static constraints violated (won't compile)
  kInvalidDevice,       // violates device limits (launch failure)
};

struct Measurement {
  double time_ms = std::numeric_limits<double>::infinity();
  MeasureStatus status = MeasureStatus::kInvalidConstraint;

  [[nodiscard]] bool ok() const noexcept {
    return status == MeasureStatus::kOk;
  }

  /// Minimization objective: invalid configs are +inf so every tuner
  /// naturally avoids them without special-casing.
  [[nodiscard]] double objective() const noexcept {
    return ok() ? time_ms : std::numeric_limits<double>::infinity();
  }

  [[nodiscard]] static Measurement valid(double time_ms_value) noexcept {
    return Measurement{time_ms_value, MeasureStatus::kOk};
  }
  [[nodiscard]] static Measurement invalid(MeasureStatus s) noexcept {
    return Measurement{std::numeric_limits<double>::infinity(), s};
  }
};

[[nodiscard]] inline std::string to_string(MeasureStatus s) {
  switch (s) {
    case MeasureStatus::kOk: return "ok";
    case MeasureStatus::kInvalidConstraint: return "invalid_constraint";
    case MeasureStatus::kInvalidDevice: return "invalid_device";
  }
  return "unknown";
}

}  // namespace bat::core
