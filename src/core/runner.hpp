// Parallel dataset builders reproducing the paper's experimental design
// (§V): exhaustive search for Pnpoly/Nbody/GEMM/Convolution, 10 000 random
// configurations for Hotspot/Dedisp/Expdist.
//
// Ownership / thread-safety: stateless static builders returning Dataset
// values. Sweeps parallelize over the global common::ThreadPool; called
// from inside a pool task (e.g. a service worker building a replay
// workload) the parallel loops degrade to inline execution per the
// pool's nesting rule — correct, just serial.
#pragma once

#include "core/benchmark.hpp"
#include "core/dataset.hpp"

namespace bat::core {

class Runner {
 public:
  /// Evaluates every constraint-valid configuration on `device`.
  [[nodiscard]] static Dataset run_exhaustive(const Benchmark& benchmark,
                                              DeviceIndex device);

  /// Evaluates `samples` distinct valid configurations drawn with `seed`.
  /// The same seed draws the same configurations on every device, like
  /// the paper's shared random sample per architecture sweep.
  [[nodiscard]] static Dataset run_sampled(const Benchmark& benchmark,
                                           DeviceIndex device,
                                           std::size_t samples,
                                           std::uint64_t seed);

  /// Paper §V policy: exhaustive when the constrained space has at most
  /// `exhaustive_limit` configurations, otherwise `samples` random ones.
  [[nodiscard]] static Dataset run_default(const Benchmark& benchmark,
                                           DeviceIndex device,
                                           std::uint64_t seed = 0xBA7BA7ULL,
                                           std::size_t samples = 10'000,
                                           std::uint64_t exhaustive_limit =
                                               100'000);

 private:
  [[nodiscard]] static Dataset evaluate_indices(
      const Benchmark& benchmark, DeviceIndex device,
      const std::vector<ConfigIndex>& indices);
};

}  // namespace bat::core
