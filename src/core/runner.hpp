// Parallel dataset builders reproducing the paper's experimental design
// (§V): exhaustive search for Pnpoly/Nbody/GEMM/Convolution, 10 000 random
// configurations for Hotspot/Dedisp/Expdist.
//
// Two shapes: the run_* builders materialize a Dataset value; the
// stream_* builders push rows through a RowSink in evaluation batches,
// never holding more than one batch of measurements in memory — the
// out-of-core path io::DatasetWriter plugs into (a sweep's footprint is
// then one evaluation batch + one writer chunk, independent of the
// space size).
//
// Ownership / thread-safety: stateless static builders. Sweeps
// parallelize over the global common::ThreadPool; called from inside a
// pool task (e.g. a service worker building a replay workload) the
// parallel loops degrade to inline execution per the pool's nesting
// rule — correct, just serial. The RowSink is invoked sequentially, in
// deterministic row order, from the calling thread.
#pragma once

#include <functional>

#include "core/benchmark.hpp"
#include "core/dataset.hpp"

namespace bat::core {

class Runner {
 public:
  /// Receives one evaluated row at a time, in deterministic order.
  using RowSink =
      std::function<void(ConfigIndex, const Config&, const Measurement&)>;

  /// Rows per evaluation batch for the stream_* builders: each batch
  /// fans out over the thread pool, then drains into the sink.
  static constexpr std::size_t kStreamBatchRows = 4096;

  /// Evaluates every constraint-valid configuration on `device`.
  [[nodiscard]] static Dataset run_exhaustive(const Benchmark& benchmark,
                                              DeviceIndex device);

  /// Evaluates `samples` distinct valid configurations drawn with `seed`.
  /// The same seed draws the same configurations on every device, like
  /// the paper's shared random sample per architecture sweep.
  [[nodiscard]] static Dataset run_sampled(const Benchmark& benchmark,
                                           DeviceIndex device,
                                           std::size_t samples,
                                           std::uint64_t seed);

  /// Paper §V policy: exhaustive when the constrained space has at most
  /// `exhaustive_limit` configurations, otherwise `samples` random ones.
  [[nodiscard]] static Dataset run_default(const Benchmark& benchmark,
                                           DeviceIndex device,
                                           std::uint64_t seed = 0xBA7BA7ULL,
                                           std::size_t samples = 10'000,
                                           std::uint64_t exhaustive_limit =
                                               100'000);

  /// Streaming forms of the builders above: identical rows in identical
  /// order, but pushed through `sink` batch by batch with bounded
  /// memory. stream_exhaustive never materializes the valid-index list
  /// for streamed (non-enumerable) spaces — it walks the full product
  /// in blocks and filters through the compiled constraint plan.
  /// All three return the number of rows emitted.
  static std::size_t stream_exhaustive(const Benchmark& benchmark,
                                       DeviceIndex device, const RowSink& sink,
                                       std::size_t batch_rows =
                                           kStreamBatchRows);
  static std::size_t stream_sampled(const Benchmark& benchmark,
                                    DeviceIndex device, std::size_t samples,
                                    std::uint64_t seed, const RowSink& sink,
                                    std::size_t batch_rows = kStreamBatchRows);
  static std::size_t stream_default(const Benchmark& benchmark,
                                    DeviceIndex device, const RowSink& sink,
                                    std::uint64_t seed = 0xBA7BA7ULL,
                                    std::size_t samples = 10'000,
                                    std::uint64_t exhaustive_limit = 100'000,
                                    std::size_t batch_rows = kStreamBatchRows);

 private:
  [[nodiscard]] static Dataset evaluate_indices(
      const Benchmark& benchmark, DeviceIndex device,
      const std::vector<ConfigIndex>& indices);
  static std::size_t stream_batch(const Benchmark& benchmark,
                                  DeviceIndex device,
                                  const std::vector<ConfigIndex>& indices,
                                  const RowSink& sink);
};

}  // namespace bat::core
