#include "core/dataset.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/statistics.hpp"
#include "common/string_util.hpp"

namespace bat::core {

namespace {

/// Location context for CSV parse errors: every failure names the file
/// (or "<memory>"), the 1-based source line, the offending cell text and
/// the column it sits in.
struct CellContext {
  const std::string* source;
  std::size_t line;
  const std::string* column;
};

[[noreturn]] void fail_cell(const CellContext& at, const std::string& cell,
                            const std::string& reason) {
  throw std::invalid_argument(*at.source + ":" + std::to_string(at.line) +
                              ": " + reason + " '" + cell + "' in column '" +
                              *at.column + "'");
}

template <typename T>
T parse_number(const std::string& cell, const CellContext& at) {
  T out{};
  const auto* begin = cell.data();
  const auto* end = cell.data() + cell.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc() || ptr != end) {
    fail_cell(at, cell, "bad numeric cell");
  }
  return out;
}

}  // namespace

Dataset::Dataset(std::string benchmark_name, std::string device_name,
                 std::vector<std::string> param_names)
    : benchmark_name_(std::move(benchmark_name)),
      device_name_(std::move(device_name)),
      param_names_(std::move(param_names)) {
  BAT_EXPECTS(!param_names_.empty());
}

void Dataset::add(ConfigIndex index, const Config& config,
                  const Measurement& m) {
  BAT_EXPECTS(config.size() == param_names_.size());
  indices_.push_back(index);
  values_.insert(values_.end(), config.begin(), config.end());
  times_.push_back(m.time_ms);
  statuses_.push_back(m.status);
}

void Dataset::reserve(std::size_t n) {
  indices_.reserve(n);
  values_.reserve(n * param_names_.size());
  times_.reserve(n);
  statuses_.reserve(n);
}

ConfigIndex Dataset::config_index(std::size_t row) const {
  BAT_EXPECTS(row < size());
  return indices_[row];
}

Config Dataset::config(std::size_t row) const {
  BAT_EXPECTS(row < size());
  const std::size_t p = param_names_.size();
  return Config(values_.begin() + static_cast<std::ptrdiff_t>(row * p),
                values_.begin() + static_cast<std::ptrdiff_t>((row + 1) * p));
}

Value Dataset::param_value(std::size_t row, std::size_t param) const {
  BAT_EXPECTS(row < size());
  BAT_EXPECTS(param < param_names_.size());
  return values_[row * param_names_.size() + param];
}

double Dataset::time_ms(std::size_t row) const {
  BAT_EXPECTS(row < size());
  return times_[row];
}

MeasureStatus Dataset::status(std::size_t row) const {
  BAT_EXPECTS(row < size());
  return statuses_[row];
}

bool Dataset::row_ok(std::size_t row) const {
  return status(row) == MeasureStatus::kOk;
}

std::vector<double> Dataset::valid_times() const {
  std::vector<double> out;
  out.reserve(size());
  for (std::size_t r = 0; r < size(); ++r) {
    if (row_ok(r)) out.push_back(times_[r]);
  }
  return out;
}

std::vector<std::size_t> Dataset::valid_rows() const {
  std::vector<std::size_t> out;
  out.reserve(size());
  for (std::size_t r = 0; r < size(); ++r) {
    if (row_ok(r)) out.push_back(r);
  }
  return out;
}

std::size_t Dataset::best_row() const {
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_row_index = size();
  for (std::size_t r = 0; r < size(); ++r) {
    if (row_ok(r) && times_[r] < best) {
      best = times_[r];
      best_row_index = r;
    }
  }
  if (best_row_index == size()) {
    throw std::runtime_error("dataset has no valid measurements");
  }
  return best_row_index;
}

double Dataset::best_time() const { return times_[best_row()]; }

double Dataset::median_time() const {
  const auto times = valid_times();
  if (times.empty()) throw std::runtime_error("dataset has no valid times");
  return common::median(times);
}

std::size_t Dataset::num_valid() const {
  std::size_t n = 0;
  for (const auto s : statuses_) {
    if (s == MeasureStatus::kOk) ++n;
  }
  return n;
}

std::vector<std::vector<double>> Dataset::feature_matrix() const {
  std::vector<std::vector<double>> out;
  out.reserve(num_valid());
  const std::size_t p = param_names_.size();
  for (std::size_t r = 0; r < size(); ++r) {
    if (!row_ok(r)) continue;
    std::vector<double> row(p);
    for (std::size_t c = 0; c < p; ++c) {
      row[c] = static_cast<double>(values_[r * p + c]);
    }
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<double> Dataset::target_vector() const { return valid_times(); }

std::string Dataset::to_csv() const {
  common::CsvWriter writer;
  // Two metadata rows keep the file self-describing.
  writer.write_row({"#benchmark", benchmark_name_});
  writer.write_row({"#device", device_name_});
  std::vector<std::string> header{"config_index"};
  header.insert(header.end(), param_names_.begin(), param_names_.end());
  header.push_back("time_ms");
  header.push_back("status");
  writer.write_row(header);

  const std::size_t p = param_names_.size();
  for (std::size_t r = 0; r < size(); ++r) {
    std::vector<std::string> row;
    row.reserve(p + 3);
    row.push_back(std::to_string(indices_[r]));
    for (std::size_t c = 0; c < p; ++c) {
      row.push_back(std::to_string(values_[r * p + c]));
    }
    row.push_back(std::isfinite(times_[r]) ? common::format_double(times_[r], 9)
                                           : std::string("inf"));
    row.push_back(std::to_string(static_cast<int>(statuses_[r])));
    writer.write_row(row);
  }
  return writer.str();
}

Dataset Dataset::from_csv(const std::string& csv_text,
                          const std::string& source_name) {
  const auto rows = common::CsvReader::parse_rows(csv_text);
  if (rows.size() < 3 || rows[0].cells.size() < 2 ||
      rows[1].cells.size() < 2 || rows[0].cells[0] != "#benchmark" ||
      rows[1].cells[0] != "#device") {
    throw std::invalid_argument(source_name + ": not a BAT dataset CSV");
  }
  const auto& header = rows[2].cells;
  if (header.size() < 4 || header.front() != "config_index" ||
      header[header.size() - 2] != "time_ms" || header.back() != "status") {
    throw std::invalid_argument(source_name + ":" +
                                std::to_string(rows[2].line) +
                                ": bad dataset CSV header");
  }
  std::vector<std::string> param_names(header.begin() + 1, header.end() - 2);
  Dataset ds(rows[0].cells[1], rows[1].cells[1], param_names);
  ds.reserve(rows.size() - 3);
  const std::size_t p = param_names.size();
  static const std::string kIndexCol = "config_index";
  static const std::string kTimeCol = "time_ms";
  static const std::string kStatusCol = "status";
  for (std::size_t r = 3; r < rows.size(); ++r) {
    const auto& cells = rows[r].cells;
    const std::size_t line = rows[r].line;
    if (cells.size() != p + 3) {
      throw std::invalid_argument(
          source_name + ":" + std::to_string(line) + ": dataset CSV row has " +
          std::to_string(cells.size()) + " cells, expected " +
          std::to_string(p + 3));
    }
    const auto index = parse_number<ConfigIndex>(
        cells[0], {&source_name, line, &kIndexCol});
    Config config(p);
    for (std::size_t c = 0; c < p; ++c) {
      config[c] = parse_number<Value>(cells[c + 1],
                                      {&source_name, line, &param_names[c]});
    }
    Measurement m;
    const CellContext status_at{&source_name, line, &kStatusCol};
    const int status = parse_number<int>(cells[p + 2], status_at);
    if (status < 0 || status > static_cast<int>(MeasureStatus::kInvalidDevice)) {
      fail_cell(status_at, cells[p + 2], "out-of-range status cell");
    }
    m.status = static_cast<MeasureStatus>(status);
    if (cells[p + 1] == "inf") {
      m.time_ms = std::numeric_limits<double>::infinity();
    } else {
      const CellContext at{&source_name, line, &kTimeCol};
      std::size_t consumed = 0;
      try {
        m.time_ms = std::stod(cells[p + 1], &consumed);
      } catch (const std::invalid_argument&) {
        fail_cell(at, cells[p + 1], "bad time cell");
      } catch (const std::out_of_range&) {
        fail_cell(at, cells[p + 1], "out-of-range time cell");
      }
      if (consumed != cells[p + 1].size()) {
        fail_cell(at, cells[p + 1], "bad time cell");
      }
    }
    ds.add(index, config, m);
  }
  return ds;
}

void Dataset::save_csv(const std::string& path) const {
  common::write_file(path, to_csv());
}

Dataset Dataset::load_csv(const std::string& path) {
  auto ds = from_csv(common::read_file(path), path);
  ds.source_ = path;
  return ds;
}

}  // namespace bat::core
