#include "core/parameter.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/contracts.hpp"

namespace bat::core {

Parameter::Parameter(std::string name, std::vector<Value> values)
    : name_(std::move(name)), values_(std::move(values)) {
  BAT_EXPECTS(!name_.empty());
  BAT_EXPECTS(!values_.empty());
  // Duplicate values would make value<->index mapping ambiguous.
  auto sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  BAT_EXPECTS(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

Value Parameter::value_at(std::size_t i) const {
  BAT_EXPECTS(i < values_.size());
  return values_[i];
}

std::size_t Parameter::index_of(Value v) const {
  const auto it = std::find(values_.begin(), values_.end(), v);
  if (it == values_.end()) {
    throw std::out_of_range("parameter '" + name_ + "' has no value " +
                            std::to_string(v));
  }
  return static_cast<std::size_t>(it - values_.begin());
}

bool Parameter::contains(Value v) const noexcept {
  return std::find(values_.begin(), values_.end(), v) != values_.end();
}

Parameter Parameter::range(std::string name, Value lo, Value hi, Value step) {
  BAT_EXPECTS(step > 0);
  BAT_EXPECTS(lo <= hi);
  std::vector<Value> values;
  for (Value v = lo; v <= hi; v += step) values.push_back(v);
  return Parameter(std::move(name), std::move(values));
}

Parameter Parameter::pow2(std::string name, Value lo, Value hi) {
  BAT_EXPECTS(lo > 0);
  BAT_EXPECTS(lo <= hi);
  std::vector<Value> values;
  for (Value v = lo; v <= hi; v *= 2) values.push_back(v);
  return Parameter(std::move(name), std::move(values));
}

}  // namespace bat::core
