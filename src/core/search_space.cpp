#include "core/search_space.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"
#include "core/compiled_space.hpp"

namespace bat::core {

const CompiledSpace& SearchSpace::compiled() const {
  return *compiled_shared();
}

std::shared_ptr<const CompiledSpace> SearchSpace::compiled_shared() const {
  std::lock_guard<std::mutex> lock(compiled_mutex_);
  if (!compiled_) {
    compiled_ = std::make_shared<const CompiledSpace>(space_, constraints_);
  }
  return compiled_;
}

std::uint64_t SearchSpace::count_constrained() const {
  if (constraints_.empty()) return space_.cardinality();
  const auto& cs = compiled();
  if (cs.has_valid_set()) return cs.num_valid();

  const ConfigIndex n = space_.cardinality();
  auto& pool = common::ThreadPool::global();
  std::vector<std::uint64_t> partial(pool.size(), 0);
  pool.parallel_for_chunked(
      0, static_cast<std::size_t>(n),
      [&](std::size_t lo, std::size_t hi, std::size_t worker) {
        Config scratch;
        std::uint64_t count = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          space_.decode_into(static_cast<ConfigIndex>(i), scratch);
          if (constraints_.satisfied(scratch)) ++count;
        }
        partial[worker] = count;
      });
  std::uint64_t total = 0;
  for (const auto c : partial) total += c;
  return total;
}

std::vector<ConfigIndex> SearchSpace::enumerate_constrained() const {
  const auto& cs = compiled();
  if (cs.has_valid_set()) return cs.valid_indices();

  const ConfigIndex n = space_.cardinality();
  constexpr ConfigIndex kEnumerationLimit = 200'000'000;
  if (n > kEnumerationLimit) {
    throw std::length_error(
        "search space too large to enumerate; use sample_constrained()");
  }
  auto& pool = common::ThreadPool::global();
  std::vector<std::vector<ConfigIndex>> partial(pool.size());
  pool.parallel_for_chunked(
      0, static_cast<std::size_t>(n),
      [&](std::size_t lo, std::size_t hi, std::size_t worker) {
        Config scratch;
        auto& out = partial[worker];
        for (std::size_t i = lo; i < hi; ++i) {
          space_.decode_into(static_cast<ConfigIndex>(i), scratch);
          if (constraints_.satisfied(scratch)) {
            out.push_back(static_cast<ConfigIndex>(i));
          }
        }
      });
  std::vector<ConfigIndex> all;
  std::size_t total = 0;
  for (const auto& p : partial) total += p.size();
  all.reserve(total);
  // Chunks are contiguous ascending ranges, so concatenation stays sorted.
  for (const auto& p : partial) all.insert(all.end(), p.begin(), p.end());
  return all;
}

std::vector<ConfigIndex> SearchSpace::sample_constrained(
    std::size_t n, common::Rng& rng) const {
  const auto& cs = compiled();
  auto out = cs.sample_valid(n, rng);
  if (out.size() < n && !cs.has_valid_set()) {
    // Streamed space whose rejection pass came up short: enumerate and
    // subsample deterministically (the valid set is too sparse for
    // rejection, so it is small enough to materialize once).
    const auto all = enumerate_constrained();
    if (all.size() <= n) return all;
    const auto picks = rng.sample_indices(all.size(), n);
    out.clear();
    for (const auto p : picks) out.push_back(all[p]);
    std::sort(out.begin(), out.end());
  }
  return out;
}

ConfigIndex SearchSpace::random_valid_index(common::Rng& rng) const {
  return compiled().random_valid_index(rng);
}

Config SearchSpace::random_valid_config(common::Rng& rng) const {
  return space_.config_at(random_valid_index(rng));
}

std::vector<Config> SearchSpace::valid_neighbors(const Config& config) const {
  std::vector<Config> out;
  space_.for_each_neighbor(config, [&](const Config& n) {
    if (constraints_.satisfied(n)) out.push_back(n);
  });
  return out;
}

}  // namespace bat::core
