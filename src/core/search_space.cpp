#include "core/search_space.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"

namespace bat::core {

std::uint64_t SearchSpace::count_constrained() const {
  if (constraints_.empty()) return space_.cardinality();
  const ConfigIndex n = space_.cardinality();
  auto& pool = common::ThreadPool::global();

  std::vector<std::uint64_t> partial(pool.size(), 0);
  pool.parallel_for_chunked(
      0, static_cast<std::size_t>(n),
      [&](std::size_t lo, std::size_t hi, std::size_t worker) {
        Config scratch;
        std::uint64_t count = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          space_.decode_into(static_cast<ConfigIndex>(i), scratch);
          if (constraints_.satisfied(scratch)) ++count;
        }
        partial[worker] = count;
      });
  std::uint64_t total = 0;
  for (const auto c : partial) total += c;
  return total;
}

std::vector<ConfigIndex> SearchSpace::enumerate_constrained() const {
  const ConfigIndex n = space_.cardinality();
  constexpr ConfigIndex kEnumerationLimit = 200'000'000;
  if (n > kEnumerationLimit) {
    throw std::length_error(
        "search space too large to enumerate; use sample_constrained()");
  }
  auto& pool = common::ThreadPool::global();
  std::vector<std::vector<ConfigIndex>> partial(pool.size());
  pool.parallel_for_chunked(
      0, static_cast<std::size_t>(n),
      [&](std::size_t lo, std::size_t hi, std::size_t worker) {
        Config scratch;
        auto& out = partial[worker];
        for (std::size_t i = lo; i < hi; ++i) {
          space_.decode_into(static_cast<ConfigIndex>(i), scratch);
          if (constraints_.satisfied(scratch)) {
            out.push_back(static_cast<ConfigIndex>(i));
          }
        }
      });
  std::vector<ConfigIndex> all;
  std::size_t total = 0;
  for (const auto& p : partial) total += p.size();
  all.reserve(total);
  // Chunks are contiguous ascending ranges, so concatenation stays sorted.
  for (const auto& p : partial) all.insert(all.end(), p.begin(), p.end());
  return all;
}

std::vector<ConfigIndex> SearchSpace::sample_constrained(
    std::size_t n, common::Rng& rng) const {
  std::vector<ConfigIndex> out;
  out.reserve(n);
  std::unordered_set<ConfigIndex> seen;
  seen.reserve(n * 2);
  const ConfigIndex card = space_.cardinality();
  BAT_EXPECTS(card > 0);

  Config scratch;
  // Rejection sampling with a deterministic failure bound: if the space is
  // so constrained that rejection stalls, fall back to enumeration.
  const std::uint64_t max_attempts =
      std::max<std::uint64_t>(1000, 400ULL * n);
  std::uint64_t attempts = 0;
  while (out.size() < n && attempts < max_attempts) {
    ++attempts;
    const ConfigIndex idx = rng.next_below(card);
    if (seen.count(idx)) continue;
    space_.decode_into(idx, scratch);
    if (!constraints_.satisfied(scratch)) continue;
    seen.insert(idx);
    out.push_back(idx);
  }
  if (out.size() < n) {
    // Deterministic fallback: enumerate and subsample.
    const auto all = enumerate_constrained();
    if (all.size() <= n) return all;
    auto picks = rng.sample_indices(all.size(), n);
    out.clear();
    for (const auto p : picks) out.push_back(all[p]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Config SearchSpace::random_valid_config(common::Rng& rng) const {
  Config scratch;
  const ConfigIndex card = space_.cardinality();
  BAT_EXPECTS(card > 0);
  for (std::uint64_t attempts = 0; attempts < 10'000'000; ++attempts) {
    space_.decode_into(rng.next_below(card), scratch);
    if (constraints_.satisfied(scratch)) return scratch;
  }
  throw std::runtime_error(
      "random_valid_config: rejection sampling failed; space over-constrained");
}

std::vector<Config> SearchSpace::valid_neighbors(const Config& config) const {
  std::vector<Config> out;
  space_.for_each_neighbor(config, [&](const Config& n) {
    if (constraints_.satisfied(n)) out.push_back(n);
  });
  return out;
}

}  // namespace bat::core
