// The Cartesian product of the parameters, with mixed-radix indexing.
//
// Every configuration has a unique ConfigIndex in [0, cardinality()):
// the last parameter varies fastest, like row-major array order. This
// gives O(1)-ish random access into spaces of up to ~10^8 configurations
// (Dedispersion: 123 863 040) without materializing them.
//
// Ownership / thread-safety: a ParamSpace is an immutable value after
// construction (cardinality overflow is checked then, see
// cardinality()); all queries are const and safe from any thread.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "core/parameter.hpp"
#include "core/types.hpp"

namespace bat::core {

class ParamSpace {
 public:
  ParamSpace() = default;
  explicit ParamSpace(std::vector<Parameter> params);

  ParamSpace& add(Parameter param);

  [[nodiscard]] std::size_t num_params() const noexcept {
    return params_.size();
  }
  [[nodiscard]] const Parameter& param(std::size_t i) const;
  [[nodiscard]] const std::vector<Parameter>& params() const noexcept {
    return params_;
  }

  /// Position of the parameter named `name`; throws std::out_of_range if
  /// missing.
  [[nodiscard]] std::size_t index_of(const std::string& name) const;
  [[nodiscard]] bool has_param(const std::string& name) const noexcept;

  /// Names in order, handy for Dataset headers and ML feature names.
  [[nodiscard]] std::vector<std::string> param_names() const;

  /// |P1| * |P2| * ... — a plain noexcept accessor. The uint64 overflow
  /// check runs at construction time: the constructor and add() throw
  /// std::overflow_error if the product would exceed ConfigIndex, so a
  /// fully-constructed space always has a representable cardinality.
  [[nodiscard]] ConfigIndex cardinality() const noexcept { return cardinality_; }

  /// Decodes a mixed-radix index into a configuration.
  [[nodiscard]] Config config_at(ConfigIndex index) const;

  /// Decodes into a caller-provided buffer (no allocation); buffer is
  /// resized to num_params().
  void decode_into(ConfigIndex index, Config& out) const;

  /// Inverse of config_at; throws if any value is not in its parameter.
  [[nodiscard]] ConfigIndex index_of_config(const Config& config) const;

  /// True iff each value is a member of the corresponding parameter.
  [[nodiscard]] bool contains(const Config& config) const noexcept;

  /// Uniform random configuration from the full product.
  [[nodiscard]] Config random_config(common::Rng& rng) const;

  /// All Hamming-distance-1 neighbors (same parameters, one value swapped
  /// for any other value of that parameter). This is the neighborhood
  /// used for the fitness-flow graph and the local-search tuners.
  [[nodiscard]] std::vector<Config> neighbors(const Config& config) const;

  /// Calls fn(neighbor) for each Hamming-1 neighbor without materializing
  /// the list. `scratch` is mutated in place and restored.
  template <typename Fn>
  void for_each_neighbor(const Config& config, Fn&& fn) const {
    Config scratch = config;
    for (std::size_t p = 0; p < params_.size(); ++p) {
      const Value original = scratch[p];
      for (const Value v : params_[p].values()) {
        if (v == original) continue;
        scratch[p] = v;
        fn(static_cast<const Config&>(scratch));
      }
      scratch[p] = original;
    }
  }

  /// Pretty "name=value, ..." string for logs and examples.
  [[nodiscard]] std::string describe(const Config& config) const;

 private:
  void rebuild_index();

  std::vector<Parameter> params_;
  std::unordered_map<std::string, std::size_t> name_to_index_;
  std::vector<ConfigIndex> strides_;  // strides_[i] = prod of radices after i
  ConfigIndex cardinality_ = 1;
};

}  // namespace bat::core
