#include "core/backend.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"

namespace bat::core {

Measurement EvaluationBackend::evaluate(ConfigIndex index) {
  const ConfigIndex indices[1] = {index};
  return evaluate_batch(indices).front();
}

// ------------------------------------------------------------ LiveBackend --

LiveBackend::LiveBackend(const Benchmark& benchmark, DeviceIndex device,
                         std::size_t parallel_threshold)
    : benchmark_(&benchmark),
      device_(device),
      parallel_threshold_(std::max<std::size_t>(parallel_threshold, 2)),
      name_("live:" + benchmark.name() + "@" + benchmark.device_name(device)) {}

std::vector<Measurement> LiveBackend::evaluate_batch(
    std::span<const ConfigIndex> indices) {
  const auto& params = benchmark_->space().params();
  std::vector<Measurement> results(indices.size());
  if (indices.size() < parallel_threshold_) {
    Config scratch;
    for (std::size_t i = 0; i < indices.size(); ++i) {
      params.decode_into(indices[i], scratch);
      results[i] = benchmark_->evaluate(scratch, device_);
    }
    return results;
  }
  common::parallel_for_chunked(
      0, indices.size(), [&](std::size_t lo, std::size_t hi, std::size_t) {
        Config scratch;
        for (std::size_t i = lo; i < hi; ++i) {
          params.decode_into(indices[i], scratch);
          results[i] = benchmark_->evaluate(scratch, device_);
        }
      });
  return results;
}

// ---------------------------------------------------------- ReplayBackend --

ReplayBackend::ReplayBackend(const SearchSpace& space, const Dataset& dataset)
    : space_(&space),
      name_("replay:" + dataset.benchmark_name() + "@" +
            dataset.device_name()) {
  table_.reserve(dataset.size());
  for (std::size_t row = 0; row < dataset.size(); ++row) {
    table_.emplace(dataset.config_index(row),
                   Measurement{dataset.time_ms(row), dataset.status(row)});
  }
}

std::vector<Measurement> ReplayBackend::evaluate_batch(
    std::span<const ConfigIndex> indices) {
  std::vector<Measurement> results;
  results.reserve(indices.size());
  for (const ConfigIndex index : indices) {
    const auto it = table_.find(index);
    if (it == table_.end()) {
      throw std::out_of_range(name_ + ": config index " +
                              std::to_string(index) +
                              " is not covered by the dataset");
    }
    results.push_back(it->second);
  }
  return results;
}

// -------------------------------------------------------- CountingBackend --

CountingBackend::CountingBackend(EvaluationBackend& inner, std::size_t budget)
    : inner_(&inner), budget_(budget), name_("counting:" + inner.name()) {
  BAT_EXPECTS(budget > 0);
  cache_.reserve(std::min<std::size_t>(budget, 1 << 16));
}

std::vector<Measurement> CountingBackend::evaluate_batch(
    std::span<const ConfigIndex> indices) {
  // First-occurrence misses, in batch order, truncated to the remaining
  // budget. `truncated` means at least one miss was refused.
  std::vector<ConfigIndex> misses;
  bool truncated = false;
  {
    std::size_t remaining = budget_ - trace_.size();
    for (const ConfigIndex index : indices) {
      if (cache_.find(index) != cache_.end()) continue;
      if (std::find(misses.begin(), misses.end(), index) != misses.end()) {
        continue;  // duplicate within this batch: charged once
      }
      if (misses.size() >= remaining) {
        truncated = true;
        break;
      }
      misses.push_back(index);
    }
  }

  if (!misses.empty()) {
    const auto measured = inner_->evaluate_batch(misses);
    for (std::size_t i = 0; i < misses.size(); ++i) {
      cache_.emplace(misses[i], measured[i]);
      trace_.push_back(TraceEntry{misses[i], measured[i].objective()});
    }
  }
  if (truncated) throw BudgetExhausted();

  std::vector<Measurement> results;
  results.reserve(indices.size());
  for (const ConfigIndex index : indices) {
    results.push_back(cache_.at(index));
  }
  return results;
}

}  // namespace bat::core
