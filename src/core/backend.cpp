#include "core/backend.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "obs/trace.hpp"

namespace bat::core {

std::string replay_schema_hint(const std::vector<std::string>& space_params,
                               const std::vector<std::string>& dataset_params) {
  if (space_params == dataset_params) return "";
  if (dataset_params.empty()) return "";  // schema unknown: no verdict
  std::string hint =
      "; the dataset's parameter schema is stale for this space (";
  if (space_params.size() != dataset_params.size()) {
    hint += "it has " + std::to_string(dataset_params.size()) +
            " parameters, the space has " +
            std::to_string(space_params.size());
  } else {
    for (std::size_t p = 0; p < space_params.size(); ++p) {
      if (space_params[p] == dataset_params[p]) continue;
      hint += "parameter " + std::to_string(p) + " is '" + dataset_params[p] +
              "' in the dataset but '" + space_params[p] +
              "' in the space - a param-name order mismatch makes every "
              "stored config index decode differently";
      break;
    }
  }
  hint += ")";
  return hint;
}

Measurement EvaluationBackend::evaluate(ConfigIndex index) {
  const ConfigIndex indices[1] = {index};
  return evaluate_batch(indices).front();
}

// ------------------------------------------------------------ LiveBackend --

LiveBackend::LiveBackend(const Benchmark& benchmark, DeviceIndex device,
                         std::size_t parallel_threshold)
    : benchmark_(&benchmark),
      device_(device),
      parallel_threshold_(std::max<std::size_t>(parallel_threshold, 2)),
      name_("live:" + benchmark.name() + "@" + benchmark.device_name(device)) {}

std::vector<Measurement> LiveBackend::evaluate_batch(
    std::span<const ConfigIndex> indices) {
  // Decoding goes through the compiled value tables: the same mixed-radix
  // arithmetic as ParamSpace but without touching Parameter objects.
  const auto& compiled = benchmark_->space().compiled();
  std::vector<Measurement> results(indices.size());
  if (indices.size() < parallel_threshold_) {
    Config scratch;
    for (std::size_t i = 0; i < indices.size(); ++i) {
      compiled.decode_into(indices[i], scratch);
      results[i] = benchmark_->evaluate(scratch, device_);
    }
    return results;
  }
  common::parallel_for_chunked(
      0, indices.size(), [&](std::size_t lo, std::size_t hi, std::size_t) {
        Config scratch;
        for (std::size_t i = lo; i < hi; ++i) {
          compiled.decode_into(indices[i], scratch);
          results[i] = benchmark_->evaluate(scratch, device_);
        }
      });
  return results;
}

// ---------------------------------------------------------- ReplayBackend --

ReplayBackend::ReplayBackend(const SearchSpace& space, const Dataset& dataset)
    : space_(&space),
      compiled_(space.compiled_shared()),
      size_(dataset.size()),
      name_("replay:" + dataset.benchmark_name() + "@" +
            dataset.device_name()) {
  if (compiled_->has_valid_set()) {
    // Ordinal mode: measurements live in a flat array indexed by
    // valid-ordinal. Bail out to the hash table if any row falls outside
    // the valid set (a foreign or corrupted dataset).
    by_ordinal_.assign(static_cast<std::size_t>(compiled_->num_valid()),
                       Measurement{});
    covered_.assign(by_ordinal_.size(), 0);
    ordinal_mode_ = true;
    for (std::size_t row = 0; row < dataset.size(); ++row) {
      const auto ordinal = compiled_->rank(dataset.config_index(row));
      if (!ordinal) {
        // One-time (per construction) warning: foreign datasets whose
        // rows fall outside this space's valid set silently lose the
        // O(1) rank lookup, so tell the user where the rows came from
        // and why replay just got slower. When the dataset's parameter
        // schema disagrees with the space, say so explicitly — a stale
        // (reordered/renamed) schema is the common cause of ordinal
        // misses and looks exactly like a foreign path otherwise.
        common::log_warn(
            name_, ": dataset",
            dataset.source().empty() ? "" : " '" + dataset.source() + "'",
            " row ", row, " (config index ", dataset.config_index(row),
            ") is outside this search space's valid set - falling back "
            "from O(1) valid-ordinal lookup to hashed lookup (is this "
            "dataset from a different space or constraint set?)",
            replay_schema_hint(space.params().param_names(),
                               dataset.param_names()));
        ordinal_mode_ = false;
        by_ordinal_.clear();
        covered_.clear();
        break;
      }
      // First row wins on duplicate indices, matching the hash-mode
      // emplace semantics (lookups must not depend on storage mode).
      if (covered_[static_cast<std::size_t>(*ordinal)] != 0) continue;
      by_ordinal_[static_cast<std::size_t>(*ordinal)] =
          Measurement{dataset.time_ms(row), dataset.status(row)};
      covered_[static_cast<std::size_t>(*ordinal)] = 1;
    }
    if (ordinal_mode_) return;
  }
  table_.reserve(dataset.size());
  for (std::size_t row = 0; row < dataset.size(); ++row) {
    table_.emplace(dataset.config_index(row),
                   Measurement{dataset.time_ms(row), dataset.status(row)});
  }
}

bool ReplayBackend::contains(ConfigIndex index) const noexcept {
  if (ordinal_mode_) {
    const auto ordinal = compiled_->rank(index);
    return ordinal && covered_[static_cast<std::size_t>(*ordinal)] != 0;
  }
  return table_.find(index) != table_.end();
}

std::vector<Measurement> ReplayBackend::evaluate_batch(
    std::span<const ConfigIndex> indices) {
  std::vector<Measurement> results;
  results.reserve(indices.size());
  for (const ConfigIndex index : indices) {
    if (ordinal_mode_) {
      const auto ordinal = compiled_->rank(index);
      if (ordinal && covered_[static_cast<std::size_t>(*ordinal)] != 0) {
        results.push_back(by_ordinal_[static_cast<std::size_t>(*ordinal)]);
        continue;
      }
    } else {
      const auto it = table_.find(index);
      if (it != table_.end()) {
        results.push_back(it->second);
        continue;
      }
    }
    throw std::out_of_range(name_ + ": config index " +
                            std::to_string(index) +
                            " is not covered by the dataset");
  }
  return results;
}

// -------------------------------------------------------- CountingBackend --

CountingBackend::CountingBackend(EvaluationBackend& inner, std::size_t budget,
                                 EvaluationHooks hooks)
    : inner_(&inner),
      budget_(budget),
      hooks_(hooks),
      name_("counting:" + inner.name()) {
  BAT_EXPECTS(budget > 0);
  cache_.reserve(std::min<std::size_t>(budget, 1 << 16));
}

std::vector<Measurement> CountingBackend::evaluate_batch(
    std::span<const ConfigIndex> indices) {
  // Every tuner measurement funnels through here, so this one span
  // gives a traced session its evaluate-phase timeline. Free (one TLS
  // read) when the calling thread is untraced.
  obs::ScopedSpan span("backend.batch");
  if (span.active()) {
    span.set_detail("configs=" + std::to_string(indices.size()));
  }
  // Batch-boundary cancellation point: both tuner driving styles funnel
  // every measurement through here, so a set token stops the session
  // before it spends anything else.
  if (hooks_.cancel && hooks_.cancel->load(std::memory_order_relaxed)) {
    cancelled_ = true;
    throw EvaluationCancelled();
  }

  // First-occurrence misses, in batch order, truncated to the remaining
  // budget. `truncated` means at least one miss was refused.
  std::vector<ConfigIndex> misses;
  bool truncated = false;
  {
    std::size_t remaining = budget_ - trace_.size();
    for (const ConfigIndex index : indices) {
      if (cache_.find(index) != cache_.end()) continue;
      if (std::find(misses.begin(), misses.end(), index) != misses.end()) {
        continue;  // duplicate within this batch: charged once
      }
      if (misses.size() >= remaining) {
        truncated = true;
        break;
      }
      misses.push_back(index);
    }
  }

  if (!misses.empty()) {
    const auto measured = hooks_.shared_cache
                              ? resolve_through_shared_cache(misses)
                              : inner_->evaluate_batch(misses);
    for (std::size_t i = 0; i < misses.size(); ++i) {
      cache_.emplace(misses[i], measured[i]);
      trace_.push_back(TraceEntry{misses[i], measured[i].objective()});
    }
  }
  if (truncated) throw BudgetExhausted();

  std::vector<Measurement> results;
  results.reserve(indices.size());
  for (const ConfigIndex index : indices) {
    results.push_back(cache_.at(index));
  }
  return results;
}

std::vector<Measurement> CountingBackend::resolve_through_shared_cache(
    const std::vector<ConfigIndex>& misses) {
  // Deadlock-free three-phase dance (see core/shared_cache.hpp): claim
  // everything without blocking, evaluate + publish what we own, wait
  // for what others own. A claim owner never blocks on another session,
  // so every pending entry resolves in finite time.
  auto& shared = *hooks_.shared_cache;
  std::vector<Measurement> measured(misses.size());
  std::vector<std::size_t> owned;    // positions we must evaluate
  std::vector<std::size_t> pending;  // positions another session owns
  for (std::size_t i = 0; i < misses.size(); ++i) {
    const auto claim = shared.claim(misses[i]);
    switch (claim.state) {
      case SharedMeasurementCache::ClaimState::kHit:
        measured[i] = claim.measurement;
        break;
      case SharedMeasurementCache::ClaimState::kClaimed:
        owned.push_back(i);
        break;
      case SharedMeasurementCache::ClaimState::kPending:
        pending.push_back(i);
        break;
    }
  }

  if (!owned.empty()) {
    std::vector<ConfigIndex> batch;
    batch.reserve(owned.size());
    for (const auto i : owned) batch.push_back(misses[i]);
    std::vector<Measurement> results;
    try {
      results = inner_->evaluate_batch(batch);
    } catch (...) {
      // Release the claims so waiters in other sessions re-claim instead
      // of blocking on a measurement that will never arrive.
      for (const auto i : owned) shared.abandon(misses[i]);
      throw;
    }
    for (std::size_t k = 0; k < owned.size(); ++k) {
      shared.publish(batch[k], results[k]);
      measured[owned[k]] = results[k];
    }
  }

  for (const auto i : pending) {
    for (;;) {
      if (const auto m = shared.wait(misses[i])) {
        measured[i] = *m;
        break;
      }
      // The owner abandoned (its evaluation threw): try to take over.
      const auto claim = shared.claim(misses[i]);
      if (claim.state == SharedMeasurementCache::ClaimState::kHit) {
        measured[i] = claim.measurement;
        break;
      }
      if (claim.state == SharedMeasurementCache::ClaimState::kPending) {
        continue;  // someone else took over; wait again
      }
      const ConfigIndex one[1] = {misses[i]};
      std::vector<Measurement> result;
      try {
        result = inner_->evaluate_batch(one);
      } catch (...) {
        shared.abandon(misses[i]);
        throw;
      }
      shared.publish(misses[i], result.front());
      measured[i] = result.front();
      break;
    }
  }
  return measured;
}

}  // namespace bat::core
