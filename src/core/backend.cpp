#include "core/backend.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"

namespace bat::core {

Measurement EvaluationBackend::evaluate(ConfigIndex index) {
  const ConfigIndex indices[1] = {index};
  return evaluate_batch(indices).front();
}

// ------------------------------------------------------------ LiveBackend --

LiveBackend::LiveBackend(const Benchmark& benchmark, DeviceIndex device,
                         std::size_t parallel_threshold)
    : benchmark_(&benchmark),
      device_(device),
      parallel_threshold_(std::max<std::size_t>(parallel_threshold, 2)),
      name_("live:" + benchmark.name() + "@" + benchmark.device_name(device)) {}

std::vector<Measurement> LiveBackend::evaluate_batch(
    std::span<const ConfigIndex> indices) {
  // Decoding goes through the compiled value tables: the same mixed-radix
  // arithmetic as ParamSpace but without touching Parameter objects.
  const auto& compiled = benchmark_->space().compiled();
  std::vector<Measurement> results(indices.size());
  if (indices.size() < parallel_threshold_) {
    Config scratch;
    for (std::size_t i = 0; i < indices.size(); ++i) {
      compiled.decode_into(indices[i], scratch);
      results[i] = benchmark_->evaluate(scratch, device_);
    }
    return results;
  }
  common::parallel_for_chunked(
      0, indices.size(), [&](std::size_t lo, std::size_t hi, std::size_t) {
        Config scratch;
        for (std::size_t i = lo; i < hi; ++i) {
          compiled.decode_into(indices[i], scratch);
          results[i] = benchmark_->evaluate(scratch, device_);
        }
      });
  return results;
}

// ---------------------------------------------------------- ReplayBackend --

ReplayBackend::ReplayBackend(const SearchSpace& space, const Dataset& dataset)
    : space_(&space),
      compiled_(space.compiled_shared()),
      size_(dataset.size()),
      name_("replay:" + dataset.benchmark_name() + "@" +
            dataset.device_name()) {
  if (compiled_->has_valid_set()) {
    // Ordinal mode: measurements live in a flat array indexed by
    // valid-ordinal. Bail out to the hash table if any row falls outside
    // the valid set (a foreign or corrupted dataset).
    by_ordinal_.assign(static_cast<std::size_t>(compiled_->num_valid()),
                       Measurement{});
    covered_.assign(by_ordinal_.size(), 0);
    ordinal_mode_ = true;
    for (std::size_t row = 0; row < dataset.size(); ++row) {
      const auto ordinal = compiled_->rank(dataset.config_index(row));
      if (!ordinal) {
        ordinal_mode_ = false;
        by_ordinal_.clear();
        covered_.clear();
        break;
      }
      // First row wins on duplicate indices, matching the hash-mode
      // emplace semantics (lookups must not depend on storage mode).
      if (covered_[static_cast<std::size_t>(*ordinal)] != 0) continue;
      by_ordinal_[static_cast<std::size_t>(*ordinal)] =
          Measurement{dataset.time_ms(row), dataset.status(row)};
      covered_[static_cast<std::size_t>(*ordinal)] = 1;
    }
    if (ordinal_mode_) return;
  }
  table_.reserve(dataset.size());
  for (std::size_t row = 0; row < dataset.size(); ++row) {
    table_.emplace(dataset.config_index(row),
                   Measurement{dataset.time_ms(row), dataset.status(row)});
  }
}

bool ReplayBackend::contains(ConfigIndex index) const noexcept {
  if (ordinal_mode_) {
    const auto ordinal = compiled_->rank(index);
    return ordinal && covered_[static_cast<std::size_t>(*ordinal)] != 0;
  }
  return table_.find(index) != table_.end();
}

std::vector<Measurement> ReplayBackend::evaluate_batch(
    std::span<const ConfigIndex> indices) {
  std::vector<Measurement> results;
  results.reserve(indices.size());
  for (const ConfigIndex index : indices) {
    if (ordinal_mode_) {
      const auto ordinal = compiled_->rank(index);
      if (ordinal && covered_[static_cast<std::size_t>(*ordinal)] != 0) {
        results.push_back(by_ordinal_[static_cast<std::size_t>(*ordinal)]);
        continue;
      }
    } else {
      const auto it = table_.find(index);
      if (it != table_.end()) {
        results.push_back(it->second);
        continue;
      }
    }
    throw std::out_of_range(name_ + ": config index " +
                            std::to_string(index) +
                            " is not covered by the dataset");
  }
  return results;
}

// -------------------------------------------------------- CountingBackend --

CountingBackend::CountingBackend(EvaluationBackend& inner, std::size_t budget)
    : inner_(&inner), budget_(budget), name_("counting:" + inner.name()) {
  BAT_EXPECTS(budget > 0);
  cache_.reserve(std::min<std::size_t>(budget, 1 << 16));
}

std::vector<Measurement> CountingBackend::evaluate_batch(
    std::span<const ConfigIndex> indices) {
  // First-occurrence misses, in batch order, truncated to the remaining
  // budget. `truncated` means at least one miss was refused.
  std::vector<ConfigIndex> misses;
  bool truncated = false;
  {
    std::size_t remaining = budget_ - trace_.size();
    for (const ConfigIndex index : indices) {
      if (cache_.find(index) != cache_.end()) continue;
      if (std::find(misses.begin(), misses.end(), index) != misses.end()) {
        continue;  // duplicate within this batch: charged once
      }
      if (misses.size() >= remaining) {
        truncated = true;
        break;
      }
      misses.push_back(index);
    }
  }

  if (!misses.empty()) {
    const auto measured = inner_->evaluate_batch(misses);
    for (std::size_t i = 0; i < misses.size(); ++i) {
      cache_.emplace(misses[i], measured[i]);
      trace_.push_back(TraceEntry{misses[i], measured[i].objective()});
    }
  }
  if (truncated) throw BudgetExhausted();

  std::vector<Measurement> results;
  results.reserve(indices.size());
  for (const ConfigIndex index : indices) {
    results.push_back(cache_.at(index));
  }
  return results;
}

}  // namespace bat::core
