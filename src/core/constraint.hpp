// Static validity constraints over configurations (device independent).
//
// These correspond to the "Constrained" column of Table VIII: conditions
// like CLBlast's tiling divisibility rules that make a configuration
// meaningful at all, regardless of which GPU runs it.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace bat::core {

class Constraint {
 public:
  using Predicate = std::function<bool(const Config&)>;

  Constraint(std::string name, Predicate predicate)
      : name_(std::move(name)), predicate_(std::move(predicate)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool check(const Config& config) const {
    return predicate_(config);
  }

 private:
  std::string name_;
  Predicate predicate_;
};

class ConstraintSet {
 public:
  ConstraintSet() = default;

  ConstraintSet& add(std::string name, Constraint::Predicate predicate) {
    constraints_.emplace_back(std::move(name), std::move(predicate));
    return *this;
  }

  [[nodiscard]] bool satisfied(const Config& config) const {
    for (const auto& c : constraints_) {
      if (!c.check(config)) return false;
    }
    return true;
  }

  /// Name of the first violated constraint, or empty if all hold.
  [[nodiscard]] std::string first_violation(const Config& config) const {
    for (const auto& c : constraints_) {
      if (!c.check(config)) return c.name();
    }
    return {};
  }

  [[nodiscard]] std::size_t size() const noexcept { return constraints_.size(); }
  [[nodiscard]] bool empty() const noexcept { return constraints_.empty(); }
  [[nodiscard]] const std::vector<Constraint>& all() const noexcept {
    return constraints_;
  }

 private:
  std::vector<Constraint> constraints_;
};

}  // namespace bat::core
