// Static validity constraints over configurations (device independent).
//
// These correspond to the "Constrained" column of Table VIII: conditions
// like CLBlast's tiling divisibility rules that make a configuration
// meaningful at all, regardless of which GPU runs it.
//
// A constraint may declare the parameter names it reads. The declaration
// is what lets CompiledSpace build its evaluation plan: a Hamming-1 move
// on parameter p only re-checks the constraints whose read set contains
// p. Constraints without a declaration are treated conservatively as
// reading every parameter (always re-checked).
//
// Ownership / thread-safety: a ConstraintSet is a value (predicates are
// copied with it; CompiledSpace keeps its own copy). Predicates must be
// pure functions of the configuration — stateless and re-entrant —
// because constraint checks run concurrently from parallel enumeration
// and counting sweeps.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace bat::core {

class Constraint {
 public:
  using Predicate = std::function<bool(const Config&)>;

  Constraint(std::string name, Predicate predicate)
      : name_(std::move(name)), predicate_(std::move(predicate)) {}

  Constraint(std::string name, std::vector<std::string> reads,
             Predicate predicate)
      : name_(std::move(name)),
        reads_(std::move(reads)),
        predicate_(std::move(predicate)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool check(const Config& config) const {
    return predicate_(config);
  }

  /// Parameter names this constraint reads; empty means "unknown" (the
  /// compiled plan then assumes it reads everything).
  [[nodiscard]] const std::vector<std::string>& reads() const noexcept {
    return reads_;
  }

 private:
  std::string name_;
  std::vector<std::string> reads_;
  Predicate predicate_;
};

class ConstraintSet {
 public:
  ConstraintSet() = default;

  ConstraintSet& add(std::string name, Constraint::Predicate predicate) {
    constraints_.emplace_back(std::move(name), std::move(predicate));
    return *this;
  }

  /// Adds a constraint with an explicit read set (parameter names). The
  /// declaration is verified against the space structure only when a
  /// CompiledSpace is built; test coverage keeps declarations honest.
  ConstraintSet& add(std::string name, std::vector<std::string> reads,
                     Constraint::Predicate predicate) {
    constraints_.emplace_back(std::move(name), std::move(reads),
                              std::move(predicate));
    return *this;
  }

  [[nodiscard]] bool satisfied(const Config& config) const {
    for (const auto& c : constraints_) {
      if (!c.check(config)) return false;
    }
    return true;
  }

  /// Name of the first violated constraint, or empty if all hold.
  [[nodiscard]] std::string first_violation(const Config& config) const {
    for (const auto& c : constraints_) {
      if (!c.check(config)) return c.name();
    }
    return {};
  }

  [[nodiscard]] std::size_t size() const noexcept { return constraints_.size(); }
  [[nodiscard]] bool empty() const noexcept { return constraints_.empty(); }
  [[nodiscard]] const std::vector<Constraint>& all() const noexcept {
    return constraints_;
  }

 private:
  std::vector<Constraint> constraints_;
};

}  // namespace bat::core
