// Fundamental value types of the tuning framework.
//
// Every tunable parameter in BAT (Tables I-VII of the paper) takes integer
// values, so a configuration is a fixed-length vector of int64 aligned with
// the parameter order of its ParamSpace.
//
// Everything here is a plain value with no shared state.
#pragma once

#include <cstdint>
#include <vector>

namespace bat::core {

using Value = std::int64_t;

/// A full assignment of one value per parameter, ordered like the space.
using Config = std::vector<Value>;

/// Index of a configuration within the Cartesian product (mixed radix).
using ConfigIndex = std::uint64_t;

}  // namespace bat::core
