// CompiledSpace: a SearchSpace compiled once into index-space form.
//
// The hot paths of every layer above core (tuners stepping through
// Hamming-1 neighborhoods, FFG construction, replay lookup, constrained
// sampling) used to decode mixed-radix indices into Config value vectors
// and re-run the full constraint set per candidate. CompiledSpace folds
// the space into three structures that make those paths index-native:
//
//  (a) per-parameter value tables + mixed-radix strides, so a Hamming-1
//      move is pure index arithmetic: base + (d' - d) * stride[p];
//  (b) a constraint evaluation plan binding each constraint to the
//      minimal parameter subset it reads (Constraint::reads), so the
//      validity of a move on parameter p re-checks only the constraints
//      touching p — the rest keep their truth value from the base;
//  (c) for enumerable spaces (cardinality <= Options::materialize_limit),
//      a sorted CSR-bucketed valid-index set with O(1) rank/select:
//      select(ordinal) is an array load, rank(index) probes one small
//      bucket. The valid-ordinal domain is what ReplayBackend indexes
//      and what FFG enumerates.
//
// A CompiledSpace is immutable and self-contained: it copies the value
// tables and the constraint set, so it stays valid independently of the
// SearchSpace it was compiled from.
//
// Ownership / thread-safety — the sharing rule: never construct a
// CompiledSpace directly; go through SearchSpace::compiled() (borrowed
// reference) or compiled_shared() (shared ownership, e.g. the service's
// ShardedMeasurementCache), which compile lazily exactly once and share
// the instance across SearchSpace copies. Compilation of a materialized
// space enumerates the whole valid set — wasting that by compiling
// private copies is the trap. Once built, every query is const and safe
// to call from any number of threads; the one exception is
// NeighborScratch, which is mutable per-call state — own one scratch
// per thread, never share it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "core/constraint.hpp"
#include "core/param_space.hpp"

namespace bat::core {

/// Reusable buffers for allocation-free neighbor iteration. A caller
/// (tuner, FFG builder) owns one scratch per thread and passes it to
/// every for_each_*_neighbor_index call.
struct NeighborScratch {
  std::vector<std::uint32_t> digits;
  Config values;
  std::vector<unsigned char> constraint_ok;
};

class CompiledSpace {
 public:
  struct Options {
    /// Spaces whose full cardinality is at or below this limit get a
    /// materialized valid-index set (rank/select, density-aware
    /// sampling). Larger spaces stay streamed: validity is evaluated
    /// through the constraint plan and sampling falls back to bounded
    /// rejection. The default covers the paper's exhaustive benchmarks
    /// (<= 82 944 configs) with generous headroom while keeping the
    /// 1e7..1e8 spaces (Expdist, Hotspot, Dedispersion) streamed.
    ConfigIndex materialize_limit = 1ULL << 20;
  };

  CompiledSpace(const ParamSpace& params, const ConstraintSet& constraints);
  CompiledSpace(const ParamSpace& params, const ConstraintSet& constraints,
                Options options);

  // ----------------------------------------------------- value tables --
  [[nodiscard]] std::size_t num_params() const noexcept {
    return values_.size();
  }
  [[nodiscard]] ConfigIndex cardinality() const noexcept {
    return cardinality_;
  }
  [[nodiscard]] std::size_t radix(std::size_t p) const {
    BAT_EXPECTS(p < values_.size());
    return values_[p].size();
  }
  [[nodiscard]] ConfigIndex stride(std::size_t p) const {
    BAT_EXPECTS(p < strides_.size());
    return strides_[p];
  }
  [[nodiscard]] const std::vector<Value>& values(std::size_t p) const {
    BAT_EXPECTS(p < values_.size());
    return values_[p];
  }

  /// Mixed-radix digits of `index` (digits[p] = value ordinal of
  /// parameter p); `digits` is resized to num_params().
  void decode_digits(ConfigIndex index,
                     std::vector<std::uint32_t>& digits) const;

  /// Inverse of decode_digits.
  [[nodiscard]] ConfigIndex index_of_digits(
      const std::vector<std::uint32_t>& digits) const;

  /// Decodes into a value vector via the compiled tables (equivalent to
  /// ParamSpace::decode_into).
  void decode_into(ConfigIndex index, Config& out) const;

  // --------------------------------------------------- constraint plan --
  [[nodiscard]] std::size_t num_constraints() const noexcept {
    return constraints_.size();
  }
  /// Ids of the constraints whose declared read set contains parameter p
  /// (constraints with no declaration appear for every p).
  [[nodiscard]] const std::vector<std::uint16_t>& constraints_touching(
      std::size_t p) const {
    BAT_EXPECTS(p < touching_.size());
    return touching_[p];
  }

  /// Full constraint check over a decoded value vector.
  [[nodiscard]] bool satisfied(const Config& values) const;

  /// Validity of an index: O(1) rank probe when the valid set is
  /// materialized, decode + full constraint check otherwise.
  [[nodiscard]] bool is_valid_index(ConfigIndex index) const;

  // --------------------------------------------------------- valid set --
  [[nodiscard]] bool has_valid_set() const noexcept { return materialized_; }
  /// Number of valid configurations (requires has_valid_set()).
  [[nodiscard]] std::uint64_t num_valid() const {
    BAT_EXPECTS(materialized_);
    return valid_.size();
  }
  [[nodiscard]] const std::vector<ConfigIndex>& valid_indices() const {
    BAT_EXPECTS(materialized_);
    return valid_;
  }
  /// valid-ordinal -> ConfigIndex (O(1) array load).
  [[nodiscard]] ConfigIndex select(std::uint64_t ordinal) const {
    BAT_EXPECTS(materialized_ && ordinal < valid_.size());
    return valid_[static_cast<std::size_t>(ordinal)];
  }
  /// ConfigIndex -> valid-ordinal, or nullopt if the index is invalid.
  /// One CSR bucket probe (buckets hold ~2 entries on average).
  [[nodiscard]] std::optional<std::uint64_t> rank(ConfigIndex index) const;

  // ---------------------------------------------------------- neighbors --
  /// Calls fn(neighbor_index) for every Hamming-1 neighbor in the full
  /// product (no validity filter). Pure index arithmetic.
  template <typename Fn>
  void for_each_neighbor_index(ConfigIndex base, NeighborScratch& scratch,
                               Fn&& fn) const {
    decode_digits(base, scratch.digits);
    for (std::size_t p = 0; p < values_.size(); ++p) {
      const ConfigIndex stride = strides_[p];
      const ConfigIndex floor = base - scratch.digits[p] * stride;
      const std::size_t r = values_[p].size();
      for (std::size_t d = 0; d < r; ++d) {
        if (d == scratch.digits[p]) continue;
        fn(floor + static_cast<ConfigIndex>(d) * stride);
      }
    }
  }

  /// Calls fn(neighbor_index) for every *valid* Hamming-1 neighbor.
  /// With a materialized valid set each neighbor costs one rank probe;
  /// otherwise the constraint plan evaluates only the constraints
  /// touching the moved parameter (the rest keep their truth value from
  /// the base configuration, which is evaluated once). Exact for valid
  /// and invalid base configurations alike.
  template <typename Fn>
  void for_each_valid_neighbor_index(ConfigIndex base,
                                     NeighborScratch& scratch,
                                     Fn&& fn) const {
    if (materialized_) {
      for_each_neighbor_index(base, scratch, [&](ConfigIndex n) {
        if (rank(n)) fn(n);
      });
      return;
    }
    decode_digits(base, scratch.digits);
    decode_values(scratch.digits, scratch.values);

    // Truth of every constraint on the base configuration; a move on p
    // leaves constraints not touching p unchanged.
    scratch.constraint_ok.resize(constraints_.size());
    std::size_t failing = 0;
    for (std::size_t c = 0; c < constraints_.size(); ++c) {
      scratch.constraint_ok[c] = constraints_[c].check(scratch.values) ? 1 : 0;
      failing += scratch.constraint_ok[c] ? 0 : 1;
    }

    for (std::size_t p = 0; p < values_.size(); ++p) {
      const auto& touching = touching_[p];
      // All constraints *not* touching p must already hold on the base;
      // otherwise every p-neighbor inherits the violation.
      std::size_t failing_touching = 0;
      for (const auto c : touching) {
        failing_touching += scratch.constraint_ok[c] ? 0 : 1;
      }
      if (failing != failing_touching) continue;

      const ConfigIndex stride = strides_[p];
      const ConfigIndex floor = base - scratch.digits[p] * stride;
      const Value original = scratch.values[p];
      const auto& table = values_[p];
      for (std::size_t d = 0; d < table.size(); ++d) {
        if (d == scratch.digits[p]) continue;
        scratch.values[p] = table[d];
        bool ok = true;
        for (const auto c : touching) {
          if (!constraints_[c].check(scratch.values)) {
            ok = false;
            break;
          }
        }
        if (ok) fn(floor + static_cast<ConfigIndex>(d) * stride);
      }
      scratch.values[p] = original;
    }
  }

  // ----------------------------------------------------------- sampling --
  /// One uniformly random valid index: a single rank-select draw when
  /// the valid set is materialized (throws std::runtime_error if it is
  /// empty), bounded rejection otherwise.
  [[nodiscard]] ConfigIndex random_valid_index(common::Rng& rng) const;

  /// n distinct valid indices, ascending. Density-aware: a rank-select
  /// draw over valid ordinals when materialized (returns all of them if
  /// fewer than n exist — including none), bounded rejection for the
  /// huge streamed spaces.
  [[nodiscard]] std::vector<ConfigIndex> sample_valid(std::size_t n,
                                                      common::Rng& rng) const;

 private:
  void decode_values(const std::vector<std::uint32_t>& digits,
                     Config& out) const;
  void materialize();

  std::vector<std::string> names_;         // parameter names, in order
  std::vector<std::vector<Value>> values_;  // per-parameter value tables
  std::vector<ConfigIndex> strides_;
  ConfigIndex cardinality_ = 1;

  std::vector<Constraint> constraints_;
  std::vector<std::vector<std::uint16_t>> touching_;  // param -> constraints

  // CSR valid set: valid_ is sorted ascending; bucket b covers indices
  // [b << bucket_shift_, (b+1) << bucket_shift_) and owns the slice
  // valid_[bucket_offsets_[b] .. bucket_offsets_[b+1]).
  bool materialized_ = false;
  std::vector<ConfigIndex> valid_;
  std::vector<std::uint64_t> bucket_offsets_;
  std::uint32_t bucket_shift_ = 0;
};

}  // namespace bat::core
