// Columnar archive of evaluations for one (benchmark, device) pair.
//
// All paper analyses (Figs 1-6, Table VIII "Reduced") consume datasets:
// exhaustive enumerations for the four small benchmarks and 10 000-sample
// datasets for the three large ones. Datasets round-trip through CSV so
// harnesses can cache expensive sweeps.
//
// Ownership / thread-safety: Dataset is a self-contained value type;
// copies are independent and an instance is immutable once built, so
// concurrent reads need no synchronization (ReplayBackend and the
// service's replay workloads read one dataset from many sessions).
// Builders (add_row) are single-threaded.
#pragma once

#include <string>
#include <vector>

#include "core/measurement.hpp"
#include "core/search_space.hpp"
#include "core/types.hpp"

namespace bat::core {

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string benchmark_name, std::string device_name,
          std::vector<std::string> param_names);

  void add(ConfigIndex index, const Config& config, const Measurement& m);
  void reserve(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return times_.size(); }
  [[nodiscard]] bool empty() const noexcept { return times_.empty(); }

  [[nodiscard]] const std::string& benchmark_name() const noexcept {
    return benchmark_name_;
  }
  [[nodiscard]] const std::string& device_name() const noexcept {
    return device_name_;
  }
  [[nodiscard]] const std::vector<std::string>& param_names() const noexcept {
    return param_names_;
  }
  /// Where this dataset came from on disk: the path passed to load_csv,
  /// or stamped by io loaders materializing a binary archive
  /// (diagnostics only — e.g. ReplayBackend's foreign-dataset warning
  /// names it). Empty for in-memory datasets.
  [[nodiscard]] const std::string& source() const noexcept { return source_; }
  void set_source(std::string source) { source_ = std::move(source); }
  [[nodiscard]] std::size_t num_params() const noexcept {
    return param_names_.size();
  }

  [[nodiscard]] ConfigIndex config_index(std::size_t row) const;
  [[nodiscard]] Config config(std::size_t row) const;
  [[nodiscard]] Value param_value(std::size_t row, std::size_t param) const;
  [[nodiscard]] double time_ms(std::size_t row) const;
  [[nodiscard]] MeasureStatus status(std::size_t row) const;
  [[nodiscard]] bool row_ok(std::size_t row) const;

  /// Times of all rows with status kOk (the "measured" population).
  [[nodiscard]] std::vector<double> valid_times() const;
  /// Row indices with status kOk.
  [[nodiscard]] std::vector<std::size_t> valid_rows() const;

  /// Row of the best (minimum-time) valid measurement; throws if none.
  [[nodiscard]] std::size_t best_row() const;
  [[nodiscard]] double best_time() const;
  /// Median of valid times; throws if none.
  [[nodiscard]] double median_time() const;

  /// Number of rows with status kOk.
  [[nodiscard]] std::size_t num_valid() const;

  /// Feature matrix (parameter values as doubles) and target vector
  /// (time_ms) over valid rows only — ML input for Fig 6.
  [[nodiscard]] std::vector<std::vector<double>> feature_matrix() const;
  [[nodiscard]] std::vector<double> target_vector() const;

  /// CSV round-trip. Columns: config_index, <param...>, time_ms, status.
  /// Parse failures throw std::invalid_argument pinpointing the source:
  /// "<source>:<line>: <reason>" with the offending cell and column name
  /// (`source_name` defaults to "<memory>"; load_csv passes the path).
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] static Dataset from_csv(const std::string& csv_text,
                                        const std::string& source_name =
                                            "<memory>");
  void save_csv(const std::string& path) const;
  [[nodiscard]] static Dataset load_csv(const std::string& path);

 private:
  std::string benchmark_name_;
  std::string device_name_;
  std::string source_;  // disk path when loaded via load_csv
  std::vector<std::string> param_names_;
  std::vector<ConfigIndex> indices_;
  std::vector<Value> values_;  // row-major, size = rows * num_params
  std::vector<double> times_;
  std::vector<MeasureStatus> statuses_;
};

}  // namespace bat::core
