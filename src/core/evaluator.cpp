#include "core/evaluator.hpp"

#include <limits>

#include "common/contracts.hpp"

namespace bat::core {

CachingEvaluator::CachingEvaluator(const TuningProblem& problem,
                                   std::size_t budget)
    : problem_(problem), budget_(budget) {
  BAT_EXPECTS(budget > 0);
  cache_.reserve(std::min<std::size_t>(budget, 1 << 16));
}

double CachingEvaluator::operator()(const Config& config) {
  const ConfigIndex index = problem_.space().params().index_of_config(config);
  if (const auto it = cache_.find(index); it != cache_.end()) {
    return it->second;
  }
  if (trace_.size() >= budget_) throw BudgetExhausted();
  const double objective = problem_.evaluate(config).objective();
  cache_.emplace(index, objective);
  trace_.push_back(TraceEntry{index, objective});
  return objective;
}

std::optional<TraceEntry> CachingEvaluator::best() const noexcept {
  std::optional<TraceEntry> best_entry;
  for (const auto& e : trace_) {
    if (!best_entry || e.objective < best_entry->objective) best_entry = e;
  }
  if (best_entry &&
      best_entry->objective == std::numeric_limits<double>::infinity()) {
    return std::nullopt;
  }
  return best_entry;
}

std::vector<double> CachingEvaluator::best_so_far() const {
  std::vector<double> out;
  out.reserve(trace_.size());
  double best = std::numeric_limits<double>::infinity();
  for (const auto& e : trace_) {
    best = std::min(best, e.objective);
    out.push_back(best);
  }
  return out;
}

}  // namespace bat::core
