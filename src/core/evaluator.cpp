#include "core/evaluator.hpp"

namespace bat::core {

double CachingEvaluator::operator()(const Config& config) {
  const ConfigIndex index = space().params().index_of_config(config);
  return counting_.evaluate(index).objective();
}

std::vector<double> CachingEvaluator::evaluate_batch(
    const std::vector<Config>& configs) {
  const auto& params = space().params();
  std::vector<ConfigIndex> indices;
  indices.reserve(configs.size());
  for (const auto& config : configs) {
    indices.push_back(params.index_of_config(config));
  }
  const auto measurements = counting_.evaluate_batch(indices);
  std::vector<double> objectives;
  objectives.reserve(measurements.size());
  for (const auto& m : measurements) objectives.push_back(m.objective());
  return objectives;
}

}  // namespace bat::core
