// A tunable parameter: a name plus its ordered, discrete value set.
//
// Immutable value type: safe to copy and to read from any thread.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace bat::core {

class Parameter {
 public:
  Parameter(std::string name, std::vector<Value> values);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Value>& values() const noexcept {
    return values_;
  }
  [[nodiscard]] std::size_t cardinality() const noexcept {
    return values_.size();
  }
  [[nodiscard]] Value value_at(std::size_t i) const;

  /// Index of `v` in the value list; throws if absent.
  [[nodiscard]] std::size_t index_of(Value v) const;
  [[nodiscard]] bool contains(Value v) const noexcept;

  // -- Builders for the value-set notations used in the paper's tables. --

  /// {lo, lo+step, ..., hi}
  [[nodiscard]] static Parameter range(std::string name, Value lo, Value hi,
                                       Value step = 1);
  /// {base^0 * lo, ..., doubling}   e.g. pow2("VWM", 1, 8) -> {1,2,4,8}
  [[nodiscard]] static Parameter pow2(std::string name, Value lo, Value hi);
  /// Explicit list.
  [[nodiscard]] static Parameter list(std::string name,
                                      std::vector<Value> values) {
    return Parameter(std::move(name), std::move(values));
  }

 private:
  std::string name_;
  std::vector<Value> values_;
};

}  // namespace bat::core
