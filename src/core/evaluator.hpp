// CachingEvaluator: what a tuner actually sees.
//
// A thin Config-level adapter over an EvaluationBackend wrapped in a
// CountingBackend: it memoizes evaluations by ConfigIndex, enforces a
// distinct-evaluation budget (cache hits are free) and records the full
// evaluation trace — the paper's convergence plots (Fig 2) are "best
// objective so far vs number of *distinct* function evaluations".
//
// Tuners drive it two ways:
//   * exception-driven: operator()(config) one evaluation at a time until
//     BudgetExhausted is thrown (the classic single-point tuners);
//   * batched ask/tell: evaluate_batch(configs) sends a whole population
//     generation through the backend in one call, which LiveBackend fans
//     out over the thread pool. A batch crossing the budget boundary is
//     truncated so the trace ends exactly at the budget, byte-identical
//     to charging one evaluation at a time.
//
// Swapping the backend (live vs replay) never changes what a tuner
// observes, only where the measurements come from.
//
// Ownership / thread-safety: a CachingEvaluator is per-session state
// (budget, memo cache, trace) driven by exactly one thread at a time; it
// borrows the backend and anything the optional EvaluationHooks point at
// (shared cache, cancellation token), all of which must outlive it.
// Concurrency across sessions lives behind those hooks, not here.
#pragma once

#include <optional>
#include <vector>

#include "core/backend.hpp"
#include "core/trace.hpp"

namespace bat::core {

class CachingEvaluator {
 public:
  /// budget = maximum number of *distinct* configurations evaluated.
  /// The backend must outlive the evaluator, as must anything the hooks
  /// point at (shared cross-session cache, cancellation token — see
  /// core/shared_cache.hpp; default hooks mean standalone behavior).
  CachingEvaluator(EvaluationBackend& backend, std::size_t budget,
                   EvaluationHooks hooks = {})
      : counting_(backend, budget, hooks) {}

  /// Evaluates (or recalls) one configuration. Throws BudgetExhausted
  /// when a cache miss would exceed the budget.
  double operator()(const Config& config);

  /// Index-native single evaluation: no Config round-trip. This is what
  /// the neighbor-driven tuners call from
  /// CompiledSpace::for_each_valid_neighbor_index loops.
  double evaluate_index(ConfigIndex index) {
    return counting_.evaluate(index).objective();
  }

  /// Evaluates a batch of configurations; results align with `configs`.
  /// Distinct cache misses are evaluated through one backend batch (in
  /// parallel for LiveBackend) and charged in first-occurrence order;
  /// hits and within-batch duplicates are free. Throws BudgetExhausted
  /// after recording as many misses as still fit the budget.
  std::vector<double> evaluate_batch(const std::vector<Config>& configs);

  [[nodiscard]] const SearchSpace& space() const noexcept {
    return counting_.space();
  }

  [[nodiscard]] std::size_t evaluations() const noexcept {
    return counting_.evaluations();
  }
  [[nodiscard]] std::size_t budget() const noexcept {
    return counting_.budget();
  }
  [[nodiscard]] bool cancelled() const noexcept {
    return counting_.cancelled();
  }
  [[nodiscard]] bool exhausted() const noexcept {
    return counting_.exhausted();
  }

  /// Chronological distinct-evaluation trace.
  [[nodiscard]] const std::vector<TraceEntry>& trace() const noexcept {
    return counting_.trace();
  }

  /// Best (lowest-objective) evaluation so far, if any finite one exists.
  [[nodiscard]] std::optional<TraceEntry> best() const {
    return trace_best(counting_.trace());
  }

  /// best-so-far objective after each distinct evaluation (length ==
  /// evaluations()); used directly by convergence analysis.
  [[nodiscard]] std::vector<double> best_so_far() const {
    return trace_best_so_far(counting_.trace());
  }

  [[nodiscard]] CountingBackend& counting() noexcept { return counting_; }

 private:
  CountingBackend counting_;
};

}  // namespace bat::core
