// TuningProblem + CachingEvaluator: what a tuner actually sees.
//
// TuningProblem binds (benchmark, device) into a single minimization
// objective. CachingEvaluator memoizes evaluations by ConfigIndex,
// enforces an evaluation budget, and records the full evaluation trace —
// the paper's convergence plots (Fig 2) are "best objective so far vs
// number of *distinct* function evaluations".
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/benchmark.hpp"
#include "core/measurement.hpp"
#include "core/search_space.hpp"

namespace bat::core {

class TuningProblem {
 public:
  TuningProblem(const Benchmark& benchmark, DeviceIndex device)
      : benchmark_(&benchmark), device_(device) {}

  [[nodiscard]] const Benchmark& benchmark() const noexcept {
    return *benchmark_;
  }
  [[nodiscard]] DeviceIndex device() const noexcept { return device_; }
  [[nodiscard]] const SearchSpace& space() const noexcept {
    return benchmark_->space();
  }
  [[nodiscard]] Measurement evaluate(const Config& config) const {
    return benchmark_->evaluate(config, device_);
  }

 private:
  const Benchmark* benchmark_;
  DeviceIndex device_;
};

/// One evaluation in the trace.
struct TraceEntry {
  ConfigIndex index;
  double objective;
};

class BudgetExhausted : public std::runtime_error {
 public:
  BudgetExhausted() : std::runtime_error("evaluation budget exhausted") {}
};

class CachingEvaluator {
 public:
  /// budget = maximum number of *distinct* configurations evaluated;
  /// cache hits are free, matching how tuners are usually charged.
  CachingEvaluator(const TuningProblem& problem, std::size_t budget);

  /// Evaluates (or recalls) a configuration. Throws BudgetExhausted when a
  /// cache miss would exceed the budget; tuners use this as their stop
  /// signal.
  double operator()(const Config& config);

  [[nodiscard]] std::size_t evaluations() const noexcept {
    return trace_.size();
  }
  [[nodiscard]] std::size_t budget() const noexcept { return budget_; }
  [[nodiscard]] bool exhausted() const noexcept {
    return trace_.size() >= budget_;
  }

  /// Chronological distinct-evaluation trace.
  [[nodiscard]] const std::vector<TraceEntry>& trace() const noexcept {
    return trace_;
  }

  /// Best (lowest-objective) evaluation so far, if any finite one exists.
  [[nodiscard]] std::optional<TraceEntry> best() const noexcept;

  /// best-so-far objective after each distinct evaluation (length ==
  /// evaluations()); used directly by convergence analysis.
  [[nodiscard]] std::vector<double> best_so_far() const;

  [[nodiscard]] const TuningProblem& problem() const noexcept {
    return problem_;
  }

 private:
  TuningProblem problem_;
  std::size_t budget_;
  std::unordered_map<ConfigIndex, double> cache_;
  std::vector<TraceEntry> trace_;
};

}  // namespace bat::core
