#include "core/param_space.hpp"

#include <limits>
#include <stdexcept>

#include "common/contracts.hpp"

namespace bat::core {

ParamSpace::ParamSpace(std::vector<Parameter> params)
    : params_(std::move(params)) {
  rebuild_index();
}

ParamSpace& ParamSpace::add(Parameter param) {
  params_.push_back(std::move(param));
  rebuild_index();
  return *this;
}

void ParamSpace::rebuild_index() {
  name_to_index_.clear();
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const bool inserted =
        name_to_index_.emplace(params_[i].name(), i).second;
    if (!inserted) {
      throw std::invalid_argument("duplicate parameter name: " +
                                  params_[i].name());
    }
  }
  strides_.assign(params_.size(), 1);
  cardinality_ = 1;
  for (std::size_t i = params_.size(); i-- > 0;) {
    strides_[i] = cardinality_;
    const auto radix = static_cast<ConfigIndex>(params_[i].cardinality());
    if (radix != 0 &&
        cardinality_ > std::numeric_limits<ConfigIndex>::max() / radix) {
      throw std::overflow_error("parameter space cardinality overflows 64 bits");
    }
    cardinality_ *= radix;
  }
}

const Parameter& ParamSpace::param(std::size_t i) const {
  BAT_EXPECTS(i < params_.size());
  return params_[i];
}

std::size_t ParamSpace::index_of(const std::string& name) const {
  const auto it = name_to_index_.find(name);
  if (it == name_to_index_.end()) {
    throw std::out_of_range("no parameter named '" + name + "'");
  }
  return it->second;
}

bool ParamSpace::has_param(const std::string& name) const noexcept {
  return name_to_index_.count(name) != 0;
}

std::vector<std::string> ParamSpace::param_names() const {
  std::vector<std::string> names;
  names.reserve(params_.size());
  for (const auto& p : params_) names.push_back(p.name());
  return names;
}

Config ParamSpace::config_at(ConfigIndex index) const {
  Config out;
  decode_into(index, out);
  return out;
}

void ParamSpace::decode_into(ConfigIndex index, Config& out) const {
  BAT_EXPECTS(index < cardinality_);
  out.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const auto radix = static_cast<ConfigIndex>(params_[i].cardinality());
    const ConfigIndex digit = (index / strides_[i]) % radix;
    out[i] = params_[i].values()[static_cast<std::size_t>(digit)];
  }
}

ConfigIndex ParamSpace::index_of_config(const Config& config) const {
  BAT_EXPECTS(config.size() == params_.size());
  ConfigIndex index = 0;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    index += strides_[i] *
             static_cast<ConfigIndex>(params_[i].index_of(config[i]));
  }
  return index;
}

bool ParamSpace::contains(const Config& config) const noexcept {
  if (config.size() != params_.size()) return false;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (!params_[i].contains(config[i])) return false;
  }
  return true;
}

Config ParamSpace::random_config(common::Rng& rng) const {
  BAT_EXPECTS(cardinality_ > 0);
  return config_at(rng.next_below(cardinality_));
}

std::vector<Config> ParamSpace::neighbors(const Config& config) const {
  BAT_EXPECTS(config.size() == params_.size());
  std::vector<Config> out;
  std::size_t total = 0;
  for (const auto& p : params_) total += p.cardinality() - 1;
  out.reserve(total);
  for_each_neighbor(config, [&](const Config& n) { out.push_back(n); });
  return out;
}

std::string ParamSpace::describe(const Config& config) const {
  BAT_EXPECTS(config.size() == params_.size());
  std::string out;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (i > 0) out += ", ";
    out += params_[i].name();
    out += '=';
    out += std::to_string(config[i]);
  }
  return out;
}

}  // namespace bat::core
