// Cross-session measurement sharing: the seam the service layer plugs
// into the per-session evaluation stack.
//
// SharedMeasurementCache is an abstract exactly-once memoization
// protocol over ConfigIndex. Many concurrent tuning sessions on the same
// (space, device) pair tend to probe overlapping configurations (local
// minima attract every neighbor-driven tuner); the cache lets the first
// session to reach a configuration evaluate it and every later session
// reuse the measurement. The protocol is claim-based so that *exactly
// one* session evaluates each distinct configuration, with no global
// lock around the (potentially slow) evaluation itself:
//
//   claim(i)  -> kHit      the measurement is ready, use it;
//             -> kClaimed  the caller now owns the evaluation of i and
//                          MUST publish(i, m) or abandon(i);
//             -> kPending  another session owns i; call wait(i) later.
//   wait(i)   -> blocks until i is published (returns the measurement)
//                or abandoned (returns nullopt: re-claim and retry).
//
// Deadlock-freedom contract for callers evaluating a batch: first claim
// every miss without blocking, then evaluate and publish all owned
// claims, and only then wait() for the pending ones. A claim owner never
// blocks on another session while holding claims, so every pending entry
// resolves in finite time. CountingBackend implements this dance; see
// CountingBackend::evaluate_batch.
//
// Ownership / thread-safety: implementations must be fully thread-safe
// (every method may be called from any thread concurrently); the cache
// does not own the backend that produces measurements, and callers must
// keep the cache alive for as long as any session holds a pointer to it.
// The concrete sharded implementation lives in
// service/sharded_cache.hpp.
#pragma once

#include <atomic>
#include <optional>

#include "core/measurement.hpp"
#include "core/types.hpp"

namespace bat::core {

class SharedMeasurementCache {
 public:
  virtual ~SharedMeasurementCache() = default;

  enum class ClaimState {
    kHit,      // measurement was ready; Claim::measurement is filled
    kClaimed,  // caller owns evaluating this index: publish() or abandon()
    kPending,  // another caller is evaluating it: wait() for the result
  };

  struct Claim {
    ClaimState state = ClaimState::kClaimed;
    Measurement measurement;  // meaningful only when state == kHit
  };

  /// Non-blocking claim of `index` (see the protocol above).
  [[nodiscard]] virtual Claim claim(ConfigIndex index) = 0;

  /// Fulfills a claim previously returned as kClaimed. Wakes waiters.
  virtual void publish(ConfigIndex index, const Measurement& m) = 0;

  /// Releases a kClaimed entry without a measurement (the evaluation
  /// threw); waiters wake and re-claim.
  virtual void abandon(ConfigIndex index) = 0;

  /// Blocks until `index` is published (returns the measurement) or its
  /// claim is abandoned (returns nullopt — re-claim and retry). Calling
  /// wait() on an index nobody claimed returns nullopt immediately.
  [[nodiscard]] virtual std::optional<Measurement> wait(ConfigIndex index) = 0;
};

/// Optional per-session hooks threaded from the service layer down into
/// CountingBackend (and therefore CachingEvaluator / run_tuner). Both
/// pointers are borrowed: the service owning the session must keep them
/// alive for the whole run. Defaults reproduce the standalone behavior
/// exactly — no sharing, no cancellation.
struct EvaluationHooks {
  /// Cross-session cache; measurements are published to and recalled
  /// from it, but budget/trace accounting is unchanged (a shared hit is
  /// still charged to this session's budget, so traces are identical
  /// with and without the cache — backends are deterministic).
  SharedMeasurementCache* shared_cache = nullptr;

  /// Cooperative cancellation flag, checked at every batch boundary;
  /// when set, the next evaluate_batch throws EvaluationCancelled
  /// (a BudgetExhausted subclass, so tuners stop gracefully with the
  /// partial trace they have).
  const std::atomic<bool>* cancel = nullptr;
};

}  // namespace bat::core
