// SearchSpace = ParamSpace + static constraints.
//
// Provides the three operations the experiments need at scale:
//  * count_constrained(): valid-set count for enumerable spaces, parallel
//    count over the full product otherwise (Table VIII "Constrained";
//    up to 1.2e8 configurations)
//  * enumerate_constrained(): materialize all valid indices (used for the
//    exhaustively-searched benchmarks: Pnpoly, Nbody, GEMM, Convolution)
//  * sample_constrained(): n distinct valid configs — a density-aware
//    rank/select draw when the compiled valid set is materialized,
//    bounded rejection with an enumeration fallback otherwise
//    (the 10 000-random-configuration datasets of Hotspot/Dedisp/Expdist)
//
// compiled() exposes the index-space core (core/compiled_space.hpp): the
// space compiled once into value tables + strides, a per-parameter
// constraint plan and (for enumerable spaces) the CSR valid-index set.
//
// Ownership / thread-safety: SearchSpace is a copyable value, but all
// copies share one lazily-compiled CompiledSpace — compiled() /
// compiled_shared() are thread-safe and compile exactly once; always
// obtain the compiled core through them (see the sharing rule in
// core/compiled_space.hpp). The space itself is immutable after
// construction and safe for concurrent reads.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "core/constraint.hpp"
#include "core/param_space.hpp"

namespace bat::core {

class CompiledSpace;

class SearchSpace {
 public:
  SearchSpace() = default;
  SearchSpace(ParamSpace space, ConstraintSet constraints)
      : space_(std::move(space)), constraints_(std::move(constraints)) {}

  // The compiled cache is immutable and self-contained, so copies can
  // share it; the mutex member just isn't copyable by default.
  SearchSpace(const SearchSpace& other)
      : space_(other.space_),
        constraints_(other.constraints_),
        compiled_(other.compiled_snapshot()) {}
  SearchSpace(SearchSpace&& other) noexcept
      : space_(std::move(other.space_)),
        constraints_(std::move(other.constraints_)),
        compiled_(other.compiled_snapshot()) {}
  SearchSpace& operator=(const SearchSpace& other) {
    if (this != &other) {
      space_ = other.space_;
      constraints_ = other.constraints_;
      set_compiled(other.compiled_snapshot());
    }
    return *this;
  }
  SearchSpace& operator=(SearchSpace&& other) noexcept {
    if (this != &other) {
      space_ = std::move(other.space_);
      constraints_ = std::move(other.constraints_);
      set_compiled(other.compiled_snapshot());
    }
    return *this;
  }

  [[nodiscard]] const ParamSpace& params() const noexcept { return space_; }
  [[nodiscard]] const ConstraintSet& constraints() const noexcept {
    return constraints_;
  }

  [[nodiscard]] ConfigIndex cardinality() const noexcept {
    return space_.cardinality();
  }

  /// The index-space core, compiled on first use (thread-safe) and
  /// shared by every copy of this SearchSpace. Stays valid even if this
  /// SearchSpace is destroyed (callers may keep the reference only while
  /// either the SearchSpace or another owner of the shared compilation
  /// is alive; backends cache the pointer under that contract).
  [[nodiscard]] const CompiledSpace& compiled() const;

  /// Shared-ownership form of compiled(): holders (e.g. ReplayBackend)
  /// keep the compilation alive independently of this SearchSpace's
  /// lifetime or later reassignment.
  [[nodiscard]] std::shared_ptr<const CompiledSpace> compiled_shared() const;

  [[nodiscard]] bool is_valid(const Config& config) const {
    return space_.contains(config) && constraints_.satisfied(config);
  }
  [[nodiscard]] bool is_valid_index(ConfigIndex index) const {
    return constraints_.satisfied(space_.config_at(index));
  }

  /// Count of constraint-satisfying configurations: O(1) off the
  /// compiled valid set for enumerable spaces, parallel sweep otherwise.
  [[nodiscard]] std::uint64_t count_constrained() const;

  /// All valid ConfigIndex values, ascending. Only call on spaces small
  /// enough to materialize (the paper's exhaustive benchmarks are <= 82 944
  /// configurations before constraints).
  [[nodiscard]] std::vector<ConfigIndex> enumerate_constrained() const;

  /// n distinct valid configurations (deterministic given `rng`). If
  /// fewer than n valid configs exist, returns all of them — including
  /// an empty vector when the constraints are contradictory; this never
  /// spins on near-empty valid sets.
  [[nodiscard]] std::vector<ConfigIndex> sample_constrained(
      std::size_t n, common::Rng& rng) const;

  /// One uniformly random valid index. A single rank-select draw on
  /// enumerable spaces; bounded rejection on streamed ones. Throws
  /// std::runtime_error when no valid configuration exists (or rejection
  /// exhausts its attempt bound).
  [[nodiscard]] ConfigIndex random_valid_index(common::Rng& rng) const;

  /// One uniformly random valid configuration (decoded form of
  /// random_valid_index).
  [[nodiscard]] Config random_valid_config(common::Rng& rng) const;

  /// Valid Hamming-1 neighbors of a configuration, materialized as value
  /// vectors. Index-native callers use
  /// compiled().for_each_valid_neighbor_index instead (no per-step
  /// Config allocation); this form remains the reference for parity
  /// tests and the seed benchmarks.
  [[nodiscard]] std::vector<Config> valid_neighbors(const Config& config) const;

 private:
  [[nodiscard]] std::shared_ptr<const CompiledSpace> compiled_snapshot() const {
    std::lock_guard<std::mutex> lock(compiled_mutex_);
    return compiled_;
  }
  void set_compiled(std::shared_ptr<const CompiledSpace> compiled) {
    std::lock_guard<std::mutex> lock(compiled_mutex_);
    compiled_ = std::move(compiled);
  }

  ParamSpace space_;
  ConstraintSet constraints_;
  mutable std::shared_ptr<const CompiledSpace> compiled_;
  mutable std::mutex compiled_mutex_;
};

}  // namespace bat::core
