// SearchSpace = ParamSpace + static constraints.
//
// Provides the three operations the experiments need at scale:
//  * count_constrained(): parallel count over the full product
//    (Table VIII "Constrained"; up to 1.2e8 configurations)
//  * enumerate_constrained(): materialize all valid indices (used for the
//    exhaustively-searched benchmarks: Pnpoly, Nbody, GEMM, Convolution)
//  * sample_constrained(): rejection-sample n distinct valid configs
//    (the 10 000-random-configuration datasets of Hotspot/Dedisp/Expdist)
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/constraint.hpp"
#include "core/param_space.hpp"

namespace bat::core {

class SearchSpace {
 public:
  SearchSpace() = default;
  SearchSpace(ParamSpace space, ConstraintSet constraints)
      : space_(std::move(space)), constraints_(std::move(constraints)) {}

  [[nodiscard]] const ParamSpace& params() const noexcept { return space_; }
  [[nodiscard]] const ConstraintSet& constraints() const noexcept {
    return constraints_;
  }

  [[nodiscard]] ConfigIndex cardinality() const noexcept {
    return space_.cardinality();
  }

  [[nodiscard]] bool is_valid(const Config& config) const {
    return space_.contains(config) && constraints_.satisfied(config);
  }
  [[nodiscard]] bool is_valid_index(ConfigIndex index) const {
    return constraints_.satisfied(space_.config_at(index));
  }

  /// Parallel count of constraint-satisfying configurations.
  [[nodiscard]] std::uint64_t count_constrained() const;

  /// All valid ConfigIndex values, ascending. Only call on spaces small
  /// enough to materialize (the paper's exhaustive benchmarks are <= 82 944
  /// configurations before constraints).
  [[nodiscard]] std::vector<ConfigIndex> enumerate_constrained() const;

  /// n distinct valid configurations by rejection sampling from the full
  /// product (deterministic given `rng`). If fewer than n valid configs
  /// exist, returns all of them.
  [[nodiscard]] std::vector<ConfigIndex> sample_constrained(
      std::size_t n, common::Rng& rng) const;

  /// One uniformly random valid configuration (rejection sampling).
  [[nodiscard]] Config random_valid_config(common::Rng& rng) const;

  /// Valid Hamming-1 neighbors of a configuration.
  [[nodiscard]] std::vector<Config> valid_neighbors(const Config& config) const;

 private:
  ParamSpace space_;
  ConstraintSet constraints_;
};

}  // namespace bat::core
