// ApiServer: the JSON API that turns a TuningService into a service.
//
// Routes (documented with transcripts in docs/http-api.md):
//
//   POST /v1/sessions        SessionSpec JSON -> 202 {"id",...}; the
//                            spec goes through TuningService::
//                            submit_tracked into the service's
//                            id-keyed registry (asynchronous path) —
//                            with `tune serve --journal-dir` the id is
//                            fsync-durable before the 202 leaves.
//   GET  /v1/sessions        registry listing: [{"id","state"},...]
//   GET  /v1/sessions/<id>   job status; when the future is ready the
//                            full SessionResult (trace included).
//   POST /v1/sessions:run    synchronous: run_inline on the handling
//                            connection's worker, full result back
//                            (untracked: no id, never journaled).
//   GET  /v1/stats           cache counters + session/HTTP counters,
//                            including traffic-policing sheds (429s,
//                            admission 503s, connection-cap refusals)
//                            and the journal's "durability" section.
//                            Every number is a registry series read at
//                            request time — /v1/metrics is the same
//                            data in Prometheus clothes.
//   GET  /v1/spaces          per-kernel search-space statistics.
//   GET  /v1/metrics         Prometheus text exposition (0.0.4) of the
//                            process registry (docs/observability.md).
//   GET  /v1/healthz         liveness: build id, uptime, ready |
//                            draining. Exempt from rate limiting (but
//                            not admission) so probes survive an
//                            aggressive scraper next door.
//   GET  /v1/sessions/<id>/trace
//                            span timeline of a tracked session.
//
// Error mapping: malformed JSON / bad spec -> 400, unknown path or job
// id -> 404, wrong method on a known path -> 405, submit after service
// shutdown -> 503; the transport adds 413/431 for oversize and 500 for
// handler escapes (net/http_server.hpp).
//
// The session registry lives in TuningService (not here) so that with
// a journal it survives restarts — results must outlive their session
// (and, journaled, the process) so a client can poll after completion.
// Bound: the journal's checkpoint retention evicts the oldest
// completed sessions, and the transport polices admission (per-client
// token buckets charge POST /v1/sessions* at 4x a status poll — see
// with_api_policy in api_server.cpp), which caps the growth rate.
//
// Thread-safety: handle() runs concurrently on HTTP workers;
// TuningService is thread-safe, and handle() is public precisely so
// tests can drive routes without sockets.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/http_server.hpp"
#include "obs/metrics.hpp"
#include "service/tuning_service.hpp"

namespace bat::cluster {
class ClusterNode;
}  // namespace bat::cluster

namespace bat::api {

struct ApiOptions {
  net::ServerOptions http;
  /// Joined cluster node (borrowed; must outlive the server). When set,
  /// /v1/peers/* delegates to ClusterNode::handle_peers and /v1/stats
  /// grows a "cluster" section. Null = single-node: /v1/peers/* is 404.
  cluster::ClusterNode* cluster = nullptr;
  /// The registry /v1/metrics renders. Null makes a private one — but
  /// then the exposition only carries the API server's own series;
  /// `tune serve` shares one registry across service, cluster, HTTP
  /// transport and here so the scrape sees the whole process.
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

class ApiServer {
 public:
  /// Borrows the service; it must outlive the ApiServer and is shared
  /// with any in-process users (tune serve builds both).
  explicit ApiServer(service::TuningService& service, ApiOptions options = {});
  ~ApiServer();  // stop()

  ApiServer(const ApiServer&) = delete;
  ApiServer& operator=(const ApiServer&) = delete;

  void start();
  void stop();
  [[nodiscard]] std::uint16_t port() const noexcept { return http_.port(); }

  /// The route dispatcher (also the HttpServer handler). Public for
  /// socket-free tests and benchmarks.
  [[nodiscard]] net::HttpResponse handle(const net::HttpRequest& request);

  [[nodiscard]] const net::HttpServer& http() const noexcept { return http_; }

 private:
  [[nodiscard]] net::HttpResponse post_session(const net::HttpRequest& req);
  [[nodiscard]] net::HttpResponse run_session(const net::HttpRequest& req);
  [[nodiscard]] net::HttpResponse get_session(const std::string& id) const;
  [[nodiscard]] net::HttpResponse get_trace(const std::string& id) const;
  [[nodiscard]] net::HttpResponse list_sessions() const;
  [[nodiscard]] net::HttpResponse get_stats() const;
  [[nodiscard]] net::HttpResponse get_metrics() const;
  [[nodiscard]] net::HttpResponse get_healthz() const;
  [[nodiscard]] static net::HttpResponse get_spaces();

  service::TuningService& service_;
  cluster::ClusterNode* cluster_;

  std::shared_ptr<obs::MetricsRegistry> metrics_;
  std::vector<obs::CallbackGuard> metric_guards_;

  net::HttpServer http_;  // last member: its workers call handle()
};

}  // namespace bat::api
