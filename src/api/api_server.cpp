#include "api/api_server.hpp"

#include <charconv>
#include <chrono>
#include <optional>
#include <string_view>
#include <utility>

#include "cluster/cluster_node.hpp"
#include "common/json.hpp"
#include "kernels/all_kernels.hpp"
#include "obs/build_info.hpp"
#include "obs/trace.hpp"
#include "service/session_json.hpp"

namespace bat::api {

using common::Json;
using common::JsonArray;
using common::JsonObject;

namespace {

net::HttpResponse json_response(int status, const Json& body) {
  net::HttpResponse response;
  response.status = status;
  response.headers.emplace_back("content-type", "application/json");
  response.body = body.dump();
  return response;
}

net::HttpResponse error_json(int status, std::string message) {
  JsonObject object;
  object.emplace("error", std::move(message));
  return json_response(status, Json(std::move(object)));
}

/// "123" -> 123; nullopt for anything that is not a pure decimal.
std::optional<std::uint64_t> parse_job_id(std::string_view text) {
  std::uint64_t id = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), id);
  if (text.empty() || ec != std::errc() ||
      ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return id;
}

/// Default token cost per request for the rate-limit buckets: session
/// submissions burn real tuning compute (up to 10^5 simulated launches
/// each), status polls are a map lookup. Charging them equally would
/// let a status-poll budget fund session spam; 4x is deliberately
/// coarse — the point is an ordering, not a calibration. Installed
/// only when the embedder did not set its own policy.
net::ServerOptions with_api_policy(
    net::ServerOptions http, std::shared_ptr<obs::MetricsRegistry> metrics) {
  if (!http.request_cost) {
    http.request_cost = [](const net::HttpRequest& request) {
      if (request.method == "POST" &&
          request.target.compare(0, 12, "/v1/sessions") == 0) {
        return 4.0;
      }
      return 1.0;
    };
  }
  if (!http.police_exempt) {
    // Liveness probes must answer while a scraper (or an attacker) has
    // the client's token bucket drained — exempt from the limiter, but
    // deliberately NOT from admission control: a server with every
    // worker wedged *should* fail its health check.
    http.police_exempt = [](const net::HttpRequest& request) {
      return request.method == "GET" &&
             request.target.compare(0, 11, "/v1/healthz") == 0;
    };
  }
  // One process registry: the transport's bat_http_* series land next
  // to everything else /v1/metrics renders.
  if (!http.metrics) http.metrics = std::move(metrics);
  return http;
}

}  // namespace

ApiServer::ApiServer(service::TuningService& service, ApiOptions options)
    : service_(service),
      cluster_(options.cluster),
      metrics_(options.metrics ? std::move(options.metrics)
                               : std::make_shared<obs::MetricsRegistry>()),
      http_(with_api_policy(std::move(options.http), metrics_),
            [this](const net::HttpRequest& request) {
              return handle(request);
            }) {
  using CallbackKind = obs::MetricsRegistry::CallbackKind;
  // bat_build_info: the Prometheus idiom for "which binary is this" —
  // constant 1, identity in the label.
  metric_guards_.push_back(metrics_->callback(
      "bat_build_info", "Build identity (value is always 1)",
      CallbackKind::kGauge, {{"build_id", obs::build_id()}},
      [] { return 1.0; }));
  metric_guards_.push_back(metrics_->callback(
      "bat_uptime_seconds", "Seconds since process start",
      CallbackKind::kGauge, {}, [] { return obs::uptime_seconds(); }));
  metric_guards_.push_back(metrics_->callback(
      "bat_trace_spans_recorded_total", "Spans recorded into the trace ring",
      CallbackKind::kCounter, {}, [] {
        return static_cast<double>(obs::trace_buffer().recorded());
      }));
  metric_guards_.push_back(metrics_->callback(
      "bat_trace_spans_dropped_total",
      "Spans overwritten by trace-ring wraparound", CallbackKind::kCounter,
      {}, [] {
        return static_cast<double>(obs::trace_buffer().dropped());
      }));
}

ApiServer::~ApiServer() { stop(); }

void ApiServer::start() { http_.start(); }

void ApiServer::stop() { http_.stop(); }

net::HttpResponse ApiServer::handle(const net::HttpRequest& request) {
  // The API takes no query parameters; tolerate (and ignore) them.
  std::string path = request.target.substr(0, request.target.find('?'));

  if (path == "/v1/sessions") {
    if (request.method == "POST") return post_session(request);
    if (request.method == "GET") return list_sessions();
    return error_json(405, "use GET or POST on /v1/sessions");
  }
  if (path == "/v1/sessions:run") {
    if (request.method != "POST") {
      return error_json(405, "use POST on /v1/sessions:run");
    }
    return run_session(request);
  }
  constexpr std::string_view kSessionPrefix = "/v1/sessions/";
  if (path.size() > kSessionPrefix.size() &&
      path.compare(0, kSessionPrefix.size(), kSessionPrefix) == 0) {
    if (request.method != "GET") {
      return error_json(405, "use GET on /v1/sessions/<id>");
    }
    std::string rest = path.substr(kSessionPrefix.size());
    constexpr std::string_view kTraceSuffix = "/trace";
    if (rest.size() > kTraceSuffix.size() &&
        rest.compare(rest.size() - kTraceSuffix.size(), kTraceSuffix.size(),
                     kTraceSuffix) == 0) {
      return get_trace(rest.substr(0, rest.size() - kTraceSuffix.size()));
    }
    return get_session(rest);
  }
  if (path == "/v1/stats") {
    if (request.method != "GET") {
      return error_json(405, "use GET on /v1/stats");
    }
    return get_stats();
  }
  if (path == "/v1/metrics") {
    if (request.method != "GET") {
      return error_json(405, "use GET on /v1/metrics");
    }
    return get_metrics();
  }
  if (path == "/v1/healthz") {
    if (request.method != "GET") {
      return error_json(405, "use GET on /v1/healthz");
    }
    return get_healthz();
  }
  if (path == "/v1/spaces") {
    if (request.method != "GET") {
      return error_json(405, "use GET on /v1/spaces");
    }
    return get_spaces();
  }
  constexpr std::string_view kPeersPrefix = "/v1/peers/";
  if (path.compare(0, kPeersPrefix.size(), kPeersPrefix) == 0) {
    if (!cluster_) {
      return error_json(404, "not clustered (start with --peers)");
    }
    return cluster_->handle_peers(request);
  }
  return error_json(404, "no such endpoint: " + path);
}

net::HttpResponse ApiServer::post_session(const net::HttpRequest& request) {
  service::SessionSpec spec;
  try {
    spec = service::spec_from_json(Json::parse(request.body));
  } catch (const std::exception& e) {
    return error_json(400, e.what());
  }

  std::uint64_t id = 0;
  try {
    // May block while the service backlog is at capacity — that *is*
    // the backpressure: this HTTP worker (and therefore this client)
    // waits its turn. With a journal, the id is durable before
    // submit_tracked returns — the 202 below is a real promise.
    id = service_.submit_tracked(std::move(spec));
  } catch (const std::exception& e) {
    return error_json(503, e.what());
  }

  JsonObject object;
  object.emplace("id", std::to_string(id));
  object.emplace("state", "pending");
  object.emplace("href", "/v1/sessions/" + std::to_string(id));
  return json_response(202, Json(std::move(object)));
}

net::HttpResponse ApiServer::run_session(const net::HttpRequest& request) {
  service::SessionSpec spec;
  try {
    spec = service::spec_from_json(Json::parse(request.body));
  } catch (const std::exception& e) {
    return error_json(400, e.what());
  }
  try {
    return json_response(200, service::to_json(service_.run_inline(spec)));
  } catch (const std::exception& e) {
    return error_json(503, e.what());  // service shut down
  }
}

net::HttpResponse ApiServer::get_session(const std::string& id_text) const {
  const auto id = parse_job_id(id_text);
  if (!id) return error_json(400, "job id must be decimal digits");
  const auto job = service_.tracked(*id);
  if (!job) return error_json(404, "no such session: " + id_text);
  JsonObject object;
  object.emplace("id", id_text);
  if (job->future.wait_for(std::chrono::seconds(0)) ==
      std::future_status::ready) {
    object.emplace("state", "done");
    object.emplace("result", service::to_json(job->future.get()));
  } else {
    object.emplace("state", "pending");
    object.emplace("spec", service::to_json(job->spec));
  }
  return json_response(200, Json(std::move(object)));
}

net::HttpResponse ApiServer::get_trace(const std::string& id_text) const {
  const auto id = parse_job_id(id_text);
  if (!id) return error_json(400, "job id must be decimal digits");
  const auto job = service_.tracked(*id);
  if (!job) return error_json(404, "no such session: " + id_text);
  if (job->trace_id == 0) {
    // Sessions restored from the journal as already-completed never
    // ran in this process: there is no timeline to show.
    return error_json(404, "session " + id_text +
                               " has no trace in this process");
  }
  const auto spans = obs::trace_buffer().for_trace(job->trace_id);
  JsonArray span_json;
  // Timestamps are relative to the trace's first surviving span: what
  // a reader wants is offsets within the session, not process uptime.
  const std::uint64_t t0 = spans.empty() ? 0 : spans.front().start_ns;
  for (const auto& span : spans) {
    JsonObject entry;
    entry.emplace("name", span.name);
    if (!span.detail.empty()) entry.emplace("detail", span.detail);
    entry.emplace("start_us", (span.start_ns - t0) / 1000);
    entry.emplace("duration_us", (span.end_ns - span.start_ns) / 1000);
    span_json.emplace_back(std::move(entry));
  }
  JsonObject object;
  object.emplace("id", id_text);
  object.emplace("trace_id", job->trace_id);
  object.emplace("spans", Json(std::move(span_json)));
  return json_response(200, Json(std::move(object)));
}

net::HttpResponse ApiServer::get_metrics() const {
  net::HttpResponse response;
  response.status = 200;
  response.headers.emplace_back(
      "content-type", "text/plain; version=0.0.4; charset=utf-8");
  response.body = metrics_->render_prometheus();
  return response;
}

net::HttpResponse ApiServer::get_healthz() const {
  JsonObject object;
  object.emplace("status",
                 service_.accepting() ? "ready" : "draining");
  object.emplace("build_id", obs::build_id());
  object.emplace("uptime_seconds", obs::uptime_seconds());
  return json_response(200, Json(std::move(object)));
}

net::HttpResponse ApiServer::list_sessions() const {
  JsonArray sessions;
  for (const auto& [id, done] : service_.tracked_sessions()) {
    JsonObject entry;
    entry.emplace("id", std::to_string(id));
    entry.emplace("state", done ? "done" : "pending");
    sessions.emplace_back(std::move(entry));
  }
  JsonObject object;
  object.emplace("sessions", Json(std::move(sessions)));
  return json_response(200, Json(std::move(object)));
}

net::HttpResponse ApiServer::get_stats() const {
  const auto cache = service_.cache_stats();
  JsonObject cache_json;
  cache_json.emplace("lookups", cache.lookups);
  cache_json.emplace("hits", cache.hits);
  cache_json.emplace("waited", cache.waited);
  cache_json.emplace("evaluations", cache.evaluations);
  cache_json.emplace("abandoned", cache.abandoned);
  cache_json.emplace("cross_session_hits", cache.cross_session_hits());

  JsonObject http_json;
  http_json.emplace("connections_accepted", http_.connections_accepted());
  http_json.emplace("requests_served", http_.requests_served());
  http_json.emplace("connections_open", http_.connections_open());
  // Policing counters: how much load the admission layer turned away
  // (429 rate limits, 503 admission sheds, 503-and-close at the
  // connection cap). Flat goodput under a rising one of these is the
  // overload behavior working as designed.
  http_json.emplace("requests_rate_limited", http_.requests_rate_limited());
  http_json.emplace("requests_shed", http_.requests_shed());
  http_json.emplace("connections_over_capacity",
                    http_.connections_over_capacity());

  // Journal counters (docs/durability.md). "enabled": false is the
  // whole section for a memory-only registry, so dashboards can alert
  // on a node accidentally started without its journal.
  const auto durability = service_.durability_stats();
  JsonObject durability_json;
  durability_json.emplace("enabled", durability.enabled);
  if (durability.enabled) {
    durability_json.emplace("journal_bytes", durability.file_bytes);
    durability_json.emplace("records_appended", durability.records_appended);
    durability_json.emplace("commits", durability.commits);
    durability_json.emplace("checkpoints", durability.checkpoints);
    durability_json.emplace("recovered_pending",
                            durability.recovered_pending);
    durability_json.emplace("restored_completed",
                            durability.restored_completed);
    durability_json.emplace("evicted_completed",
                            durability.evicted_completed);
    durability_json.emplace("replay_dropped_bytes",
                            durability.replay_dropped_bytes);
  }

  // JIT compile-cost counters, aggregated over every "jit" workload.
  // artifact_cache_hits rising while compiles stays flat is the
  // content-addressed cache doing its job across sessions/restarts.
  const auto jit = service_.jit_stats();
  JsonObject jit_json;
  jit_json.emplace("backends", jit.backends);
  jit_json.emplace("evaluations", jit.evaluations);
  jit_json.emplace("fallback_evals", jit.fallback_evals);
  jit_json.emplace("compiles", jit.compiles);
  jit_json.emplace("compile_failures", jit.compile_failures);
  jit_json.emplace("compile_ms", jit.compile_ms);
  jit_json.emplace("artifact_cache_hits", jit.artifact_cache_hits);
  jit_json.emplace("artifact_cache_misses", jit.artifact_cache_misses);
  jit_json.emplace("corrupt_rebuilds", jit.corrupt_rebuilds);
  jit_json.emplace("evictions", jit.evictions);

  JsonObject object;
  object.emplace("workers", static_cast<std::uint64_t>(service_.workers()));
  object.emplace("sessions_submitted",
                 static_cast<std::uint64_t>(service_.sessions_submitted()));
  object.emplace("sessions_active",
                 static_cast<std::uint64_t>(service_.sessions_active()));
  object.emplace("cache", Json(std::move(cache_json)));
  object.emplace("jit", Json(std::move(jit_json)));
  object.emplace("durability", Json(std::move(durability_json)));
  object.emplace("http", Json(std::move(http_json)));
  if (cluster_) object.emplace("cluster", cluster_->stats_json());
  return json_response(200, Json(std::move(object)));
}

net::HttpResponse ApiServer::get_spaces() {
  // Compile-once: the statistics are process-lifetime constants, and
  // recompiling seven spaces (constraint sweeps up to 2^20 configs)
  // per GET would hand a hostile poller free CPU burn.
  static const net::HttpResponse cached = [] {
    JsonArray spaces;
    for (const auto& name : kernels::paper_benchmark_names()) {
      const auto bench = kernels::make(name);
      const auto& compiled = bench->space().compiled();
      JsonObject entry;
      entry.emplace("kernel", name);
      entry.emplace("params",
                    static_cast<std::uint64_t>(compiled.num_params()));
      entry.emplace("cardinality", compiled.cardinality());
      if (compiled.has_valid_set()) {
        entry.emplace("valid", compiled.num_valid());
        entry.emplace("mode", "materialized");
      } else {
        entry.emplace("valid", nullptr);
        entry.emplace("mode", "streamed");
      }
      spaces.emplace_back(std::move(entry));
    }
    JsonObject object;
    object.emplace("spaces", Json(std::move(spaces)));
    return json_response(200, Json(std::move(object)));
  }();
  return cached;
}

}  // namespace bat::api
