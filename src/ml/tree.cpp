#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"

namespace bat::ml {

namespace {

struct SplitCandidate {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
};

}  // namespace

void RegressionTree::fit(const Matrix& x, std::span<const double> y,
                         std::span<const std::size_t> sample_rows,
                         const TreeParams& params) {
  BAT_EXPECTS(x.rows() == y.size());
  BAT_EXPECTS(!sample_rows.empty());
  nodes_.clear();
  std::vector<std::size_t> rows(sample_rows.begin(), sample_rows.end());
  build(x, y, rows, 0, rows.size(), 0, params);
}

int RegressionTree::build(const Matrix& x, std::span<const double> y,
                          std::vector<std::size_t>& rows, std::size_t begin,
                          std::size_t end, int depth,
                          const TreeParams& params) {
  const std::size_t n = end - begin;
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += y[rows[i]];
  const double mean = sum / static_cast<double>(n);

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_index].value = mean;

  if (depth >= params.max_depth || n < 2 * params.min_samples_leaf) {
    return node_index;
  }

  // Exact best split: for each feature, sort the slice by value and scan
  // prefix sums. Feature value sets in BAT are small and discrete, so
  // this is cheap and deterministic.
  SplitCandidate best;
  std::vector<std::pair<double, double>> vals;  // (feature value, target)
  vals.reserve(n);
  for (std::size_t f = 0; f < x.cols(); ++f) {
    vals.clear();
    for (std::size_t i = begin; i < end; ++i) {
      vals.emplace_back(x(rows[i], f), y[rows[i]]);
    }
    std::sort(vals.begin(), vals.end());
    if (vals.front().first == vals.back().first) continue;  // constant

    double left_sum = 0.0;
    const double total_sum = sum;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      left_sum += vals[i].second;
      if (vals[i].first == vals[i + 1].first) continue;  // not a boundary
      const std::size_t nl = i + 1;
      const std::size_t nr = n - nl;
      if (nl < params.min_samples_leaf || nr < params.min_samples_leaf) {
        continue;
      }
      const double right_sum = total_sum - left_sum;
      // Variance-reduction gain (up to constants): sum^2/n terms.
      const double gain = left_sum * left_sum / static_cast<double>(nl) +
                          right_sum * right_sum / static_cast<double>(nr) -
                          total_sum * total_sum / static_cast<double>(n);
      if (gain > best.gain) {
        best.feature = static_cast<int>(f);
        best.threshold = 0.5 * (vals[i].first + vals[i + 1].first);
        best.gain = gain;
      }
    }
  }

  if (best.feature < 0 || best.gain <= params.min_gain) {
    return node_index;
  }

  // Partition rows in place.
  const auto mid_it = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin),
      rows.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t r) {
        return x(r, static_cast<std::size_t>(best.feature)) <= best.threshold;
      });
  const auto mid =
      static_cast<std::size_t>(mid_it - rows.begin());
  if (mid == begin || mid == end) return node_index;  // degenerate

  nodes_[node_index].feature = best.feature;
  nodes_[node_index].threshold = best.threshold;
  nodes_[node_index].gain = best.gain;
  const int left = build(x, y, rows, begin, mid, depth + 1, params);
  const int right = build(x, y, rows, mid, end, depth + 1, params);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

double RegressionTree::predict(std::span<const double> features) const {
  BAT_EXPECTS(!nodes_.empty());
  int idx = 0;
  while (nodes_[static_cast<std::size_t>(idx)].feature >= 0) {
    const auto& node = nodes_[static_cast<std::size_t>(idx)];
    const double v = features[static_cast<std::size_t>(node.feature)];
    idx = v <= node.threshold ? node.left : node.right;
  }
  return nodes_[static_cast<std::size_t>(idx)].value;
}

std::vector<double> RegressionTree::split_gains(
    std::size_t num_features) const {
  std::vector<double> gains(num_features, 0.0);
  for (const auto& node : nodes_) {
    if (node.feature >= 0) {
      gains[static_cast<std::size_t>(node.feature)] += node.gain;
    }
  }
  return gains;
}

}  // namespace bat::ml
