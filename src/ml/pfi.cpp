#include "ml/pfi.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace bat::ml {

PfiResult permutation_importance(const GbdtRegressor& model, const Matrix& x,
                                 std::span<const double> y,
                                 const PfiOptions& options) {
  BAT_EXPECTS(model.trained());
  BAT_EXPECTS(x.rows() == y.size());
  BAT_EXPECTS(options.repeats >= 1);

  PfiResult result;
  const auto baseline_pred = model.predict_all(x);
  result.baseline_r2 = r2_score(y, baseline_pred);
  result.importance.assign(x.cols(), 0.0);

  common::Rng rng(options.seed);
  std::vector<std::size_t> perm(x.rows());
  for (std::size_t f = 0; f < x.cols(); ++f) {
    double drop_sum = 0.0;
    for (std::size_t rep = 0; rep < options.repeats; ++rep) {
      for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
      rng.shuffle(perm);
      const Matrix shuffled = x.with_permuted_column(f, perm);
      const auto pred = model.predict_all(shuffled);
      drop_sum += result.baseline_r2 - r2_score(y, pred);
    }
    result.importance[f] =
        std::max(0.0, drop_sum / static_cast<double>(options.repeats));
  }
  return result;
}

}  // namespace bat::ml
