#include "ml/matrix.hpp"

namespace bat::ml {

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  BAT_EXPECTS(!rows.empty());
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    BAT_EXPECTS(rows[r].size() == m.cols());
    for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::with_permuted_column(
    std::size_t c, const std::vector<std::size_t>& perm) const {
  BAT_EXPECTS(c < cols_);
  BAT_EXPECTS(perm.size() == rows_);
  Matrix out = *this;
  for (std::size_t r = 0; r < rows_; ++r) {
    out(r, c) = (*this)(perm[r], c);
  }
  return out;
}

TrainTestSplit train_test_split(const Matrix& x, std::span<const double> y,
                                double test_fraction, std::uint64_t seed) {
  BAT_EXPECTS(x.rows() == y.size());
  BAT_EXPECTS(test_fraction > 0.0 && test_fraction < 1.0);
  BAT_EXPECTS(x.rows() >= 2);

  std::vector<std::size_t> order(x.rows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  common::Rng rng(seed);
  rng.shuffle(order);

  auto n_test = static_cast<std::size_t>(
      static_cast<double>(x.rows()) * test_fraction);
  n_test = std::max<std::size_t>(1, std::min(n_test, x.rows() - 1));
  const std::size_t n_train = x.rows() - n_test;

  TrainTestSplit split;
  split.x_train = Matrix(n_train, x.cols());
  split.x_test = Matrix(n_test, x.cols());
  split.y_train.reserve(n_train);
  split.y_test.reserve(n_test);
  for (std::size_t i = 0; i < n_train; ++i) {
    const std::size_t src = order[i];
    for (std::size_t c = 0; c < x.cols(); ++c) {
      split.x_train(i, c) = x(src, c);
    }
    split.y_train.push_back(y[src]);
  }
  for (std::size_t i = 0; i < n_test; ++i) {
    const std::size_t src = order[n_train + i];
    for (std::size_t c = 0; c < x.cols(); ++c) {
      split.x_test(i, c) = x(src, c);
    }
    split.y_test.push_back(y[src]);
  }
  return split;
}

}  // namespace bat::ml
