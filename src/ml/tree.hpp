// CART regression tree with exact splits over the (few, discrete)
// distinct values each feature takes in BAT datasets.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/matrix.hpp"

namespace bat::ml {

struct TreeParams {
  int max_depth = 6;
  std::size_t min_samples_leaf = 5;
  double min_gain = 1e-12;
};

class RegressionTree {
 public:
  /// Fits on the rows of x listed in `sample_rows` (gradient targets in
  /// `y`, aligned with x's rows).
  void fit(const Matrix& x, std::span<const double> y,
           std::span<const std::size_t> sample_rows, const TreeParams& params);

  [[nodiscard]] double predict(std::span<const double> features) const;

  [[nodiscard]] bool trained() const noexcept { return !nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

  /// Total squared-error gain contributed by splits on each feature
  /// (tree-internal importance; PFI is computed separately).
  [[nodiscard]] std::vector<double> split_gains(std::size_t num_features) const;

 private:
  struct Node {
    int feature = -1;          // -1 => leaf
    double threshold = 0.0;    // go left if value <= threshold
    double value = 0.0;        // leaf prediction
    double gain = 0.0;         // split gain (internal nodes)
    int left = -1;
    int right = -1;
  };

  int build(const Matrix& x, std::span<const double> y,
            std::vector<std::size_t>& rows, std::size_t begin,
            std::size_t end, int depth, const TreeParams& params);

  std::vector<Node> nodes_;
};

}  // namespace bat::ml
