#include "ml/gbdt.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"

namespace bat::ml {

void GbdtRegressor::fit(const Matrix& x, std::span<const double> y,
                        bool log_target) {
  BAT_EXPECTS(x.rows() == y.size());
  BAT_EXPECTS(x.rows() >= 2);
  trees_.clear();
  log_target_ = log_target;

  std::vector<double> target(y.begin(), y.end());
  if (log_target_) {
    for (double& v : target) {
      BAT_EXPECTS(v > 0.0);
      v = std::log(v);
    }
  }

  double sum = 0.0;
  for (const double v : target) sum += v;
  base_prediction_ = sum / static_cast<double>(target.size());

  std::vector<double> residual(target.size());
  std::vector<double> current(target.size(), base_prediction_);
  common::Rng rng(params_.seed);

  const auto sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(x.rows()) * params_.subsample));

  trees_.reserve(params_.num_trees);
  for (std::size_t t = 0; t < params_.num_trees; ++t) {
    for (std::size_t i = 0; i < target.size(); ++i) {
      residual[i] = target[i] - current[i];
    }
    const auto rows = params_.subsample >= 1.0
                          ? [&] {
                              std::vector<std::size_t> all(x.rows());
                              for (std::size_t i = 0; i < all.size(); ++i)
                                all[i] = i;
                              return all;
                            }()
                          : rng.sample_indices(x.rows(), sample_size);
    RegressionTree tree;
    tree.fit(x, residual, rows, params_.tree);

    // Update running predictions over ALL rows (parallel: trees are
    // sequential, but scoring a tree is embarrassingly parallel).
    common::parallel_for_chunked(
        0, x.rows(), [&](std::size_t lo, std::size_t hi, std::size_t) {
          for (std::size_t i = lo; i < hi; ++i) {
            current[i] += params_.learning_rate * tree.predict(x.row(i));
          }
        });
    trees_.push_back(std::move(tree));
  }
}

double GbdtRegressor::predict(std::span<const double> features) const {
  BAT_EXPECTS(trained());
  double acc = base_prediction_;
  for (const auto& tree : trees_) {
    acc += params_.learning_rate * tree.predict(features);
  }
  return log_target_ ? std::exp(acc) : acc;
}

std::vector<double> GbdtRegressor::predict_all(const Matrix& x) const {
  std::vector<double> out(x.rows());
  common::parallel_for_chunked(
      0, x.rows(), [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = predict(x.row(i));
        }
      });
  return out;
}

double r2_score(std::span<const double> truth,
                std::span<const double> predicted) {
  BAT_EXPECTS(truth.size() == predicted.size());
  BAT_EXPECTS(truth.size() >= 2);
  double mean = 0.0;
  for (const double v : truth) mean += v;
  mean /= static_cast<double>(truth.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double rmse(std::span<const double> truth, std::span<const double> predicted) {
  BAT_EXPECTS(truth.size() == predicted.size());
  BAT_EXPECTS(!truth.empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    acc += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
  }
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

}  // namespace bat::ml
