// Gradient-boosted regression trees — the paper's CatBoost substitute.
//
// Squared-loss boosting with shrinkage and row subsampling. The paper
// trains a CatBoost regressor on (configuration -> runtime) datasets and
// reports R^2 >= 0.992 for all benchmarks except Convolution
// (0.9268-0.9361); the test suite asserts our GBDT reproduces that band.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/matrix.hpp"
#include "ml/tree.hpp"

namespace bat::ml {

struct GbdtParams {
  std::size_t num_trees = 300;
  double learning_rate = 0.08;
  double subsample = 0.85;  // row fraction per tree
  TreeParams tree;
  std::uint64_t seed = 0xB0057ULL;
};

class GbdtRegressor {
 public:
  explicit GbdtRegressor(GbdtParams params = {}) : params_(params) {}

  /// Fits on a log-transformed copy of y when `log_target` is set — run
  /// times span orders of magnitude, and CatBoost-style fits behave far
  /// better on log(time).
  void fit(const Matrix& x, std::span<const double> y, bool log_target = true);

  [[nodiscard]] double predict(std::span<const double> features) const;
  [[nodiscard]] std::vector<double> predict_all(const Matrix& x) const;

  [[nodiscard]] bool trained() const noexcept { return !trees_.empty(); }
  [[nodiscard]] const GbdtParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t num_trees() const noexcept {
    return trees_.size();
  }

 private:
  GbdtParams params_;
  std::vector<RegressionTree> trees_;
  double base_prediction_ = 0.0;
  bool log_target_ = true;
};

/// Coefficient of determination of predictions vs truth.
[[nodiscard]] double r2_score(std::span<const double> truth,
                              std::span<const double> predicted);

/// Root mean squared error.
[[nodiscard]] double rmse(std::span<const double> truth,
                          std::span<const double> predicted);

}  // namespace bat::ml
