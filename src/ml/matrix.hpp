// Dense row-major feature matrix + helpers for the ML substrate.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace bat::ml {

/// Row-major matrix of doubles; rows are samples, columns are features.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Builds from a vector of equal-length rows.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  /// Returns a copy with column `c`'s values permuted by `perm` (used by
  /// permutation feature importance).
  [[nodiscard]] Matrix with_permuted_column(
      std::size_t c, const std::vector<std::size_t>& perm) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

struct TrainTestSplit {
  Matrix x_train;
  std::vector<double> y_train;
  Matrix x_test;
  std::vector<double> y_test;
};

/// Deterministic shuffled split; test_fraction in (0, 1).
[[nodiscard]] TrainTestSplit train_test_split(const Matrix& x,
                                              std::span<const double> y,
                                              double test_fraction,
                                              std::uint64_t seed);

}  // namespace bat::ml
