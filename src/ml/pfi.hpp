// Permutation Feature Importance (paper §II-B1, Fig 6).
//
// PFI measures how much a fitted model's quality drops when one feature
// column is shuffled, breaking its relationship with the target. As in
// the paper, importances are computed per feature and can sum to values
// well above 1 when features interact (their §VI-H argument for global
// over orthogonal optimization).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/gbdt.hpp"
#include "ml/matrix.hpp"

namespace bat::ml {

struct PfiOptions {
  std::size_t repeats = 3;       // shuffles averaged per feature
  std::uint64_t seed = 0xF177ULL;
};

struct PfiResult {
  /// Importance per feature: mean drop in R^2 when that feature's values
  /// are permuted, clamped below at 0.
  std::vector<double> importance;
  double baseline_r2 = 0.0;

  [[nodiscard]] double total() const {
    double sum = 0.0;
    for (const double v : importance) sum += v;
    return sum;
  }
};

/// Evaluates PFI of `model` on (x, y). The model must already be fitted.
[[nodiscard]] PfiResult permutation_importance(const GbdtRegressor& model,
                                               const Matrix& x,
                                               std::span<const double> y,
                                               const PfiOptions& options = {});

}  // namespace bat::ml
