// DatasetWriter: streaming, bounded-memory writer of the binary
// columnar dataset format (io/binary_format.hpp).
//
// Rows are buffered column-wise and flushed to disk as one chunk every
// `chunk_rows` appends, so a sweep's resident footprint is one chunk —
// independent of how many rows the sweep produces. This is the
// out-of-core path: core::Runner::stream_* feeds a writer through
// sink() and spaces far larger than RAM archive in O(chunk) memory.
//
// A finalized file carries a CRC-checked footer; resume() reopens such
// a file, truncates the partial tail chunk back into the buffer,
// restores the running CRC from the footer and keeps appending — an
// interrupted multi-hour sweep continues from its last finalize
// instead of restarting.
//
// Ownership / thread-safety: single-threaded; one writer owns its file
// exclusively until finalize(). The destructor finalizes best-effort
// (errors swallowed) — call finalize() explicitly to observe failures.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "core/runner.hpp"
#include "io/binary_format.hpp"

namespace bat::io {

struct WriterOptions {
  /// Rows buffered in memory before a chunk is flushed — the writer's
  /// whole memory budget (peak_buffered_rows() never exceeds it).
  std::size_t chunk_rows = kDefaultChunkRows;
};

class DatasetWriter {
 public:
  using Options = WriterOptions;

  /// Creates/overwrites `path` and writes the header immediately.
  DatasetWriter(std::string path, std::string benchmark, std::string device,
                std::vector<std::string> param_names, Options options = {});

  /// Reopens a finalized archive for appending: validates header and
  /// footer, reloads the partial tail chunk into the buffer and
  /// truncates it from disk (chunk geometry comes from the file, not
  /// from Options). Throws std::invalid_argument on a malformed or
  /// unfinalized file.
  [[nodiscard]] static DatasetWriter resume(const std::string& path);

  DatasetWriter(DatasetWriter&&) = default;
  DatasetWriter(const DatasetWriter&) = delete;
  DatasetWriter& operator=(const DatasetWriter&) = delete;

  ~DatasetWriter();  // finalizes best-effort if still open

  void append(core::ConfigIndex index, const core::Config& config,
              const core::Measurement& m);
  void append(const core::Dataset& dataset);

  /// Adapter for core::Runner::stream_* — the sink appends every row
  /// to this writer (which must outlive the returned callable).
  [[nodiscard]] core::Runner::RowSink sink();

  /// Flushes the tail chunk, writes the footer and closes the file.
  /// Idempotent; append() after finalize() throws std::logic_error.
  void finalize();

  [[nodiscard]] std::uint64_t rows_written() const noexcept {
    return total_rows_;
  }
  [[nodiscard]] std::size_t buffered_rows() const noexcept {
    return buf_times_.size();
  }
  /// High-water mark of buffered rows — the bounded-memory guarantee
  /// (asserted by tests/io_dataset_test.cpp's out-of-core sweep).
  [[nodiscard]] std::size_t peak_buffered_rows() const noexcept {
    return peak_buffered_;
  }
  [[nodiscard]] std::size_t chunk_rows() const noexcept {
    return chunk_rows_;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  DatasetWriter() = default;  // for resume()

  void flush_chunk();  // writes buffered rows as one chunk, advances CRC
  void write_bytes(const void* data, std::size_t size);

  std::string path_;
  std::fstream out_;
  std::size_t chunk_rows_ = kDefaultChunkRows;
  std::size_t num_params_ = 0;

  // Columnar append buffers (one chunk's worth at most).
  std::vector<std::uint64_t> buf_indices_;
  std::vector<std::vector<std::int64_t>> buf_values_;  // per parameter
  std::vector<double> buf_times_;
  std::vector<std::uint8_t> buf_statuses_;

  std::uint32_t crc_running_ = 0;   // header + every flushed chunk
  std::uint64_t flushed_rows_ = 0;  // rows living in flushed full chunks
  std::uint64_t total_rows_ = 0;
  std::size_t peak_buffered_ = 0;
  bool finalized_ = false;
};

}  // namespace bat::io
