#include "io/dataset_view.hpp"

#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "common/contracts.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define BAT_IO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace bat::io {

namespace detail {

MappedFile::MappedFile(const std::string& path) {
#if BAT_IO_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 && st.st_size >= 0) {
      size_ = static_cast<std::size_t>(st.st_size);
      if (size_ == 0) {
        ::close(fd);
        data_ = "";
        return;
      }
      void* mapping = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (mapping != MAP_FAILED) {
        mapping_ = mapping;
        data_ = static_cast<const char*>(mapping);
        return;
      }
    } else {
      ::close(fd);
    }
    size_ = 0;
  }
#endif
  // Fallback (also the non-POSIX path): read the file into memory —
  // loses zero-copy, keeps every accessor correct.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw std::runtime_error("cannot open dataset file: " + path);
  }
  const auto end = in.tellg();
  fallback_.resize(static_cast<std::size_t>(end));
  in.seekg(0);
  in.read(fallback_.data(), end);
  if (!in) throw std::runtime_error("short read of dataset file: " + path);
  data_ = fallback_.data();
  size_ = fallback_.size();
}

MappedFile::~MappedFile() {
#if BAT_IO_HAVE_MMAP
  if (mapping_ != nullptr) ::munmap(mapping_, size_);
#endif
}

}  // namespace detail

DatasetView::DatasetView(const std::string& path)
    : path_(path), map_(std::make_unique<detail::MappedFile>(path)) {
  if (map_->size() < 16 + kFooterBytes) {
    throw std::invalid_argument(path + ": too small to be a BAT dataset");
  }
  header_ = FileHeader::decode(map_->data(), map_->size(), path);
  footer_ = FileFooter::decode(map_->data() + map_->size() - kFooterBytes,
                               path);
  const std::size_t P = header_.num_params;
  const std::size_t C = header_.chunk_rows;
  if (footer_.full_rows % C != 0 || footer_.full_rows > footer_.num_rows ||
      footer_.num_rows - footer_.full_rows >= C ||
      map_->size() != header_.header_bytes +
                          payload_bytes(footer_.num_rows, P, C) +
                          kFooterBytes) {
    throw std::invalid_argument(path +
                                ": footer geometry disagrees with file size");
  }
  chunks_ = static_cast<std::size_t>((footer_.num_rows + C - 1) / C);
  full_chunk_bytes_ = chunk_bytes(C, P);
}

std::shared_ptr<const DatasetView> DatasetView::open(const std::string& path) {
  return std::shared_ptr<const DatasetView>(new DatasetView(path));
}

std::size_t DatasetView::rows_in_chunk(std::size_t chunk) const {
  BAT_EXPECTS(chunk < chunks_);
  if (chunk + 1 < chunks_) return header_.chunk_rows;
  const std::size_t tail =
      static_cast<std::size_t>(footer_.num_rows % header_.chunk_rows);
  return tail == 0 ? header_.chunk_rows : tail;
}

std::span<const std::uint64_t> DatasetView::indices_column(
    std::size_t chunk) const {
  const std::size_t n = rows_in_chunk(chunk);
  return {reinterpret_cast<const std::uint64_t*>(chunk_base(chunk)), n};
}

std::span<const std::int64_t> DatasetView::values_column(
    std::size_t chunk, std::size_t param) const {
  BAT_EXPECTS(param < header_.num_params);
  const std::size_t n = rows_in_chunk(chunk);
  return {reinterpret_cast<const std::int64_t*>(chunk_base(chunk) + 8 * n +
                                                8 * n * param),
          n};
}

std::span<const double> DatasetView::times_column(std::size_t chunk) const {
  const std::size_t n = rows_in_chunk(chunk);
  return {reinterpret_cast<const double*>(
              chunk_base(chunk) + 8 * n * (1 + header_.num_params)),
          n};
}

std::span<const std::uint8_t> DatasetView::status_column(
    std::size_t chunk) const {
  const std::size_t n = rows_in_chunk(chunk);
  return {reinterpret_cast<const std::uint8_t*>(
              chunk_base(chunk) + 8 * n * (2 + header_.num_params)),
          n};
}

core::ConfigIndex DatasetView::config_index(std::size_t row) const {
  BAT_EXPECTS(row < size());
  return indices_column(row / header_.chunk_rows)[row % header_.chunk_rows];
}

core::Value DatasetView::param_value(std::size_t row,
                                     std::size_t param) const {
  BAT_EXPECTS(row < size());
  return values_column(row / header_.chunk_rows,
                       param)[row % header_.chunk_rows];
}

double DatasetView::time_ms(std::size_t row) const {
  BAT_EXPECTS(row < size());
  return times_column(row / header_.chunk_rows)[row % header_.chunk_rows];
}

core::MeasureStatus DatasetView::status(std::size_t row) const {
  BAT_EXPECTS(row < size());
  return static_cast<core::MeasureStatus>(
      status_column(row / header_.chunk_rows)[row % header_.chunk_rows]);
}

void DatasetView::config_into(std::size_t row, core::Config& out) const {
  BAT_EXPECTS(row < size());
  const std::size_t chunk = row / header_.chunk_rows;
  const std::size_t at = row % header_.chunk_rows;
  out.resize(header_.num_params);
  for (std::size_t p = 0; p < header_.num_params; ++p) {
    out[p] = values_column(chunk, p)[at];
  }
}

std::size_t DatasetView::num_valid() const {
  std::size_t n = 0;
  for (std::size_t c = 0; c < chunks_; ++c) {
    for (const auto s : status_column(c)) {
      if (s == static_cast<std::uint8_t>(core::MeasureStatus::kOk)) ++n;
    }
  }
  return n;
}

double DatasetView::best_time() const {
  double best = std::numeric_limits<double>::infinity();
  bool any = false;
  for (std::size_t c = 0; c < chunks_; ++c) {
    const auto statuses = status_column(c);
    const auto times = times_column(c);
    for (std::size_t i = 0; i < statuses.size(); ++i) {
      if (statuses[i] == static_cast<std::uint8_t>(core::MeasureStatus::kOk)) {
        any = true;
        best = std::min(best, times[i]);
      }
    }
  }
  if (!any) throw std::runtime_error(path_ + ": no valid measurements");
  return best;
}

bool DatasetView::verify_crc() const {
  const std::size_t payload_end = map_->size() - kFooterBytes;
  return crc32(map_->data(), payload_end) == footer_.crc_all;
}

bool DatasetView::statuses_valid() const {
  for (std::size_t c = 0; c < chunks_; ++c) {
    for (const auto s : status_column(c)) {
      if (s > static_cast<std::uint8_t>(core::MeasureStatus::kInvalidDevice)) {
        return false;
      }
    }
  }
  return true;
}

core::Dataset DatasetView::materialize() const {
  core::Dataset ds(header_.benchmark, header_.device, header_.param_names);
  ds.reserve(size());
  core::Config scratch(header_.num_params);
  std::vector<std::span<const std::int64_t>> columns(header_.num_params);
  for (std::size_t c = 0; c < chunks_; ++c) {
    const auto indices = indices_column(c);
    const auto times = times_column(c);
    const auto statuses = status_column(c);
    // One span per (chunk, param), not per row: this loop is the whole
    // binary load path, so the column offset math stays out of it.
    for (std::size_t p = 0; p < header_.num_params; ++p) {
      columns[p] = values_column(c, p);
    }
    for (std::size_t i = 0; i < indices.size(); ++i) {
      for (std::size_t p = 0; p < header_.num_params; ++p) {
        scratch[p] = columns[p][i];
      }
      if (statuses[i] >
          static_cast<std::uint8_t>(core::MeasureStatus::kInvalidDevice)) {
        throw std::invalid_argument(
            path_ + ": row " + std::to_string(c * chunk_capacity() + i) +
            " has invalid status byte " + std::to_string(statuses[i]));
      }
      ds.add(indices[i], scratch,
             core::Measurement{times[i],
                               static_cast<core::MeasureStatus>(statuses[i])});
    }
  }
  ds.set_source(path_);
  return ds;
}

}  // namespace bat::io
