#include "io/dataset_file.hpp"

#include <cstring>
#include <fstream>

#include "common/string_util.hpp"
#include "io/dataset_view.hpp"
#include "io/dataset_writer.hpp"

namespace bat::io {

DatasetFormat sniff_format(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open dataset file: " + path);
  char magic[sizeof kDatasetMagic] = {};
  in.read(magic, sizeof magic);
  if (in.gcount() == static_cast<std::streamsize>(sizeof magic) &&
      std::memcmp(magic, kDatasetMagic, sizeof magic) == 0) {
    return DatasetFormat::kBinary;
  }
  return DatasetFormat::kCsv;
}

DatasetFormat format_for_path(const std::string& path) {
  const auto dot = path.rfind('.');
  const std::string ext =
      dot == std::string::npos ? "" : common::to_lower(path.substr(dot));
  return (ext == ".bin" || ext == ".batds") ? DatasetFormat::kBinary
                                            : DatasetFormat::kCsv;
}

core::Dataset load_dataset(const std::string& path) {
  if (sniff_format(path) == DatasetFormat::kBinary) {
    return DatasetView::open(path)->materialize();
  }
  return core::Dataset::load_csv(path);
}

void save_dataset(const std::string& path, const core::Dataset& dataset,
                  DatasetFormat format, std::size_t chunk_rows) {
  if (format == DatasetFormat::kCsv) {
    dataset.save_csv(path);
    return;
  }
  DatasetWriter writer(path, dataset.benchmark_name(), dataset.device_name(),
                       dataset.param_names(),
                       DatasetWriter::Options{chunk_rows});
  writer.append(dataset);
  writer.finalize();
}

}  // namespace bat::io
