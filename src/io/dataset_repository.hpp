// DatasetRepository: one place every layer resolves (benchmark, device)
// datasets through — one parse/sweep per key, shared everywhere.
//
// Resolution order for get():
//   1. in-memory entries (registered via put() or previously resolved);
//   2. the disk cache directory: <benchmark>_<device>.bin, then .csv;
//   3. a Runner sweep under the paper's §V policy (exhaustive for small
//      spaces, sampled otherwise), persisted back to the cache dir as a
//      binary archive when one is configured.
//
// find() stops after (2) — callers with their own sweep policy (the
// TuningService refuses to sweep non-enumerable spaces for replay) use
// it to decide before paying for (3). view() exposes the zero-copy
// mmap path to a key's binary archive for consumers that do not want a
// materialized Dataset at all (io::MmapReplayBackend).
//
// Ownership / thread-safety: all methods are thread-safe (one mutex;
// sweeps run outside it, first insert wins — backends are
// deterministic, so a duplicate sweep is wasted work, never a wrong
// answer). Returned shared_ptrs stay valid independently of the
// repository's lifetime.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/benchmark.hpp"
#include "core/dataset.hpp"
#include "io/dataset_view.hpp"

namespace bat::io {

struct RepositoryOptions {
  /// Directory scanned for <benchmark>_<device>.{bin,csv} archives
  /// and receiving persisted sweeps; "" disables disk entirely.
  std::string cache_dir;
  /// Persist computed sweeps to cache_dir as binary archives.
  bool persist_computed = true;
  /// Paper §V sweep policy used when a dataset must be computed.
  std::uint64_t seed = 0xBA7BA7ULL;
  std::size_t samples = 10'000;
  std::uint64_t exhaustive_limit = 100'000;
  std::size_t writer_chunk_rows = kDefaultChunkRows;
};

class DatasetRepository {
 public:
  using Options = RepositoryOptions;

  explicit DatasetRepository(Options options = {});

  /// Process-wide repository: cache_dir comes from the BAT_DATASET_DIR
  /// environment variable (unset/empty = memory-only). The figure
  /// harnesses resolve through this instance.
  [[nodiscard]] static DatasetRepository& global();

  /// Memory or disk only — never computes. nullptr when absent.
  [[nodiscard]] std::shared_ptr<const core::Dataset> find(
      const std::string& benchmark, const std::string& device);

  /// find(), falling back to a Runner sweep of `bench` on `device`
  /// under this repository's policy (`samples` overrides the
  /// configured sample count when nonzero).
  [[nodiscard]] std::shared_ptr<const core::Dataset> get(
      const core::Benchmark& bench, core::DeviceIndex device,
      std::size_t samples = 0);

  /// The mmap view of the key's binary archive, or nullptr when the
  /// key is served from memory (registered datasets are authoritative)
  /// or no .bin archive exists. Views are opened once and shared.
  [[nodiscard]] std::shared_ptr<const DatasetView> view(
      const std::string& benchmark, const std::string& device);

  /// Registers an in-memory dataset for (benchmark, device),
  /// overriding disk and future sweeps for that key.
  void put(const std::string& benchmark, const std::string& device,
           core::Dataset dataset);

  /// Loads `path` (either format) and registers it under its own
  /// (benchmark, device) identity; returns the shared entry.
  std::shared_ptr<const core::Dataset> load_file(const std::string& path);

  /// Drops every cached entry/view (disk archives are untouched).
  void clear();

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  using Key = std::pair<std::string, std::string>;

  [[nodiscard]] std::string archive_path(const Key& key,
                                         const char* extension) const;
  [[nodiscard]] std::shared_ptr<const core::Dataset> find_locked(
      const Key& key, std::unique_lock<std::mutex>& lock);

  Options options_;
  std::mutex mutex_;
  std::map<Key, std::shared_ptr<const core::Dataset>> datasets_;
  std::map<Key, std::shared_ptr<const DatasetView>> views_;
};

}  // namespace bat::io
