#include "io/replay_view.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace bat::io {

MmapReplayBackend::MmapReplayBackend(const core::SearchSpace& space,
                                     std::shared_ptr<const DatasetView> view)
    : space_(&space),
      compiled_(space.compiled_shared()),
      view_(std::move(view)),
      chunk_rows_(view_->chunk_capacity()),
      name_("replay+mmap:" + view_->benchmark_name() + "@" +
            view_->device_name()) {
  columns_.reserve(view_->num_chunks());
  for (std::size_t c = 0; c < view_->num_chunks(); ++c) {
    columns_.push_back(ChunkColumns{view_->times_column(c).data(),
                                    view_->status_column(c).data()});
  }
  if (compiled_->has_valid_set()) {
    row_of_ordinal_.assign(static_cast<std::size_t>(compiled_->num_valid()),
                           kNoRow);
    ordinal_mode_ = true;
    std::uint64_t row = 0;
    for (std::size_t c = 0; c < view_->num_chunks() && ordinal_mode_; ++c) {
      for (const auto index : view_->indices_column(c)) {
        const auto ordinal = compiled_->rank(index);
        if (!ordinal) {
          // Same diagnosis as ReplayBackend: name the archive, and when
          // its parameter schema disagrees with this space, say that a
          // stale schema (not a foreign path) explains the miss.
          common::log_warn(
              name_, ": archive '", view_->source(), "' row ", row,
              " (config index ", index,
              ") is outside this search space's valid set - falling back "
              "from O(1) valid-ordinal lookup to hashed lookup (is this "
              "dataset from a different space or constraint set?)",
              core::replay_schema_hint(space.params().param_names(),
                                       view_->param_names()));
          ordinal_mode_ = false;
          row_of_ordinal_.clear();
          break;
        }
        // First row wins on duplicates, matching ReplayBackend.
        auto& slot = row_of_ordinal_[static_cast<std::size_t>(*ordinal)];
        if (slot == kNoRow) slot = row;
        ++row;
      }
    }
    if (ordinal_mode_) return;
  }
  row_of_index_.reserve(view_->size());
  std::uint64_t row = 0;
  for (std::size_t c = 0; c < view_->num_chunks(); ++c) {
    for (const auto index : view_->indices_column(c)) {
      row_of_index_.emplace(index, row);  // first row wins
      ++row;
    }
  }
}

std::uint64_t MmapReplayBackend::row_for(core::ConfigIndex index) const {
  if (ordinal_mode_) {
    const auto ordinal = compiled_->rank(index);
    if (!ordinal) return kNoRow;
    return row_of_ordinal_[static_cast<std::size_t>(*ordinal)];
  }
  const auto it = row_of_index_.find(index);
  return it == row_of_index_.end() ? kNoRow : it->second;
}

bool MmapReplayBackend::contains(core::ConfigIndex index) const noexcept {
  return row_for(index) != kNoRow;
}

std::vector<core::Measurement> MmapReplayBackend::evaluate_batch(
    std::span<const core::ConfigIndex> indices) {
  std::vector<core::Measurement> results;
  results.reserve(indices.size());
  for (const auto index : indices) {
    const auto row = row_for(index);
    if (row == kNoRow) {
      throw std::out_of_range(name_ + ": config index " +
                              std::to_string(index) +
                              " is not covered by the archive");
    }
    results.push_back(measurement_at(row));
  }
  return results;
}

}  // namespace bat::io
