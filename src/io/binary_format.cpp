#include "io/binary_format.hpp"

#include <array>
#include <cstring>
#include <stdexcept>

namespace bat::io {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

void put_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_string(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked little-endian reads over the header region.
class Cursor {
 public:
  Cursor(const char* data, std::size_t size, const std::string& source)
      : data_(data), size_(size), source_(&source) {}

  std::uint32_t u32() {
    std::uint32_t v;
    take(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    take(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (n > size_ - pos_) fail("truncated string");
    std::string s(data_ + pos_, n);
    pos_ += n;
    return s;
  }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument(*source_ +
                                ": malformed BAT binary dataset header (" +
                                what + ")");
  }

 private:
  void take(void* out, std::size_t n) {
    if (n > size_ - pos_) fail("truncated header");
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  const std::string* source_;
};

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const auto table = make_crc_table();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string FileHeader::encode() {
  std::string out(kDatasetMagic, sizeof kDatasetMagic);
  put_u32(out, 0);  // header_bytes backpatched below
  put_u32(out, kFormatVersion);
  put_u32(out, num_params);
  put_u32(out, chunk_rows);
  put_u64(out, 0);  // reserved
  put_string(out, benchmark);
  put_string(out, device);
  for (const auto& name : param_names) put_string(out, name);
  out.resize(align8(out.size()), '\0');
  header_bytes = static_cast<std::uint32_t>(out.size());
  std::memcpy(out.data() + sizeof kDatasetMagic, &header_bytes,
              sizeof header_bytes);
  return out;
}

FileHeader FileHeader::decode(const char* data, std::size_t size,
                              const std::string& source) {
  Cursor cursor(data, size, source);
  if (size < sizeof kDatasetMagic ||
      std::memcmp(data, kDatasetMagic, sizeof kDatasetMagic) != 0) {
    cursor.fail("bad magic - not a BAT binary dataset");
  }
  Cursor body(data + sizeof kDatasetMagic, size - sizeof kDatasetMagic,
              source);
  FileHeader header;
  header.header_bytes = body.u32();
  const std::uint32_t version = body.u32();
  if (version != kFormatVersion) {
    body.fail("unsupported format version " + std::to_string(version) +
              " (this build reads version " + std::to_string(kFormatVersion) +
              ")");
  }
  header.num_params = body.u32();
  header.chunk_rows = body.u32();
  (void)body.u64();  // reserved
  if (header.num_params == 0) body.fail("zero parameters");
  if (header.chunk_rows == 0) body.fail("zero chunk capacity");
  if (header.header_bytes > size || header.header_bytes % 8 != 0 ||
      header.header_bytes < sizeof kDatasetMagic) {
    body.fail("implausible header size");
  }
  header.benchmark = body.str();
  header.device = body.str();
  header.param_names.reserve(header.num_params);
  for (std::uint32_t p = 0; p < header.num_params; ++p) {
    header.param_names.push_back(body.str());
  }
  if (sizeof kDatasetMagic + body.pos() > header.header_bytes) {
    body.fail("string table overruns declared header size");
  }
  return header;
}

std::string FileFooter::encode() const {
  std::string out;
  out.reserve(kFooterBytes);
  put_u64(out, num_rows);
  put_u64(out, full_rows);
  put_u32(out, crc_full);
  put_u32(out, crc_all);
  put_u64(out, 0);  // reserved
  out.append(kFooterMagic, sizeof kFooterMagic);
  return out;
}

FileFooter FileFooter::decode(const char* data, const std::string& source) {
  if (std::memcmp(data + kFooterBytes - sizeof kFooterMagic, kFooterMagic,
                  sizeof kFooterMagic) != 0) {
    throw std::invalid_argument(
        source +
        ": missing BAT dataset footer (file truncated or the writer was "
        "never finalized; only finalized archives can be opened or "
        "resumed)");
  }
  Cursor body(data, kFooterBytes, source);
  FileFooter footer;
  footer.num_rows = body.u64();
  footer.full_rows = body.u64();
  footer.crc_full = body.u32();
  footer.crc_all = body.u32();
  return footer;
}

}  // namespace bat::io
