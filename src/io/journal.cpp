#include "io/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "io/binary_format.hpp"
#include "io/fsync.hpp"

namespace bat::io {

namespace {

[[noreturn]] void fail_io(const std::string& path, const std::string& what) {
  throw std::runtime_error("BAT journal: " + what + ": " + path +
                           (errno != 0 ? std::string(" (") +
                                             std::strerror(errno) + ")"
                                       : std::string()));
}

void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_io(path, "write failed");
    }
    written += static_cast<std::size_t>(n);
  }
}

void fsync_or_throw(int fd, const std::string& path) {
  if (::fsync(fd) != 0) fail_io(path, "fsync failed");
}

// Directory-entry durability comes from the shared io::fsync_parent_dir
// (io/fsync.hpp), the same helper DatasetRepository and the JIT
// artifact cache use for their tmp + fsync + rename publishes.

std::uint32_t read_u32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

/// Torn-tail-tolerant record scan over bytes past the header.
JournalReplay scan_records(const std::string& bytes) {
  JournalReplay out;
  std::size_t pos = kJournalHeaderBytes;
  while (pos < bytes.size()) {
    const std::size_t remaining = bytes.size() - pos;
    if (remaining < kJournalRecordOverhead) break;  // torn framing
    const std::uint32_t len = read_u32(bytes.data() + pos);
    if (len > kMaxJournalRecordBytes ||
        remaining < kJournalRecordOverhead + len) {
      break;  // implausible length or truncated payload: torn
    }
    const std::size_t body = 5 + len;  // length field + type + payload
    const std::uint32_t stored = read_u32(bytes.data() + pos + body);
    if (crc32(bytes.data() + pos, body) != stored) break;  // corrupt
    JournalRecord record;
    record.type = static_cast<std::uint8_t>(bytes[pos + 4]);
    record.payload.assign(bytes.data() + pos + 5, len);
    out.records.push_back(std::move(record));
    pos += kJournalRecordOverhead + len;
  }
  out.valid_bytes = pos;
  out.dropped_bytes = bytes.size() - pos;
  return out;
}

}  // namespace

std::string journal_header_bytes() {
  std::string out(kJournalMagic, sizeof kJournalMagic);
  const std::uint32_t version = kJournalVersion;
  const std::uint32_t reserved = 0;
  out.append(reinterpret_cast<const char*>(&version), sizeof version);
  out.append(reinterpret_cast<const char*>(&reserved), sizeof reserved);
  return out;
}

std::string frame_journal_record(std::uint8_t type, std::string_view payload) {
  if (payload.size() > kMaxJournalRecordBytes) {
    throw std::invalid_argument(
        "BAT journal: record payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxJournalRecordBytes) +
        "-byte record limit");
  }
  std::string frame;
  frame.reserve(kJournalRecordOverhead + payload.size());
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  frame.append(reinterpret_cast<const char*>(&len), sizeof len);
  frame.push_back(static_cast<char>(type));
  frame.append(payload);
  const std::uint32_t crc = crc32(frame.data(), frame.size());
  frame.append(reinterpret_cast<const char*>(&crc), sizeof crc);
  return frame;
}

JournalReplay Journal::replay(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};  // missing file: empty journal
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());

  static const std::string header = journal_header_bytes();
  if (bytes.size() < kJournalHeaderBytes) {
    // A crash during initial creation can tear the 16 constant header
    // bytes; anything that is not a prefix of them is a foreign file.
    if (bytes != header.substr(0, bytes.size())) {
      throw std::invalid_argument(path +
                                  ": not a BAT journal (bad magic/header)");
    }
    JournalReplay out;
    out.dropped_bytes = bytes.size();
    return out;
  }
  if (bytes.compare(0, kJournalHeaderBytes, header) != 0) {
    throw std::invalid_argument(
        path + ": not a BAT journal (bad magic, unsupported version, or "
               "nonzero reserved header bytes)");
  }
  return scan_records(bytes);
}

Journal::Journal(std::string path) : path_(std::move(path)) {
  const bool exists = std::filesystem::exists(path_);
  if (exists) {
    replayed_ = replay(path_);
    // A torn header (valid_bytes == 0 with bytes on disk) recovers as
    // an empty journal: rewrite the header from scratch.
    const bool torn_header = replayed_.valid_bytes < kJournalHeaderBytes;
    open_for_append(torn_header ? 0 : replayed_.valid_bytes, torn_header);
  } else {
    open_for_append(0, true);
  }
}

Journal::~Journal() {
  std::unique_lock lock(mutex_);
  try {
    if (!failed_ && committed_seq_ < appended_seq_) flush_locked(lock);
  } catch (...) {
    // Destructor best-effort: uncommitted records were never promised.
  }
  if (fd_ >= 0) ::close(fd_);
}

void Journal::open_for_append(std::uint64_t truncate_to, bool created) {
  errno = 0;
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0) fail_io(path_, "cannot open for append");
  if (created) {
    // Fresh (or torn-header) file: lay down the constant header and
    // make both it and the directory entry durable before any append.
    if (::ftruncate(fd_, 0) != 0) fail_io(path_, "truncate failed");
    const std::string header = journal_header_bytes();
    write_all(fd_, header.data(), header.size(), path_);
    fsync_or_throw(fd_, path_);
    fsync_parent_dir(path_);
    stats_.file_bytes = header.size();
    return;
  }
  // Torn tail: cut the file back to its last valid record so a stale
  // suffix with a coincidentally valid CRC can never reappear behind
  // future appends.
  if (replayed_.dropped_bytes != 0) {
    if (::ftruncate(fd_, static_cast<off_t>(truncate_to)) != 0) {
      fail_io(path_, "torn-tail truncate failed");
    }
    fsync_or_throw(fd_, path_);
  }
  if (::lseek(fd_, static_cast<off_t>(truncate_to), SEEK_SET) < 0) {
    fail_io(path_, "seek failed");
  }
  stats_.file_bytes = truncate_to;
}

void Journal::append(std::uint8_t type, std::string_view payload) {
  const std::string frame = frame_journal_record(type, payload);
  std::lock_guard lock(mutex_);
  buffer_.append(frame);
  ++appended_seq_;
  ++stats_.records_appended;
}

void Journal::commit() {
  std::unique_lock lock(mutex_);
  const std::uint64_t target = appended_seq_;
  while (committed_seq_ < target) {
    if (failed_) {
      throw std::runtime_error(
          "BAT journal: commit failed: " + path_ +
          " (an earlier write/fsync failed; the on-disk state of "
          "unflushed records is unknown until a checkpoint rewrites "
          "the file)");
    }
    if (flushing_) {
      // Another thread's flush is in flight; it (or a successor) will
      // cover our records — group commit.
      flushed_cv_.wait(lock);
      continue;
    }
    flush_locked(lock);
  }
}

void Journal::flush_locked(std::unique_lock<std::mutex>& lock) {
  flushing_ = true;
  std::string out;
  out.swap(buffer_);
  const std::uint64_t covers = appended_seq_;
  lock.unlock();  // appenders keep running during the write + fsync
  try {
    write_all(fd_, out.data(), out.size(), path_);
    fsync_or_throw(fd_, path_);
  } catch (...) {
    lock.lock();
    // A failed write or fsync leaves the kernel's view of these pages
    // unknown (a failed fsync may drop dirty pages yet succeed if
    // retried), so the journal is poisoned rather than retried: every
    // commit fails until a checkpoint rewrites the whole file. Waiters
    // must still be woken or they would block on flushed_cv_ forever.
    flushing_ = false;
    failed_ = true;
    flushed_cv_.notify_all();
    throw;
  }
  lock.lock();
  committed_seq_ = covers;
  stats_.file_bytes += out.size();
  ++stats_.commits;
  flushing_ = false;
  flushed_cv_.notify_all();
}

void Journal::checkpoint(const std::vector<JournalRecord>& records) {
  std::unique_lock lock(mutex_);
  flushed_cv_.wait(lock, [&] { return !flushing_; });

  std::string bytes = journal_header_bytes();
  for (const auto& record : records) {
    bytes += frame_journal_record(record.type, record.payload);
  }

  const std::string tmp = path_ + ".tmp";
  errno = 0;
  const int tmp_fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tmp_fd < 0) fail_io(tmp, "cannot open checkpoint temp file");
  try {
    write_all(tmp_fd, bytes.data(), bytes.size(), tmp);
    fsync_or_throw(tmp_fd, tmp);
  } catch (...) {
    ::close(tmp_fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(tmp_fd);
  // rename is the atomic commit point: a crash leaves either the old
  // journal or the complete new one, never a mix.
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail_io(path_, "checkpoint rename failed");
  }
  fsync_parent_dir(path_);

  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY, 0644);
  if (fd_ < 0) fail_io(path_, "cannot reopen after checkpoint");
  if (::lseek(fd_, 0, SEEK_END) < 0) fail_io(path_, "seek failed");

  // The checkpoint is the new authoritative state: buffered-but-
  // uncommitted appends are discarded (callers serialize appends
  // against checkpoints and fold pending records into `records`).
  // Because every byte of that state was just written and fsynced to a
  // fresh file, a poisoned journal (failed flush) is healthy again.
  buffer_.clear();
  committed_seq_ = appended_seq_;
  failed_ = false;
  stats_.file_bytes = bytes.size();
  ++stats_.checkpoints;
  ++stats_.commits;
}

Journal::Stats Journal::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace bat::io
