// DatasetView: zero-copy, mmap-backed random access into a binary
// columnar dataset archive (io/binary_format.hpp).
//
// open() maps the file and parses only the header and footer — O(1) in
// the row count — so opening a multi-gigabyte archive costs
// microseconds where CSV loading costs a full parse. Every accessor
// reads straight out of the mapping (rows live in fixed-capacity
// chunks, so row -> address is one divmod plus a pointer offset); no
// row is ever materialized unless the caller asks (materialize()).
//
// CRC verification is deliberately *not* part of open(): it would read
// the whole payload and destroy the O(1) open. Call verify_crc() when
// integrity matters more than latency (`tune info --verify`).
//
// Ownership / thread-safety: immutable after open; concurrent reads
// from any number of threads need no synchronization. Consumers that
// outlive the opening scope share the view via shared_ptr
// (io::MmapReplayBackend keeps its view alive this way).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "core/measurement.hpp"
#include "core/types.hpp"
#include "io/binary_format.hpp"

namespace bat::io {

namespace detail {
/// RAII mmap of a whole file (read-only). Falls back to reading the
/// file into memory when mapping is unavailable.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path);
  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  [[nodiscard]] const char* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  void* mapping_ = nullptr;        // non-null when mmap'ed
  std::vector<char> fallback_;     // used when mmap failed
};
}  // namespace detail

class DatasetView {
 public:
  /// Maps `path` and validates header, footer and geometry (throws
  /// std::invalid_argument on malformation, std::runtime_error on I/O
  /// failure). Shared ownership because backends outlive the opener.
  [[nodiscard]] static std::shared_ptr<const DatasetView> open(
      const std::string& path);

  // ------------------------------------------------------- identity --
  [[nodiscard]] const std::string& benchmark_name() const noexcept {
    return header_.benchmark;
  }
  [[nodiscard]] const std::string& device_name() const noexcept {
    return header_.device;
  }
  [[nodiscard]] const std::vector<std::string>& param_names() const noexcept {
    return header_.param_names;
  }
  [[nodiscard]] std::size_t num_params() const noexcept {
    return header_.num_params;
  }
  [[nodiscard]] const std::string& source() const noexcept { return path_; }

  // ------------------------------------------------------ row access --
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(footer_.num_rows);
  }
  [[nodiscard]] bool empty() const noexcept { return footer_.num_rows == 0; }

  [[nodiscard]] core::ConfigIndex config_index(std::size_t row) const;
  [[nodiscard]] core::Value param_value(std::size_t row,
                                        std::size_t param) const;
  [[nodiscard]] double time_ms(std::size_t row) const;
  [[nodiscard]] core::MeasureStatus status(std::size_t row) const;
  [[nodiscard]] bool row_ok(std::size_t row) const {
    return status(row) == core::MeasureStatus::kOk;
  }
  [[nodiscard]] core::Measurement measurement(std::size_t row) const {
    return core::Measurement{time_ms(row), status(row)};
  }
  void config_into(std::size_t row, core::Config& out) const;

  // -------------------------------------------------- column access --
  [[nodiscard]] std::size_t num_chunks() const noexcept { return chunks_; }
  [[nodiscard]] std::size_t chunk_capacity() const noexcept {
    return header_.chunk_rows;
  }
  [[nodiscard]] std::size_t rows_in_chunk(std::size_t chunk) const;
  [[nodiscard]] std::span<const std::uint64_t> indices_column(
      std::size_t chunk) const;
  [[nodiscard]] std::span<const std::int64_t> values_column(
      std::size_t chunk, std::size_t param) const;
  [[nodiscard]] std::span<const double> times_column(std::size_t chunk) const;
  [[nodiscard]] std::span<const std::uint8_t> status_column(
      std::size_t chunk) const;

  // --------------------------------------------------- whole-archive --
  /// Row count with status kOk (one streaming pass over the columns).
  [[nodiscard]] std::size_t num_valid() const;
  /// Minimum valid time; throws std::runtime_error if none.
  [[nodiscard]] double best_time() const;

  /// Recomputes the payload CRC against the footer; false on mismatch.
  /// O(file size).
  [[nodiscard]] bool verify_crc() const;

  /// True when every status byte is a known MeasureStatus value.
  /// Distinct from verify_crc: a faithfully-stored-but-nonsense status
  /// (e.g. converted from a corrupt source) is not a checksum failure.
  [[nodiscard]] bool statuses_valid() const;

  /// Copies every row into an owned core::Dataset (source() stamped),
  /// for consumers that need the Dataset API (analyses, CSV export).
  [[nodiscard]] core::Dataset materialize() const;

 private:
  explicit DatasetView(const std::string& path);

  [[nodiscard]] const char* chunk_base(std::size_t chunk) const noexcept {
    return map_->data() + header_.header_bytes + chunk * full_chunk_bytes_;
  }

  std::string path_;
  std::unique_ptr<detail::MappedFile> map_;
  FileHeader header_;
  FileFooter footer_;
  std::size_t chunks_ = 0;
  std::size_t full_chunk_bytes_ = 0;
};

}  // namespace bat::io
