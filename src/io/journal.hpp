// Append-only write-ahead journal ("BATJNL01"): the durable record
// stream underneath the service layer's crash recovery.
//
// A journal file is  [header][record 0][record 1]...[record n] :
//
//   * header — a fixed 16-byte prologue: 8-byte magic "BATJNL01",
//     u32 format version, u32 reserved (must be zero). Every byte is
//     validated on replay, so a single flipped header byte rejects the
//     file instead of silently replaying someone else's data;
//   * record — u32 payload length, u8 caller-defined type tag, the
//     payload bytes, then a CRC-32 (io::crc32, the BATDSB01/BATDFR01
//     polynomial) over everything from the length field through the
//     payload. The CRC trailing each record — rather than one file
//     footer — is what makes the format append-only: a crash can only
//     ever tear the *last* record.
//
// Replay semantics (the durability contract, enforced byte-by-byte in
// tests/io_journal_test.cpp): a record prefix is authoritative iff
// every record in it frames and checksums correctly. The first record
// that is truncated or corrupt ends the replay — it and everything
// after it are dropped ("torn tail"), and reopening for append
// truncates the file back to the last valid record so a stale
// good-CRC suffix can never resurrect behind new appends. A file that
// is not a prefix of a valid journal (bad magic, wrong version,
// nonzero reserved bytes) throws instead: that is a foreign file, not
// a torn one.
//
// Writes are batched: append() only buffers; commit() writes and
// fsyncs. Durability is defined at commit boundaries — "fsync-on-
// commit" — and concurrent committers group-commit: one fsync covers
// every record appended before it, so N threads appending+committing
// concurrently pay far fewer than N fsyncs.
//
// checkpoint() atomically replaces the whole file (write temp, fsync,
// rename, fsync directory) with a caller-provided compacted record
// set; appends then resume on the new file. The journal itself is
// policy-free — what to retain is the caller's business
// (service::SessionLog layers session retention on top).
//
// Thread-safety: all methods on one Journal are safe to call
// concurrently (one internal mutex; commit() releases it around the
// write+fsync so appenders are never blocked behind the disk).
// replay() is a pure read and safe on files another process wrote —
// but two live Journal instances must never share one path.
#pragma once

#include <cstdint>
#include <mutex>
#include <condition_variable>
#include <string>
#include <string_view>
#include <vector>

namespace bat::io {

inline constexpr char kJournalMagic[8] = {'B', 'A', 'T', 'J',
                                          'N', 'L', '0', '1'};
inline constexpr std::uint32_t kJournalVersion = 1;
/// Fixed header: magic + u32 version + u32 reserved(0).
inline constexpr std::size_t kJournalHeaderBytes = 16;
/// Framing overhead per record: u32 length + u8 type + u32 CRC.
inline constexpr std::size_t kJournalRecordOverhead = 9;
/// A declared payload length above this is treated as corruption (a
/// flipped length byte must not make replay try to swallow gigabytes).
inline constexpr std::uint32_t kMaxJournalRecordBytes = 16u << 20;

struct JournalRecord {
  std::uint8_t type = 0;
  std::string payload;

  friend bool operator==(const JournalRecord&, const JournalRecord&) = default;
};

/// What replaying a journal file yields.
struct JournalReplay {
  std::vector<JournalRecord> records;
  /// Bytes (from offset 0) covered by the header + valid records.
  std::uint64_t valid_bytes = 0;
  /// Bytes past valid_bytes that failed framing or CRC (the torn tail;
  /// 0 for a cleanly closed journal).
  std::uint64_t dropped_bytes = 0;
};

class Journal {
 public:
  struct Stats {
    std::uint64_t records_appended = 0;  // this instance's append() calls
    std::uint64_t commits = 0;           // fsyncs issued (group commits)
    std::uint64_t checkpoints = 0;
    std::uint64_t file_bytes = 0;        // bytes durably on disk
  };

  /// Opens `path` for appending: creates it (header + fsync, and an
  /// fsync of the containing directory so the file itself survives a
  /// crash) or replays the existing contents — see replayed() — and
  /// truncates any torn tail. Throws std::invalid_argument if the file
  /// exists but is not a (possibly torn) BATJNL01 journal, and
  /// std::runtime_error on I/O failure.
  explicit Journal(std::string path);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Pure read of a journal file, torn-tail-tolerant; same validation
  /// as the constructor but never modifies the file. A missing file
  /// replays empty.
  [[nodiscard]] static JournalReplay replay(const std::string& path);

  /// What the constructor recovered from the existing file.
  [[nodiscard]] const JournalReplay& replayed() const noexcept {
    return replayed_;
  }

  /// Buffers one record. Durable only after the next commit().
  void append(std::uint8_t type, std::string_view payload);

  /// Makes every previously appended record durable (write + fsync).
  /// Group commit: concurrent callers whose records were covered by an
  /// in-flight flush return without a second fsync. If a flush's write
  /// or fsync fails, the journal is poisoned — that commit and every
  /// later one throws std::runtime_error (a failed fsync leaves the
  /// on-disk state of the affected records unknown, so "retry" would
  /// be a lie) — until a successful checkpoint() rewrites the whole
  /// file and restores health.
  void commit();

  /// Atomically replaces the journal's contents with `records` (temp
  /// file + fsync + rename + directory fsync) and discards any
  /// uncommitted buffered appends — callers serialize appends against
  /// checkpoints. Crash-safe: either the old or the new file survives.
  void checkpoint(const std::vector<JournalRecord>& records);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void open_for_append(std::uint64_t truncate_to, bool created);
  void flush_locked(std::unique_lock<std::mutex>& lock);

  std::string path_;
  JournalReplay replayed_;

  mutable std::mutex mutex_;
  std::condition_variable flushed_cv_;
  int fd_ = -1;
  std::string buffer_;            // appended, not yet written
  std::uint64_t appended_seq_ = 0;
  std::uint64_t committed_seq_ = 0;
  bool flushing_ = false;
  bool failed_ = false;  // a flush failed; commits throw until checkpoint
  Stats stats_;
};

/// Frames one record exactly as append()/checkpoint() write it —
/// exposed so tests can build byte-precise journals and fault-inject
/// them without going through a Journal instance.
[[nodiscard]] std::string frame_journal_record(std::uint8_t type,
                                               std::string_view payload);

/// The constant 16-byte file prologue.
[[nodiscard]] std::string journal_header_bytes();

}  // namespace bat::io
