// On-disk layout of the BAT columnar binary dataset format ("BATDSB01").
//
// A file is  [header][chunk 0][chunk 1]...[chunk k][footer] :
//
//   * header — magic, version, parameter count, chunk capacity and a
//     string table (benchmark, device, parameter names), zero-padded to
//     an 8-byte boundary so every column in the payload is naturally
//     aligned for mmap access;
//   * chunks — each chunk holds up to `chunk_rows` rows in columnar
//     form: config_index (u64), one contiguous i64 column per
//     parameter, time_ms (f64, IEEE-754 bits preserved), status (u8,
//     zero-padded to 8 bytes). Every chunk except the last is full, so
//     row -> (chunk, offset) is one divmod and O(1) random access needs
//     no directory;
//   * footer — row count, CRC-32s and a trailing magic. The footer is
//     what makes streaming writes resumable: `crc_full` covers the
//     header plus all *full* chunks, so a writer can truncate a partial
//     tail chunk, restore its running CRC from the footer and keep
//     appending (io::DatasetWriter::resume).
//
// All integers are little-endian; the implementation requires a
// little-endian host (statically asserted) — see docs/dataset-format.md
// for the normative byte-level description and versioning rules.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace bat::io {

static_assert(std::endian::native == std::endian::little,
              "BAT binary datasets are little-endian on disk and read "
              "zero-copy; big-endian hosts need byte-swapping accessors");

inline constexpr char kDatasetMagic[8] = {'B', 'A', 'T', 'D',
                                          'S', 'B', '0', '1'};
inline constexpr char kFooterMagic[8] = {'B', 'A', 'T', 'D',
                                         'S', 'E', 'N', 'D'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kFooterBytes = 40;
inline constexpr std::size_t kDefaultChunkRows = 16'384;

/// CRC-32 (reflected polynomial 0xEDB88320, the zlib/PNG convention).
/// Chainable: crc32(b, nb, crc32(a, na)) == crc32 of a||b.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

[[nodiscard]] constexpr std::size_t align8(std::size_t n) {
  return (n + 7) & ~std::size_t{7};
}

/// Byte size of one chunk holding `rows` rows of `params` parameters:
/// u64 indices + i64 value columns + f64 times + padded u8 statuses.
[[nodiscard]] constexpr std::size_t chunk_bytes(std::size_t rows,
                                                std::size_t params) {
  return 8 * rows * (params + 2) + align8(rows);
}

/// Total payload bytes for `rows` rows split into chunks of
/// `chunk_rows` (all full except a final partial one).
[[nodiscard]] constexpr std::size_t payload_bytes(std::uint64_t rows,
                                                  std::size_t params,
                                                  std::size_t chunk_rows) {
  const std::uint64_t full = rows / chunk_rows;
  const std::size_t tail = static_cast<std::size_t>(rows % chunk_rows);
  return static_cast<std::size_t>(full) * chunk_bytes(chunk_rows, params) +
         (tail != 0 ? chunk_bytes(tail, params) : 0);
}

/// Decoded file header. `header_bytes` is the offset of chunk 0.
struct FileHeader {
  std::uint32_t header_bytes = 0;
  std::uint32_t num_params = 0;
  std::uint32_t chunk_rows = 0;
  std::string benchmark;
  std::string device;
  std::vector<std::string> param_names;

  /// Serializes to the on-disk byte layout (sets header_bytes).
  [[nodiscard]] std::string encode();
  /// Parses and validates a header prefix; throws std::invalid_argument
  /// naming `source` on any malformation (bad magic, version, sizes).
  [[nodiscard]] static FileHeader decode(const char* data, std::size_t size,
                                         const std::string& source);
};

/// Decoded 40-byte file footer.
struct FileFooter {
  std::uint64_t num_rows = 0;
  /// Rows covered by crc_full — always a multiple of the chunk
  /// capacity: the rows living in full (non-tail) chunks.
  std::uint64_t full_rows = 0;
  /// CRC-32 of header + all full chunks (the resume anchor).
  std::uint32_t crc_full = 0;
  /// CRC-32 of header + entire payload (integrity check).
  std::uint32_t crc_all = 0;

  [[nodiscard]] std::string encode() const;
  /// Parses exactly kFooterBytes; throws std::invalid_argument naming
  /// `source` on a bad trailing magic (truncated / unfinalized file).
  [[nodiscard]] static FileFooter decode(const char* data,
                                         const std::string& source);
};

}  // namespace bat::io
