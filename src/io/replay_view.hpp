// MmapReplayBackend: core::ReplayBackend's zero-copy sibling.
//
// Where ReplayBackend copies every dataset row into an owned
// vector<Measurement>, this backend keeps only a valid-ordinal -> row
// mapping and serves each lookup straight from the mmap'ed columns of
// a DatasetView — no per-row Measurement rebuild, no duplicate of the
// archive in memory. Construction is one pass over the index column
// (ranking rows); lookups are a rank probe plus two column loads.
//
// Semantics match ReplayBackend exactly: first-row-wins on duplicate
// indices, hash fallback (with the foreign/stale-schema warning) when
// any row falls outside the space's valid set, std::out_of_range on
// uncovered lookups — tests/io_dataset_test.cpp holds the two backends
// to identical answers.
//
// Ownership / thread-safety: shares the DatasetView and CompiledSpace
// via shared_ptr (the borrowed SearchSpace must outlive the backend).
// Stateless under evaluate_batch; safe to share across sessions.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/backend.hpp"
#include "io/dataset_view.hpp"

namespace bat::io {

class MmapReplayBackend final : public core::EvaluationBackend {
 public:
  /// `space` must be the search space the archive was swept from (and
  /// must outlive this backend).
  MmapReplayBackend(const core::SearchSpace& space,
                    std::shared_ptr<const DatasetView> view);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const core::SearchSpace& space() const override {
    return *space_;
  }
  [[nodiscard]] std::vector<core::Measurement> evaluate_batch(
      std::span<const core::ConfigIndex> indices) override;

  [[nodiscard]] bool contains(core::ConfigIndex index) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return view_->size(); }
  [[nodiscard]] const DatasetView& view() const noexcept { return *view_; }

 private:
  static constexpr std::uint64_t kNoRow = ~std::uint64_t{0};

  /// Raw per-chunk column pointers into the mapping, hoisted out of
  /// DatasetView's checked accessors so a lookup is one divmod and two
  /// loads (the pointers stay valid for the view's lifetime).
  struct ChunkColumns {
    const double* times;
    const std::uint8_t* statuses;
  };

  /// Row serving `index`, or kNoRow when uncovered.
  [[nodiscard]] std::uint64_t row_for(core::ConfigIndex index) const;
  [[nodiscard]] core::Measurement measurement_at(std::uint64_t row) const {
    const auto& chunk = columns_[static_cast<std::size_t>(row / chunk_rows_)];
    const auto at = static_cast<std::size_t>(row % chunk_rows_);
    return core::Measurement{
        chunk.times[at], static_cast<core::MeasureStatus>(chunk.statuses[at])};
  }

  const core::SearchSpace* space_;
  std::shared_ptr<const core::CompiledSpace> compiled_;
  std::shared_ptr<const DatasetView> view_;
  std::vector<ChunkColumns> columns_;
  std::size_t chunk_rows_ = 1;
  bool ordinal_mode_ = false;
  std::vector<std::uint64_t> row_of_ordinal_;  // valid-ordinal -> row
  std::unordered_map<core::ConfigIndex, std::uint64_t> row_of_index_;
  std::string name_;
};

}  // namespace bat::io
