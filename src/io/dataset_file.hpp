// Format-agnostic dataset file I/O: the one place the rest of the tree
// goes through to read or write a dataset path. Everything above io/
// (tools, bench, examples, service) is format-blind — CSV stays the
// interchange format, the binary columnar format the performance one,
// and these helpers convert transparently in both directions.
#pragma once

#include <string>

#include "core/dataset.hpp"
#include "io/binary_format.hpp"

namespace bat::io {

enum class DatasetFormat { kCsv, kBinary };

/// Format by content: reads the first bytes of `path` and checks the
/// binary magic; anything else is treated as CSV. Throws
/// std::runtime_error when the file cannot be read.
[[nodiscard]] DatasetFormat sniff_format(const std::string& path);

/// Format by extension, for choosing an *output* format: ".bin" /
/// ".batds" mean binary, everything else CSV.
[[nodiscard]] DatasetFormat format_for_path(const std::string& path);

/// Loads a dataset from either format (sniffed, not guessed from the
/// name); the result's source() is the path.
[[nodiscard]] core::Dataset load_dataset(const std::string& path);

/// Writes `dataset` to `path` in `format` (binary goes through
/// DatasetWriter with `chunk_rows`).
void save_dataset(const std::string& path, const core::Dataset& dataset,
                  DatasetFormat format,
                  std::size_t chunk_rows = kDefaultChunkRows);

}  // namespace bat::io
