#include "io/dataset_repository.hpp"

#include <atomic>
#include <cstdlib>
#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#else
namespace {
int getpid() { return 0; }  // serial suffix alone disambiguates in-process
}  // namespace
#endif

#include "common/log.hpp"
#include "core/runner.hpp"
#include "io/dataset_file.hpp"
#include "io/dataset_writer.hpp"
#include "io/fsync.hpp"

namespace bat::io {

DatasetRepository::DatasetRepository(Options options)
    : options_(std::move(options)) {}

DatasetRepository& DatasetRepository::global() {
  static DatasetRepository repository = [] {
    Options options;
    if (const char* dir = std::getenv("BAT_DATASET_DIR")) {
      options.cache_dir = dir;
    }
    return DatasetRepository(options);
  }();
  return repository;
}

std::string DatasetRepository::archive_path(const Key& key,
                                            const char* extension) const {
  return options_.cache_dir + "/" + key.first + "_" + key.second + extension;
}

std::shared_ptr<const core::Dataset> DatasetRepository::find_locked(
    const Key& key, std::unique_lock<std::mutex>& lock) {
  const auto it = datasets_.find(key);
  if (it != datasets_.end()) return it->second;
  if (options_.cache_dir.empty()) return nullptr;

  // Disk probes and parsing run unlocked; first insert wins. A
  // malformed archive (e.g. a sweep killed before finalize under an
  // old layout, or plain corruption) must degrade to the next source,
  // not poison the cache dir: warn and fall through.
  lock.unlock();
  std::shared_ptr<const core::Dataset> loaded;
  for (const char* ext : {".bin", ".csv"}) {
    const auto path = archive_path(key, ext);
    if (!std::filesystem::exists(path)) continue;
    try {
      loaded = std::make_shared<const core::Dataset>(load_dataset(path));
    } catch (const std::exception& e) {
      common::log_warn("dataset repository: ignoring unreadable archive ",
                       path, " (", e.what(), ")");
      continue;
    }
    common::log_debug("dataset repository: ", key.first, "@", key.second,
                      " resolved from ", path);
    break;
  }
  lock.lock();
  if (!loaded) return nullptr;
  return datasets_.emplace(key, std::move(loaded)).first->second;
}

std::shared_ptr<const core::Dataset> DatasetRepository::find(
    const std::string& benchmark, const std::string& device) {
  std::unique_lock lock(mutex_);
  return find_locked(Key{benchmark, device}, lock);
}

std::shared_ptr<const core::Dataset> DatasetRepository::get(
    const core::Benchmark& bench, core::DeviceIndex device,
    std::size_t samples) {
  const Key key{bench.name(), bench.device_name(device)};
  {
    std::unique_lock lock(mutex_);
    if (auto found = find_locked(key, lock)) return found;
  }

  // Sweep outside the lock (slow); persist, then publish first-wins.
  const std::size_t n = samples != 0 ? samples : options_.samples;
  auto swept = std::make_shared<core::Dataset>(core::Runner::run_default(
      bench, device, options_.seed, n, options_.exhaustive_limit));
  if (!options_.cache_dir.empty() && options_.persist_computed) {
    const auto path = archive_path(key, ".bin");
    try {
      std::filesystem::create_directories(options_.cache_dir);
      // The journal's tmp + fsync + rename discipline: a killed process
      // never leaves a partial archive under the final name, concurrent
      // sweeps of the same key (both deterministic, so either result is
      // right) don't interleave writes into one file, and a crash right
      // after the rename can tear neither the bytes (file fsynced
      // before rename) nor the directory entry (directory fsynced
      // after).
      static std::atomic<unsigned> temp_serial{0};
      const auto temp = path + ".tmp" +
                        std::to_string(temp_serial.fetch_add(1)) + "-" +
                        std::to_string(::getpid());
      save_dataset(temp, *swept, DatasetFormat::kBinary,
                   options_.writer_chunk_rows);
      fsync_file(temp);
      std::filesystem::rename(temp, path);
      fsync_parent_dir(path);
      swept->set_source(path);
      common::log_info("dataset repository: persisted ", key.first, "@",
                       key.second, " to ", path, " (", swept->size(),
                       " rows)");
    } catch (const std::exception& e) {
      common::log_warn("dataset repository: could not persist ", path, ": ",
                       e.what());
    }
  }
  std::unique_lock lock(mutex_);
  return datasets_.emplace(key, std::move(swept)).first->second;
}

std::shared_ptr<const DatasetView> DatasetRepository::view(
    const std::string& benchmark, const std::string& device) {
  const Key key{benchmark, device};
  std::unique_lock lock(mutex_);
  if (datasets_.count(key) != 0) return nullptr;  // memory is authoritative
  const auto it = views_.find(key);
  if (it != views_.end()) return it->second;
  if (options_.cache_dir.empty()) return nullptr;
  const auto path = archive_path(key, ".bin");
  lock.unlock();
  if (!std::filesystem::exists(path)) return nullptr;
  auto view = DatasetView::open(path);
  lock.lock();
  return views_.emplace(key, std::move(view)).first->second;
}

void DatasetRepository::put(const std::string& benchmark,
                            const std::string& device, core::Dataset dataset) {
  auto shared = std::make_shared<const core::Dataset>(std::move(dataset));
  std::lock_guard lock(mutex_);
  datasets_.insert_or_assign(Key{benchmark, device}, std::move(shared));
}

std::shared_ptr<const core::Dataset> DatasetRepository::load_file(
    const std::string& path) {
  auto loaded = std::make_shared<const core::Dataset>(load_dataset(path));
  const Key key{loaded->benchmark_name(), loaded->device_name()};
  std::lock_guard lock(mutex_);
  return datasets_.insert_or_assign(key, std::move(loaded)).first->second;
}

void DatasetRepository::clear() {
  std::lock_guard lock(mutex_);
  datasets_.clear();
  views_.clear();
}

}  // namespace bat::io
