// Shared fsync helpers for the tmp + fsync + rename publish discipline
// (the journal's crash-safety recipe, reused by DatasetRepository and
// the JIT artifact cache): sync the file's bytes, then the containing
// directory, so neither torn contents nor a vanished directory entry
// can survive a crash.
#pragma once

#include <string>

namespace bat::io {

/// fsync(2) of the file at `path`; throws std::runtime_error on failure
/// (including failure to open).
void fsync_file(const std::string& path);

/// fsync of `path`'s containing directory: without it, a freshly
/// created or renamed file can itself vanish in a crash even though its
/// bytes were synced.
void fsync_parent_dir(const std::string& path);

}  // namespace bat::io
