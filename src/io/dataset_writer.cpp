#include "io/dataset_writer.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "common/contracts.hpp"

namespace bat::io {

namespace {

[[noreturn]] void fail_io(const std::string& path, const std::string& what) {
  throw std::runtime_error("BAT dataset writer: " + what + ": " + path);
}

}  // namespace

DatasetWriter::DatasetWriter(std::string path, std::string benchmark,
                             std::string device,
                             std::vector<std::string> param_names,
                             Options options)
    : path_(std::move(path)),
      chunk_rows_(std::max<std::size_t>(1, options.chunk_rows)),
      num_params_(param_names.size()) {
  BAT_EXPECTS(!param_names.empty());
  FileHeader header;
  header.num_params = static_cast<std::uint32_t>(num_params_);
  header.chunk_rows = static_cast<std::uint32_t>(chunk_rows_);
  header.benchmark = std::move(benchmark);
  header.device = std::move(device);
  header.param_names = std::move(param_names);
  const std::string bytes = header.encode();

  out_.open(path_, std::ios::binary | std::ios::in | std::ios::out |
                       std::ios::trunc);
  if (!out_) fail_io(path_, "cannot open for writing");
  write_bytes(bytes.data(), bytes.size());

  buf_indices_.reserve(chunk_rows_);
  buf_values_.resize(num_params_);
  for (auto& column : buf_values_) column.reserve(chunk_rows_);
  buf_times_.reserve(chunk_rows_);
  buf_statuses_.reserve(chunk_rows_);
}

DatasetWriter DatasetWriter::resume(const std::string& path) {
  DatasetWriter writer;
  writer.path_ = path;

  // Validate header + footer and load the partial tail chunk.
  std::string head;
  FileFooter footer;
  std::uint64_t file_size = 0;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) fail_io(path, "cannot open for resume");
    file_size = static_cast<std::uint64_t>(in.tellg());
    if (file_size < 16 + kFooterBytes) {
      throw std::invalid_argument(path + ": too small to be a BAT dataset");
    }
    std::uint32_t header_bytes = 0;
    in.seekg(8);  // header_bytes sits right after the 8-byte magic
    in.read(reinterpret_cast<char*>(&header_bytes), sizeof header_bytes);
    if (!in || header_bytes == 0 ||
        header_bytes > file_size - kFooterBytes) {
      throw std::invalid_argument(path + ": implausible header size");
    }
    head.resize(header_bytes);
    in.seekg(0);
    in.read(head.data(), static_cast<std::streamsize>(head.size()));
    if (!in) fail_io(path, "short read of header");

    std::string tail(kFooterBytes, '\0');
    in.seekg(static_cast<std::streamoff>(file_size - kFooterBytes));
    in.read(tail.data(), static_cast<std::streamsize>(tail.size()));
    if (!in) fail_io(path, "short read of footer");
    footer = FileFooter::decode(tail.data(), path);
  }
  const FileHeader header = FileHeader::decode(head.data(), head.size(), path);
  writer.chunk_rows_ = header.chunk_rows;
  writer.num_params_ = header.num_params;

  const std::size_t P = header.num_params;
  const std::size_t C = header.chunk_rows;
  if (footer.full_rows % C != 0 || footer.full_rows > footer.num_rows ||
      footer.num_rows - footer.full_rows >= C ||
      file_size != header.header_bytes +
                       payload_bytes(footer.num_rows, P, C) + kFooterBytes) {
    throw std::invalid_argument(path +
                                ": footer geometry disagrees with file size");
  }

  // Reload the partial tail chunk into the buffer; verify it against
  // the footer CRC chain (crc_all == crc32(tail, crc_full)).
  const std::size_t tail_rows =
      static_cast<std::size_t>(footer.num_rows - footer.full_rows);
  const std::uint64_t payload_end_of_full =
      header.header_bytes +
      (footer.full_rows / C) * chunk_bytes(C, P);
  writer.buf_values_.resize(P);
  if (tail_rows != 0) {
    std::string chunk(chunk_bytes(tail_rows, P), '\0');
    std::ifstream in(path, std::ios::binary);
    in.seekg(static_cast<std::streamoff>(payload_end_of_full));
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    if (!in) fail_io(path, "short read of tail chunk");
    if (crc32(chunk.data(), chunk.size(), footer.crc_full) !=
        footer.crc_all) {
      throw std::invalid_argument(
          path + ": tail chunk fails its CRC - archive is corrupt");
    }
    const char* p = chunk.data();
    const auto column = [&](void* dst, std::size_t bytes) {
      std::memcpy(dst, p, bytes);
      p += bytes;
    };
    writer.buf_indices_.resize(tail_rows);
    column(writer.buf_indices_.data(), 8 * tail_rows);
    for (std::size_t c = 0; c < P; ++c) {
      writer.buf_values_[c].resize(tail_rows);
      column(writer.buf_values_[c].data(), 8 * tail_rows);
    }
    writer.buf_times_.resize(tail_rows);
    column(writer.buf_times_.data(), 8 * tail_rows);
    writer.buf_statuses_.resize(tail_rows);
    column(writer.buf_statuses_.data(), tail_rows);
  }

  // Truncate footer + tail chunk; appends regrow them.
  std::filesystem::resize_file(path, payload_end_of_full);
  writer.out_.open(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!writer.out_) fail_io(path, "cannot reopen for appending");
  writer.out_.seekp(static_cast<std::streamoff>(payload_end_of_full));

  writer.crc_running_ = footer.crc_full;
  writer.flushed_rows_ = footer.full_rows;
  writer.total_rows_ = footer.num_rows;
  writer.peak_buffered_ = tail_rows;
  return writer;
}

DatasetWriter::~DatasetWriter() {
  try {
    if (out_.is_open()) finalize();
  } catch (...) {
    // Destructor best-effort only; call finalize() to observe errors.
  }
}

void DatasetWriter::write_bytes(const void* data, std::size_t size) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  if (!out_) fail_io(path_, "write failed");
  crc_running_ = crc32(data, size, crc_running_);
}

void DatasetWriter::append(core::ConfigIndex index, const core::Config& config,
                           const core::Measurement& m) {
  if (finalized_) {
    throw std::logic_error("DatasetWriter: append after finalize: " + path_);
  }
  BAT_EXPECTS(config.size() == num_params_);
  buf_indices_.push_back(index);
  for (std::size_t p = 0; p < num_params_; ++p) {
    buf_values_[p].push_back(config[p]);
  }
  buf_times_.push_back(m.time_ms);
  buf_statuses_.push_back(static_cast<std::uint8_t>(m.status));
  peak_buffered_ = std::max(peak_buffered_, buf_times_.size());
  ++total_rows_;
  if (buf_times_.size() == chunk_rows_) flush_chunk();
}

void DatasetWriter::append(const core::Dataset& dataset) {
  BAT_EXPECTS(dataset.num_params() == num_params_);
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    if (finalized_) {
      throw std::logic_error("DatasetWriter: append after finalize: " + path_);
    }
    buf_indices_.push_back(dataset.config_index(r));
    for (std::size_t p = 0; p < num_params_; ++p) {
      buf_values_[p].push_back(dataset.param_value(r, p));
    }
    buf_times_.push_back(dataset.time_ms(r));
    buf_statuses_.push_back(static_cast<std::uint8_t>(dataset.status(r)));
    peak_buffered_ = std::max(peak_buffered_, buf_times_.size());
    ++total_rows_;
    if (buf_times_.size() == chunk_rows_) flush_chunk();
  }
}

core::Runner::RowSink DatasetWriter::sink() {
  return [this](core::ConfigIndex index, const core::Config& config,
                const core::Measurement& m) { append(index, config, m); };
}

void DatasetWriter::flush_chunk() {
  const std::size_t rows = buf_times_.size();
  if (rows == 0) return;
  write_bytes(buf_indices_.data(), 8 * rows);
  for (const auto& column : buf_values_) {
    write_bytes(column.data(), 8 * rows);
  }
  write_bytes(buf_times_.data(), 8 * rows);
  buf_statuses_.resize(align8(rows), 0);  // zero padding travels to disk
  write_bytes(buf_statuses_.data(), align8(rows));
  if (rows == chunk_rows_) flushed_rows_ += rows;
  buf_indices_.clear();
  for (auto& column : buf_values_) column.clear();
  buf_times_.clear();
  buf_statuses_.clear();
}

void DatasetWriter::finalize() {
  if (finalized_) return;
  FileFooter footer;
  footer.full_rows = flushed_rows_;
  footer.crc_full = crc_running_;
  flush_chunk();  // partial tail, if any
  footer.num_rows = total_rows_;
  footer.crc_all = crc_running_;
  const std::string bytes = footer.encode();
  // The footer is excluded from the CRC it carries; bypass write_bytes.
  out_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out_.flush();
  if (!out_) fail_io(path_, "footer write failed");
  out_.close();
  finalized_ = true;
}

}  // namespace bat::io
