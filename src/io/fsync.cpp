#include "io/fsync.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>

namespace bat::io {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("BAT io: " + what + ": " + path +
                           (errno != 0 ? std::string(" (") +
                                             std::strerror(errno) + ")"
                                       : std::string()));
}

}  // namespace

void fsync_file(const std::string& path) {
  errno = 0;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail(path, "cannot open for fsync");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) fail(path, "fsync failed");
}

void fsync_parent_dir(const std::string& path) {
  const auto dir = std::filesystem::path(path).parent_path();
  const std::string dir_path = dir.empty() ? "." : dir.string();
  errno = 0;
  const int fd = ::open(dir_path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) fail(dir_path, "cannot open directory for fsync");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) fail(dir_path, "directory fsync failed");
}

}  // namespace bat::io
