// Device descriptions for the performance-model simulator.
//
// The paper evaluates on four NVIDIA GPUs: RTX 2080 Ti, RTX 3060,
// RTX 3090 and RTX Titan (Titan RTX). Two are Turing (TU102), two are
// Ampere (GA106/GA102); the family split is what drives the paper's
// portability findings (Fig 5), so the specs below keep the real
// architectural differences: FP32 width per SM, max warps/threads per SM,
// shared-memory capacity, clocks, memory bandwidth and L2 size. All
// numbers are the published specifications of the retail cards.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bat::gpusim {

enum class Architecture { kTuring, kAmpere };

struct DeviceSpec {
  std::string name;
  Architecture arch = Architecture::kTuring;

  // SM resources.
  int sm_count = 0;
  int max_threads_per_sm = 1024;
  int max_warps_per_sm = 32;
  int max_blocks_per_sm = 16;
  int registers_per_sm = 65536;
  int max_registers_per_thread = 255;
  int shared_mem_per_sm = 64 * 1024;      // bytes
  int max_shared_mem_per_block = 48 * 1024;  // bytes (default carve-out)
  int max_threads_per_block = 1024;
  int warp_size = 32;

  // Throughput.
  double clock_ghz = 1.5;        // sustained boost clock
  int fp32_lanes_per_sm = 64;    // FP32 CUDA cores per SM
  double mem_bandwidth_gbs = 600.0;
  double l2_cache_bytes = 4.0 * 1024 * 1024;
  double launch_overhead_ms = 0.004;  // per kernel launch

  // Architecture personality knobs used by the kernel models.
  double int_issue_ratio = 1.0;   // concurrent INT32 pipe (Turing ~1.0
                                  // thanks to the dedicated INT unit;
                                  // Ampere shares one datapath ~0.5)
  double compute_saturation_warps = 6.0;  // warps needed to fill the FP32
                                          // pipes (Ampere's doubled lanes
                                          // need ~2x the in-flight work)
  double readonly_cache_boost = 1.10;  // benefit of __ldg/texture path
  double smem_bandwidth_factor = 1.0;  // relative shared-memory throughput

  /// Peak FP32 throughput in GFLOP/s (2 ops per FMA lane per clock).
  [[nodiscard]] double peak_gflops() const noexcept {
    return 2.0 * sm_count * fp32_lanes_per_sm * clock_ghz;
  }

  /// Aggregate shared-memory bandwidth in GB/s (32 banks * 4 B per clock
  /// per SM, scaled by the personality factor).
  [[nodiscard]] double smem_bandwidth_gbs() const noexcept {
    return smem_bandwidth_factor * sm_count * 32.0 * 4.0 * clock_ghz;
  }
};

/// The four GPUs of the paper, in the row/column order of Fig 5:
/// RTX 2080 Ti, RTX 3060, RTX 3090, RTX Titan.
[[nodiscard]] const std::vector<DeviceSpec>& paper_devices();

/// Lookup by name; throws std::out_of_range if unknown.
[[nodiscard]] const DeviceSpec& device_by_name(const std::string& name);

/// Names of the paper devices in order.
[[nodiscard]] std::vector<std::string> paper_device_names();

}  // namespace bat::gpusim
