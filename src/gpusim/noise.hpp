// Deterministic measurement jitter.
//
// Real timing runs vary by a fraction of a percent even with warm-up and
// repetition. We model that with a multiplicative factor derived purely
// from a hash of (kernel id, config index, device name), so repeated
// evaluation of the same point returns the identical value — a property
// the test suite asserts and the caching evaluator relies on.
#pragma once

#include <cstdint>
#include <string_view>

namespace bat::gpusim {

/// Stable 64-bit id for a kernel/device name.
[[nodiscard]] std::uint64_t stable_name_hash(std::string_view name) noexcept;

/// Multiplicative noise factor in [1 - amplitude, 1 + amplitude],
/// deterministic in the seed triple.
[[nodiscard]] double noise_factor(std::uint64_t kernel_id,
                                  std::uint64_t config_index,
                                  std::uint64_t device_id,
                                  double amplitude = 0.004) noexcept;

}  // namespace bat::gpusim
