#include "gpusim/occupancy.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace bat::gpusim {

namespace {

constexpr int kRegAllocGranularity = 256;  // registers per warp allocation unit
constexpr int kSmemAllocGranularity = 256;  // bytes

int round_up(int value, int granularity) {
  return (value + granularity - 1) / granularity * granularity;
}

}  // namespace

OccupancyResult compute_occupancy(const DeviceSpec& device,
                                  const LaunchConfig& launch) {
  BAT_EXPECTS(launch.block_threads >= 0);
  OccupancyResult result;

  if (launch.block_threads <= 0 ||
      launch.block_threads > device.max_threads_per_block) {
    return result;  // unlaunchable block shape
  }
  if (launch.smem_per_block > device.max_shared_mem_per_block) {
    return result;  // static shared memory exceeds the per-block maximum
  }
  const int warps_per_block =
      (launch.block_threads + device.warp_size - 1) / device.warp_size;

  // Threads/warp limit.
  const int blocks_by_warps = device.max_warps_per_sm / warps_per_block;
  if (blocks_by_warps == 0) return result;

  // Register limit (per-warp allocation granularity).
  int blocks_by_regs = device.max_blocks_per_sm;
  if (launch.regs_per_thread > 0) {
    const int regs_per_warp = round_up(
        launch.regs_per_thread * device.warp_size, kRegAllocGranularity);
    const int regs_per_block = regs_per_warp * warps_per_block;
    if (regs_per_block > device.registers_per_sm ||
        launch.regs_per_thread > device.max_registers_per_thread) {
      return result;  // register footprint cannot fit a single block
    }
    blocks_by_regs = device.registers_per_sm / regs_per_block;
  }

  // Shared-memory limit.
  int blocks_by_smem = device.max_blocks_per_sm;
  if (launch.smem_per_block > 0) {
    const int smem = round_up(launch.smem_per_block, kSmemAllocGranularity);
    if (smem > device.shared_mem_per_sm) return result;
    blocks_by_smem = device.shared_mem_per_sm / smem;
    if (blocks_by_smem == 0) return result;
  }

  const int blocks = std::min({device.max_blocks_per_sm, blocks_by_warps,
                               blocks_by_regs, blocks_by_smem});
  if (blocks <= 0) return result;

  result.active_blocks_per_sm = blocks;
  result.active_warps_per_sm = blocks * warps_per_block;
  result.occupancy = static_cast<double>(result.active_warps_per_sm) /
                     static_cast<double>(device.max_warps_per_sm);

  if (blocks == device.max_blocks_per_sm) {
    result.limiter = OccupancyLimiter::kBlocks;
  } else if (blocks == blocks_by_warps) {
    result.limiter = OccupancyLimiter::kWarps;
  } else if (blocks == blocks_by_regs) {
    result.limiter = OccupancyLimiter::kRegisters;
  } else {
    result.limiter = OccupancyLimiter::kSharedMem;
  }
  return result;
}

}  // namespace bat::gpusim
