// The kernel-launch timing model.
//
// Each kernel model summarizes one configuration as a KernelProfile:
// launch geometry + resource footprint + the amount of arithmetic, DRAM
// and shared-memory work, plus efficiency factors (coalescing,
// instruction-mix, ILP). LaunchModel turns that into milliseconds with a
// latency-hiding roofline:
//
//   t = max(t_compute, t_dram, t_smem) * tail_factor + launches * overhead
//
// where each component is divided by a saturating latency-hiding factor
// derived from occupancy * ILP (few resident warps with little
// instruction-level parallelism cannot keep the pipes busy), and
// tail_factor accounts for grid quantization into waves.
#pragma once

#include <cstdint>
#include <optional>

#include "gpusim/device.hpp"
#include "gpusim/occupancy.hpp"

namespace bat::gpusim {

struct KernelProfile {
  // Launch geometry and per-block resources.
  std::uint64_t grid_blocks = 1;
  int block_threads = 1;
  int regs_per_thread = 32;
  int smem_per_block = 0;  // bytes

  // Work totals for the whole kernel.
  double flops = 0.0;             // FP32-equivalent arithmetic operations
  double dram_bytes = 0.0;        // DRAM traffic after cache modelling
  double smem_bytes = 0.0;        // shared-memory traffic (conflict-adjusted)

  // Efficiency factors in (0, 1].
  double mem_efficiency = 1.0;      // DRAM coalescing/transaction efficiency
  double compute_efficiency = 1.0;  // pipeline/instruction-mix efficiency

  // Independent in-flight operations per thread (tiling/unrolling raise it).
  double ilp = 1.0;

  // Number of kernel launches this measurement covers (e.g. Hotspot runs
  // iterations/temporal_tiling_factor launches for a fixed simulation).
  int launches = 1;
};

struct TimingBreakdown {
  double compute_ms = 0.0;
  double dram_ms = 0.0;
  double smem_ms = 0.0;
  double tail_factor = 1.0;
  double overhead_ms = 0.0;
  double total_ms = 0.0;
  OccupancyResult occupancy;
};

class LaunchModel {
 public:
  /// Estimates the execution time; std::nullopt when the launch is
  /// impossible on this device (block too large, shared memory or
  /// registers over the limit). This is the paper's "invalid on device"
  /// case that tuners observe as a failed run.
  [[nodiscard]] static std::optional<TimingBreakdown> estimate(
      const DeviceSpec& device, const KernelProfile& profile);

  /// Convenience: total_ms or nullopt.
  [[nodiscard]] static std::optional<double> estimate_ms(
      const DeviceSpec& device, const KernelProfile& profile);

  /// Latency-hiding factor in (0, 1]: how close to peak a pipe can run
  /// given `inflight` independent warps-worth of work and a saturation
  /// point `warps_needed`.
  [[nodiscard]] static double latency_hiding(double inflight,
                                             double warps_needed) noexcept;
};

}  // namespace bat::gpusim
