#include "gpusim/launch_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace bat::gpusim {

namespace {

// Warps-in-flight needed to saturate each pipe. Arithmetic pipes saturate
// quickly; DRAM needs many outstanding transactions to cover ~400-cycle
// latency (values in line with microbenchmark literature for
// Turing/Ampere).
constexpr double kDramSaturationWarps = 20.0;
constexpr double kSmemSaturationWarps = 6.0;

}  // namespace

double LaunchModel::latency_hiding(double inflight,
                                   double warps_needed) noexcept {
  if (inflight <= 0.0) return 1e-6;
  // Saturating exponential: ~63% at the saturation point, >95% at 3x.
  return 1.0 - std::exp(-inflight / warps_needed);
}

std::optional<TimingBreakdown> LaunchModel::estimate(
    const DeviceSpec& device, const KernelProfile& profile) {
  BAT_EXPECTS(profile.grid_blocks >= 1);
  BAT_EXPECTS(profile.launches >= 1);
  BAT_EXPECTS(profile.mem_efficiency > 0.0 && profile.mem_efficiency <= 1.0);
  BAT_EXPECTS(profile.compute_efficiency > 0.0 &&
              profile.compute_efficiency <= 1.0);

  const LaunchConfig launch{profile.block_threads, profile.regs_per_thread,
                            profile.smem_per_block};
  const OccupancyResult occ = compute_occupancy(device, launch);
  if (!occ.valid()) return std::nullopt;

  TimingBreakdown out;
  out.occupancy = occ;

  // Effective in-flight parallelism per SM: resident warps weighted by
  // per-thread ILP (tiling several outputs per thread issues independent
  // instructions even at low occupancy — the key effect behind large-tile
  // configurations winning at low occupancy). When the grid is smaller
  // than the residency capacity, blocks spread across SMs, so the warps
  // actually resident per SM shrink accordingly.
  const double ilp = std::max(1.0, profile.ilp);
  const double warps_per_block =
      static_cast<double>(occ.active_warps_per_sm) / occ.active_blocks_per_sm;
  const double blocks_per_sm_eff = std::min(
      static_cast<double>(occ.active_blocks_per_sm),
      static_cast<double>(profile.grid_blocks) / device.sm_count);
  const double inflight =
      std::max(warps_per_block, warps_per_block * blocks_per_sm_eff) *
      std::sqrt(ilp);

  // SMs with no block at all stay idle (grids smaller than the SM count).
  const double sm_fill = std::min(
      1.0, static_cast<double>(profile.grid_blocks) / device.sm_count);
  const double resident_capacity =
      static_cast<double>(occ.active_blocks_per_sm) * device.sm_count;

  const double hide_compute =
      latency_hiding(inflight, device.compute_saturation_warps) * sm_fill;
  const double hide_dram =
      latency_hiding(inflight, kDramSaturationWarps) * sm_fill;
  const double hide_smem =
      latency_hiding(inflight, kSmemSaturationWarps) * sm_fill;

  const double peak_gflops = device.peak_gflops() * profile.compute_efficiency;
  if (profile.flops > 0.0) {
    out.compute_ms =
        profile.flops / (peak_gflops * 1e9 * std::max(hide_compute, 1e-6)) * 1e3;
  }
  const double dram_gbs = device.mem_bandwidth_gbs * profile.mem_efficiency;
  if (profile.dram_bytes > 0.0) {
    out.dram_ms =
        profile.dram_bytes / (dram_gbs * 1e9 * std::max(hide_dram, 1e-6)) * 1e3;
  }
  if (profile.smem_bytes > 0.0) {
    out.smem_ms = profile.smem_bytes /
                  (device.smem_bandwidth_gbs() * 1e9 *
                   std::max(hide_smem, 1e-6)) *
                  1e3;
  }

  // Grid quantization: the partial last wave costs extra, but less than a
  // full wave — its blocks finish together at higher effective occupancy
  // headroom (power-law damping keeps the effect for 1-4 wave grids and
  // lets it vanish for large grids).
  const double waves = static_cast<double>(profile.grid_blocks) /
                       std::max(1.0, resident_capacity);
  if (waves > 1.0) {
    const double full = std::floor(waves);
    const double frac = waves - full;
    const double tail = frac > 0.0 ? std::pow(frac, 0.55) : 0.0;
    out.tail_factor = (full + tail) / waves;
  } else {
    out.tail_factor = 1.0;
  }

  out.overhead_ms = device.launch_overhead_ms * profile.launches;
  out.total_ms =
      std::max({out.compute_ms, out.dram_ms, out.smem_ms}) * out.tail_factor +
      out.overhead_ms;
  return out;
}

std::optional<double> LaunchModel::estimate_ms(const DeviceSpec& device,
                                               const KernelProfile& profile) {
  const auto breakdown = estimate(device, profile);
  if (!breakdown) return std::nullopt;
  return breakdown->total_ms;
}

}  // namespace bat::gpusim
