// CUDA-style occupancy calculation.
//
// Mirrors the logic of the CUDA occupancy calculator: the number of
// thread blocks resident on an SM is limited by (a) the block slots,
// (b) the thread/warp budget, (c) the register file, (d) shared memory.
// Register allocation is per-warp with 256-register granularity, like
// real hardware.
#pragma once

#include "gpusim/device.hpp"

namespace bat::gpusim {

struct LaunchConfig {
  int block_threads = 0;
  int regs_per_thread = 0;
  int smem_per_block = 0;  // bytes
};

enum class OccupancyLimiter { kBlocks, kWarps, kRegisters, kSharedMem, kInvalid };

struct OccupancyResult {
  int active_blocks_per_sm = 0;
  int active_warps_per_sm = 0;
  double occupancy = 0.0;  // active warps / max warps
  OccupancyLimiter limiter = OccupancyLimiter::kInvalid;

  [[nodiscard]] bool valid() const noexcept { return active_blocks_per_sm > 0; }
};

/// Computes SM residency for a launch configuration. Returns an invalid
/// result (active_blocks_per_sm == 0) when the block cannot be scheduled
/// at all: more threads than the block limit, more shared memory than the
/// per-block maximum, or a register footprint exceeding the file.
[[nodiscard]] OccupancyResult compute_occupancy(const DeviceSpec& device,
                                                const LaunchConfig& launch);

}  // namespace bat::gpusim
