#include "gpusim/device.hpp"

#include <stdexcept>

namespace bat::gpusim {

namespace {

DeviceSpec make_rtx_2080ti() {
  DeviceSpec d;
  d.name = "RTX_2080Ti";
  d.arch = Architecture::kTuring;
  d.sm_count = 68;
  d.max_threads_per_sm = 1024;
  d.max_warps_per_sm = 32;
  d.max_blocks_per_sm = 16;
  d.registers_per_sm = 65536;
  d.shared_mem_per_sm = 64 * 1024;
  d.max_shared_mem_per_block = 48 * 1024;
  d.clock_ghz = 1.545;
  d.fp32_lanes_per_sm = 64;
  d.mem_bandwidth_gbs = 616.0;
  d.l2_cache_bytes = 5.5 * 1024 * 1024;
  d.launch_overhead_ms = 0.0042;
  d.int_issue_ratio = 1.0;        // dedicated INT32 pipe
  d.readonly_cache_boost = 1.14;  // strong tex/L1 RO path on Turing
  d.smem_bandwidth_factor = 1.0;
  d.compute_saturation_warps = 6.0;
  return d;
}

DeviceSpec make_rtx_3060() {
  DeviceSpec d;
  d.name = "RTX_3060";
  d.arch = Architecture::kAmpere;
  d.sm_count = 28;
  d.max_threads_per_sm = 1536;
  d.max_warps_per_sm = 48;
  d.max_blocks_per_sm = 16;
  d.registers_per_sm = 65536;
  d.shared_mem_per_sm = 100 * 1024;
  d.max_shared_mem_per_block = 48 * 1024;  // static smem default carve-out
  d.clock_ghz = 1.777;
  d.fp32_lanes_per_sm = 128;
  d.mem_bandwidth_gbs = 360.0;
  d.l2_cache_bytes = 3.0 * 1024 * 1024;
  d.launch_overhead_ms = 0.0038;
  d.int_issue_ratio = 0.5;        // INT shares one FP32 datapath half
  d.readonly_cache_boost = 1.05;
  d.smem_bandwidth_factor = 1.08;
  d.compute_saturation_warps = 11.0;
  return d;
}

DeviceSpec make_rtx_3090() {
  DeviceSpec d;
  d.name = "RTX_3090";
  d.arch = Architecture::kAmpere;
  d.sm_count = 82;
  d.max_threads_per_sm = 1536;
  d.max_warps_per_sm = 48;
  d.max_blocks_per_sm = 16;
  d.registers_per_sm = 65536;
  d.shared_mem_per_sm = 100 * 1024;
  d.max_shared_mem_per_block = 48 * 1024;  // static smem default carve-out
  d.clock_ghz = 1.695;
  d.fp32_lanes_per_sm = 128;
  d.mem_bandwidth_gbs = 936.0;
  d.l2_cache_bytes = 6.0 * 1024 * 1024;
  d.launch_overhead_ms = 0.0038;
  d.int_issue_ratio = 0.5;
  d.readonly_cache_boost = 1.05;
  d.smem_bandwidth_factor = 1.08;
  d.compute_saturation_warps = 11.0;
  return d;
}

DeviceSpec make_rtx_titan() {
  DeviceSpec d;
  d.name = "RTX_Titan";
  d.arch = Architecture::kTuring;
  d.sm_count = 72;
  d.max_threads_per_sm = 1024;
  d.max_warps_per_sm = 32;
  d.max_blocks_per_sm = 16;
  d.registers_per_sm = 65536;
  d.shared_mem_per_sm = 64 * 1024;
  d.max_shared_mem_per_block = 48 * 1024;
  d.clock_ghz = 1.770;
  d.fp32_lanes_per_sm = 64;
  d.mem_bandwidth_gbs = 672.0;
  d.l2_cache_bytes = 5.5 * 1024 * 1024;
  d.launch_overhead_ms = 0.0042;
  d.int_issue_ratio = 1.0;
  d.readonly_cache_boost = 1.14;
  d.smem_bandwidth_factor = 1.0;
  d.compute_saturation_warps = 6.0;
  return d;
}

}  // namespace

const std::vector<DeviceSpec>& paper_devices() {
  static const std::vector<DeviceSpec> devices = {
      make_rtx_2080ti(), make_rtx_3060(), make_rtx_3090(), make_rtx_titan()};
  return devices;
}

const DeviceSpec& device_by_name(const std::string& name) {
  for (const auto& d : paper_devices()) {
    if (d.name == name) return d;
  }
  throw std::out_of_range("unknown device: " + name);
}

std::vector<std::string> paper_device_names() {
  std::vector<std::string> names;
  for (const auto& d : paper_devices()) names.push_back(d.name);
  return names;
}

}  // namespace bat::gpusim
