// Shared performance-model helpers used by the kernel models.
#pragma once

#include <algorithm>
#include <cmath>

namespace bat::gpusim {

/// DRAM transaction efficiency of strided access: stride 1 (in elements)
/// is fully coalesced; larger strides waste a growing share of each
/// 32-byte sector until every lane touches its own sector.
[[nodiscard]] inline double coalescing_efficiency(double stride_elements,
                                                  double element_bytes) noexcept {
  if (stride_elements <= 1.0) return 1.0;
  constexpr double kSectorBytes = 32.0;
  // Each lane's element sits stride*element_bytes from its neighbor's;
  // once that distance reaches a full sector every lane drags in its own
  // 32-byte sector and only element_bytes of it are useful.
  const double fetched_per_lane =
      std::min(stride_elements * element_bytes, kSectorBytes);
  return std::clamp(element_bytes / fetched_per_lane,
                    element_bytes / kSectorBytes, 1.0);
}

/// Vector-load efficiency: wider loads issue fewer transactions and use
/// the memory pipeline better, with diminishing returns beyond 128-bit.
[[nodiscard]] inline double vector_load_boost(int vector_width) noexcept {
  switch (vector_width) {
    case 1: return 1.00;
    case 2: return 1.06;
    case 4: return 1.10;
    case 8: return 1.08;  // 256-bit splits into two transactions again
    default: return 1.0;
  }
}

/// Partial loop unrolling: removes branch/index overhead with diminishing
/// returns; very large factors hurt via instruction-cache pressure.
/// Returns a multiplicative compute-efficiency factor (<= peak 1.0
/// improvement of `max_gain`).
[[nodiscard]] inline double unroll_efficiency(int factor,
                                              double max_gain = 0.12,
                                              int sweet_spot = 8) noexcept {
  if (factor <= 1) return 1.0;
  const double f = static_cast<double>(factor);
  const double s = static_cast<double>(sweet_spot);
  const double gain = max_gain * (1.0 - 1.0 / f);
  const double icache_penalty =
      f > s ? 0.04 * std::log2(f / s) : 0.0;
  return 1.0 + gain - icache_penalty;
}

/// Shared-memory bank-conflict multiplier on traffic: `conflict_ways` is
/// the average number of lanes hitting the same bank (1 = conflict free).
[[nodiscard]] inline double bank_conflict_factor(double conflict_ways) noexcept {
  return std::max(1.0, conflict_ways);
}

/// Cache-reuse model: a working set of `bytes` cycles through a cache of
/// `capacity` bytes; returns the miss fraction in [floor, 1].
[[nodiscard]] inline double cache_miss_fraction(double working_set_bytes,
                                                double capacity_bytes,
                                                double floor = 0.05) noexcept {
  if (working_set_bytes <= capacity_bytes) return floor;
  const double ratio = capacity_bytes / working_set_bytes;
  return std::clamp(1.0 - ratio * (1.0 - floor), floor, 1.0);
}

/// Ceil-div helper for grid sizing.
[[nodiscard]] constexpr std::uint64_t div_up(std::uint64_t a,
                                             std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace bat::gpusim
