#include "gpusim/noise.hpp"

#include "common/rng.hpp"

namespace bat::gpusim {

std::uint64_t stable_name_hash(std::string_view name) noexcept {
  // FNV-1a, then a strong finalizer.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return common::mix64(h);
}

double noise_factor(std::uint64_t kernel_id, std::uint64_t config_index,
                    std::uint64_t device_id, double amplitude) noexcept {
  std::uint64_t h = common::hash_combine(kernel_id, config_index);
  h = common::hash_combine(h, device_id);
  // Map to [-1, 1) with 53-bit precision, then scale.
  const double unit =
      static_cast<double>(common::mix64(h) >> 11) * 0x1.0p-53 * 2.0 - 1.0;
  return 1.0 + amplitude * unit;
}

}  // namespace bat::gpusim
