#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"

namespace bat::obs {

namespace {

#ifndef BAT_OBS_OFF
thread_local std::uint64_t t_current_trace = 0;
#endif

std::atomic<std::uint64_t>& trace_id_counter() {
  static std::atomic<std::uint64_t> counter{1};
  return counter;
}

std::chrono::steady_clock::time_point process_start() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

/// Touch the anchor at static-init time so "since process start" is
/// close to literal even if the first span is recorded hours in.
[[maybe_unused]] const auto anchor_init = process_start();

}  // namespace

TraceBuffer::TraceBuffer(std::size_t capacity, std::size_t stripes)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      stripes_(std::clamp<std::size_t>(stripes, 1, capacity_)) {
  const std::size_t per = capacity_ / stripes_.size();
  const std::size_t extra = capacity_ % stripes_.size();
  for (std::size_t i = 0; i < stripes_.size(); ++i) {
    stripes_[i].slots = per + (i < extra ? 1 : 0);
    stripes_[i].ring.reserve(stripes_[i].slots);
  }
}

void TraceBuffer::record(Span span) {
  span.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  recorded_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t i =
      round_robin_.fetch_add(1, std::memory_order_relaxed) % stripes_.size();
  Stripe& stripe = stripes_[i];
  std::lock_guard lock(stripe.mutex);
  if (stripe.ring.size() < stripe.slots) {
    stripe.ring.push_back(std::move(span));
    return;
  }
  stripe.ring[stripe.next] = std::move(span);  // overwrite the oldest
  stripe.next = (stripe.next + 1) % stripe.slots;
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<Span> TraceBuffer::for_trace(std::uint64_t trace_id) const {
  std::vector<Span> out;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard lock(stripe.mutex);
    for (const Span& span : stripe.ring) {
      if (span.trace_id == trace_id) out.push_back(span);
    }
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                    : a.seq < b.seq;
  });
  return out;
}

TraceBuffer& trace_buffer() {
  static TraceBuffer buffer;
  return buffer;
}

std::uint64_t mint_trace_id() noexcept {
  return trace_id_counter().fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t monotonic_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - process_start())
          .count());
}

std::uint64_t current_trace() noexcept {
#ifndef BAT_OBS_OFF
  return t_current_trace;
#else
  return 0;
#endif
}

TraceScope::TraceScope(std::uint64_t id) noexcept
#ifndef BAT_OBS_OFF
    : prev_(t_current_trace) {
  t_current_trace = id;
}
#else
{
  (void)id;
}
#endif

TraceScope::~TraceScope() {
#ifndef BAT_OBS_OFF
  t_current_trace = prev_;
#endif
}

ScopedSpan::ScopedSpan(const char* name) noexcept {
#ifndef BAT_OBS_OFF
  trace_ = t_current_trace;
  if (trace_ != 0) {
    name_ = name;
    start_ns_ = monotonic_now_ns();
  }
#else
  (void)name;
#endif
}

ScopedSpan::ScopedSpan(const char* name, Histogram* duration_s) noexcept {
#ifndef BAT_OBS_OFF
  trace_ = t_current_trace;
  duration_ = duration_s;
  if (trace_ != 0 || duration_ != nullptr) {
    name_ = name;
    start_ns_ = monotonic_now_ns();
  }
#else
  (void)name;
  (void)duration_s;
#endif
}

ScopedSpan::~ScopedSpan() {
#ifndef BAT_OBS_OFF
  if (trace_ == 0 && duration_ == nullptr) return;
  const std::uint64_t end_ns = monotonic_now_ns();
  if (duration_ != nullptr) {
    duration_->observe(static_cast<double>(end_ns - start_ns_) / 1e9);
  }
  if (trace_ == 0) return;
  Span span;
  span.trace_id = trace_;
  span.start_ns = start_ns_;
  span.end_ns = end_ns;
  span.name = name_;
  span.detail = std::move(detail_);
  trace_buffer().record(std::move(span));
#endif
}

}  // namespace bat::obs
