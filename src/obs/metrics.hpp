// MetricsRegistry: the process's one vocabulary for counters, gauges
// and latency histograms — every subsystem's ad-hoc atomics migrated
// here so /v1/stats, /v1/metrics and dashboards read the same numbers.
//
// Design rules (docs/observability.md is the operator-facing story):
//
//   * registration happens at startup (constructors), the hot path is
//     ONE relaxed atomic op on a pre-resolved handle — no map lookup,
//     no lock, no allocation. counter()/gauge()/histogram() get-or-
//     create: the same (name, labels) pair always returns the same
//     handle, so two instruments of the same series aggregate;
//   * histograms use fixed boundaries (log-scale via exponential())
//     chosen at registration: observe() is a short linear scan plus
//     two relaxed adds, and p50/p99 come from bucket interpolation
//     (Snapshot::quantile) — no reservoir, no per-observation heap;
//   * scrape-time series (callback()) render a value computed at
//     exposition time — the bridge for counters that already live
//     elsewhere (journal stats, per-workload cache aggregates), which
//     keeps a single source of truth instead of double bookkeeping;
//   * render_prometheus() emits text format 0.0.4 (golden-tested in
//     tests/obs_metrics_test.cpp): families sorted by name, series by
//     label signature, histograms as cumulative le-buckets + _sum +
//     _count.
//
// Compile-time kill switch: with BAT_OBS_OFF defined every mutation
// (add/set/observe) compiles to nothing — the baseline the
// bench/obs_overhead 1.03x gate measures against. Registration and
// rendering still work (series expose zeros), and control-flow state
// (connection caps, admission queues) deliberately does NOT live here
// so the switch can never change behavior.
//
// Thread-safety: registration and rendering serialize on one mutex;
// handle mutations are lock-free relaxed atomics and safe from any
// thread. Handles stay valid for the registry's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace bat::obs {

/// Label set for one series ({{"scope","client"}, ...}). Order given
/// at registration is preserved in the exposition.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. The only mutation is add(); value() is exact.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
#ifndef BAT_OBS_OFF
    v_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Settable signed gauge (telemetry only — never store control state
/// here: BAT_OBS_OFF turns every mutation into a no-op).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
#ifndef BAT_OBS_OFF
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(std::int64_t d) noexcept {
#ifndef BAT_OBS_OFF
    v_.fetch_add(d, std::memory_order_relaxed);
#else
    (void)d;
#endif
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-boundary histogram. Boundaries are upper bucket edges in
/// ascending order; an implicit +Inf bucket catches the rest.
class Histogram {
 public:
  /// Throws std::invalid_argument unless `bounds` is non-empty and
  /// strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept {
#ifndef BAT_OBS_OFF
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  struct Snapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (+Inf last)
    std::uint64_t count = 0;
    double sum = 0.0;

    /// Linear interpolation inside the bucket holding the q-quantile
    /// (q in [0,1]); 0 when empty, the last finite bound when the
    /// quantile lands in +Inf.
    [[nodiscard]] double quantile(double q) const;
  };
  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }

  /// n log-scale boundaries: start, start*factor, start*factor^2, ...
  [[nodiscard]] static std::vector<double> exponential(double start,
                                                       double factor,
                                                       std::size_t n);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry;

/// RAII registration of a scrape-time callback series; unregisters on
/// destruction, so holders can capture `this` safely (destroy the
/// guard before whatever the callback reads — member order does it).
class CallbackGuard {
 public:
  CallbackGuard() = default;
  CallbackGuard(CallbackGuard&& other) noexcept;
  CallbackGuard& operator=(CallbackGuard&& other) noexcept;
  ~CallbackGuard();

  CallbackGuard(const CallbackGuard&) = delete;
  CallbackGuard& operator=(const CallbackGuard&) = delete;

 private:
  friend class MetricsRegistry;
  CallbackGuard(MetricsRegistry* registry, std::string name,
                std::uint64_t id)
      : registry_(registry), name_(std::move(name)), id_(id) {}
  void release();

  MetricsRegistry* registry_ = nullptr;
  std::string name_;
  std::uint64_t id_ = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. Same (name, labels) -> same handle; a name
  /// registered as a different kind (or a histogram with different
  /// bounds) throws std::invalid_argument. Names must match
  /// [a-zA-Z_:][a-zA-Z0-9_:]*.
  Counter* counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  Gauge* gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  Histogram* histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, Labels labels = {});

  enum class CallbackKind { kCounter, kGauge };
  /// Scrape-time series: `fn` runs under the registry mutex at every
  /// render — keep it cheap and never let it call back into this
  /// registry. The guard unregisters it.
  [[nodiscard]] CallbackGuard callback(const std::string& name,
                                       const std::string& help,
                                       CallbackKind kind, Labels labels,
                                       std::function<double()> fn);

  /// Prometheus text format 0.0.4. Deterministic: families sorted by
  /// name, series by label signature.
  [[nodiscard]] std::string render_prometheus() const;

 private:
  friend class CallbackGuard;

  enum class Kind { kCounter, kGauge, kHistogram, kCallback };

  struct Series {
    Labels labels;
    std::string label_key;  // canonical signature for dedup + ordering
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> fn;
    std::uint64_t callback_id = 0;
  };
  struct Family {
    std::string help;
    Kind kind = Kind::kCounter;
    CallbackKind callback_kind = CallbackKind::kCounter;
    std::vector<std::unique_ptr<Series>> series;
  };

  Family& family_locked(const std::string& name, const std::string& help,
                        Kind kind);
  Series* find_series_locked(Family& family, const std::string& key);
  void remove_callback(const std::string& name, std::uint64_t id);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
  std::uint64_t next_callback_id_ = 1;
};

}  // namespace bat::obs
