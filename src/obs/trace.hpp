// Span tracing: "where did session 42 spend its 3 seconds?"
//
// Model (docs/observability.md):
//
//   * a trace id is minted per unit of work — one per tracked session
//     (TuningService::submit_tracked) and one per dispatched HTTP
//     request — from a process-wide monotonic counter, so ids never
//     collide even across multiple services in one process;
//   * propagation is a thread-local (TraceScope): the service worker
//     enters the session's scope, and every instrumented layer it
//     calls into — backend batches, jit compiles, journal commits,
//     cluster peer RPCs — picks the id up implicitly. No signature
//     grows a trace parameter. The known limit: work handed to
//     *other* threads (run_inline batch fan-out over the global pool,
//     compiles on the jit pool) is timed from the requesting thread
//     instead — the span covers the wait, which is what the session
//     actually spent;
//   * spans land in one process-wide bounded ring (trace_buffer()),
//     lock-striped so concurrent recorders hit different mutexes;
//     wraparound overwrites the oldest spans per stripe (newest
//     always survive — tests/obs_metrics_test.cpp pins that);
//   * timestamps are monotonic nanoseconds since process start
//     (steady_clock — never wall time, so spans order correctly
//     across NTP steps).
//
// The whole layer compiles to nothing under BAT_OBS_OFF (the
// bench/obs_overhead baseline); an untraced thread (current_trace()
// == 0) pays one thread-local read + branch per ScopedSpan.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace bat::obs {

class Histogram;

struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t seq = 0;       // global record order (tie-break)
  std::uint64_t start_ns = 0;  // monotonic, since process start
  std::uint64_t end_ns = 0;
  std::string name;    // static site name ("evaluate", "journal.result")
  std::string detail;  // free-form ("kernel=pnpoly", "peer=2")
};

/// Bounded lock-striped span ring. Capacity is split evenly over the
/// stripes; record() round-robins stripes so concurrent recorders
/// rarely share a mutex, and each stripe overwrites its own oldest.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 8192, std::size_t stripes = 8);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  void record(Span span);

  /// Every surviving span of `trace_id`, sorted by (start_ns, seq).
  [[nodiscard]] std::vector<Span> for_trace(std::uint64_t trace_id) const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return recorded_.load(std::memory_order_relaxed);
  }
  /// Spans overwritten by wraparound (recorded - retained).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Stripe {
    mutable std::mutex mutex;
    std::vector<Span> ring;   // capacity_/stripes slots, lazily grown
    std::size_t next = 0;     // overwrite cursor once full
    std::size_t slots = 0;    // fixed bound for this stripe
  };

  std::size_t capacity_;
  std::vector<Stripe> stripes_;
  std::atomic<std::uint64_t> round_robin_{0};
  std::atomic<std::uint64_t> seq_{1};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// The process-wide span ring every instrumented call site records
/// into (sized for the newest few thousand spans; a scrape-time
/// consumer reads per-trace timelines out of it).
[[nodiscard]] TraceBuffer& trace_buffer();

/// Fresh nonzero trace id (process-wide monotonic counter).
[[nodiscard]] std::uint64_t mint_trace_id() noexcept;

/// Monotonic nanoseconds since process start (steady_clock).
[[nodiscard]] std::uint64_t monotonic_now_ns() noexcept;

/// The calling thread's active trace id; 0 = untraced.
[[nodiscard]] std::uint64_t current_trace() noexcept;

/// RAII: makes `id` the calling thread's active trace, restoring the
/// previous one on destruction (scopes nest).
class TraceScope {
 public:
  explicit TraceScope(std::uint64_t id) noexcept;
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
#ifndef BAT_OBS_OFF
  std::uint64_t prev_;
#endif
};

/// RAII span around a scope: records [construction, destruction) into
/// trace_buffer() under the thread's active trace. Free when the
/// thread is untraced (one TLS read + branch, no clock call).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept;
  /// Also observes the scope's duration (seconds) into `duration_s` at
  /// destruction — always, traced or not: metrics never depend on
  /// which requests happen to be traced. One clock pair serves both
  /// the histogram and the span, so instrumented hot paths (the HTTP
  /// per-request wrapper) pay two clock reads, not four.
  ScopedSpan(const char* name, Histogram* duration_s) noexcept;
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when the span will be recorded — guard any detail-string
  /// construction behind it so untraced hot paths never allocate.
  [[nodiscard]] bool active() const noexcept {
#ifndef BAT_OBS_OFF
    return trace_ != 0;
#else
    return false;
#endif
  }
  void set_detail(std::string detail) {
#ifndef BAT_OBS_OFF
    if (trace_ != 0) detail_ = std::move(detail);
#else
    (void)detail;
#endif
  }

 private:
#ifndef BAT_OBS_OFF
  std::uint64_t trace_ = 0;
  std::uint64_t start_ns_ = 0;
  const char* name_ = nullptr;
  Histogram* duration_ = nullptr;
  std::string detail_;
#endif
};

}  // namespace bat::obs
