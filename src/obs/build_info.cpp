#include "obs/build_info.hpp"

#include "obs/trace.hpp"

#ifndef BAT_BUILD_ID
#define BAT_BUILD_ID "unknown"
#endif

namespace bat::obs {

const std::string& build_id() {
  static const std::string id = BAT_BUILD_ID;
  return id;
}

double uptime_seconds() {
  return static_cast<double>(monotonic_now_ns()) / 1e9;
}

}  // namespace bat::obs
