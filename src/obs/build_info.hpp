// Build/process identity for /v1/healthz and bat_build_info.
#pragma once

#include <string>

namespace bat::obs {

/// `git describe --always --dirty` of the checkout this library was
/// configured from (CMake injects BAT_BUILD_ID); "unknown" without git.
[[nodiscard]] const std::string& build_id();

/// Seconds since process start (monotonic).
[[nodiscard]] double uptime_seconds();

}  // namespace bat::obs
