#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace bat::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

/// Canonical label signature: rendered exactly as exposed, which makes
/// it both the dedup key and the deterministic series sort key.
std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string label_signature(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += "\"";
  }
  out += "}";
  return out;
}

std::string escape_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Prometheus sample value: integral values print without an exponent
/// or trailing zeros ("5", not "5.0"); everything else as shortest %g.
std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

/// `le` bound formatting: same rule as sample values, so goldens stay
/// stable ("0.001", "4096", "+Inf").
std::string format_bound(double v) { return format_value(v); }

}  // namespace

// ----------------------------------------------------------- Histogram --

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("histogram: needs at least one boundary");
  }
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i) {
    if (!(bounds_[i] < bounds_[i + 1])) {
      throw std::invalid_argument(
          "histogram: boundaries must be strictly increasing");
    }
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.buckets.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

double Histogram::Snapshot::quantile(double q) const {
  std::uint64_t total = 0;
  for (const auto b : buckets) total += b;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t prev = cum;
    cum += buckets[i];
    if (static_cast<double>(cum) >= target && buckets[i] > 0) {
      if (i >= bounds.size()) return bounds.back();  // +Inf bucket
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double within =
          (target - static_cast<double>(prev)) /
          static_cast<double>(buckets[i]);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
  }
  return bounds.back();
}

std::vector<double> Histogram::exponential(double start, double factor,
                                           std::size_t n) {
  if (!(start > 0.0) || !(factor > 1.0) || n == 0) {
    throw std::invalid_argument("histogram: bad exponential bucket spec");
  }
  std::vector<double> out;
  out.reserve(n);
  double v = start;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

// ------------------------------------------------------- CallbackGuard --

CallbackGuard::CallbackGuard(CallbackGuard&& other) noexcept
    : registry_(other.registry_),
      name_(std::move(other.name_)),
      id_(other.id_) {
  other.registry_ = nullptr;
  other.id_ = 0;
}

CallbackGuard& CallbackGuard::operator=(CallbackGuard&& other) noexcept {
  if (this != &other) {
    release();
    registry_ = other.registry_;
    name_ = std::move(other.name_);
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

CallbackGuard::~CallbackGuard() { release(); }

void CallbackGuard::release() {
  if (registry_ != nullptr && id_ != 0) {
    registry_->remove_callback(name_, id_);
  }
  registry_ = nullptr;
  id_ = 0;
}

// ----------------------------------------------------- MetricsRegistry --

MetricsRegistry::Family& MetricsRegistry::family_locked(
    const std::string& name, const std::string& help, Kind kind) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("metrics: invalid metric name '" + name + "'");
  }
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.help = help;
    it->second.kind = kind;
  } else if (it->second.kind != kind) {
    throw std::invalid_argument("metrics: '" + name +
                                "' re-registered as a different kind");
  }
  return it->second;
}

MetricsRegistry::Series* MetricsRegistry::find_series_locked(
    Family& family, const std::string& key) {
  for (const auto& s : family.series) {
    if (s->label_key == key) return s.get();
  }
  return nullptr;
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const std::string& help, Labels labels) {
  std::lock_guard lock(mutex_);
  Family& family = family_locked(name, help, Kind::kCounter);
  const std::string key = label_signature(labels);
  if (Series* existing = find_series_locked(family, key)) {
    return existing->counter.get();
  }
  auto series = std::make_unique<Series>();
  series->labels = std::move(labels);
  series->label_key = key;
  series->counter = std::make_unique<Counter>();
  Counter* out = series->counter.get();
  family.series.push_back(std::move(series));
  return out;
}

Gauge* MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              Labels labels) {
  std::lock_guard lock(mutex_);
  Family& family = family_locked(name, help, Kind::kGauge);
  const std::string key = label_signature(labels);
  if (Series* existing = find_series_locked(family, key)) {
    return existing->gauge.get();
  }
  auto series = std::make_unique<Series>();
  series->labels = std::move(labels);
  series->label_key = key;
  series->gauge = std::make_unique<Gauge>();
  Gauge* out = series->gauge.get();
  family.series.push_back(std::move(series));
  return out;
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> bounds,
                                      Labels labels) {
  std::lock_guard lock(mutex_);
  Family& family = family_locked(name, help, Kind::kHistogram);
  const std::string key = label_signature(labels);
  if (Series* existing = find_series_locked(family, key)) {
    if (existing->histogram->bounds() != bounds) {
      throw std::invalid_argument("metrics: '" + name +
                                  "' re-registered with different buckets");
    }
    return existing->histogram.get();
  }
  auto series = std::make_unique<Series>();
  series->labels = std::move(labels);
  series->label_key = key;
  series->histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram* out = series->histogram.get();
  family.series.push_back(std::move(series));
  return out;
}

CallbackGuard MetricsRegistry::callback(const std::string& name,
                                        const std::string& help,
                                        CallbackKind kind, Labels labels,
                                        std::function<double()> fn) {
  if (!fn) throw std::invalid_argument("metrics: callback must be callable");
  std::lock_guard lock(mutex_);
  Family& family = family_locked(name, help, Kind::kCallback);
  if (!family.series.empty() && family.callback_kind != kind) {
    throw std::invalid_argument("metrics: '" + name +
                                "' callbacks disagree on counter vs gauge");
  }
  family.callback_kind = kind;
  const std::string key = label_signature(labels);
  if (find_series_locked(family, key) != nullptr) {
    throw std::invalid_argument("metrics: duplicate callback series '" + name +
                                key + "'");
  }
  auto series = std::make_unique<Series>();
  series->labels = std::move(labels);
  series->label_key = key;
  series->fn = std::move(fn);
  series->callback_id = next_callback_id_++;
  const std::uint64_t id = series->callback_id;
  family.series.push_back(std::move(series));
  return CallbackGuard(this, name, id);
}

void MetricsRegistry::remove_callback(const std::string& name,
                                      std::uint64_t id) {
  std::lock_guard lock(mutex_);
  const auto it = families_.find(name);
  if (it == families_.end()) return;
  auto& series = it->second.series;
  series.erase(std::remove_if(series.begin(), series.end(),
                              [&](const std::unique_ptr<Series>& s) {
                                return s->callback_id == id;
                              }),
               series.end());
  if (series.empty() && it->second.kind == Kind::kCallback) {
    families_.erase(it);
  }
}

std::string MetricsRegistry::render_prometheus() const {
  std::lock_guard lock(mutex_);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, family] : families_) {
    if (family.series.empty()) continue;
    out += "# HELP " + name + " " + escape_help(family.help) + "\n";
    const char* type = "untyped";
    switch (family.kind) {
      case Kind::kCounter: type = "counter"; break;
      case Kind::kGauge: type = "gauge"; break;
      case Kind::kHistogram: type = "histogram"; break;
      case Kind::kCallback:
        type = family.callback_kind == CallbackKind::kCounter ? "counter"
                                                              : "gauge";
        break;
    }
    out += "# TYPE " + name + " " + type + "\n";

    // Deterministic series order within the family.
    std::vector<const Series*> ordered;
    ordered.reserve(family.series.size());
    for (const auto& s : family.series) ordered.push_back(s.get());
    std::sort(ordered.begin(), ordered.end(),
              [](const Series* a, const Series* b) {
                return a->label_key < b->label_key;
              });

    for (const Series* s : ordered) {
      if (family.kind == Kind::kHistogram) {
        const auto snap = s->histogram->snapshot();
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
          cum += snap.buckets[i];
          Labels with_le = s->labels;
          with_le.emplace_back("le", i < snap.bounds.size()
                                         ? format_bound(snap.bounds[i])
                                         : "+Inf");
          out += name + "_bucket" + label_signature(with_le) + " " +
                 std::to_string(cum) + "\n";
        }
        out += name + "_sum" + s->label_key + " " + format_value(snap.sum) +
               "\n";
        out += name + "_count" + s->label_key + " " + std::to_string(cum) +
               "\n";
        continue;
      }
      double value = 0.0;
      switch (family.kind) {
        case Kind::kCounter:
          value = static_cast<double>(s->counter->value());
          break;
        case Kind::kGauge:
          value = static_cast<double>(s->gauge->value());
          break;
        case Kind::kCallback:
          value = s->fn();
          break;
        case Kind::kHistogram:
          break;  // handled above
      }
      out += name + s->label_key + " " + format_value(value) + "\n";
    }
  }
  return out;
}

}  // namespace bat::obs
