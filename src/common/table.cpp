#include "common/table.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/string_util.hpp"

namespace bat::common {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  BAT_EXPECTS(!headers_.empty());
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  BAT_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void AsciiTable::add_row_values(const std::vector<double>& values,
                                int decimals) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) cells.push_back(format_double(v, decimals));
  add_row(std::move(cells));
}

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += ' ';
      line += cells[c];
      line.append(widths[c] - cells[c].size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  out += "|";
  for (const std::size_t w : widths) {
    out.append(w + 2, '-');
    out += '|';
  }
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace bat::common
