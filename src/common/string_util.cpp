#include "common/string_util.hpp"

#include <array>
#include <cctype>
#include <cstdio>
#include <cstdint>

namespace bat::common {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int max_decimals) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", max_decimals, value);
  std::string s(buf.data());
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string format_grouped(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out += ' ';
    out += digits[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace bat::common
