// Descriptive statistics used throughout the analysis modules.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bat::common {

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double variance(std::span<const double> xs);   // population
[[nodiscard]] double stddev(std::span<const double> xs);     // population
[[nodiscard]] double min_value(std::span<const double> xs);
[[nodiscard]] double max_value(std::span<const double> xs);
[[nodiscard]] std::size_t argmin(std::span<const double> xs);
[[nodiscard]] std::size_t argmax(std::span<const double> xs);

/// Quantile with linear interpolation between closest ranks
/// (numpy's default "linear" method). q in [0, 1]. Copies + sorts.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Median = quantile(0.5).
[[nodiscard]] double median(std::span<const double> xs);

/// Quantile over data that is already sorted ascending (no copy).
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Pearson correlation coefficient.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// out[i] = min(xs[0..i]) — the "best so far" curve of a minimization
/// trace. Shared by evaluation traces and convergence analysis.
[[nodiscard]] std::vector<double> running_minimum(std::span<const double> xs);

/// Numerically stable streaming mean/variance/min/max (Welford).
class OnlineStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;  // population
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Histogram with equal-width bins over [lo, hi].
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t b) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_center(std::size_t b) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Normalized density per bin (sums to 1 over all bins).
  [[nodiscard]] std::vector<double> densities() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace bat::common
