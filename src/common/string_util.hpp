// Small string helpers shared by the CSV/table/log modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bat::common {

[[nodiscard]] std::vector<std::string> split(std::string_view text,
                                             char delimiter);

[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view separator);

[[nodiscard]] std::string_view trim(std::string_view text);

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Formats a double trimming trailing zeros ("1.5", "2", "0.333").
[[nodiscard]] std::string format_double(double value, int max_decimals = 6);

/// Groups thousands with spaces like the paper's tables ("123 863 040").
[[nodiscard]] std::string format_grouped(std::uint64_t value);

/// Lower-cases ASCII.
[[nodiscard]] std::string to_lower(std::string_view text);

}  // namespace bat::common
