#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace bat::common {

void Xoshiro256StarStar::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      (void)(*this)();
    }
  }
  state_ = acc;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  BAT_EXPECTS(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = gen_();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = gen_();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  BAT_EXPECTS(lo <= hi);
  const auto range =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(gen_());
  }
  return lo + static_cast<std::int64_t>(next_below(range));
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  BAT_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  BAT_EXPECTS(k <= n);
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 <= n) {
    // Floyd's algorithm: O(k) expected, distinct by construction.
    std::unordered_set<std::size_t> seen;
    seen.reserve(k * 2);
    for (std::size_t j = n - k; j < n; ++j) {
      const auto t = static_cast<std::size_t>(next_below(j + 1));
      if (seen.insert(t).second) {
        out.push_back(t);
      } else {
        seen.insert(j);
        out.push_back(j);
      }
    }
  } else {
    // Partial Fisher-Yates over an explicit index vector.
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const auto j = i + static_cast<std::size_t>(next_below(n - i));
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
  }
  return out;
}

}  // namespace bat::common
