// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").
//
// Violations throw bat::common::ContractViolation so tests can assert on
// them; they are never compiled out because the library is used for
// research where silent corruption is worse than the branch cost.
#pragma once

#include <stdexcept>
#include <string>

namespace bat::common {

/// Thrown when a BAT_EXPECTS/BAT_ENSURES contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}

}  // namespace bat::common

#define BAT_EXPECTS(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::bat::common::contract_fail("precondition", #cond, __FILE__,      \
                                   __LINE__);                            \
  } while (false)

#define BAT_ENSURES(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::bat::common::contract_fail("postcondition", #cond, __FILE__,     \
                                   __LINE__);                            \
  } while (false)
