#include "common/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bat::common {

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) buffer_ += ',';
    buffer_ += escape(cells[i]);
  }
  buffer_ += '\n';
}

void CsvWriter::save(const std::string& path) const {
  write_file(path, buffer_);
}

std::vector<std::vector<std::string>> CsvReader::parse(
    const std::string& text) {
  auto parsed = parse_rows(text);
  std::vector<std::vector<std::string>> rows;
  rows.reserve(parsed.size());
  for (auto& row : parsed) rows.push_back(std::move(row.cells));
  return rows;
}

std::vector<CsvRow> CsvReader::parse_rows(const std::string& text) {
  std::vector<CsvRow> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool row_has_content = false;
  std::size_t line = 1;        // current source line (1-based)
  std::size_t row_line = 1;    // line the current row started on

  const auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
    row_has_content = true;
  };
  const auto end_row = [&] {
    if (row_has_content || !row.empty()) {
      end_cell();
      rows.push_back(CsvRow{row_line, std::move(row)});
      row.clear();
      row_has_content = false;
    }
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        cell += c;
      }
    } else {
      switch (c) {
        case '"':
          in_quotes = true;
          row_has_content = true;
          break;
        case ',':
          end_cell();
          break;
        case '\r':
          break;  // tolerate CRLF
        case '\n':
          end_row();
          ++line;
          row_line = line;
          break;
        default:
          cell += c;
          row_has_content = true;
          break;
      }
    }
  }
  if (row_has_content || !cell.empty() || !row.empty()) end_row();
  return rows;
}

std::vector<std::vector<std::string>> CsvReader::load(const std::string& path) {
  return parse(read_file(path));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open file for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  out << content;
  if (!out) throw std::runtime_error("failed writing file: " + path);
}

}  // namespace bat::common
