// Deterministic pseudo-random number generation.
//
// Every stochastic component in BAT takes an explicit 64-bit seed so that
// experiments are exactly reproducible. We provide:
//   * SplitMix64  — seed expander (also usable as a fast generator)
//   * Xoshiro256StarStar — the main generator (satisfies
//     std::uniform_random_bit_generator)
//   * mix64 / hash_combine — stateless hashing used to derive deterministic
//     per-(config, device) measurement noise.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/contracts.hpp"

namespace bat::common {

/// Stateless 64-bit finalizer (the SplitMix64 output function). Good
/// avalanche behaviour; used to derive deterministic noise from ids.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine a hash with a new value (boost::hash_combine style, 64-bit).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t value) noexcept {
  return seed ^ (mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

/// SplitMix64: tiny, fast, passes BigCrush; used to seed Xoshiro.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr result_type operator()() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna: the workhorse generator.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Jump ahead 2^128 steps; used to give parallel workers disjoint streams.
  void jump() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Convenience wrapper bundling a generator with the distributions BAT needs.
/// All methods are branch-stable so the consumed entropy per call is fixed
/// where possible (important for reproducibility across platforms).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dULL) : gen_(seed) {}

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Standard normal via Marsaglia polar method (cached second value).
  [[nodiscard]] double normal();

  /// Normal with mean/stddev.
  [[nodiscard]] double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Bernoulli trial.
  [[nodiscard]] bool bernoulli(double p) { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& values) {
    shuffle(std::span<T>(values));
  }

  /// Sample k distinct indices from [0, n) (Floyd's algorithm when k << n,
  /// reservoir otherwise). Result is in arbitrary deterministic order.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                        std::size_t k);

  /// Pick a uniformly random element.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& values) {
    BAT_EXPECTS(!values.empty());
    return values[static_cast<std::size_t>(next_below(values.size()))];
  }

  /// Split off an independent child generator (seeded from this stream).
  [[nodiscard]] Rng split() { return Rng(gen_() ^ 0x9e3779b97f4a7c15ULL); }

  [[nodiscard]] Xoshiro256StarStar& generator() noexcept { return gen_; }

 private:
  Xoshiro256StarStar gen_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace bat::common
