#include "common/json.hpp"

#include <cmath>

#include "common/string_util.hpp"

namespace bat::common {

Json Json::array(const std::vector<double>& values) {
  JsonArray arr;
  arr.reserve(values.size());
  for (const double v : values) arr.emplace_back(v);
  return Json(std::move(arr));
}

Json Json::array(const std::vector<std::string>& values) {
  JsonArray arr;
  arr.reserve(values.size());
  for (const auto& v : values) arr.emplace_back(v);
  return Json(std::move(arr));
}

void Json::escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

void Json::dump_impl(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                   static_cast<std::size_t>(depth + 1),
                               ' ')
                 : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                   static_cast<std::size_t>(depth),
                               ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* d = std::get_if<double>(&value_)) {
    if (std::isfinite(*d)) {
      out += format_double(*d, 9);
    } else {
      out += "null";  // JSON has no NaN/Inf
    }
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    out += std::to_string(*i);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    escape_into(out, *s);
  } else if (const auto* a = std::get_if<JsonArray>(&value_)) {
    out += '[';
    for (std::size_t k = 0; k < a->size(); ++k) {
      if (k > 0) out += ',';
      out += nl;
      out += pad;
      (*a)[k].dump_impl(out, indent, depth + 1);
    }
    if (!a->empty()) {
      out += nl;
      out += close_pad;
    }
    out += ']';
  } else if (const auto* o = std::get_if<JsonObject>(&value_)) {
    out += '{';
    std::size_t k = 0;
    for (const auto& [key, val] : *o) {
      if (k++ > 0) out += ',';
      out += nl;
      out += pad;
      escape_into(out, key);
      out += indent > 0 ? ": " : ":";
      val.dump_impl(out, indent, depth + 1);
    }
    if (!o->empty()) {
      out += nl;
      out += close_pad;
    }
    out += '}';
  }
}

}  // namespace bat::common
