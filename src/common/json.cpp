#include "common/json.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>

#include "common/string_util.hpp"

namespace bat::common {

Json Json::array(const std::vector<double>& values) {
  JsonArray arr;
  arr.reserve(values.size());
  for (const double v : values) arr.emplace_back(v);
  return Json(std::move(arr));
}

Json Json::array(const std::vector<std::string>& values) {
  JsonArray arr;
  arr.reserve(values.size());
  for (const auto& v : values) arr.emplace_back(v);
  return Json(std::move(arr));
}

// ----------------------------------------------------------------- dump ---

void Json::escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

void Json::dump_impl(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                   static_cast<std::size_t>(depth + 1),
                               ' ')
                 : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                   static_cast<std::size_t>(depth),
                               ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* d = std::get_if<double>(&value_)) {
    if (std::isfinite(*d)) {
      out += format_double(*d, 9);
    } else {
      out += "null";  // JSON has no NaN/Inf
    }
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    out += std::to_string(*i);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    escape_into(out, *s);
  } else if (const auto* a = std::get_if<JsonArray>(&value_)) {
    out += '[';
    for (std::size_t k = 0; k < a->size(); ++k) {
      if (k > 0) out += ',';
      out += nl;
      out += pad;
      (*a)[k].dump_impl(out, indent, depth + 1);
    }
    if (!a->empty()) {
      out += nl;
      out += close_pad;
    }
    out += ']';
  } else if (const auto* o = std::get_if<JsonObject>(&value_)) {
    out += '{';
    std::size_t k = 0;
    for (const auto& [key, val] : *o) {
      if (k++ > 0) out += ',';
      out += nl;
      out += pad;
      escape_into(out, key);
      out += indent > 0 ? ": " : ":";
      val.dump_impl(out, indent, depth + 1);
    }
    if (!o->empty()) {
      out += nl;
      out += close_pad;
    }
    out += '}';
  }
}

// ------------------------------------------------------------- accessors ---

const char* Json::type_name() const noexcept {
  if (is_null()) return "null";
  if (is_bool()) return "bool";
  if (is_int()) return "int";
  if (is_number()) return "double";
  if (is_string()) return "string";
  if (is_array()) return "array";
  return "object";
}

namespace {
[[noreturn]] void type_fail(const char* wanted, const char* got) {
  throw JsonTypeError(std::string("json: expected ") + wanted + ", got " +
                      got);
}
}  // namespace

bool Json::as_bool() const {
  if (const auto* b = std::get_if<bool>(&value_)) return *b;
  type_fail("bool", type_name());
}

double Json::as_double() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  type_fail("number", type_name());
}

std::int64_t Json::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return *i;
  if (const auto* d = std::get_if<double>(&value_)) {
    // Exactly representable integers only: 2^63 is the first double at
    // or beyond INT64_MAX, so `< 2^63 && >= -2^63` is the right bound.
    if (std::isfinite(*d) && std::trunc(*d) == *d &&
        *d >= -9223372036854775808.0 && *d < 9223372036854775808.0) {
      return static_cast<std::int64_t>(*d);
    }
    throw JsonTypeError("json: double " + format_double(*d, 9) +
                        " is not an in-range integer");
  }
  type_fail("integer", type_name());
}

std::uint64_t Json::as_uint() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    if (*i < 0) {
      throw JsonTypeError("json: expected non-negative integer, got " +
                          std::to_string(*i));
    }
    return static_cast<std::uint64_t>(*i);
  }
  if (const auto* d = std::get_if<double>(&value_)) {
    if (std::isfinite(*d) && std::trunc(*d) == *d && *d >= 0.0 &&
        *d < 18446744073709551616.0) {
      return static_cast<std::uint64_t>(*d);
    }
    throw JsonTypeError("json: double " + format_double(*d, 9) +
                        " is not an in-range unsigned integer");
  }
  type_fail("unsigned integer", type_name());
}

const std::string& Json::as_string() const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  type_fail("string", type_name());
}

const JsonArray& Json::as_array() const {
  if (const auto* a = std::get_if<JsonArray>(&value_)) return *a;
  type_fail("array", type_name());
}

const JsonObject& Json::as_object() const {
  if (const auto* o = std::get_if<JsonObject>(&value_)) return *o;
  type_fail("object", type_name());
}

const Json* Json::find(const std::string& key) const {
  const auto* o = std::get_if<JsonObject>(&value_);
  if (o == nullptr) return nullptr;
  const auto it = o->find(key);
  return it == o->end() ? nullptr : &it->second;
}

const Json& Json::at(const std::string& key) const {
  const Json* found = find(key);
  if (found == nullptr) {
    throw JsonTypeError("json: missing key \"" + key + "\" in " +
                        type_name());
  }
  return *found;
}

// ----------------------------------------------------------------- parse ---

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : begin_(text.data()),
        p_(text.data()),
        end_(text.data() + text.size()),
        max_depth_(max_depth) {}

  Json run() {
    skip_ws();
    Json value = parse_value(0);
    skip_ws();
    if (p_ != end_) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError("json parse error at byte " +
                         std::to_string(p_ - begin_) + ": " + message);
  }

  [[nodiscard]] bool eof() const noexcept { return p_ == end_; }
  [[nodiscard]] char peek() const noexcept { return *p_; }

  void skip_ws() noexcept {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  void expect(char c) {
    if (eof() || *p_ != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++p_;
  }

  void expect_literal(const char* literal) {
    for (const char* q = literal; *q != '\0'; ++q) {
      if (eof() || *p_ != *q) {
        fail(std::string("invalid literal (expected \"") + literal + "\")");
      }
      ++p_;
    }
  }

  Json parse_value(std::size_t depth) {
    if (depth > max_depth_) fail("nesting deeper than the allowed maximum");
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't': expect_literal("true"); return Json(true);
      case 'f': expect_literal("false"); return Json(false);
      case 'n': expect_literal("null"); return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object(std::size_t depth) {
    expect('{');
    JsonObject object;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++p_;
      return Json(std::move(object));
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      if (object.find(key) != object.end()) {
        fail("duplicate object key \"" + key + "\"");
      }
      skip_ws();
      expect(':');
      skip_ws();
      object.emplace(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        ++p_;
        continue;
      }
      expect('}');
      return Json(std::move(object));
    }
  }

  Json parse_array(std::size_t depth) {
    expect('[');
    JsonArray array;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++p_;
      return Json(std::move(array));
    }
    while (true) {
      skip_ws();
      array.push_back(parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        ++p_;
        continue;
      }
      expect(']');
      return Json(std::move(array));
    }
  }

  [[nodiscard]] unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("truncated \\u escape");
      const char c = *p_++;
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = *p_++;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string (escape it)");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) fail("truncated escape sequence");
      const char esc = *p_++;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("lone low surrogate in \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (end_ - p_ < 2 || p_[0] != '\\' || p_[1] != 'u') {
              fail("high surrogate not followed by \\u low surrogate");
            }
            p_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("invalid low surrogate in \\u pair");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(out, code);
          break;
        }
        default: fail("invalid escape sequence");
      }
    }
  }

  Json parse_number() {
    const char* start = p_;
    if (!eof() && peek() == '-') ++p_;
    // int part: '0' or [1-9][0-9]* — leading zeros are not JSON.
    if (eof() || peek() < '0' || peek() > '9') fail("invalid number");
    if (peek() == '0') {
      ++p_;
      if (!eof() && peek() >= '0' && peek() <= '9') {
        fail("leading zero in number");
      }
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++p_;
    }
    bool integral = true;
    if (!eof() && peek() == '.') {
      integral = false;
      ++p_;
      if (eof() || peek() < '0' || peek() > '9') {
        fail("digit required after decimal point");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') ++p_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++p_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++p_;
      if (eof() || peek() < '0' || peek() > '9') {
        fail("digit required in exponent");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') ++p_;
    }
    const std::string_view token(start, static_cast<std::size_t>(p_ - start));
    if (integral) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Json(value);
      }
      // Out of int64 range: widen to double below (same policy as the
      // uint64 constructor), rejecting values that overflow doubles.
    }
    const std::string copy(token);  // strtod needs a terminator
    errno = 0;
    char* parse_end = nullptr;
    const double value = std::strtod(copy.c_str(), &parse_end);
    if (parse_end != copy.c_str() + copy.size()) fail("invalid number");
    if (!std::isfinite(value)) fail("number out of range");
    return Json(value);
  }

  const char* begin_;
  const char* p_;
  const char* end_;
  std::size_t max_depth_;
};

}  // namespace

Json Json::parse(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).run();
}

}  // namespace bat::common
