#include "common/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"

namespace bat::common {

double mean(std::span<const double> xs) {
  BAT_EXPECTS(!xs.empty());
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  BAT_EXPECTS(!xs.empty());
  const double m = mean(xs);
  double sum = 0.0;
  for (const double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_value(std::span<const double> xs) {
  BAT_EXPECTS(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  BAT_EXPECTS(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

std::size_t argmin(std::span<const double> xs) {
  BAT_EXPECTS(!xs.empty());
  return static_cast<std::size_t>(
      std::min_element(xs.begin(), xs.end()) - xs.begin());
}

std::size_t argmax(std::span<const double> xs) {
  BAT_EXPECTS(!xs.empty());
  return static_cast<std::size_t>(
      std::max_element(xs.begin(), xs.end()) - xs.begin());
}

double quantile_sorted(std::span<const double> sorted, double q) {
  BAT_EXPECTS(!sorted.empty());
  BAT_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double pearson(std::span<const double> xs, std::span<const double> ys) {
  BAT_EXPECTS(xs.size() == ys.size());
  BAT_EXPECTS(xs.size() >= 2);
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> running_minimum(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  double best = std::numeric_limits<double>::infinity();
  for (const double x : xs) {
    best = std::min(best, x);
    out.push_back(best);
  }
  return out;
}

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  BAT_EXPECTS(bins > 0);
  BAT_EXPECTS(hi > lo);
}

void Histogram::add(double x) noexcept {
  if (x < lo_ || x > hi_) return;
  auto b = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                    static_cast<double>(counts_.size()));
  if (b >= counts_.size()) b = counts_.size() - 1;  // x == hi_
  ++counts_[b];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t b) const {
  BAT_EXPECTS(b < counts_.size());
  return counts_[b];
}

double Histogram::bin_center(std::size_t b) const {
  BAT_EXPECTS(b < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(b) + 0.5) * width;
}

std::vector<double> Histogram::densities() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    out[b] = static_cast<double>(counts_[b]) / static_cast<double>(total_);
  }
  return out;
}

}  // namespace bat::common
