#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/string_util.hpp"

namespace bat::common {

namespace {

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level = [] {
    if (const char* env = std::getenv("BAT_LOG_LEVEL")) {
      const std::string v = to_lower(env);
      if (v == "debug") return LogLevel::kDebug;
      if (v == "info") return LogLevel::kInfo;
      if (v == "warn") return LogLevel::kWarn;
      if (v == "error") return LogLevel::kError;
      if (v == "off") return LogLevel::kOff;
    }
    return LogLevel::kInfo;
  }();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

namespace {
LogSink& sink_storage() {
  static LogSink sink;
  return sink;
}
}  // namespace

void set_log_sink(LogSink sink) { sink_storage() = std::move(sink); }

void log_message(LogLevel level, const std::string& message) {
  static std::mutex mutex;
  std::lock_guard lock(mutex);
  if (const auto& sink = sink_storage()) {
    sink(level, message);
    return;
  }
  std::fprintf(stderr, "[bat:%s] %s\n", level_name(level), message.c_str());
}

}  // namespace bat::common
