#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

#include "common/string_util.hpp"

namespace bat::common {

namespace {

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level = [] {
    if (const char* env = std::getenv("BAT_LOG_LEVEL")) {
      if (const auto parsed = parse_log_level(env)) return *parsed;
    }
    return LogLevel::kInfo;
  }();
  return level;
}

/// `msg=` value: quoted, one line per record no matter the payload.
std::string quote_message(const std::string& message) {
  std::string out;
  out.reserve(message.size() + 2);
  out += '"';
  for (char c : message) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  out += '"';
  return out;
}

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

std::optional<LogLevel> parse_log_level(std::string_view text) {
  const std::string v = to_lower(std::string(text));
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return std::nullopt;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

std::string format_log_line(LogLevel level, const std::string& message,
                            std::int64_t unix_ms) {
  const std::time_t secs = static_cast<std::time_t>(unix_ms / 1000);
  const int ms = static_cast<int>(unix_ms % 1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char ts[40];
  std::snprintf(ts, sizeof ts, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, ms);
  std::string out = "level=";
  out += log_level_name(level);
  out += " ts=";
  out += ts;
  out += " msg=";
  out += quote_message(message);
  return out;
}

namespace {
LogSink& sink_storage() {
  static LogSink sink;
  return sink;
}
}  // namespace

void set_log_sink(LogSink sink) { sink_storage() = std::move(sink); }

void log_message(LogLevel level, const std::string& message) {
  static std::mutex mutex;
  std::lock_guard lock(mutex);
  if (const auto& sink = sink_storage()) {
    sink(level, message);
    return;
  }
  const auto unix_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::fprintf(stderr, "%s\n",
               format_log_line(level, message, unix_ms).c_str());
}

}  // namespace bat::common
