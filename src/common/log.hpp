// Tiny leveled logger with structured stderr lines.
//
// Emitted lines are logfmt-shaped and machine-greppable:
//
//   level=warn ts=2026-08-08T12:34:56.789Z msg="jit: falling back ..."
//
// The level is runtime-settable (BAT_LOG_LEVEL env, `tune serve
// --log-level`, or set_log_level()), timestamps are UTC wall time with
// millisecond precision, and the message value is quoted with
// backslash escapes so one line is always one record. Tests install a
// sink (set_log_sink) and receive the raw (level, message) pair —
// formatting applies only on the stderr path.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace bat::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log level (default kInfo; honors BAT_LOG_LEVEL env on first use).
LogLevel log_level();
void set_log_level(LogLevel level);

/// "debug"/"info"/"warn"/"error"/"off" (case-insensitive) -> level;
/// nullopt for anything else. Shared by the env init and CLI flags.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view text);

/// The lowercase token for a level ("info"), as emitted in `level=`.
[[nodiscard]] const char* log_level_name(LogLevel level);

/// Emits `message` as a structured stderr line if level >= global level.
void log_message(LogLevel level, const std::string& message);

/// Redirects emitted messages to `sink` instead of stderr (tests assert
/// on diagnostics this way); nullptr restores stderr. Not thread-safe
/// against concurrent log_message calls — install before spawning work.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

/// One finished stderr line (sans trailing newline) for `message` at
/// `level` and `unix_ms` UTC wall-clock milliseconds — the formatting
/// contract, exposed so tests pin it without scraping stderr.
[[nodiscard]] std::string format_log_line(LogLevel level,
                                          const std::string& message,
                                          std::int64_t unix_ms);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream ss;
  (ss << ... << args);
  return ss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace bat::common
