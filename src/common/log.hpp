// Tiny leveled logger. Harnesses set the level from BAT_LOG_LEVEL or flags.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace bat::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log level (default kInfo; honors BAT_LOG_LEVEL env on first use).
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emits `message` to stderr with a level prefix if level >= global level.
void log_message(LogLevel level, const std::string& message);

/// Redirects emitted messages to `sink` instead of stderr (tests assert
/// on diagnostics this way); nullptr restores stderr. Not thread-safe
/// against concurrent log_message calls — install before spawning work.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream ss;
  (ss << ... << args);
  return ss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace bat::common
