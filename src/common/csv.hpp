// Minimal CSV I/O: enough for Dataset round-trips and harness exports.
// Handles quoting of cells containing commas/quotes/newlines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bat::common {

class CsvWriter {
 public:
  /// Writes to an owned string buffer; call str() / save() at the end.
  CsvWriter() = default;

  void write_row(const std::vector<std::string>& cells);
  void write_header(const std::vector<std::string>& cells) { write_row(cells); }

  [[nodiscard]] const std::string& str() const noexcept { return buffer_; }

  /// Writes the accumulated buffer to `path`; throws std::runtime_error on
  /// failure.
  void save(const std::string& path) const;

  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::string buffer_;
};

/// One parsed CSV row plus the 1-based line it started on in the source
/// text (blank lines are skipped, so row position and line number can
/// diverge — error messages must report the line, not the row).
struct CsvRow {
  std::size_t line = 0;
  std::vector<std::string> cells;
};

class CsvReader {
 public:
  /// Parses full CSV text into rows of cells.
  [[nodiscard]] static std::vector<std::vector<std::string>> parse(
      const std::string& text);

  /// Like parse(), but each row carries its source line number.
  [[nodiscard]] static std::vector<CsvRow> parse_rows(const std::string& text);

  /// Loads and parses a file; throws std::runtime_error if unreadable.
  [[nodiscard]] static std::vector<std::vector<std::string>> load(
      const std::string& path);
};

/// Reads an entire file into a string; throws std::runtime_error on failure.
[[nodiscard]] std::string read_file(const std::string& path);

/// Writes a string to a file; throws std::runtime_error on failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace bat::common
