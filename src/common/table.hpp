// ASCII table rendering for the bench harnesses: each harness prints the
// same rows the paper's tables/figures report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bat::common {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  /// Appends a row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles/ints into a row.
  void add_row_values(const std::vector<double>& values, int decimals = 3);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with column alignment:
  ///   | header | header |
  ///   |--------|--------|
  ///   | cell   | cell   |
  [[nodiscard]] std::string to_string() const;

  /// Renders as markdown (same layout, no outer padding tweaks).
  [[nodiscard]] std::string to_markdown() const { return to_string(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bat::common
