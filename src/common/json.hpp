// Minimal JSON value + serializer for harness exports (write-only: BAT
// emits results for external plotting; it never needs to parse JSON).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace bat::common {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}
  Json(std::int64_t i) : value_(i) {}
  Json(std::uint64_t u) : value_(static_cast<std::int64_t>(u)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  /// Builds an array from a vector of doubles (common case).
  static Json array(const std::vector<double>& values);
  static Json array(const std::vector<std::string>& values);

  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  void dump_impl(std::string& out, int indent, int depth) const;
  static void escape_into(std::string& out, const std::string& s);

  std::variant<std::nullptr_t, bool, double, std::int64_t, std::string,
               JsonArray, JsonObject>
      value_;
};

}  // namespace bat::common
