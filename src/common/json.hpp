// JSON value type: writer for harness exports, strict parser for the
// network API.
//
// The value model is deliberately small (null / bool / int64 / double /
// string / array / object). parse() is a strict recursive-descent
// RFC 8259 parser grown for the HTTP front-end, where the input is a
// network peer's and must not be trusted:
//   * whole-input: trailing non-whitespace after the value is an error;
//   * bounded nesting (`max_depth`, default 64) so hostile deeply
//     nested input cannot overflow the stack;
//   * duplicate object keys are an error (silently keeping either value
//     would let two layers disagree about what a request said);
//   * numbers must be finite: integral tokens that fit int64 parse as
//     int64, everything else as double, and overflow to infinity
//     ("1e999") is an error;
//   * strings reject raw control characters, malformed \u escapes and
//     lone surrogates (pairs decode to UTF-8).
// All parse failures throw JsonParseError with a byte offset; accessor
// misuse (as_int() on a string, ...) throws JsonTypeError.
//
// Plain value type, no shared state: safe to move across threads.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace bat::common {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class JsonParseError : public std::runtime_error {
 public:
  explicit JsonParseError(const std::string& what)
      : std::runtime_error(what) {}
};

class JsonTypeError : public std::runtime_error {
 public:
  explicit JsonTypeError(const std::string& what)
      : std::runtime_error(what) {}
};

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}
  Json(std::int64_t i) : value_(i) {}
  /// Values above int64 max widen (lossily, like any double) instead of
  /// wrapping negative through a blind static_cast.
  Json(std::uint64_t u) {
    if (u <= static_cast<std::uint64_t>(INT64_MAX)) {
      value_ = static_cast<std::int64_t>(u);
    } else {
      value_ = static_cast<double>(u);
    }
  }
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  /// Builds an array from a vector of doubles (common case).
  static Json array(const std::vector<double>& values);
  static Json array(const std::vector<std::string>& values);

  /// Strict parse of exactly one JSON document (see header comment).
  /// Throws JsonParseError.
  [[nodiscard]] static Json parse(std::string_view text,
                                  std::size_t max_depth = 64);

  [[nodiscard]] std::string dump(int indent = 0) const;

  // --- type queries -------------------------------------------------------
  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_int() const noexcept {
    return std::holds_alternative<std::int64_t>(value_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return is_int() || std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<JsonArray>(value_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<JsonObject>(value_);
  }

  // --- strict accessors (throw JsonTypeError on mismatch) -----------------
  [[nodiscard]] bool as_bool() const;
  /// Any number; int64 widens to double.
  [[nodiscard]] double as_double() const;
  /// int64, or a double that is exactly an in-range integer.
  [[nodiscard]] std::int64_t as_int() const;
  /// Non-negative as_int() semantics extended to the full uint64 range.
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;

  /// Object member lookup: nullptr when not an object or key missing.
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Object member lookup; throws JsonTypeError when absent.
  [[nodiscard]] const Json& at(const std::string& key) const;

 private:
  void dump_impl(std::string& out, int indent, int depth) const;
  static void escape_into(std::string& out, const std::string& s);
  [[nodiscard]] const char* type_name() const noexcept;

  std::variant<std::nullptr_t, bool, double, std::int64_t, std::string,
               JsonArray, JsonObject>
      value_;
};

}  // namespace bat::common
