#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace bat::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    BAT_EXPECTS(!stop_);
    queue_.push(Task{std::move(task)});
  }
  cv_.notify_one();
}

namespace {
// Set while a pool worker runs a task: nested parallel_for calls from
// inside a task execute inline instead of re-entering the queue, which
// would deadlock once every worker is blocked waiting on nested chunks.
thread_local bool t_inside_worker = false;
}  // namespace

void ThreadPool::worker_loop() {
  t_inside_worker = true;
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task.fn();
  }
}

void ThreadPool::parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  BAT_EXPECTS(begin <= end);
  const std::size_t n = end - begin;
  if (n == 0) return;
  const std::size_t workers = std::min(size(), n);
  if (workers <= 1 || t_inside_worker) {
    body(begin, end, 0);
    return;
  }

  // Completion state is shared-owned: the caller may wake and return the
  // moment `remaining` hits zero, so the last worker must not touch any
  // stack-allocated synchronization objects afterwards.
  struct Completion {
    std::atomic<std::size_t> remaining;
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<Completion>();
  state->remaining.store(workers);

  const std::size_t chunk = (n + workers - 1) / workers;
  {
    std::lock_guard lock(mutex_);
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t lo = begin + w * chunk;
      const std::size_t hi = std::min(end, lo + chunk);
      queue_.push(Task{[state, &body, lo, hi, w] {
        try {
          if (lo < hi) body(lo, hi, w);
        } catch (...) {
          std::lock_guard elock(state->mutex);
          if (!state->first_error) {
            state->first_error = std::current_exception();
          }
        }
        std::size_t left = 0;
        {
          std::lock_guard dlock(state->mutex);
          left = --state->remaining;
        }
        if (left == 0) state->cv.notify_all();
      }});
    }
  }
  cv_.notify_all();

  std::unique_lock lock(state->mutex);
  state->cv.wait(lock, [&] { return state->remaining.load() == 0; });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(begin, end,
                       [&](std::size_t lo, std::size_t hi, std::size_t) {
                         for (std::size_t i = lo; i < hi; ++i) body(i);
                       });
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  ThreadPool::global().parallel_for(begin, end, body);
}

void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  ThreadPool::global().parallel_for_chunked(begin, end, body);
}

std::size_t parallel_count_if(std::size_t begin, std::size_t end,
                              const std::function<bool(std::size_t)>& pred) {
  return ThreadPool::global().parallel_reduce<std::size_t>(
      begin, end, std::size_t{0},
      [&](std::size_t i) -> std::size_t { return pred(i) ? 1 : 0; },
      [](std::size_t acc, std::size_t v) { return acc + v; },
      [](std::size_t a, std::size_t b) { return a + b; });
}

}  // namespace bat::common
