// A fixed-size thread pool with OpenMP-style parallel loops.
//
// BAT evaluates up to ~10^8 constraint predicates and ~10^5 simulated
// kernel launches per experiment; all of that is embarrassingly parallel.
// User code never spawns raw threads (CP.1/CP.25): it calls parallel_for /
// parallel_reduce on the shared pool, which chunk the index range
// statically like `#pragma omp parallel for schedule(static)`.
//
// The inline-nesting rule (easy to trip over): a parallel_for issued
// from *inside* a pool task runs its body inline on the calling worker
// instead of fanning out — the outer level owns the parallelism, which
// is what makes composed parallel code deadlock-free. Consequence for
// the service layer: a tuning session running on a pool worker gets no
// batch-level parallelism; session-level concurrency replaces it.
// Blocking a pool task on work that needs another pool task (rather
// than on an external signal) would deadlock a full pool — don't.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/contracts.hpp"

namespace bat::common {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Process-wide pool, created lazily, sized to the hardware.
  static ThreadPool& global();

  /// Enqueues one independent fire-and-forget task. Unlike parallel_for
  /// this returns immediately; completion tracking (futures, counters)
  /// is the caller's business — service::TuningService builds its
  /// bounded session queue on top of this. Tasks still queued at
  /// destruction are drained before the workers join. Must not be
  /// called on a pool that is being destroyed.
  void submit(std::function<void()> task);

  /// Runs body(begin..end) split into one contiguous chunk per worker.
  /// body receives (chunk_begin, chunk_end, worker_index). Blocks until all
  /// chunks complete. Exceptions from workers are rethrown (first one wins).
  /// Re-entrant: a nested call from inside a pool task runs its body
  /// inline on the calling worker (the outer level owns the parallelism),
  /// so composed parallel code cannot deadlock the pool.
  void parallel_for_chunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

  /// Element-wise parallel for: body(index).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Parallel reduction: maps each index through `map` into a per-worker
  /// accumulator (initialized with `init`) via `fold`, then combines the
  /// per-worker accumulators with `combine`.
  template <typename Acc, typename Map, typename Fold, typename Combine>
  Acc parallel_reduce(std::size_t begin, std::size_t end, Acc init, Map map,
                      Fold fold, Combine combine) {
    std::vector<Acc> partials(size(), init);
    parallel_for_chunked(begin, end,
                         [&](std::size_t lo, std::size_t hi, std::size_t w) {
                           Acc acc = init;
                           for (std::size_t i = lo; i < hi; ++i) {
                             acc = fold(std::move(acc), map(i));
                           }
                           partials[w] = std::move(acc);
                         });
    Acc total = init;
    for (auto& p : partials) total = combine(std::move(total), std::move(p));
    return total;
  }

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience free functions using the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

/// Parallel count of indices in [begin, end) satisfying pred.
std::size_t parallel_count_if(std::size_t begin, std::size_t end,
                              const std::function<bool(std::size_t)>& pred);

}  // namespace bat::common
