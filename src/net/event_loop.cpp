#include "net/event_loop.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

namespace bat::net {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("event loop: " + what + ": " +
                           std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    sys_fail("fcntl O_NONBLOCK");
  }
}

}  // namespace

EventLoop::EventLoop(bool force_poll) {
#if defined(__linux__)
  use_epoll_ = !force_poll;
#else
  (void)force_poll;
  use_epoll_ = false;
#endif
  if (::pipe(wake_pipe_) < 0) sys_fail("pipe");
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);
#if defined(__linux__)
  if (use_epoll_) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) sys_fail("epoll_create1");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_pipe_[0];
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_pipe_[0], &ev) < 0) {
      sys_fail("epoll_ctl wake pipe");
    }
  }
#endif
}

EventLoop::~EventLoop() {
  stop();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

const char* EventLoop::backend_name() const noexcept {
  return use_epoll_ ? "epoll" : "poll";
}

void EventLoop::start() {
  if (started_) {
    throw std::runtime_error("event loop: start() called twice");
  }
  started_ = true;
  thread_ = std::thread([this] { run(); });
}

void EventLoop::stop() {
  stop_flag_.store(true);
  wake();
  if (thread_.joinable()) thread_.join();
  {
    // Refuse posts from here on. The loop thread drained everything
    // queued before it exited (see run()), so nothing is dropped here;
    // this only closes the door behind it.
    std::lock_guard lock(tasks_mutex_);
    accepting_tasks_ = false;
  }
}

bool EventLoop::post(Task task) {
  {
    std::lock_guard lock(tasks_mutex_);
    if (!accepting_tasks_) return false;  // stopped: refuse (see header)
    tasks_.push_back(std::move(task));
  }
  wake();
  return true;
}

void EventLoop::wake() {
  const char byte = 1;
  // EAGAIN means a wake is already pending — exactly what we need.
  (void)!::write(wake_pipe_[1], &byte, 1);
}

void EventLoop::drain_wake_pipe() {
  char sink[256];
  while (::read(wake_pipe_[0], sink, sizeof sink) > 0) {
  }
}

void EventLoop::run_posted_tasks() {
  std::vector<Task> batch;
  {
    std::lock_guard lock(tasks_mutex_);
    batch.swap(tasks_);
  }
  for (auto& task : batch) task();
}

void EventLoop::add_fd(int fd, std::uint32_t interest, Callback callback) {
  entries_[fd] = Entry{interest, std::move(callback)};
#if defined(__linux__)
  if (use_epoll_) epoll_update(fd, interest, /*adding=*/true);
#endif
}

void EventLoop::set_interest(int fd, std::uint32_t interest) {
  const auto it = entries_.find(fd);
  if (it == entries_.end()) return;
  if (it->second.interest == interest) return;
  it->second.interest = interest;
#if defined(__linux__)
  if (use_epoll_) epoll_update(fd, interest, /*adding=*/false);
#endif
}

void EventLoop::remove_fd(int fd) {
  if (entries_.erase(fd) == 0) return;
#if defined(__linux__)
  if (use_epoll_) (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
}

#if defined(__linux__)
void EventLoop::epoll_update(int fd, std::uint32_t interest, bool adding) {
  epoll_event ev{};
  ev.events = 0;  // level-triggered
  if (interest & kRead) ev.events |= EPOLLIN;
  if (interest & kWrite) ev.events |= EPOLLOUT;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, adding ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, fd,
                  &ev) < 0) {
    sys_fail("epoll_ctl");
  }
}
#endif

void EventLoop::run() {
  thread_id_.store(std::this_thread::get_id());
  while (!stop_flag_.load()) {
    poll_once();
  }
  // Exit drain: run everything already posted, then latch the queue
  // shut — a post racing with this drain is refused (returns false),
  // never stranded in the vector with its captures pinned.
  std::vector<Task> remaining;
  {
    std::lock_guard lock(tasks_mutex_);
    accepting_tasks_ = false;
    remaining.swap(tasks_);
  }
  for (auto& task : remaining) task();
  thread_id_.store(std::thread::id{});
}

void EventLoop::poll_once() {
  // Collect (fd, events) pairs first, dispatch after: a callback may
  // add or remove fds (including its own), so every dispatch re-checks
  // the registry and copies the callback before invoking it — an fd
  // erased mid-batch is skipped, and a callback that removes itself
  // cannot destroy the std::function it is executing from under itself.
  struct Fired {
    int fd;
    std::uint32_t events;
  };
  std::vector<Fired> fired;

#if defined(__linux__)
  if (use_epoll_) {
    epoll_event events[64];
    const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) return;
      sys_fail("epoll_wait");
    }
    fired.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_pipe_[0]) {
        drain_wake_pipe();
        continue;
      }
      std::uint32_t mask = 0;
      if (events[i].events & (EPOLLIN | EPOLLPRI)) mask |= kRead;
      if (events[i].events & EPOLLOUT) mask |= kWrite;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) mask |= kError | kRead;
      fired.push_back({fd, mask});
    }
  } else
#endif
  {
    std::vector<pollfd> fds;
    fds.reserve(entries_.size() + 1);
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const auto& [fd, entry] : entries_) {
      short interest = 0;
      if (entry.interest & kRead) interest |= POLLIN;
      if (entry.interest & kWrite) interest |= POLLOUT;
      fds.push_back({fd, interest, 0});
    }
    const int n = ::poll(fds.data(), fds.size(), -1);
    if (n < 0) {
      if (errno == EINTR) return;
      sys_fail("poll");
    }
    if (fds.front().revents & POLLIN) drain_wake_pipe();
    for (std::size_t i = 1; i < fds.size(); ++i) {
      const short revents = fds[i].revents;
      if (revents == 0) continue;
      std::uint32_t mask = 0;
      if (revents & (POLLIN | POLLPRI)) mask |= kRead;
      if (revents & POLLOUT) mask |= kWrite;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) mask |= kError | kRead;
      fired.push_back({fds[i].fd, mask});
    }
  }

  // Tasks before events: a posted completion queues response bytes that
  // the very next write-readiness dispatch can flush.
  run_posted_tasks();
  if (stop_flag_.load()) return;

  for (const auto& [fd, events] : fired) {
    const auto it = entries_.find(fd);
    if (it == entries_.end()) continue;  // removed by an earlier callback
    const Callback callback = it->second.callback;
    callback(events);
  }
}

}  // namespace bat::net
