#include "net/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "common/json.hpp"

namespace bat::net {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("http server: " + what + ": " +
                           std::strerror(errno));
}

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-response must surface as an
    // error return, not a process-wide SIGPIPE.
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void set_nodelay(int fd) {
  // Request/response over loopback without TCP_NODELAY hits the
  // Nagle + delayed-ACK interaction: ~40ms per round trip.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

HttpResponse error_response(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.headers.emplace_back("content-type", "application/json");
  common::JsonObject body;
  body.emplace("error", message);
  response.body = common::Json(std::move(body)).dump();
  return response;
}

}  // namespace

HttpServer::HttpServer(ServerOptions options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  if (!handler_) {
    throw std::invalid_argument("http server: handler must be callable");
  }
  if (options_.workers == 0) options_.workers = 1;
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  std::lock_guard lifecycle(lifecycle_mutex_);
  if (started_) {
    throw std::runtime_error("http server: start() called twice");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) sys_fail("socket");

  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("http server: invalid IPv4 host '" +
                             options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    sys_fail("bind " + options_.host + ":" + std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 128) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    sys_fail("listen");
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    sys_fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  pool_ = std::make_unique<common::ThreadPool>(options_.workers);
  running_.store(true);
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  std::lock_guard lifecycle(lifecycle_mutex_);
  if (!started_) return;
  if (running_.exchange(false)) {
    // Unblock accept(2); close comes after the thread joined.
    (void)::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Unblock every worker parked in recv(2); the worker closes its fd.
    std::lock_guard lock(connections_mutex_);
    for (const int fd : connections_) (void)::shutdown(fd, SHUT_RDWR);
  }
  pool_.reset();  // drains queued connections, joins workers
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
}

void HttpServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS) {
        // Resource exhaustion is transient (connections close, fds
        // free up): a deaf-but-alive server would be worse. Back off
        // briefly instead of spinning.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;  // stop() shut the listener down (or it genuinely died)
    }
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    set_nodelay(fd);
    {
      std::lock_guard lock(connections_mutex_);
      if (connections_.size() >= options_.max_connections) {
        (void)send_all(fd, serialize_response(
                               error_response(503, "connection limit reached"),
                               /*keep_alive=*/false));
        ::close(fd);
        continue;
      }
      connections_.insert(fd);
    }
    accepted_.fetch_add(1);
    pool_->submit([this, fd] { handle_connection(fd); });
  }
}

HttpResponse HttpServer::dispatch(const HttpRequest& request) {
  try {
    return handler_(request);
  } catch (const std::exception& e) {
    return error_response(500, e.what());
  } catch (...) {
    return error_response(500, "unknown handler failure");
  }
}

void HttpServer::handle_connection(int fd) {
  std::string buffer;
  char chunk[16 * 1024];
  bool open = true;
  while (open && running_.load()) {
    HttpRequest request;
    const ParseResult parsed =
        parse_request(buffer, request, options_.limits);
    if (parsed.status == ParseStatus::kIncomplete) {
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;  // peer closed / stop() shut us down
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }

    HttpResponse response;
    bool keep = false;
    if (parsed.status == ParseStatus::kOk) {
      buffer.erase(0, parsed.consumed);
      keep = request.keep_alive();
      response = dispatch(request);
      served_.fetch_add(1);
    } else {
      // Malformed or oversize: answer, then close — the framing of
      // anything that follows in the stream cannot be trusted.
      const int status =
          parsed.status == ParseStatus::kBodyTooLarge ? 413
          : parsed.status == ParseStatus::kHeadTooLarge ? 431
                                                        : 400;
      response = error_response(status, parsed.error);
    }
    keep = keep && running_.load();
    if (!send_all(fd, serialize_response(response, keep))) break;
    open = keep;
  }
  {
    // Untrack before close: once the fd number is released it may be
    // reused by any thread in the process, and a late stop() shutdown
    // on the stale number would hit the wrong file.
    std::lock_guard lock(connections_mutex_);
    connections_.erase(fd);
  }
  (void)::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

}  // namespace bat::net
