#include "net/http_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/json.hpp"
#include "obs/trace.hpp"

namespace bat::net {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("http server: " + what + ": " +
                           std::strerror(errno));
}

void set_nodelay(int fd) {
  // Request/response over loopback without TCP_NODELAY hits the
  // Nagle + delayed-ACK interaction: ~40ms per round trip.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

HttpResponse error_response(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.headers.emplace_back("content-type", "application/json");
  common::JsonObject body;
  body.emplace("error", message);
  response.body = common::Json(std::move(body)).dump();
  return response;
}

std::string retry_after_value(double seconds) {
  // Retry-After carries integral delay-seconds; sub-second bucket
  // refills round up to 1 so the hint never invites an instant retry.
  double s = std::ceil(seconds);
  if (s < 1.0) s = 1.0;
  if (s > 86400.0) s = 86400.0;  // a day: effectively "go away"
  return std::to_string(static_cast<long long>(s));
}

}  // namespace

HttpServer::HttpServer(ServerOptions options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  if (!handler_) {
    throw std::invalid_argument("http server: handler must be callable");
  }
  if (options_.workers == 0) options_.workers = 1;
  if (options_.event_loops == 0) options_.event_loops = 1;
  if (options_.max_connections == 0) options_.max_connections = 1;
  if (options_.admission_capacity == 0) options_.admission_capacity = 4096;
  if (options_.retry_after_seconds <= 0.0) options_.retry_after_seconds = 1.0;
  metrics_ = options_.metrics ? options_.metrics
                              : std::make_shared<obs::MetricsRegistry>();
  if (options_.rate_limit.enabled()) {
    limiter_ = std::make_unique<RateLimiter>(options_.rate_limit,
                                             options_.clock, metrics_);
  }
  accepted_total_ = metrics_->counter("bat_http_connections_accepted_total",
                                      "Connections accepted");
  served_total_ =
      metrics_->counter("bat_http_requests_total", "Requests served");
  rate_limited_total_ =
      metrics_->counter("bat_http_requests_rate_limited_total",
                        "Requests answered 429 by the rate limiter");
  shed_total_ =
      metrics_->counter("bat_http_requests_shed_total",
                        "Requests answered 503 by the admission queue");
  over_capacity_total_ =
      metrics_->counter("bat_http_connections_over_capacity_total",
                        "Connections refused at the max_connections cap");
  // 100us..~6.5s log-scale: spans sub-ms status probes and multi-second
  // synchronous tuning runs.
  request_duration_ = metrics_->histogram(
      "bat_http_request_duration_seconds",
      "Handler wall time per dispatched request",
      obs::Histogram::exponential(1e-4, 2.0, 16));
  open_connections_gauge_ = metrics_->callback(
      "bat_http_connections_open", "Connections currently open",
      obs::MetricsRegistry::CallbackKind::kGauge, {},
      [this] { return static_cast<double>(open_connections_.load()); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  std::lock_guard lifecycle(lifecycle_mutex_);
  if (started_) {
    throw std::runtime_error("http server: start() called twice");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) sys_fail("socket");

  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("http server: invalid IPv4 host '" +
                             options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    sys_fail("bind " + options_.host + ":" + std::to_string(options_.port));
  }
  // SOMAXCONN, not a small fixed backlog: a thousand keep-alive clients
  // connecting at once is a supported workload now, and the accept
  // callback drains in batches rather than one accept per wakeup.
  if (::listen(listen_fd_, SOMAXCONN) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    sys_fail("listen");
  }
  if (!set_nonblocking(listen_fd_)) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    sys_fail("fcntl O_NONBLOCK listen fd");
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    sys_fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  shards_.reserve(options_.event_loops);
  for (std::size_t i = 0; i < options_.event_loops; ++i) {
    LoopShard shard;
    shard.loop = std::make_unique<EventLoop>(options_.force_poll);
    shards_.push_back(std::move(shard));
  }
  pool_ = std::make_unique<common::ThreadPool>(options_.workers);
  running_.store(true);
  // Pre-start registration is the one cross-thread add_fd the loop
  // allows; the listener lives on loop 0 for its whole life.
  shards_[0].loop->add_fd(listen_fd_, EventLoop::kRead,
                          [this](std::uint32_t) { on_accept(); });
  for (auto& shard : shards_) shard.loop->start();
  started_ = true;
}

void HttpServer::stop() {
  std::lock_guard lifecycle(lifecycle_mutex_);
  if (!started_) return;
  running_.store(false);
  // Join the loops first: afterwards no thread touches connection
  // state, accepts sockets, or submits handler work, so the rest of
  // teardown is single-threaded. Each loop drains its queued tasks
  // (late adoptions/completions) on its own thread before exiting.
  for (auto& shard : shards_) shard.loop->stop();
  // Drain in-flight handlers. Their completion posts hit stopped loops
  // and are refused — the response is lost, which is what stopping a
  // server means; the connection itself is closed just below.
  pool_.reset();
  for (auto& shard : shards_) {
    open_connections_.fetch_sub(shard.conns.size());
    shard.conns.clear();  // ConnState destructors close the fds: parked
                          // keep-alive clients see EOF immediately
  }
  shards_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
}

void HttpServer::on_accept() {
  // Drain the backlog: level-triggered readiness would re-fire anyway,
  // but accepting in batches costs one wakeup instead of N.
  while (true) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof peer;
    const int fd = ::accept(
        listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS) {
        pause_accept_for_fd_pressure();
        return;
      }
      return;  // listener is gone; stop() owns the teardown
    }
    if (!running_.load()) {
      ::close(fd);
      continue;
    }
    set_nodelay(fd);
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    if (open_connections_.load() >= options_.max_connections) {
      // Clean refusal: tell the client when to come back, half-close
      // so the 503 is flushed ahead of the FIN, then release the fd.
      // Never adopted, so it cannot strand a keep-alive mid-pipeline.
      over_capacity_total_->add();
      const std::string bytes =
          policed_response(503, "connection limit reached",
                           options_.retry_after_seconds,
                           /*keep_alive=*/false);
      (void)::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      (void)::shutdown(fd, SHUT_WR);
      ::close(fd);
      continue;
    }
    accepted_total_->add();
    open_connections_.fetch_add(1);
    const std::uint32_t peer_ip = ntohl(peer.sin_addr.s_addr);
    const std::size_t shard =
        next_shard_.fetch_add(1) % shards_.size();
    if (shard == 0) {
      adopt_connection(0, fd, peer_ip);  // already on loop 0's thread
    } else {
      const bool posted = shards_[shard].loop->post(
          [this, shard, fd, peer_ip] {
            adopt_connection(shard, fd, peer_ip);
          });
      if (!posted) {  // that loop stopped mid-shutdown
        ::close(fd);
        open_connections_.fetch_sub(1);
      }
    }
  }
}

void HttpServer::pause_accept_for_fd_pressure() {
  // Out of descriptors. An undrainable level-triggered listener would
  // spin the loop at 100% CPU, so stop watching it and re-arm shortly
  // from a pool worker — connections closing meanwhile free fds, and
  // a deaf-but-alive server beats a busy-looping one.
  shards_[0].loop->set_interest(listen_fd_, 0);
  pool_->submit([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    (void)shards_[0].loop->post([this] {
      if (running_.load()) {
        shards_[0].loop->set_interest(listen_fd_, EventLoop::kRead);
      }
    });
  });
}

void HttpServer::adopt_connection(std::size_t shard, int fd,
                                  std::uint32_t ipv4) {
  auto& s = shards_[shard];
  const std::uint64_t id = next_conn_id_.fetch_add(1);
  auto conn = std::make_unique<ConnState>(fd, ipv4, id);
  conn->set_interest_cache(EventLoop::kRead);
  s.conns.emplace(id, std::move(conn));
  s.loop->add_fd(fd, EventLoop::kRead,
                 [this, shard, id](std::uint32_t events) {
                   on_conn_event(shard, id, events);
                 });
}

void HttpServer::on_conn_event(std::size_t shard, std::uint64_t id,
                               std::uint32_t events) {
  auto& s = shards_[shard];
  const auto it = s.conns.find(id);
  if (it == s.conns.end()) return;
  ConnState& conn = *it->second;

  if (events & EventLoop::kError) {
    // ERR/HUP: the peer is gone in both directions; nothing queued can
    // be delivered and nothing more will arrive.
    destroy(shard, id);
    return;
  }
  if ((events & EventLoop::kRead) && !conn.busy() && !conn.peer_closed()) {
    switch (conn.read_some()) {
      case ConnState::IoStatus::kOk:
      case ConnState::IoStatus::kBlocked:  // spurious wakeup
        break;
      case ConnState::IoStatus::kClosed:
        // FIN. Serve complete pipelined requests already buffered
        // (a batch client may send N requests then half-close);
        // teardown happens once output drains.
        conn.set_peer_closed();
        break;
      case ConnState::IoStatus::kError:
      default:
        destroy(shard, id);
        return;
    }
    process_input(shard, conn);
    if (!flush_and_update(shard, conn)) return;
  }
  if (events & EventLoop::kWrite) {
    (void)flush_and_update(shard, conn);
  }
}

void HttpServer::process_input(std::size_t shard, ConnState& conn) {
  // Frame and answer requests until the buffer runs dry, a handler
  // takes over (one in flight per connection — response order under
  // pipelining falls out of this), or the connection is condemned.
  while (running_.load() && !conn.busy() && !conn.close_after_flush()) {
    HttpRequest request;
    const ParseResult parsed = conn.next_request(request, options_.limits);
    if (parsed.status == ParseStatus::kIncomplete) break;
    if (parsed.status != ParseStatus::kOk) {
      // Malformed or oversize: answer, then close — the framing of
      // anything that follows in the stream cannot be trusted.
      const int status =
          parsed.status == ParseStatus::kBodyTooLarge    ? 413
          : parsed.status == ParseStatus::kHeadTooLarge ? 431
                                                        : 400;
      conn.queue_output(serialize_response(
          error_response(status, parsed.error), /*keep_alive=*/false));
      conn.set_close_after_flush();
      break;
    }

    const bool keep = request.keep_alive() && running_.load();

    // Traffic policing. Sheds are answered inline — no handler
    // dispatch, no pool occupancy — and the connection stays usable:
    // the request was well-formed, only ill-timed.
    if (limiter_ &&
        !(options_.police_exempt && options_.police_exempt(request))) {
      const double cost =
          options_.request_cost ? options_.request_cost(request) : 1.0;
      const Admission admission = limiter_->admit(conn.peer_ipv4(), cost);
      if (!admission.allowed) {
        rate_limited_total_->add();
        conn.queue_output(policed_response(
            429,
            std::string("rate limit exceeded (") + admission.denied_by +
                " scope)",
            admission.retry_after_seconds, keep));
        if (!keep) conn.set_close_after_flush();
        continue;
      }
    }
    if (in_flight_.load() >= options_.admission_capacity) {
      shed_total_->add();
      conn.queue_output(policed_response(
          503, "server overloaded, admission queue full",
          options_.retry_after_seconds, keep));
      if (!keep) conn.set_close_after_flush();
      continue;
    }

    in_flight_.fetch_add(1);
    conn.set_busy(true);
    const std::uint64_t id = conn.id();
    pool_->submit([this, shard, id, keep,
                   request = std::move(request)]() mutable {
#ifndef BAT_OBS_OFF
      // Every dispatched request gets its own trace: handlers (and the
      // layers they call into) record spans under it implicitly. The
      // span's own clock pair doubles as the duration observation.
      obs::TraceScope trace(obs::mint_trace_id());
      HttpResponse response;
      {
        obs::ScopedSpan span("http.request", request_duration_);
        if (span.active()) {
          span.set_detail(request.method + " " + request.target);
        }
        response = dispatch(request);
      }
#else
      HttpResponse response = dispatch(request);
#endif
      served_total_->add();
      const bool keep_final = keep && running_.load();
      std::string bytes = serialize_response(response, keep_final);
      // Decrement before posting: admission tracks handler occupancy,
      // and from here on this request holds no worker.
      in_flight_.fetch_sub(1);
      (void)shards_[shard].loop->post(
          [this, shard, id, keep_final,
           bytes = std::move(bytes)]() mutable {
            complete(shard, id, std::move(bytes), keep_final);
          });
    });
    break;  // busy now; the completion resumes any pipelined successor
  }
}

void HttpServer::complete(std::size_t shard, std::uint64_t id,
                          std::string bytes, bool keep_alive) {
  auto& s = shards_[shard];
  const auto it = s.conns.find(id);
  if (it == s.conns.end()) return;  // connection died while handler ran
  ConnState& conn = *it->second;
  conn.set_busy(false);
  conn.queue_output(std::move(bytes));
  if (!keep_alive) conn.set_close_after_flush();
  if (!conn.close_after_flush() && conn.has_buffered_input()) {
    process_input(shard, conn);  // pipelined successor already buffered
  }
  (void)flush_and_update(shard, conn);
}

bool HttpServer::flush_and_update(std::size_t shard, ConnState& conn) {
  const std::uint64_t id = conn.id();
  if (conn.has_pending_output()) {
    if (conn.flush() == ConnState::IoStatus::kError) {
      destroy(shard, id);
      return false;
    }
  }
  const bool drained = !conn.has_pending_output();
  if (drained && !conn.busy() &&
      (conn.close_after_flush() || conn.peer_closed())) {
    // Condemned and fully flushed (peer_closed with an idle buffer can
    // only hold an unfinishable fragment — no more bytes will arrive).
    destroy(shard, id);
    return false;
  }
  std::uint32_t want = 0;
  if (drained && !conn.busy() && !conn.close_after_flush() &&
      !conn.peer_closed()) {
    // Read only when idle: while a handler runs or output is pending,
    // a flooding client backs up into its own kernel socket buffer.
    want |= EventLoop::kRead;
  }
  if (!drained) want |= EventLoop::kWrite;
  if (want != conn.interest()) {
    shards_[shard].loop->set_interest(conn.fd(), want);
    conn.set_interest_cache(want);
  }
  return true;
}

void HttpServer::destroy(std::size_t shard, std::uint64_t id) {
  auto& s = shards_[shard];
  const auto it = s.conns.find(id);
  if (it == s.conns.end()) return;
  s.loop->remove_fd(it->second->fd());
  s.conns.erase(it);  // ConnState destructor closes the fd
  open_connections_.fetch_sub(1);
}

HttpResponse HttpServer::dispatch(const HttpRequest& request) {
  try {
    return handler_(request);
  } catch (const std::exception& e) {
    return error_response(500, e.what());
  } catch (...) {
    return error_response(500, "unknown handler failure");
  }
}

std::string HttpServer::policed_response(int status,
                                         const std::string& message,
                                         double retry_after_seconds,
                                         bool keep_alive) {
  HttpResponse response = error_response(status, message);
  response.headers.emplace_back("retry-after",
                                retry_after_value(retry_after_seconds));
  return serialize_response(response, keep_alive);
}

}  // namespace bat::net
