#include "net/conn_state.hpp"

#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>

namespace bat::net {

ConnState::ConnState(int fd, std::uint32_t peer_ipv4, std::uint64_t id)
    : fd_(fd), peer_ipv4_(peer_ipv4), id_(id) {}

ConnState::~ConnState() {
  if (fd_ >= 0) ::close(fd_);
}

ConnState::IoStatus ConnState::read_some(std::size_t max_bytes) {
  char chunk[16 * 1024];
  std::size_t landed = 0;
  while (landed < max_bytes) {
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      in_.append(chunk, static_cast<std::size_t>(n));
      landed += static_cast<std::size_t>(n);
      if (static_cast<std::size_t>(n) < sizeof chunk) break;  // drained
      continue;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return landed > 0 ? IoStatus::kOk : IoStatus::kBlocked;
    }
    return IoStatus::kError;
  }
  return landed > 0 ? IoStatus::kOk : IoStatus::kBlocked;
}

ParseResult ConnState::next_request(HttpRequest& out,
                                    const ParseLimits& limits) {
  const ParseResult parsed = parse_request(in_, out, limits);
  if (parsed.status == ParseStatus::kOk) in_.erase(0, parsed.consumed);
  return parsed;
}

void ConnState::queue_output(std::string bytes) {
  if (bytes.empty()) return;
  out_.push_back(std::move(bytes));
}

ConnState::IoStatus ConnState::flush() {
  while (!out_.empty()) {
    // Gather up to 8 queued buffers per writev — one syscall covers a
    // response head + body split or a burst of pipelined responses.
    iovec iov[8];
    int iov_count = 0;
    std::size_t offset = out_front_offset_;
    for (const auto& buffer : out_) {
      if (iov_count == 8) break;
      iov[iov_count].iov_base =
          const_cast<char*>(buffer.data() + offset);
      iov[iov_count].iov_len = buffer.size() - offset;
      ++iov_count;
      offset = 0;
    }
    // sendmsg, not writev: MSG_NOSIGNAL keeps a peer that closed
    // mid-response an error return instead of a process-wide SIGPIPE.
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iov_count);
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kBlocked;
      return IoStatus::kError;
    }
    // Retire fully-written buffers, remember progress into the next.
    std::size_t remaining = static_cast<std::size_t>(n);
    while (remaining > 0) {
      const std::size_t front_left = out_.front().size() - out_front_offset_;
      if (remaining >= front_left) {
        remaining -= front_left;
        out_.pop_front();
        out_front_offset_ = 0;
      } else {
        out_front_offset_ += remaining;
        remaining = 0;
      }
    }
  }
  return IoStatus::kDrained;
}

}  // namespace bat::net
