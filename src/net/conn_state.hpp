// ConnState: one nonblocking HTTP connection's state machine.
//
// The per-connection half of the event-driven server: owns the fd, the
// inbound parse buffer and the outbound write queue, and exposes the
// three operations the readiness loop drives —
//
//   read_some()     drain the socket into the inbound buffer (EAGAIN-
//                   bounded, so a loop iteration never blocks);
//   next_request()  frame one request off the buffer with the strict
//                   incremental parser (net/http.hpp) and consume its
//                   bytes; pipelined requests stay queued behind it;
//   flush()         vectored sendmsg(2) of the queued responses until
//                   the kernel pushes back (kPending -> the caller
//                   registers write interest) or everything drained.
//
// Policy lives in the server (dispatch, rate limits, keep-alive,
// interest juggling); this type is the mechanics, single-threaded by
// construction — a connection is owned by exactly one EventLoop thread.
//
// Backpressure shape: responses append to `out_`; a peer that stops
// reading leaves them queued (bounded by one in-flight response per
// connection — the server parses no further request while one is being
// handled, and stops reading while output is pending), and the inbound
// buffer is bounded by the parser's head/body limits. Memory per
// connection is therefore O(limits), never O(peer behavior).
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "net/http.hpp"

namespace bat::net {

class ConnState {
 public:
  enum class IoStatus {
    kOk,        // made progress; more may be pending
    kBlocked,   // EAGAIN: wait for the next readiness event
    kClosed,    // peer closed its end (read side only)
    kError,     // unrecoverable socket error: tear the connection down
    kDrained,   // flush(): output queue fully written
  };

  /// Takes ownership of `fd` (closed in the destructor); `peer_ipv4`
  /// is the client address in host byte order (rate-limit key).
  ConnState(int fd, std::uint32_t peer_ipv4, std::uint64_t id);
  ~ConnState();

  ConnState(const ConnState&) = delete;
  ConnState& operator=(const ConnState&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] std::uint32_t peer_ipv4() const noexcept {
    return peer_ipv4_;
  }

  /// recv(2) until EAGAIN or `max_bytes` landed in the inbound buffer.
  /// kOk when any bytes arrived, kBlocked when none were ready.
  [[nodiscard]] IoStatus read_some(std::size_t max_bytes = 64 * 1024);

  /// Frames one request off the inbound buffer. On kOk the request's
  /// bytes are consumed (pipelined successors remain buffered).
  [[nodiscard]] ParseResult next_request(HttpRequest& out,
                                         const ParseLimits& limits);

  /// True when buffered inbound bytes might hold another request.
  [[nodiscard]] bool has_buffered_input() const noexcept {
    return !in_.empty();
  }

  /// Queues serialized response bytes for flush().
  void queue_output(std::string bytes);
  [[nodiscard]] bool has_pending_output() const noexcept {
    return !out_.empty();
  }

  /// Vectored sendmsg(2) of the queued buffers until kDrained,
  /// kBlocked (kernel pushed back) or kError.
  [[nodiscard]] IoStatus flush();

  /// One request handed to the worker pool, response not yet queued.
  [[nodiscard]] bool busy() const noexcept { return busy_; }
  void set_busy(bool busy) noexcept { busy_ = busy; }

  /// Close once the output queue drains (error paths, connection:
  /// close, server shutdown).
  [[nodiscard]] bool close_after_flush() const noexcept {
    return close_after_flush_;
  }
  void set_close_after_flush() noexcept { close_after_flush_ = true; }

  /// Peer sent FIN: no more bytes will arrive, but complete pipelined
  /// requests already buffered are still served before teardown.
  [[nodiscard]] bool peer_closed() const noexcept { return peer_closed_; }
  void set_peer_closed() noexcept { peer_closed_ = true; }

  /// Interest mask currently registered with the loop (server-managed;
  /// cached here so set_interest calls only happen on transitions).
  [[nodiscard]] std::uint32_t interest() const noexcept { return interest_; }
  void set_interest_cache(std::uint32_t interest) noexcept {
    interest_ = interest;
  }

 private:
  int fd_;
  std::uint32_t peer_ipv4_;
  std::uint64_t id_;
  std::string in_;
  std::deque<std::string> out_;
  std::size_t out_front_offset_ = 0;  // bytes of out_.front() already sent
  bool busy_ = false;
  bool close_after_flush_ = false;
  bool peer_closed_ = false;
  std::uint32_t interest_ = 0;
};

}  // namespace bat::net
