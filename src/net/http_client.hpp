// HttpClient: minimal blocking keep-alive client for the tuning API.
//
// One client == one persistent connection to one host:port. Requests
// are synchronous: serialize, send, recv until net::parse_response
// frames one full message. The connection is opened lazily on the
// first request and reused; when the server (legitimately) closed a
// kept-alive connection between requests, the client transparently
// reconnects and retries once — the retry only happens when *zero*
// response bytes arrived, so a request is never replayed after the
// server may have acted on it mid-response.
//
// Scope: the test suite, the `tune remote` CLI, the loopback
// throughput bench and the cluster peer protocol. IPv4 literal hosts +
// DNS-free by design; throws std::runtime_error on connect/send/recv
// failure, timeouts and malformed responses (a client, unlike a
// server, has a caller to throw to).
//
// Timeouts: ClientOptions bounds how long a hung peer can block the
// caller. connect_timeout_ms uses a nonblocking connect + poll;
// io_timeout_ms maps to SO_RCVTIMEO/SO_SNDTIMEO, so a peer that
// accepted but never answers fails the request instead of parking the
// thread forever. 0 = no bound (the pre-timeout behavior, kept as the
// default for interactive CLI use); peer traffic passes finite values.
//
// Thread-safety: none — one HttpClient per thread (it is one socket).
#pragma once

#include <cstdint>
#include <string>

#include "net/http.hpp"

namespace bat::net {

struct ClientOptions {
  /// Milliseconds to wait for connect() to complete; 0 = no bound.
  int connect_timeout_ms = 0;
  /// Milliseconds any single send()/recv() may block; 0 = no bound.
  /// This bounds per-syscall stalls, not whole-response time: a peer
  /// trickling bytes resets the clock — good enough against hangs,
  /// which is the failure mode peers actually exhibit.
  int io_timeout_ms = 0;
};

class HttpClient {
 public:
  /// `host` is an IPv4 literal ("127.0.0.1"). Does not connect yet.
  HttpClient(std::string host, std::uint16_t port, ParseLimits limits = {
                 .max_head_bytes = 16 * 1024,
                 .max_body_bytes = 64 * 1024 * 1024,
                 .max_headers = 100,
             },
             ClientOptions options = {});
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  [[nodiscard]] HttpResponse get(const std::string& target);
  [[nodiscard]] HttpResponse post(const std::string& target,
                                  std::string body,
                                  const std::string& content_type =
                                      "application/json");

  /// Pipelined mode (benches, concurrency tests): send without waiting,
  /// read later. HTTP/1.1 responses come back in request order, so N
  /// send_request() calls pair with N read_response() calls in order.
  /// No stale-connection retry here — pipelining callers own pacing.
  void send_request(const std::string& method, const std::string& target,
                    std::string body = {},
                    const std::string& content_type = {});
  /// Frames the next pipelined response; throws if the server closed
  /// mid-stream.
  [[nodiscard]] HttpResponse read_response();

  /// Closes the persistent connection (the next request reconnects).
  void disconnect() noexcept;
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

 private:
  [[nodiscard]] HttpResponse request(const std::string& method,
                                     const std::string& target,
                                     std::string body,
                                     const std::string& content_type);
  [[nodiscard]] std::string serialize(const std::string& method,
                                      const std::string& target,
                                      std::string body,
                                      const std::string& content_type) const;
  void connect();
  /// Sends the request and reads one response. Returns false when the
  /// reused connection turned out dead before any response byte (the
  /// caller reconnects and retries); throws on every other failure.
  [[nodiscard]] bool round_trip(const std::string& wire, HttpResponse& out);

  std::string host_;
  std::uint16_t port_;
  ParseLimits limits_;
  ClientOptions options_;
  int fd_ = -1;
  std::string buffer_;  // bytes past the previous response (pipelining)
};

}  // namespace bat::net
