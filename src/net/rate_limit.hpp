// Traffic policing: token buckets, per-client limits, IP-group quotas.
//
// The admission layer in front of the tuning API. Two levels, both
// classic token buckets (capacity = burst allowance, refilled at a
// fixed rate, one token per unit request cost):
//
//   * per-client: every distinct IPv4 source gets its own bucket, so
//     one greedy client exhausts its own allowance, not the server;
//   * per-group: clients aggregate into prefix groups (/24 by default)
//     sharing a quota bucket — a botnet-shaped burst from one subnet
//     is bounded even when each member stays under its client limit.
//
// admit() answers allow/deny plus a deterministic retry-after hint
// (how long until the bucket holds enough tokens), which the server
// surfaces as `Retry-After` on 429 responses. A request is charged
// against *both* buckets only when both admit it — a denial consumes
// nothing, so a throttled client's retries do not push its allowance
// further away.
//
// Time is injected (nanoseconds from any monotonic source): production
// passes steady_clock, tests a hand-cranked fake, which is what makes
// burst/refill/429-sequencing assertions exact instead of sleepy.
//
// Thread-safety: admit() takes one internal mutex. At the request
// costs this front-end serves (µs of parsing + handler work per
// admission check) one uncontended mutex is noise; shard it only if a
// profile ever says otherwise.
//
// Bounds: client buckets live in a map capped at max_tracked_clients;
// when full, fully-refilled (idle) buckets are evicted first — an
// address-spraying attacker can only recycle buckets that were at full
// allowance anyway, so eviction never grants tokens a live client had
// already spent.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace bat::net {

/// Deterministic token bucket. Not thread-safe on its own (RateLimiter
/// serializes); time is caller-supplied monotonic nanoseconds.
class TokenBucket {
 public:
  /// `rate_per_sec` tokens accrue per second up to `burst` capacity;
  /// a fresh bucket starts full (burst allowance).
  TokenBucket(double rate_per_sec, double burst);

  /// Takes `cost` tokens if available. False leaves the bucket as-is.
  bool try_acquire(std::uint64_t now_ns, double cost = 1.0);

  /// Seconds until `cost` tokens will be available (0 when they are).
  [[nodiscard]] double retry_after_seconds(std::uint64_t now_ns,
                                           double cost = 1.0) const;

  [[nodiscard]] double tokens(std::uint64_t now_ns) const;
  [[nodiscard]] bool full(std::uint64_t now_ns) const;

 private:
  void refill(std::uint64_t now_ns);

  double rate_;
  double burst_;
  double tokens_;
  std::uint64_t last_ns_ = 0;
};

struct RateLimitOptions {
  /// Per-client sustained requests/second; 0 disables client buckets.
  double per_client_rps = 0.0;
  /// Per-client burst allowance; 0 defaults to per_client_rps.
  double per_client_burst = 0.0;
  /// Shared quota per IP group (prefix aggregate); 0 disables groups.
  double per_group_rps = 0.0;
  double per_group_burst = 0.0;  // 0 defaults to per_group_rps
  /// Clients aggregate into /N prefix groups (default /24).
  int group_prefix_bits = 24;
  /// Client-bucket map cap; idle (full) buckets are evicted beyond it.
  std::size_t max_tracked_clients = 65536;
  /// Clients for which admit() always allows and charges nothing —
  /// checked before either bucket. Installed by `tune serve` for
  /// loopback + peer-listed addresses when clustering, so intra-cluster
  /// claim/publish/relay traffic (which legitimately bursts far beyond
  /// any human client) never trips the /24 group quota that a
  /// multi-node loopback cluster would otherwise share. Unset (the
  /// default) preserves the old behavior: every address is policed.
  std::function<bool(std::uint32_t ipv4)> exempt;

  [[nodiscard]] bool enabled() const noexcept {
    return per_client_rps > 0.0 || per_group_rps > 0.0;
  }
};

struct Admission {
  bool allowed = true;
  /// Deterministic hint for the Retry-After header (seconds); the
  /// denying scope's bucket-refill time, 0 when allowed.
  double retry_after_seconds = 0.0;
  /// "client" or "group" when denied, nullptr when allowed.
  const char* denied_by = nullptr;
};

class RateLimiter {
 public:
  /// Monotonic nanoseconds. The default reads std::chrono::steady_clock.
  using Clock = std::function<std::uint64_t()>;

  /// `metrics` hosts the bat_ratelimit_* series; null makes a private
  /// registry so standalone limiters (tests) still count correctly.
  explicit RateLimiter(RateLimitOptions options, Clock clock = {},
                       std::shared_ptr<obs::MetricsRegistry> metrics = {});

  /// Charges one request of `cost` tokens from `client_ipv4` (host
  /// byte order). Both scopes must admit before either is charged.
  [[nodiscard]] Admission admit(std::uint32_t client_ipv4,
                                double cost = 1.0);

  [[nodiscard]] const RateLimitOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] std::size_t tracked_clients() const;

  /// The group key `ip` falls into (top group_prefix_bits of the
  /// address). Exposed for tests.
  [[nodiscard]] std::uint32_t group_of(std::uint32_t ipv4) const noexcept;

 private:
  void evict_idle_clients(std::uint64_t now_ns);

  RateLimitOptions options_;
  Clock clock_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint32_t, TokenBucket> clients_;
  std::unordered_map<std::uint32_t, TokenBucket> groups_;

  std::shared_ptr<obs::MetricsRegistry> metrics_;
  obs::Counter* allowed_total_;
  obs::Counter* denied_client_total_;
  obs::Counter* denied_group_total_;
  obs::Counter* exempt_total_;
  // Declared last: unregisters before mutex_/clients_ die.
  obs::CallbackGuard tracked_clients_gauge_;
};

}  // namespace bat::net
