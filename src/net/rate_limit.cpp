#include "net/rate_limit.hpp"

#include <algorithm>
#include <chrono>

namespace bat::net {

namespace {

constexpr double kNsPerSecond = 1e9;

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_(std::max(rate_per_sec, 0.0)),
      burst_(std::max(burst, 1.0)),
      tokens_(burst_) {}

void TokenBucket::refill(std::uint64_t now_ns) {
  if (now_ns <= last_ns_) return;  // monotonic source; never refund
  // No "uninitialized" sentinel: a fresh bucket is full, so crediting
  // the whole epoch-to-first-use gap clamps harmlessly at burst. (A
  // sentinel would break fake clocks that legitimately start at 0.)
  const double elapsed =
      static_cast<double>(now_ns - last_ns_) / kNsPerSecond;
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
  last_ns_ = now_ns;
}

bool TokenBucket::try_acquire(std::uint64_t now_ns, double cost) {
  refill(now_ns);
  if (tokens_ < cost) return false;
  tokens_ -= cost;
  return true;
}

double TokenBucket::retry_after_seconds(std::uint64_t now_ns,
                                        double cost) const {
  TokenBucket probe = *this;  // refill without mutating the real bucket
  probe.refill(now_ns);
  if (probe.tokens_ >= cost) return 0.0;
  if (rate_ <= 0.0) return 3600.0;  // burst-only bucket: park the client
  return (cost - probe.tokens_) / rate_;
}

double TokenBucket::tokens(std::uint64_t now_ns) const {
  TokenBucket probe = *this;
  probe.refill(now_ns);
  return probe.tokens_;
}

bool TokenBucket::full(std::uint64_t now_ns) const {
  return tokens(now_ns) >= burst_;
}

RateLimiter::RateLimiter(RateLimitOptions options, Clock clock,
                         std::shared_ptr<obs::MetricsRegistry> metrics)
    : options_(options),
      clock_(std::move(clock)),
      metrics_(metrics ? std::move(metrics)
                       : std::make_shared<obs::MetricsRegistry>()) {
  if (!clock_) clock_ = steady_now_ns;
  if (options_.per_client_burst <= 0.0) {
    options_.per_client_burst = options_.per_client_rps;
  }
  if (options_.per_group_burst <= 0.0) {
    options_.per_group_burst = options_.per_group_rps;
  }
  options_.group_prefix_bits =
      std::clamp(options_.group_prefix_bits, 0, 32);
  options_.max_tracked_clients =
      std::max<std::size_t>(options_.max_tracked_clients, 16);

  allowed_total_ = metrics_->counter(
      "bat_ratelimit_allowed_total", "Requests admitted by the rate limiter");
  denied_client_total_ =
      metrics_->counter("bat_ratelimit_denied_total",
                        "Requests denied by the rate limiter, by scope",
                        {{"scope", "client"}});
  denied_group_total_ =
      metrics_->counter("bat_ratelimit_denied_total",
                        "Requests denied by the rate limiter, by scope",
                        {{"scope", "group"}});
  exempt_total_ = metrics_->counter(
      "bat_ratelimit_exempt_total",
      "Requests admitted via the exemption predicate without charge");
  tracked_clients_gauge_ = metrics_->callback(
      "bat_ratelimit_tracked_clients",
      "Client token buckets currently tracked",
      obs::MetricsRegistry::CallbackKind::kGauge, {},
      [this] { return static_cast<double>(tracked_clients()); });
}

std::uint32_t RateLimiter::group_of(std::uint32_t ipv4) const noexcept {
  const int bits = options_.group_prefix_bits;
  if (bits <= 0) return 0;                 // one global group
  if (bits >= 32) return ipv4;             // degenerate: group == client
  const std::uint32_t mask = ~((1u << (32 - bits)) - 1u);
  return ipv4 & mask;
}

std::size_t RateLimiter::tracked_clients() const {
  std::lock_guard lock(mutex_);
  return clients_.size();
}

void RateLimiter::evict_idle_clients(std::uint64_t now_ns) {
  if (clients_.size() < options_.max_tracked_clients) return;
  for (auto it = clients_.begin(); it != clients_.end();) {
    it = it->second.full(now_ns) ? clients_.erase(it) : std::next(it);
  }
  // All buckets mid-drain (every tracked client actively throttled):
  // keep them — forgetting a live bucket would hand its owner a fresh
  // burst. The map is bounded by max_tracked_clients either way.
}

Admission RateLimiter::admit(std::uint32_t client_ipv4, double cost) {
  if (!options_.enabled()) return {};
  if (options_.exempt && options_.exempt(client_ipv4)) {
    exempt_total_->add();
    return {};
  }
  const std::uint64_t now = clock_();
  std::lock_guard lock(mutex_);

  TokenBucket* client = nullptr;
  if (options_.per_client_rps > 0.0) {
    auto it = clients_.find(client_ipv4);
    if (it == clients_.end()) {
      evict_idle_clients(now);
      if (clients_.size() >= options_.max_tracked_clients) {
        // Saturated tracker: fail closed with a short, fixed hint.
        denied_client_total_->add();
        return {false, 1.0, "client"};
      }
      it = clients_
               .emplace(client_ipv4,
                        TokenBucket(options_.per_client_rps,
                                    options_.per_client_burst))
               .first;
    }
    client = &it->second;
    if (client->tokens(now) < cost) {
      denied_client_total_->add();
      return {false, client->retry_after_seconds(now, cost), "client"};
    }
  }

  TokenBucket* group = nullptr;
  if (options_.per_group_rps > 0.0) {
    const std::uint32_t key = group_of(client_ipv4);
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      // Same bound as clients: a source spraying addresses across
      // subnets must not grow this map without limit either.
      if (groups_.size() >= options_.max_tracked_clients) {
        for (auto g = groups_.begin(); g != groups_.end();) {
          g = g->second.full(now) ? groups_.erase(g) : std::next(g);
        }
        if (groups_.size() >= options_.max_tracked_clients) {
          denied_group_total_->add();
          return {false, 1.0, "group"};
        }
      }
      it = groups_
               .emplace(key, TokenBucket(options_.per_group_rps,
                                         options_.per_group_burst))
               .first;
    }
    group = &it->second;
    if (group->tokens(now) < cost) {
      denied_group_total_->add();
      return {false, group->retry_after_seconds(now, cost), "group"};
    }
  }

  // Both scopes admit: charge both (checked above, so these succeed).
  if (client != nullptr) (void)client->try_acquire(now, cost);
  if (group != nullptr) (void)group->try_acquire(now, cost);
  allowed_total_->add();
  return {};
}

}  // namespace bat::net
