// HttpServer: event-driven readiness core + traffic policing.
//
// The service front-end the tuning API sits behind. Architecture
// (replacing the PR-5 blocking accept thread + one-worker-per-
// connection model, which pinned a thread per keep-alive client):
//
//   * a small fixed pool of EventLoop threads (`event_loops`) drives
//     nonblocking sockets by readiness — epoll on Linux, poll(2)
//     fallback elsewhere (`force_poll` selects it explicitly for
//     tests). The listening socket lives on loop 0; accepted
//     connections are distributed round-robin and each ConnState is
//     owned by exactly one loop thread (no per-connection locks);
//   * per-connection state machines reuse the incremental parsers in
//     net/http.hpp: bytes accumulate until one request frames, the
//     request dispatches, the serialized response is queued and
//     flushed with vectored writes; EAGAIN registers write interest
//     (backpressure) instead of blocking a thread. One request is in
//     flight per connection at a time — pipelined successors wait in
//     the buffer, which keeps responses trivially ordered and memory
//     O(parse limits) per connection;
//   * handlers run on a *bounded* worker pool (`workers`), never on a
//     loop thread, so a slow session (`/v1/sessions:run` can take
//     seconds) cannot stall readiness for the other N thousand
//     connections. While a connection waits on its handler its read
//     interest is dropped: a flooding client backs up into its own
//     kernel socket buffer, not into server memory;
//   * traffic policing sheds load instead of queueing unboundedly
//     (net/rate_limit.hpp): per-client token buckets and per-IP-group
//     quotas answer 429 + Retry-After, `admission_capacity` bounds
//     dispatched-but-unfinished requests with 503 + Retry-After, and
//     over `max_connections` the accept path answers 503 +
//     Retry-After and closes cleanly (shutdown then close, never an
//     abandoned half-open socket). 429/503 sheds are cheap (no
//     handler dispatch) and keep the connection alive — the request
//     was well-formed;
//   * strictness maps onto wire errors, never exceptions: malformed
//     input -> 400 + close, oversize header block -> 431 + close,
//     oversize body -> 413 + close, handler throw -> 500 (connection
//     survives: the request was well-formed);
//   * stop(): closes every connection from its owning loop, drains the
//     handler pool, joins the loops. Idempotent; the destructor calls
//     it.
//
// Thread-safety: start/stop/port/stats are safe from any thread; the
// handler runs concurrently on pool workers and must be thread-safe
// itself (api::ApiServer is). Connection state is single-threaded by
// ownership: only its loop thread touches it; handler completions are
// posted back to that loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hpp"
#include "net/conn_state.hpp"
#include "net/event_loop.hpp"
#include "net/http.hpp"
#include "net/rate_limit.hpp"
#include "obs/metrics.hpp"

namespace bat::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral, read back via port()
  /// Readiness loop threads. Connections distribute round-robin; a
  /// couple of loops saturate loopback — this is not the handler pool.
  std::size_t event_loops = 2;
  /// Handler workers (bounded). Handlers, not connections, occupy
  /// them: thousands of idle keep-alive connections cost no worker.
  std::size_t workers = 8;
  /// Accepted-but-not-closed cap; beyond it new connections get
  /// 503 + Retry-After and a clean close.
  std::size_t max_connections = 1024;
  /// Dispatched-but-unfinished request cap (the bounded admission
  /// queue); at capacity well-formed requests get 503 + Retry-After
  /// without dispatching. 0 = default (4096).
  std::size_t admission_capacity = 0;
  /// Retry-After hint (seconds) on 503 sheds and connection-cap 503s.
  double retry_after_seconds = 1.0;
  /// Token-bucket policing; disabled unless a rate is set.
  RateLimitOptions rate_limit;
  /// Time source for the rate limiter (tests inject a fake clock).
  RateLimiter::Clock clock;
  /// Tokens a request costs against the rate buckets (default 1.0);
  /// lets the API charge heavy endpoints more than status probes.
  std::function<double(const HttpRequest&)> request_cost;
  /// Requests exempt from token-bucket policing (the bounded admission
  /// queue still applies — liveness probes must never be starved by a
  /// throttled client, but they also must not bypass overload
  /// protection). api::with_api_policy installs one for /v1/healthz.
  std::function<bool(const HttpRequest&)> police_exempt;
  /// Use the poll(2) backend even where epoll is available.
  bool force_poll = false;
  ParseLimits limits;
  /// Registry hosting the bat_http_* series; null makes a private one
  /// (per-instance getters keep working either way).
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

class HttpServer {
 public:
  /// Handler: request in, response out. Runs on pool workers; throwing
  /// yields a 500 with the exception message in a JSON body.
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(ServerOptions options, Handler handler);
  ~HttpServer();  // stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, spawns the event loops and handler pool. Throws
  /// std::runtime_error on bind/listen failure. Call once.
  void start();

  /// Closes every connection, drains handlers, joins the loops.
  /// Idempotent; safe to call without start().
  void stop();

  /// The bound port (resolves option port 0 to the ephemeral choice).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_.load(); }
  [[nodiscard]] bool running() const noexcept { return running_.load(); }

  // ------------------------------------------------------------ stats --
  // Telemetry counters live on the metrics registry (bat_http_*); the
  // getters read the same series /v1/metrics renders.
  [[nodiscard]] std::uint64_t connections_accepted() const noexcept {
    return accepted_total_->value();
  }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return served_total_->value();
  }
  /// Requests answered 429 by the token-bucket/quota layer.
  [[nodiscard]] std::uint64_t requests_rate_limited() const noexcept {
    return rate_limited_total_->value();
  }
  /// Requests answered 503 by the bounded admission queue.
  [[nodiscard]] std::uint64_t requests_shed() const noexcept {
    return shed_total_->value();
  }
  /// Connections answered 503 + close at the max_connections cap.
  [[nodiscard]] std::uint64_t connections_over_capacity() const noexcept {
    return over_capacity_total_->value();
  }
  [[nodiscard]] std::uint64_t connections_open() const noexcept {
    return open_connections_.load();
  }

 private:
  struct LoopShard {
    std::unique_ptr<EventLoop> loop;
    /// Owned by the loop's thread exclusively (id -> connection).
    std::unordered_map<std::uint64_t, std::unique_ptr<ConnState>> conns;
  };

  void on_accept();
  void pause_accept_for_fd_pressure();
  void adopt_connection(std::size_t shard, int fd, std::uint32_t ipv4);
  void on_conn_event(std::size_t shard, std::uint64_t id,
                     std::uint32_t events);
  /// Frames+dispatches buffered requests until busy/incomplete/error.
  void process_input(std::size_t shard, ConnState& conn);
  /// Handler-pool completion, posted back to the owning loop.
  void complete(std::size_t shard, std::uint64_t id, std::string bytes,
                bool keep_alive);
  /// Flushes output, re-computes interest, destroys when done-for.
  /// Returns false when the connection was destroyed.
  bool flush_and_update(std::size_t shard, ConnState& conn);
  void destroy(std::size_t shard, std::uint64_t id);
  [[nodiscard]] HttpResponse dispatch(const HttpRequest& request);
  /// 429/503 + Retry-After, serialized. Seconds are ceiled to >= 1.
  [[nodiscard]] static std::string policed_response(
      int status, const std::string& message, double retry_after_seconds,
      bool keep_alive);

  ServerOptions options_;
  Handler handler_;

  int listen_fd_ = -1;
  std::atomic<std::uint16_t> port_{0};
  std::atomic<bool> running_{false};
  std::mutex lifecycle_mutex_;  // serializes start()/stop()
  bool started_ = false;        // guarded by lifecycle_mutex_

  std::vector<LoopShard> shards_;
  std::unique_ptr<common::ThreadPool> pool_;
  std::unique_ptr<RateLimiter> limiter_;

  std::atomic<std::size_t> next_shard_{0};
  std::atomic<std::uint64_t> next_conn_id_{1};
  // Control state, NOT telemetry: max_connections and admission
  // enforcement read these, so they must survive BAT_OBS_OFF. The
  // open-connections gauge below exposes the same atomic at scrape.
  std::atomic<std::uint64_t> open_connections_{0};
  std::atomic<std::uint64_t> in_flight_{0};

  std::shared_ptr<obs::MetricsRegistry> metrics_;
  obs::Counter* accepted_total_;
  obs::Counter* served_total_;
  obs::Counter* rate_limited_total_;
  obs::Counter* shed_total_;
  obs::Counter* over_capacity_total_;
  obs::Histogram* request_duration_;
  // Declared last: unregisters before the atomics it reads die.
  obs::CallbackGuard open_connections_gauge_;
};

}  // namespace bat::net
