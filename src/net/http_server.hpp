// HttpServer: blocking accept thread + per-connection worker pool.
//
// The service front-end the tuning API sits behind. Design:
//
//   * one dedicated accept thread blocks in accept(2) on the listening
//     socket; every accepted connection is handed to a private
//     common::ThreadPool task that owns the connection until it closes
//     (keep-alive: one worker services a connection's whole request
//     stream — with C concurrent persistent clients you want
//     workers >= C, which is why the pool size is an explicit option
//     and not hardware_concurrency);
//   * per-connection loop: recv into a growing buffer, net::parse_request
//     until one full message is framed, dispatch to the handler, send
//     the serialized response, repeat while keep-alive (pipelined
//     requests already in the buffer are served without another recv);
//   * strictness maps onto wire errors, never exceptions: malformed
//     input -> 400 + close, oversize header block -> 431 + close,
//     oversize body -> 413 + close, handler throw -> 500 (connection
//     survives: the request was well-formed), connection cap -> 503;
//   * stop(): shutdown(2) on the listening socket unblocks the accept
//     thread, shutdown(2) on every open connection unblocks workers
//     mid-recv, then the pool drains and joins. Idempotent, and the
//     destructor calls it.
//
// Bounds: the parse limits bound per-connection memory; max_connections
// bounds fd/worker-queue usage. An idle keep-alive connection pins a
// pool worker until the peer or stop() closes it — acceptable for the
// trusted-LAN deployments this subset targets, documented so nobody
// points it at the open internet.
//
// Thread-safety: start/stop/port/stats are safe from any thread; the
// handler runs concurrently on pool workers and must be thread-safe
// itself (api::ApiServer is).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "common/thread_pool.hpp"
#include "net/http.hpp"

namespace bat::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral, read back via port()
  /// Connection-handling workers. Each keep-alive connection occupies
  /// one worker for its lifetime; size to the expected client count.
  std::size_t workers = 8;
  /// Accepted-but-not-closed cap; beyond it new connections get 503.
  std::size_t max_connections = 256;
  ParseLimits limits;
};

class HttpServer {
 public:
  /// Handler: request in, response out. Runs on pool workers; throwing
  /// yields a 500 with the exception message in a JSON body.
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(ServerOptions options, Handler handler);
  ~HttpServer();  // stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and spawns the accept thread. Throws
  /// std::runtime_error on bind/listen failure. Call once.
  void start();

  /// Stops accepting, unblocks and drains every connection worker.
  /// Idempotent; safe to call without start().
  void stop();

  /// The bound port (resolves option port 0 to the ephemeral choice).
  [[nodiscard]] std::uint16_t port() const noexcept {
    return port_.load();
  }
  [[nodiscard]] bool running() const noexcept { return running_.load(); }

  [[nodiscard]] std::uint64_t connections_accepted() const noexcept {
    return accepted_.load();
  }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return served_.load();
  }

 private:
  void accept_loop();
  void handle_connection(int fd);
  [[nodiscard]] HttpResponse dispatch(const HttpRequest& request);

  ServerOptions options_;
  Handler handler_;

  int listen_fd_ = -1;
  std::atomic<std::uint16_t> port_{0};
  std::atomic<bool> running_{false};
  std::mutex lifecycle_mutex_;  // serializes start()/stop() (join, pool)
  bool started_ = false;        // guarded by lifecycle_mutex_
  std::thread accept_thread_;
  std::unique_ptr<common::ThreadPool> pool_;

  std::mutex connections_mutex_;
  std::unordered_set<int> connections_;  // open fds, for stop() shutdown

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> served_{0};
};

}  // namespace bat::net
