#include "net/http.hpp"

#include <algorithm>
#include <charconv>
#include <optional>

#include "common/string_util.hpp"

namespace bat::net {

namespace {

constexpr std::string_view kCrlf = "\r\n";
constexpr std::string_view kHeadEnd = "\r\n\r\n";

/// RFC 9110 token characters (header names, methods).
bool is_token_char(char c) {
  if (c >= 'a' && c <= 'z') return true;
  if (c >= 'A' && c <= 'Z') return true;
  if (c >= '0' && c <= '9') return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool is_token(std::string_view s) {
  return !s.empty() && std::all_of(s.begin(), s.end(), is_token_char);
}

ParseResult bad(std::string error) {
  return {ParseStatus::kBadRequest, 0, std::move(error)};
}

std::string_view trim_ows(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses the header lines between the start line and the blank line.
/// Returns an error message or nullopt on success.
std::optional<std::string> parse_headers(std::string_view head,
                                         const ParseLimits& limits,
                                         HeaderList& out) {
  out.clear();
  while (!head.empty()) {
    const std::size_t eol = head.find(kCrlf);
    if (eol == std::string_view::npos) {
      return "header line without CRLF terminator";
    }
    const std::string_view line = head.substr(0, eol);
    head.remove_prefix(eol + kCrlf.size());
    if (line.empty()) return "empty header line inside header block";
    if (line.front() == ' ' || line.front() == '\t') {
      return "obsolete line folding is not supported";
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return "header line without ':'";
    }
    const std::string_view name = line.substr(0, colon);
    if (!is_token(name)) return "invalid header field name";
    if (out.size() >= limits.max_headers) return "too many header fields";
    out.emplace_back(common::to_lower(name),
                     std::string(trim_ows(line.substr(colon + 1))));
  }
  return std::nullopt;
}

const std::string* find_header(const HeaderList& headers,
                               std::string_view lower_name) {
  for (const auto& [name, value] : headers) {
    if (name == lower_name) return &value;
  }
  return nullptr;
}

/// Body framing from the parsed headers: Content-Length only.
/// On success sets `length`; otherwise returns the error ParseResult.
std::optional<ParseResult> body_length(const HeaderList& headers,
                                       const ParseLimits& limits,
                                       std::size_t& length) {
  length = 0;
  if (find_header(headers, "transfer-encoding") != nullptr) {
    return bad("transfer-encoding is not supported (use content-length)");
  }
  bool seen = false;
  for (const auto& [name, value] : headers) {
    if (name != "content-length") continue;
    std::uint64_t parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (value.empty() || ec != std::errc() ||
        ptr != value.data() + value.size()) {
      return bad("malformed content-length");
    }
    if (seen && parsed != length) {
      return bad("conflicting content-length headers");
    }
    seen = true;
    length = static_cast<std::size_t>(parsed);
  }
  if (length > limits.max_body_bytes) {
    return ParseResult{ParseStatus::kBodyTooLarge, 0,
                       "content-length " + std::to_string(length) +
                           " exceeds limit " +
                           std::to_string(limits.max_body_bytes)};
  }
  return std::nullopt;
}

/// Splits the head block off `buffer`: everything up to and including
/// the blank line. kIncomplete/kHeadTooLarge are reported through the
/// optional result.
std::optional<ParseResult> split_head(std::string_view buffer,
                                      const ParseLimits& limits,
                                      std::string_view& head,
                                      std::size_t& head_size) {
  const std::size_t head_end = buffer.find(kHeadEnd);
  if (head_end == std::string_view::npos) {
    if (buffer.size() > limits.max_head_bytes) {
      return ParseResult{ParseStatus::kHeadTooLarge, 0,
                         "header block exceeds " +
                             std::to_string(limits.max_head_bytes) +
                             " bytes"};
    }
    return ParseResult{ParseStatus::kIncomplete, 0, {}};
  }
  head_size = head_end + kHeadEnd.size();
  if (head_size > limits.max_head_bytes) {
    return ParseResult{ParseStatus::kHeadTooLarge, 0,
                       "header block exceeds " +
                           std::to_string(limits.max_head_bytes) + " bytes"};
  }
  // Head without the start line terminator handling: keep the first
  // CRLF so parse_headers sees uniform "line CRLF" records.
  head = buffer.substr(0, head_end + kCrlf.size());
  return std::nullopt;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  return find_header(headers, name);
}

const std::string* HttpResponse::header(std::string_view name) const {
  return find_header(headers, name);
}

bool HttpRequest::keep_alive() const {
  if (const std::string* connection = header("connection")) {
    const std::string lowered = common::to_lower(*connection);
    for (const auto& token : common::split(lowered, ',')) {
      const auto t = common::trim(token);
      if (t == "close") return false;
      if (t == "keep-alive") return true;
    }
  }
  return version_minor >= 1;
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

ParseResult parse_request(std::string_view buffer, HttpRequest& out,
                          const ParseLimits& limits) {
  std::string_view head;
  std::size_t head_size = 0;
  if (auto early = split_head(buffer, limits, head, head_size)) return *early;

  // Request line: METHOD SP target SP HTTP/1.x CRLF
  const std::size_t line_end = head.find(kCrlf);
  const std::string_view line = head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    return bad("malformed request line");
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (!is_token(method)) return bad("invalid method token");
  if (target.empty() || target.front() != '/') {
    return bad("target must be in origin-form (start with '/')");
  }
  for (const char c : target) {
    if (static_cast<unsigned char>(c) <= 0x20 || c == 0x7F) {
      return bad("control character or space in request target");
    }
  }
  int version_minor = 0;
  if (version == "HTTP/1.1") {
    version_minor = 1;
  } else if (version != "HTTP/1.0") {
    return bad("unsupported protocol version (HTTP/1.0 or HTTP/1.1)");
  }

  HeaderList headers;
  if (auto err =
          parse_headers(head.substr(line_end + kCrlf.size()), limits,
                        headers)) {
    return bad(std::move(*err));
  }
  std::size_t length = 0;
  if (auto early = body_length(headers, limits, length)) return *early;
  if (buffer.size() < head_size + length) {
    return {ParseStatus::kIncomplete, 0, {}};
  }

  out.method = std::string(method);
  out.target = std::string(target);
  out.version_minor = version_minor;
  out.headers = std::move(headers);
  out.body = std::string(buffer.substr(head_size, length));
  return {ParseStatus::kOk, head_size + length, {}};
}

ParseResult parse_response(std::string_view buffer, HttpResponse& out,
                           const ParseLimits& limits) {
  std::string_view head;
  std::size_t head_size = 0;
  if (auto early = split_head(buffer, limits, head, head_size)) return *early;

  // Status line: HTTP/1.x SP 3DIGIT [SP reason] CRLF
  const std::size_t line_end = head.find(kCrlf);
  const std::string_view line = head.substr(0, line_end);
  if (!common::starts_with(line, "HTTP/1.0 ") &&
      !common::starts_with(line, "HTTP/1.1 ")) {
    return bad("malformed status line");
  }
  const std::string_view code = line.substr(9, 3);
  if (code.size() != 3 ||
      !std::all_of(code.begin(), code.end(),
                   [](char c) { return c >= '0' && c <= '9'; }) ||
      (line.size() > 12 && line[12] != ' ')) {
    return bad("malformed status code");
  }
  const int status = (code[0] - '0') * 100 + (code[1] - '0') * 10 +
                     (code[2] - '0');

  HeaderList headers;
  if (auto err =
          parse_headers(head.substr(line_end + kCrlf.size()), limits,
                        headers)) {
    return bad(std::move(*err));
  }
  if (find_header(headers, "content-length") == nullptr) {
    return bad("response without content-length framing");
  }
  std::size_t length = 0;
  if (auto early = body_length(headers, limits, length)) return *early;
  if (buffer.size() < head_size + length) {
    return {ParseStatus::kIncomplete, 0, {}};
  }

  out.status = status;
  out.headers = std::move(headers);
  out.body = std::string(buffer.substr(head_size, length));
  return {ParseStatus::kOk, head_size + length, {}};
}

namespace {

void append_common(std::string& out, const HeaderList& headers,
                   std::size_t body_size, bool keep_alive) {
  for (const auto& [name, value] : headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "content-length: ";
  out += std::to_string(body_size);
  out += "\r\nconnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
}

}  // namespace

std::string serialize_response(const HttpResponse& response,
                               bool keep_alive) {
  std::string out;
  out.reserve(128 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += status_reason(response.status);
  out += "\r\n";
  append_common(out, response.headers, response.body.size(), keep_alive);
  out += response.body;
  return out;
}

std::string serialize_request(const HttpRequest& request, bool keep_alive) {
  std::string out;
  out.reserve(128 + request.body.size());
  out += request.method;
  out += ' ';
  out += request.target;
  out += request.version_minor >= 1 ? " HTTP/1.1\r\n" : " HTTP/1.0\r\n";
  append_common(out, request.headers, request.body.size(), keep_alive);
  out += request.body;
  return out;
}

}  // namespace bat::net
