// HTTP/1.1 subset: message value types + strict incremental parsers.
//
// The wire layer for the tuning API is deliberately a small,
// dependency-free subset of RFC 9112 — exactly what a JSON API behind a
// trusted load balancer needs and nothing more:
//   * request-line / status-line + headers, CRLF line endings only;
//   * bodies are framed by Content-Length exclusively (a request with
//     Transfer-Encoding is rejected: chunked framing is where request
//     smuggling lives);
//   * keep-alive per HTTP/1.1 defaults (1.1: persistent unless
//     "Connection: close"; 1.0: close unless "Connection: keep-alive");
//   * hard limits on header-block and body size so a hostile peer can
//     not balloon memory — oversize maps onto 431/413.
//
// parse_request/parse_response are *incremental*: feed the bytes
// received so far, get kIncomplete until one full message is present,
// then `consumed` says how many bytes the message took (pipelined
// keep-alive leaves the next request in the buffer). Parsers never
// throw; malformed input is a status + error string, because on a
// server a bad request is a response, not an exception.
//
// Everything here is a plain value / pure function: no sockets, no
// threads (src/net/http_server.hpp owns those), trivially benchable
// (bench BM_HttpParseRequest) and fuzzable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bat::net {

/// Header names are lower-cased at parse time (field names are
/// case-insensitive on the wire); values keep their bytes, OWS-trimmed.
using HeaderList = std::vector<std::pair<std::string, std::string>>;

struct HttpRequest {
  std::string method;   // "GET", "POST", ... (token, upper-case expected)
  std::string target;   // origin-form, e.g. "/v1/sessions:run"
  int version_minor = 1;  // HTTP/1.<minor>; parser accepts 0 and 1
  HeaderList headers;
  std::string body;

  /// First header with this (lower-case) name, nullptr when absent.
  [[nodiscard]] const std::string* header(std::string_view name) const;
  /// Persistent-connection semantics for this request's version.
  [[nodiscard]] bool keep_alive() const;
};

struct HttpResponse {
  int status = 200;
  HeaderList headers;  // content-length/connection are added on serialize
  std::string body;

  [[nodiscard]] const std::string* header(std::string_view name) const;
};

/// Canonical reason phrase ("OK", "Bad Request", ...).
[[nodiscard]] const char* status_reason(int status);

struct ParseLimits {
  std::size_t max_head_bytes = 16 * 1024;        // request/status line + headers
  std::size_t max_body_bytes = 1 * 1024 * 1024;  // Content-Length cap
  std::size_t max_headers = 100;
};

enum class ParseStatus {
  kIncomplete,    // need more bytes
  kOk,            // one full message parsed; `consumed` bytes eaten
  kBadRequest,    // malformed -> 400
  kBodyTooLarge,  // Content-Length over the limit -> 413
  kHeadTooLarge,  // header block over the limit -> 431
};

struct ParseResult {
  ParseStatus status = ParseStatus::kIncomplete;
  std::size_t consumed = 0;  // valid when status == kOk
  std::string error;         // human-readable when malformed/oversize
};

/// Parses one complete request from the front of `buffer`.
[[nodiscard]] ParseResult parse_request(std::string_view buffer,
                                        HttpRequest& out,
                                        const ParseLimits& limits = {});

/// Parses one complete response from the front of `buffer`. Strict
/// about framing: a response without Content-Length is an error (this
/// subset never sends one).
[[nodiscard]] ParseResult parse_response(std::string_view buffer,
                                         HttpResponse& out,
                                         const ParseLimits& limits = {});

/// Serializes with content-length and "connection: keep-alive|close"
/// added; headers already present in the message are passed through.
[[nodiscard]] std::string serialize_response(const HttpResponse& response,
                                             bool keep_alive);
[[nodiscard]] std::string serialize_request(const HttpRequest& request,
                                            bool keep_alive);

}  // namespace bat::net
