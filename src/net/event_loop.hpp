// EventLoop: one thread multiplexing many nonblocking fds by readiness.
//
// The core the HTTP server's connection state machines run on. One
// EventLoop == one thread == one readiness set:
//
//   * fds register a callback plus an interest mask (kRead/kWrite);
//     the loop invokes the callback with the events that fired. The
//     notification is level-triggered: a callback that does not drain
//     its fd is simply called again on the next iteration;
//   * the backend is epoll(7) on Linux and a portable poll(2) fallback
//     everywhere else — `force_poll` selects the fallback explicitly
//     so tests exercise both on any platform;
//   * post() is the only cross-thread entry point: it enqueues a task
//     and wakes the loop via a self-pipe; the task runs on the loop
//     thread before the next readiness dispatch. Everything else
//     (add/modify/remove_fd) must be called from the loop thread (or
//     before start()), which is what makes per-fd state single-
//     threaded and mutex-free;
//   * stop() (any thread) wakes the loop and joins. Tasks already
//     queued run on the loop thread right before it exits (an adoption
//     or completion enqueued during shutdown still executes, so its
//     captures release resources normally); tasks posted *after* stop
//     are refused — post() returns false and the caller keeps
//     ownership of whatever the task was about to hand over.
//
// Ownership: the loop never closes registered fds; whoever registered
// them does (net/http_server.cpp owns connections, conn_state.hpp the
// buffers). The self-pipe is the loop's own and is closed with it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace bat::net {

class EventLoop {
 public:
  /// Readiness bits: interest masks use kRead/kWrite; delivered event
  /// masks may add kError (ERR/HUP — the fd is dead, clean up).
  static constexpr std::uint32_t kRead = 1u;
  static constexpr std::uint32_t kWrite = 2u;
  static constexpr std::uint32_t kError = 4u;

  using Callback = std::function<void(std::uint32_t events)>;
  using Task = std::function<void()>;

  /// `force_poll` selects the poll(2) backend even where epoll exists.
  explicit EventLoop(bool force_poll = false);
  ~EventLoop();  // stop()

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawns the loop thread. Call once.
  void start();
  /// Wakes and joins the loop thread. Idempotent; safe without start().
  void stop();

  /// Registers `fd` with an interest mask. Loop thread (or pre-start)
  /// only. The callback may add/modify/remove fds, including its own.
  void add_fd(int fd, std::uint32_t interest, Callback callback);
  /// Replaces the interest mask. No-op if the fd is not registered.
  void set_interest(int fd, std::uint32_t interest);
  /// Deregisters. The fd stays open — closing it is the caller's job.
  void remove_fd(int fd);

  /// Enqueues a task onto the loop thread and wakes it. Thread-safe.
  /// Returns false (task destroyed, nothing ran) once the loop has
  /// stopped accepting work.
  bool post(Task task);

  [[nodiscard]] bool in_loop_thread() const noexcept {
    return std::this_thread::get_id() == thread_id_.load();
  }
  [[nodiscard]] const char* backend_name() const noexcept;

 private:
  struct Entry {
    std::uint32_t interest = 0;
    Callback callback;
  };

  void run();
  void wake();
  void drain_wake_pipe();
  void run_posted_tasks();
  /// Blocks for readiness, then dispatches callbacks. One iteration.
  void poll_once();
#if defined(__linux__)
  void epoll_update(int fd, std::uint32_t interest, bool adding);
#endif

  bool use_epoll_ = false;
  int epoll_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};

  std::unordered_map<int, Entry> entries_;  // loop-thread-owned

  std::thread thread_;
  std::atomic<std::thread::id> thread_id_{};
  std::atomic<bool> stop_flag_{false};
  bool started_ = false;

  std::mutex tasks_mutex_;
  std::vector<Task> tasks_;  // guarded by tasks_mutex_
  bool accepting_tasks_ = true;  // guarded by tasks_mutex_
};

}  // namespace bat::net
