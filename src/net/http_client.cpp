#include "net/http_client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace bat::net {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("http client: " + what + ": " +
                           std::strerror(errno));
}

/// True when errno after a failed send/recv means the SO_RCVTIMEO /
/// SO_SNDTIMEO budget expired rather than a peer close or error.
bool is_io_timeout(int err) {
  return err == EAGAIN || err == EWOULDBLOCK;
}

}  // namespace

HttpClient::HttpClient(std::string host, std::uint16_t port,
                       ParseLimits limits, ClientOptions options)
    : host_(std::move(host)), port_(port), limits_(limits),
      options_(options) {}

HttpClient::~HttpClient() { disconnect(); }

void HttpClient::disconnect() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void HttpClient::connect() {
  disconnect();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) sys_fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    disconnect();
    throw std::runtime_error("http client: invalid IPv4 host '" + host_ +
                             "'");
  }
  const std::string endpoint = host_ + ":" + std::to_string(port_);
  if (options_.connect_timeout_ms > 0) {
    // Nonblocking connect + poll: a peer that dropped off the network
    // (no RST, packets into the void) fails here after the timeout
    // instead of holding the caller for the kernel's SYN retry budget
    // (minutes).
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    (void)::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    const int rc =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    if (rc < 0 && errno != EINPROGRESS) {
      const int saved = errno;
      disconnect();
      errno = saved;
      sys_fail("connect " + endpoint);
    }
    if (rc < 0) {
      pollfd pfd{fd_, POLLOUT, 0};
      int ready = 0;
      do {
        ready = ::poll(&pfd, 1, options_.connect_timeout_ms);
      } while (ready < 0 && errno == EINTR);
      if (ready == 0) {
        disconnect();
        throw std::runtime_error("http client: connect " + endpoint +
                                 " timed out after " +
                                 std::to_string(options_.connect_timeout_ms) +
                                 "ms");
      }
      if (ready < 0) {
        const int saved = errno;
        disconnect();
        errno = saved;
        sys_fail("poll(connect " + endpoint + ")");
      }
      int soerr = 0;
      socklen_t len = sizeof soerr;
      if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len) < 0 ||
          soerr != 0) {
        disconnect();
        errno = soerr != 0 ? soerr : errno;
        sys_fail("connect " + endpoint);
      }
    }
    (void)::fcntl(fd_, F_SETFL, flags);  // back to blocking I/O
  } else if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof addr) < 0) {
    const int saved = errno;
    disconnect();
    errno = saved;
    sys_fail("connect " + endpoint);
  }
  if (options_.io_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options_.io_timeout_ms / 1000;
    tv.tv_usec = (options_.io_timeout_ms % 1000) * 1000;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

HttpResponse HttpClient::get(const std::string& target) {
  return request("GET", target, {}, {});
}

HttpResponse HttpClient::post(const std::string& target, std::string body,
                              const std::string& content_type) {
  return request("POST", target, std::move(body), content_type);
}

std::string HttpClient::serialize(const std::string& method,
                                  const std::string& target,
                                  std::string body,
                                  const std::string& content_type) const {
  HttpRequest req;
  req.method = method;
  req.target = target;
  req.headers.emplace_back("host",
                           host_ + ":" + std::to_string(port_));
  if (!content_type.empty()) {
    req.headers.emplace_back("content-type", content_type);
  }
  req.body = std::move(body);
  return serialize_request(req, /*keep_alive=*/true);
}

void HttpClient::send_request(const std::string& method,
                              const std::string& target, std::string body,
                              const std::string& content_type) {
  const std::string wire =
      serialize(method, target, std::move(body), content_type);
  if (fd_ < 0) connect();
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && is_io_timeout(errno)) {
        throw std::runtime_error("http client: send timed out (pipelined)");
      }
      sys_fail("send (pipelined)");
    }
    sent += static_cast<std::size_t>(n);
  }
}

HttpResponse HttpClient::read_response() {
  if (fd_ < 0) {
    throw std::runtime_error("http client: read_response with no connection");
  }
  HttpResponse out;
  char chunk[16 * 1024];
  while (true) {
    const ParseResult parsed = parse_response(buffer_, out, limits_);
    if (parsed.status == ParseStatus::kOk) {
      buffer_.erase(0, parsed.consumed);
      if (const std::string* connection = out.header("connection")) {
        if (*connection == "close") disconnect();
      }
      return out;
    }
    if (parsed.status != ParseStatus::kIncomplete) {
      throw std::runtime_error("http client: bad response: " + parsed.error);
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && is_io_timeout(errno)) {
      disconnect();  // half-read response: the stream is unusable
      throw std::runtime_error("http client: recv timed out (pipelined)");
    }
    if (n <= 0) {
      throw std::runtime_error(
          "http client: connection closed mid-pipeline");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

HttpResponse HttpClient::request(const std::string& method,
                                 const std::string& target,
                                 std::string body,
                                 const std::string& content_type) {
  const std::string wire =
      serialize(method, target, std::move(body), content_type);

  if (fd_ < 0) connect();
  HttpResponse response;
  if (!round_trip(wire, response)) {
    // Stale keep-alive connection (server closed it between requests);
    // one retry on a fresh connection. round_trip only signals this
    // when zero response bytes arrived.
    connect();
    if (!round_trip(wire, response)) {
      throw std::runtime_error(
          "http client: connection closed before any response bytes");
    }
  }
  // The server may close after responding ("connection: close", error
  // paths): reflect that locally so the next request reconnects.
  if (const std::string* connection = response.header("connection")) {
    if (*connection == "close") disconnect();
  }
  return response;
}

bool HttpClient::round_trip(const std::string& wire, HttpResponse& out) {
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && is_io_timeout(errno)) {
        throw std::runtime_error("http client: send timed out");
      }
      if (sent == 0 && buffer_.empty()) return false;  // dead keep-alive
      sys_fail("send");
    }
    sent += static_cast<std::size_t>(n);
  }

  char chunk[16 * 1024];
  const std::size_t had_bytes = buffer_.size();
  while (true) {
    const ParseResult parsed = parse_response(buffer_, out, limits_);
    if (parsed.status == ParseStatus::kOk) {
      buffer_.erase(0, parsed.consumed);
      return true;
    }
    if (parsed.status != ParseStatus::kIncomplete) {
      throw std::runtime_error("http client: bad response: " + parsed.error);
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && is_io_timeout(errno)) {
      // Never retried: the server may have received (and acted on) the
      // request; only the zero-byte-close path below is replay-safe.
      disconnect();  // half-read response: the stream is unusable
      throw std::runtime_error("http client: response timed out after " +
                               std::to_string(options_.io_timeout_ms) +
                               "ms");
    }
    if (n <= 0) {
      if (buffer_.size() == had_bytes && had_bytes == 0) {
        return false;  // closed with zero response bytes: retryable
      }
      throw std::runtime_error(
          "http client: connection closed mid-response");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace bat::net
