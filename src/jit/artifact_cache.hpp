// Content-addressed on-disk cache of JIT-compiled shared objects, with
// an in-memory dlopen handle cache on top.
//
// Keying: cache_key() hashes (ABI version, compiler id, flags, emitted
// source) — FNV-1a 64 plus CRC-32 over the same bytes, hex-concatenated
// — so a changed config, compiler or flag set lands on a different key,
// and two processes emitting the same source converge on one artifact.
//
// Disk layout per key, in `dir`:
//   <key>.so    the compiled object
//   <key>.meta  "BATJIT01 <crc32(so)> <size(so)>\n" — the commit point
//   <key>.lock  flock() target serializing cross-process builds
//
// The Dali discipline, hardened for concurrent *processes*:
//   * load-or-build runs under a per-key in-process mutex plus a
//     per-key flock, so concurrent workers and concurrent processes
//     never double-compile;
//   * artifacts are published tmp + (fsync) + rename, .so before .meta:
//     a reader either sees a complete pair or no .meta, never a torn
//     object (the .meta rename is the commit point);
//   * the .so is verified against the .meta CRC/size before every
//     dlopen: corruption is detected and rebuilt, never dispatched.
//
// Eviction is bounded LRU by .meta mtime (bumped on every disk hit);
// artifacts whose handles are live in this process are exempt.
//
// Thread-safe. Compile work itself runs inside the caller-provided
// builder — CompiledKernelBackend hands it to a dedicated compile pool
// so a cold compile never serializes evaluation workers (the ThreadPool
// nested-inline rule).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace bat::jit {

/// RAII dlopen handle; resolves symbols, dlcloses on destruction.
class DlHandle {
 public:
  /// Throws std::runtime_error with the dlerror() text on failure.
  explicit DlHandle(const std::string& path);
  ~DlHandle();
  DlHandle(const DlHandle&) = delete;
  DlHandle& operator=(const DlHandle&) = delete;

  /// Resolved symbol address; throws std::runtime_error if absent.
  [[nodiscard]] void* symbol(const char* name) const;

  template <typename Fn>
  [[nodiscard]] Fn symbol_as(const char* name) const {
    return reinterpret_cast<Fn>(symbol(name));
  }

 private:
  void* handle_ = nullptr;
  std::string path_;
};

struct ArtifactCacheOptions {
  std::string dir;  // required

  /// LRU bound on on-disk artifacts; publishing past it evicts the
  /// least-recently-used entries.
  std::size_t max_artifacts = 256;

  /// fsync artifacts and the cache directory on publish. Tests doing
  /// thousands of corruption round-trips disable it; production keeps
  /// the journal's durability discipline.
  bool sync_publish = true;
};

struct ArtifactCacheStats {
  std::uint64_t handle_hits = 0;   // served from the in-memory dlopen cache
  std::uint64_t disk_hits = 0;     // verified + dlopened from disk
  std::uint64_t misses = 0;        // nothing usable on disk: builder ran
  std::uint64_t compiles = 0;      // successful builds published
  std::uint64_t compile_failures = 0;
  std::uint64_t corrupt_rebuilds = 0;  // on-disk artifact failed verification
  std::uint64_t evictions = 0;
  double compile_ms = 0.0;  // wall time spent inside builders
};

class ArtifactCache {
 public:
  /// What probe() found on disk for a key (verification only, no dlopen).
  enum class DiskState { kMissing, kCorrupt, kIntact };

  /// Builder contract: produce a complete shared object at the given
  /// private temp path, or throw. Runs under the per-key locks.
  using Builder = std::function<void(const std::string& tmp_so_path)>;

  explicit ArtifactCache(ArtifactCacheOptions options);

  /// Returns a live handle for `key`, from (in order) the handle cache,
  /// a verified on-disk artifact, or a fresh build. Throws what the
  /// builder throws (after counting the failure) and std::runtime_error
  /// when a freshly built artifact cannot be loaded.
  [[nodiscard]] std::shared_ptr<DlHandle> load_or_build(
      const std::string& key, const Builder& build);

  /// Verification-only inspection of the on-disk artifact (meta parse +
  /// size + CRC). Never dlopens, never rebuilds; exposed for the fault-
  /// injection tests and for ops tooling.
  [[nodiscard]] DiskState probe(const std::string& key) const;

  [[nodiscard]] ArtifactCacheStats stats() const;

  [[nodiscard]] const std::string& dir() const noexcept {
    return options_.dir;
  }

  [[nodiscard]] std::string so_path(const std::string& key) const;
  [[nodiscard]] std::string meta_path(const std::string& key) const;

 private:
  [[nodiscard]] std::string lock_path(const std::string& key) const;

  /// Verified load of the published artifact; nullptr when missing or
  /// corrupt (the caller rebuilds).
  [[nodiscard]] std::shared_ptr<DlHandle> try_load_disk(
      const std::string& key, bool& was_corrupt) const;

  void publish(const std::string& key, const std::string& tmp_so) const;
  void evict_lru_locked();

  ArtifactCacheOptions options_;

  mutable std::mutex mutex_;  // handle map, key-mutex map, stats
  std::unordered_map<std::string, std::shared_ptr<DlHandle>> handles_;
  std::unordered_map<std::string, std::shared_ptr<std::mutex>> key_mutexes_;
  ArtifactCacheStats stats_;
};

/// Content-addressed key over everything that determines the artifact's
/// bytes and ABI: the ABI version, the compiler identity + flags, and
/// the emitted source itself.
[[nodiscard]] std::string cache_key(const std::string& source,
                                    const std::string& compiler_id,
                                    const std::string& flags);

}  // namespace bat::jit
