// System-compiler invocation for the JIT backend: C++ source in, shared
// object out. Deliberately dumb — one subprocess per compile, stderr
// captured for diagnostics — because the artifact cache above it makes
// compiles rare, and the dedicated compile pool in CompiledKernelBackend
// keeps them off the evaluation workers.
#pragma once

#include <string>

namespace bat::jit {

struct CompilerOptions {
  /// C++ compiler binary. Defaults to the compiler this build used
  /// (BAT_JIT_DEFAULT_CXX, injected by CMake), falling back to c++.
  std::string cxx;

  /// Include root for jit/abi.hpp and the model headers; defaults to the
  /// source tree's src/ directory (BAT_JIT_DEFAULT_INCLUDE_DIR).
  std::string include_dir;

  /// Extra flags appended to the baseline set (tests inject invalid
  /// flags here to exercise the compile-failure fallback).
  std::string extra_flags;
};

class Compiler {
 public:
  explicit Compiler(CompilerOptions options = {});

  /// The flag string every compile uses (baseline + extra_flags).
  /// Part of the artifact cache key.
  [[nodiscard]] const std::string& flags() const noexcept { return flags_; }

  /// Identity of the compiler binary (first line of `cxx --version`,
  /// resolved once). Part of the artifact cache key: artifacts from a
  /// different compiler never collide.
  [[nodiscard]] const std::string& id() const noexcept { return id_; }

  /// Compiles `source` into a shared object at `so_path` (written in
  /// place — callers pass a private temp path and publish via rename).
  /// Throws std::runtime_error carrying the compiler's stderr on
  /// failure.
  void compile(const std::string& source, const std::string& so_path) const;

 private:
  CompilerOptions options_;
  std::string flags_;
  std::string id_;
};

}  // namespace bat::jit
