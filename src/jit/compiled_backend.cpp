#include "jit/compiled_backend.hpp"

#include <unistd.h>

#include <filesystem>
#include <future>
#include <stdexcept>
#include <utility>

#include "common/contracts.hpp"
#include "common/log.hpp"
#include "gpusim/noise.hpp"
#include "kernels/jit_emitters.hpp"
#include "obs/trace.hpp"

namespace bat::jit {

namespace {

/// The EstimateFn handed to every emitted object: wraps the host's
/// LaunchModel so the object needs no libbat symbols.
double estimate_trampoline(const gpusim::DeviceSpec* device,
                           const gpusim::KernelProfile* profile) {
  const auto t = gpusim::LaunchModel::estimate_ms(*device, *profile);
  return t ? *t : kInvalidTime;
}

}  // namespace

std::string default_artifact_dir() {
  return (std::filesystem::temp_directory_path() /
          ("bat-jit-cache-" + std::to_string(::getuid())))
      .string();
}

CompiledKernelBackend::CompiledKernelBackend(
    const kernels::KernelBenchmark& benchmark, core::DeviceIndex device,
    CompiledBackendOptions options)
    : benchmark_(&benchmark),
      device_(device),
      options_(std::move(options)),
      name_("jit:" + benchmark.name() + "@" + benchmark.device_name(device)),
      compiler_(CompilerOptions{"", "", options_.extra_compiler_flags}),
      fallback_(benchmark, device, options_.parallel_threshold),
      compile_pool_(std::max<std::size_t>(1, options_.compile_threads)) {
  BAT_EXPECTS(device < benchmark.device_count());
  if (!kernels::jit_emitter_available(benchmark.name())) {
    throw std::invalid_argument(
        "jit backend: no emitter for kernel '" + benchmark.name() +
        "' (supported: gemm, hotspot, pnpoly); use --backend live");
  }
  device_spec_ = &gpusim::paper_devices()[device];
  device_noise_id_ = gpusim::stable_name_hash(device_spec_->name);
  ArtifactCacheOptions cache_options;
  cache_options.dir = options_.artifact_dir.empty() ? default_artifact_dir()
                                                    : options_.artifact_dir;
  cache_options.max_artifacts = options_.max_artifacts;
  cache_ = std::make_unique<ArtifactCache>(std::move(cache_options));
  metrics_ = options_.metrics ? options_.metrics
                              : std::make_shared<obs::MetricsRegistry>();
  // 10ms..~80s log-scale: a toolchain invocation per observation.
  compile_duration_ = metrics_->histogram(
      "bat_jit_compile_duration_seconds",
      "Wall time a caller spent blocked on one jit compile",
      obs::Histogram::exponential(1e-2, 2.0, 13));
}

std::shared_ptr<DlHandle> CompiledKernelBackend::artifact_for(
    const std::string& key, const std::string& source) {
  {
    std::lock_guard lock(mutex_);
    if (failed_keys_.find(key) != failed_keys_.end()) return nullptr;
  }
  try {
    return cache_->load_or_build(key, [&](const std::string& tmp_so) {
      // Async handoff to the dedicated pool: the global pool runs
      // nested submissions inline, so compiling on the calling thread
      // (often a global-pool worker) would serialize its whole batch
      // behind one cold compile.
      obs::ScopedSpan span("jit.compile");
      if (span.active()) span.set_detail(name_);
#ifndef BAT_OBS_OFF
      const std::uint64_t start_ns = obs::monotonic_now_ns();
#endif
      std::promise<void> done;
      auto finished = done.get_future();
      compile_pool_.submit([&] {
        {
          std::lock_guard lock(mutex_);
          last_compile_thread_ = std::this_thread::get_id();
        }
        try {
          compiler_.compile(source, tmp_so);
          done.set_value();
        } catch (...) {
          done.set_exception(std::current_exception());
        }
      });
      finished.get();
#ifndef BAT_OBS_OFF
      compile_duration_->observe(
          static_cast<double>(obs::monotonic_now_ns() - start_ns) / 1e9);
#endif
    });
  } catch (const std::exception& e) {
    {
      std::lock_guard lock(mutex_);
      failed_keys_.insert(key);
    }
    common::log_warn(name_, ": falling back to live evaluation for key ", key,
                     ": ", e.what());
    return nullptr;
  }
}

core::Measurement CompiledKernelBackend::evaluate_one(core::ConfigIndex index,
                                                      core::Config& scratch,
                                                      EvalFn fn,
                                                      bool resolved) {
  benchmark_->space().compiled().decode_into(index, scratch);
  if (!benchmark_->space().is_valid(scratch)) {
    return core::Measurement::invalid(core::MeasureStatus::kInvalidConstraint);
  }
  if (!resolved) {
    const std::string source =
        kernels::emit_jit_source(benchmark_->name(), scratch);
    const std::string key =
        cache_key(source, compiler_.id(), compiler_.flags());
    if (const auto handle = artifact_for(key, source)) {
      fn = handle->symbol_as<EvalFn>(kEntrySymbol);
    }
    std::unique_lock lock(fn_mutex_);
    fn_cache_[index] = fn;  // nullptr: this index permanently falls back
  }
  if (fn == nullptr) {
    // Counted, never fatal: the internal LiveBackend computes the exact
    // same measurement the object would have.
    fallback_evals_.fetch_add(1, std::memory_order_relaxed);
    return fallback_.evaluate(index);
  }

  const double time_ms = fn(device_spec_, &estimate_trampoline);
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  if (time_ms < 0.0) {
    return core::Measurement::invalid(core::MeasureStatus::kInvalidDevice);
  }
  // Host-side noise, the exact KernelBenchmark::evaluate recipe (the
  // decode/index round-trip is the identity, so `index` is the same
  // ordinal evaluate() derives from the config).
  const double noisy =
      time_ms * gpusim::noise_factor(benchmark_->kernel_noise_id(), index,
                                     device_noise_id_,
                                     benchmark_->noise_amplitude());
  return core::Measurement::valid(noisy);
}

std::vector<core::Measurement> CompiledKernelBackend::evaluate_batch(
    std::span<const core::ConfigIndex> indices) {
  std::vector<core::Measurement> results(indices.size());
  // One shared-lock pass resolves the whole batch's entry points. Warm
  // batches then dispatch without touching fn_mutex_ again — the
  // per-eval lock would otherwise rival the launch-model math itself
  // for the cheaper kernels.
  std::vector<EvalFn> fns(indices.size(), nullptr);
  std::vector<std::uint8_t> resolved(indices.size(), 0);
  {
    std::shared_lock lock(fn_mutex_);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const auto it = fn_cache_.find(indices[i]);
      if (it != fn_cache_.end()) {
        fns[i] = it->second;
        resolved[i] = 1;
      }
    }
  }
  if (indices.size() < std::max<std::size_t>(options_.parallel_threshold, 2)) {
    core::Config scratch;
    for (std::size_t i = 0; i < indices.size(); ++i) {
      results[i] = evaluate_one(indices[i], scratch, fns[i], resolved[i] != 0);
    }
    return results;
  }
  common::parallel_for_chunked(
      0, indices.size(), [&](std::size_t lo, std::size_t hi, std::size_t) {
        core::Config scratch;
        for (std::size_t i = lo; i < hi; ++i) {
          results[i] =
              evaluate_one(indices[i], scratch, fns[i], resolved[i] != 0);
        }
      });
  return results;
}

BackendStats CompiledKernelBackend::stats() const {
  const ArtifactCacheStats cache = cache_->stats();
  BackendStats out;
  out.compiles = cache.compiles;
  out.compile_failures = cache.compile_failures;
  out.artifact_cache_hits = cache.handle_hits + cache.disk_hits;
  out.artifact_cache_misses = cache.misses;
  out.corrupt_rebuilds = cache.corrupt_rebuilds;
  out.evictions = cache.evictions;
  out.compile_ms = cache.compile_ms;
  out.evaluations = evaluations_.load(std::memory_order_relaxed);
  out.fallback_evals = fallback_evals_.load(std::memory_order_relaxed);
  return out;
}

std::thread::id CompiledKernelBackend::last_compile_thread() const {
  std::lock_guard lock(mutex_);
  return last_compile_thread_;
}

}  // namespace bat::jit
