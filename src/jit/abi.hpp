// The ABI between the host and a JIT-compiled kernel shared object.
//
// An emitted translation unit (src/kernels/jit_emitters.cpp) #includes
// this header plus the relevant kernels/models/*_model.hpp, bakes the
// configuration into a constexpr struct, and exports one symbol:
//
//   extern "C" double bat_jit_eval(const bat::gpusim::DeviceSpec* device,
//                                  bat::jit::EstimateFn estimate);
//
// The host passes `estimate` — a trampoline around
// gpusim::LaunchModel::estimate_ms — so the emitted object needs no
// symbols from libbat: it depends only on header-only gpusim code and
// is safe to dlopen from any process built against the same headers.
// Both sides return kInvalidTime (< 0) for device-invalid launches;
// constraint checking and measurement noise stay host-side.
//
// The ABI is only sound when host and object were compiled from the
// same headers by the same compiler — which the artifact cache enforces
// by keying on (emitted source, compiler id, flags) and by bumping
// kJitAbiVersion (part of every cache key) whenever this contract or
// the model headers change.
#pragma once

#include "gpusim/device.hpp"
#include "gpusim/launch_model.hpp"

namespace bat::jit {

/// Part of every artifact-cache key: bump when the entry-point contract,
/// the gpusim headers, or the kernels/models headers change shape, so
/// stale on-disk artifacts from an older build are never dispatched.
inline constexpr int kJitAbiVersion = 1;

/// The single symbol an emitted shared object exports.
inline constexpr const char* kEntrySymbol = "bat_jit_eval";

/// Sentinel for "launch impossible on this device" (maps to
/// MeasureStatus::kInvalidDevice host-side).
inline constexpr double kInvalidTime = -1.0;

/// Host-provided wrapper around LaunchModel::estimate_ms: returns the
/// modeled milliseconds or kInvalidTime.
using EstimateFn = double (*)(const gpusim::DeviceSpec*,
                              const gpusim::KernelProfile*);

/// Signature of the emitted entry point.
using EvalFn = double (*)(const gpusim::DeviceSpec*, EstimateFn);

}  // namespace bat::jit
