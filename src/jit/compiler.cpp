#include "jit/compiler.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

// Injected by CMake: the compiler building this tree and its src/ root,
// so emitted objects share headers and toolchain with the host by
// default. The fallbacks keep non-CMake builds compiling.
#ifndef BAT_JIT_DEFAULT_CXX
#define BAT_JIT_DEFAULT_CXX "c++"
#endif
#ifndef BAT_JIT_DEFAULT_INCLUDE_DIR
#define BAT_JIT_DEFAULT_INCLUDE_DIR "src"
#endif

namespace bat::jit {

namespace {

/// POSIX-shell single-quote escaping for paths/flags we interpolate into
/// the compiler command line.
std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

std::string first_version_line(const std::string& cxx) {
  const std::string cmd = shell_quote(cxx) + " --version 2>/dev/null";
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return cxx;
  char buf[256];
  std::string line;
  if (std::fgets(buf, sizeof buf, pipe) != nullptr) line = buf;
  ::pclose(pipe);
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.pop_back();
  }
  return line.empty() ? cxx : line;
}

std::string read_file_or_empty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

Compiler::Compiler(CompilerOptions options) : options_(std::move(options)) {
  if (options_.cxx.empty()) options_.cxx = BAT_JIT_DEFAULT_CXX;
  if (options_.include_dir.empty()) {
    options_.include_dir = BAT_JIT_DEFAULT_INCLUDE_DIR;
  }
  // -ffp-contract=off pins FP semantics: the host library is built for
  // baseline x86-64 (no FMA contraction), and emitted objects must
  // compute the identical doubles regardless of optimization level.
  flags_ = "-std=c++20 -O2 -fPIC -shared -ffp-contract=off";
  if (!options_.extra_flags.empty()) flags_ += " " + options_.extra_flags;
  id_ = first_version_line(options_.cxx);
}

void Compiler::compile(const std::string& source,
                       const std::string& so_path) const {
  const std::string src_path = so_path + ".cpp";
  const std::string err_path = so_path + ".err";
  {
    std::ofstream out(src_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("jit: cannot write source file " + src_path);
    }
    out << source;
    if (!out.flush()) {
      throw std::runtime_error("jit: short write to " + src_path);
    }
  }
  const std::string cmd = shell_quote(options_.cxx) + " " + flags_ + " -I" +
                          shell_quote(options_.include_dir) + " " +
                          shell_quote(src_path) + " -o " +
                          shell_quote(so_path) + " 2> " +
                          shell_quote(err_path);
  const int rc = std::system(cmd.c_str());
  std::error_code ignored;
  std::filesystem::remove(src_path, ignored);
  if (rc != 0) {
    std::string diag = read_file_or_empty(err_path);
    if (diag.size() > 2048) diag.resize(2048);  // first errors suffice
    std::filesystem::remove(err_path, ignored);
    std::filesystem::remove(so_path, ignored);
    throw std::runtime_error("jit: compile failed (exit " +
                             std::to_string(rc) + "): " + options_.cxx +
                             (diag.empty() ? "" : "\n" + diag));
  }
  std::filesystem::remove(err_path, ignored);
}

}  // namespace bat::jit
