// CompiledKernelBackend: live evaluation through JIT-compiled,
// per-configuration shared objects.
//
// For each requested ConfigIndex the backend emits specialized C++
// source (kernels/jit_emitters.hpp — config values baked as constants),
// resolves it through the content-addressed ArtifactCache (load, or
// compile on the dedicated compile pool), dlopens the object and calls
// its single entry point. Constraint checking and measurement noise are
// applied host-side with the exact KernelBenchmark::evaluate recipe, so
// results are bit-identical to LiveBackend — tuners, the service, and
// replay parity tests cannot tell the backends apart except through the
// new compile-cost counters.
//
// Failure policy: a compile or load failure is counted and the
// configuration is evaluated through an internal LiveBackend instead —
// never fatal, and failed keys are memoized so a broken toolchain
// degrades to live evaluation after one attempt per configuration.
//
// Concurrency: evaluate_batch mirrors LiveBackend (parallel above a
// threshold via the global pool). Compiles always run on a small
// dedicated pool — the global pool runs nested submissions inline, so
// compiling there would serialize a whole batch behind one cold
// compile (and deadlock-prone blocking of pool workers on pool work).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/thread_pool.hpp"
#include "core/backend.hpp"
#include "jit/abi.hpp"
#include "jit/artifact_cache.hpp"
#include "jit/compiler.hpp"
#include "kernels/kernel_benchmark.hpp"
#include "obs/metrics.hpp"

namespace bat::jit {

struct CompiledBackendOptions {
  /// Artifact cache directory; empty uses a shared per-user directory
  /// under the system temp root.
  std::string artifact_dir;

  /// LRU bound on on-disk artifacts (ArtifactCacheOptions).
  std::size_t max_artifacts = 256;

  /// Threads in the dedicated compile pool.
  std::size_t compile_threads = 2;

  /// Batches at least this large fan out over the global pool, exactly
  /// like LiveBackend.
  std::size_t parallel_threshold = 8;

  /// Appended to the compiler flag set (tests inject a bad flag to
  /// exercise the fallback path).
  std::string extra_compiler_flags;

  /// Registry hosting bat_jit_compile_duration_seconds; null makes a
  /// private one. (The bat_jit_*_total counters are scrape-time
  /// bridges over the service's jit_stats() aggregation, not here.)
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

/// Aggregated backend counters (the service sums these across
/// workloads for /v1/stats; `backends` is filled by that aggregation).
struct BackendStats {
  std::uint64_t evaluations = 0;      // configs dispatched through a .so
  std::uint64_t fallback_evals = 0;   // configs served by LiveBackend
  std::uint64_t compiles = 0;
  std::uint64_t compile_failures = 0;
  std::uint64_t artifact_cache_hits = 0;    // handle + verified disk hits
  std::uint64_t artifact_cache_misses = 0;  // builder had to run
  std::uint64_t corrupt_rebuilds = 0;
  std::uint64_t evictions = 0;
  double compile_ms = 0.0;
  std::uint64_t backends = 0;  // workloads aggregated (service-level)
};

class CompiledKernelBackend final : public core::EvaluationBackend {
 public:
  /// Throws std::invalid_argument when `benchmark`'s kernel has no JIT
  /// emitter (the service surfaces that as a failed session, not a
  /// crash).
  CompiledKernelBackend(const kernels::KernelBenchmark& benchmark,
                        core::DeviceIndex device,
                        CompiledBackendOptions options = {});

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const core::SearchSpace& space() const override {
    return benchmark_->space();
  }
  [[nodiscard]] std::vector<core::Measurement> evaluate_batch(
      std::span<const core::ConfigIndex> indices) override;

  [[nodiscard]] BackendStats stats() const;

  [[nodiscard]] const ArtifactCache& artifact_cache() const noexcept {
    return *cache_;
  }

  /// Thread that executed the most recent compile; exposed for the
  /// regression test pinning compiles to the dedicated pool.
  [[nodiscard]] std::thread::id last_compile_thread() const;

 private:
  /// `fn`/`resolved` carry the batch-level fn-cache lookup (one shared
  /// lock per batch, not per evaluation); resolved==false takes the
  /// cold path: emit, load-or-build, memoize.
  [[nodiscard]] core::Measurement evaluate_one(core::ConfigIndex index,
                                               core::Config& scratch,
                                               EvalFn fn, bool resolved);

  /// Resolves the artifact for one emitted source, dispatching any
  /// compile to the dedicated pool; nullptr after a counted failure
  /// (caller falls back to live evaluation).
  [[nodiscard]] std::shared_ptr<DlHandle> artifact_for(
      const std::string& key, const std::string& source);

  const kernels::KernelBenchmark* benchmark_;
  core::DeviceIndex device_;
  const gpusim::DeviceSpec* device_spec_;
  std::uint64_t device_noise_id_;
  CompiledBackendOptions options_;
  std::string name_;

  Compiler compiler_;
  std::unique_ptr<ArtifactCache> cache_;
  core::LiveBackend fallback_;

  /// Resolved entry points per config ordinal — the warm fast path.
  /// Emitting + hashing the source costs microseconds, which would
  /// dominate a warm dispatch; after the first evaluation of an index
  /// this map goes straight to the function pointer (nullptr marks an
  /// index whose compile failed: permanent live fallback). Pointers
  /// stay valid for the backend's lifetime because the ArtifactCache
  /// pins every dlopen handle it ever returned.
  mutable std::shared_mutex fn_mutex_;
  std::unordered_map<core::ConfigIndex, EvalFn> fn_cache_;

  mutable std::mutex mutex_;  // failed keys, last compile thread
  std::unordered_set<std::string> failed_keys_;
  std::atomic<std::uint64_t> fallback_evals_{0};
  std::atomic<std::uint64_t> evaluations_{0};
  std::thread::id last_compile_thread_;

  std::shared_ptr<obs::MetricsRegistry> metrics_;
  obs::Histogram* compile_duration_ = nullptr;

  // Last member: destroyed first, so queued compile tasks drain while
  // the cache and compiler they reference are still alive.
  common::ThreadPool compile_pool_;
};

/// The default shared artifact directory (under the system temp root,
/// namespaced per uid so multi-user hosts do not collide).
[[nodiscard]] std::string default_artifact_dir();

}  // namespace bat::jit
