#include "jit/artifact_cache.hpp"

#include <dlfcn.h>
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "io/binary_format.hpp"
#include "io/fsync.hpp"
#include "jit/abi.hpp"

namespace bat::jit {

namespace {

namespace fs = std::filesystem;

constexpr const char* kMetaMagic = "BATJIT01";

std::uint64_t fnv1a64(const std::string& bytes,
                      std::uint64_t h = 14695981039346656037ULL) {
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex(std::uint64_t v, int digits) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(static_cast<std::size_t>(digits), '0');
  for (int i = digits - 1; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::string read_file_or_empty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// RAII flock on <key>.lock: serializes build attempts across
/// processes. Lock-file creation failure degrades to in-process-only
/// locking rather than failing the build.
class FileLock {
 public:
  explicit FileLock(const std::string& path) {
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) return;
    while (::flock(fd_, LOCK_EX) != 0) {
      if (errno != EINTR) {
        ::close(fd_);
        fd_ = -1;
        return;
      }
    }
  }
  ~FileLock() {
    if (fd_ >= 0) ::close(fd_);  // releases the flock
  }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  int fd_ = -1;
};

/// Parses "BATJIT01 <crc hex> <size>\n"; false on any malformation.
/// The trailing newline is the completion marker: a meta torn even one
/// byte short of it reads as corrupt, never as a shorter valid record.
bool parse_meta(const std::string& bytes, std::uint32_t& crc,
                std::uint64_t& size) {
  if (bytes.empty() || bytes.back() != '\n') return false;
  std::istringstream in(bytes);
  std::string magic, crc_hex;
  if (!(in >> magic >> crc_hex >> size)) return false;
  if (magic != kMetaMagic) return false;
  if (crc_hex.size() != 8) return false;
  std::uint64_t v = 0;
  for (const char c : crc_hex) {
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  crc = static_cast<std::uint32_t>(v);
  std::string trailing;
  if (in >> trailing) return false;  // junk after the size field
  return true;
}

std::string format_meta(std::uint32_t crc, std::uint64_t size) {
  return std::string(kMetaMagic) + " " + hex(crc, 8) + " " +
         std::to_string(size) + "\n";
}

/// Unique-enough temp suffix: pid disambiguates processes, a process-
/// wide serial disambiguates threads.
std::string tmp_suffix() {
  static std::atomic<std::uint64_t> serial{0};
  return ".tmp-" + std::to_string(::getpid()) + "-" +
         std::to_string(serial.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

// ----------------------------------------------------------------- DlHandle

DlHandle::DlHandle(const std::string& path) : path_(path) {
  ::dlerror();  // clear any stale error
  handle_ = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle_ == nullptr) {
    const char* err = ::dlerror();
    throw std::runtime_error("jit: dlopen failed for " + path + ": " +
                             (err != nullptr ? err : "unknown error"));
  }
}

DlHandle::~DlHandle() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

void* DlHandle::symbol(const char* name) const {
  ::dlerror();
  void* sym = ::dlsym(handle_, name);
  if (sym == nullptr) {
    const char* err = ::dlerror();
    throw std::runtime_error("jit: missing symbol '" + std::string(name) +
                             "' in " + path_ + ": " +
                             (err != nullptr ? err : "unknown error"));
  }
  return sym;
}

// ------------------------------------------------------------ ArtifactCache

std::string cache_key(const std::string& source, const std::string& compiler_id,
                      const std::string& flags) {
  std::string blob = "abi" + std::to_string(kJitAbiVersion) + "\n" +
                     compiler_id + "\n" + flags + "\n" + source;
  return hex(fnv1a64(blob), 16) +
         hex(io::crc32(blob.data(), blob.size()), 8);
}

ArtifactCache::ArtifactCache(ArtifactCacheOptions options)
    : options_(std::move(options)) {
  if (options_.dir.empty()) {
    throw std::invalid_argument("jit: artifact cache directory is empty");
  }
  options_.max_artifacts = std::max<std::size_t>(1, options_.max_artifacts);
  fs::create_directories(options_.dir);
}

std::string ArtifactCache::so_path(const std::string& key) const {
  return (fs::path(options_.dir) / (key + ".so")).string();
}

std::string ArtifactCache::meta_path(const std::string& key) const {
  return (fs::path(options_.dir) / (key + ".meta")).string();
}

std::string ArtifactCache::lock_path(const std::string& key) const {
  return (fs::path(options_.dir) / (key + ".lock")).string();
}

ArtifactCache::DiskState ArtifactCache::probe(const std::string& key) const {
  const std::string meta_bytes = read_file_or_empty(meta_path(key));
  if (meta_bytes.empty()) return DiskState::kMissing;
  std::uint32_t want_crc = 0;
  std::uint64_t want_size = 0;
  if (!parse_meta(meta_bytes, want_crc, want_size)) return DiskState::kCorrupt;
  const std::string so_bytes = read_file_or_empty(so_path(key));
  if (so_bytes.empty() && want_size != 0) {
    // No .so next to a .meta claiming one: treat as corrupt (a complete
    // publish always renames the .so before the .meta).
    return DiskState::kCorrupt;
  }
  if (so_bytes.size() != want_size) return DiskState::kCorrupt;
  if (io::crc32(so_bytes.data(), so_bytes.size()) != want_crc) {
    return DiskState::kCorrupt;
  }
  return DiskState::kIntact;
}

std::shared_ptr<DlHandle> ArtifactCache::try_load_disk(
    const std::string& key, bool& was_corrupt) const {
  was_corrupt = false;
  switch (probe(key)) {
    case DiskState::kMissing:
      return nullptr;
    case DiskState::kCorrupt:
      was_corrupt = true;
      return nullptr;
    case DiskState::kIntact:
      break;
  }
  try {
    auto handle = std::make_shared<DlHandle>(so_path(key));
    // Resolve the entry point eagerly: an object that verified but does
    // not export the ABI (foreign file under our key) must rebuild, not
    // dispatch.
    (void)handle->symbol(kEntrySymbol);
    return handle;
  } catch (const std::runtime_error&) {
    was_corrupt = true;
    return nullptr;
  }
}

void ArtifactCache::publish(const std::string& key,
                            const std::string& tmp_so) const {
  const std::string so_bytes = read_file_or_empty(tmp_so);
  if (so_bytes.empty()) {
    throw std::runtime_error("jit: builder produced no object at " + tmp_so);
  }
  const std::uint32_t crc = io::crc32(so_bytes.data(), so_bytes.size());
  const std::string meta = format_meta(crc, so_bytes.size());
  const std::string tmp_meta = meta_path(key) + tmp_suffix();
  {
    std::ofstream out(tmp_meta, std::ios::binary | std::ios::trunc);
    out << meta;
    if (!out.flush()) {
      std::error_code ignored;
      fs::remove(tmp_meta, ignored);
      throw std::runtime_error("jit: short write to " + tmp_meta);
    }
  }
  if (options_.sync_publish) {
    io::fsync_file(tmp_so);
    io::fsync_file(tmp_meta);
  }
  // .so first, .meta second: the .meta rename is the commit point, so a
  // crash between the two leaves a .so without a .meta — invisible to
  // readers, overwritten by the next build.
  fs::rename(tmp_so, so_path(key));
  fs::rename(tmp_meta, meta_path(key));
  if (options_.sync_publish) io::fsync_parent_dir(meta_path(key));
}

std::shared_ptr<DlHandle> ArtifactCache::load_or_build(const std::string& key,
                                                       const Builder& build) {
  std::shared_ptr<std::mutex> key_mutex;
  {
    std::lock_guard lock(mutex_);
    const auto it = handles_.find(key);
    if (it != handles_.end()) {
      ++stats_.handle_hits;
      return it->second;
    }
    auto& slot = key_mutexes_[key];
    if (!slot) slot = std::make_shared<std::mutex>();
    key_mutex = slot;
  }

  std::lock_guard key_lock(*key_mutex);
  {
    // Another thread may have finished this key while we waited.
    std::lock_guard lock(mutex_);
    const auto it = handles_.find(key);
    if (it != handles_.end()) {
      ++stats_.handle_hits;
      return it->second;
    }
  }

  // Cross-process build lock; re-check disk after acquiring so a build
  // finished by another process is loaded, not repeated.
  FileLock process_lock(lock_path(key));

  bool was_corrupt = false;
  if (auto handle = try_load_disk(key, was_corrupt)) {
    std::error_code ignored;
    fs::last_write_time(meta_path(key),
                        fs::file_time_type::clock::now(), ignored);  // LRU bump
    std::lock_guard lock(mutex_);
    ++stats_.disk_hits;
    handles_[key] = handle;
    return handle;
  }

  const std::string tmp_so = so_path(key) + tmp_suffix();
  const auto start = std::chrono::steady_clock::now();
  try {
    build(tmp_so);
    publish(key, tmp_so);
  } catch (...) {
    std::error_code ignored;
    fs::remove(tmp_so, ignored);
    std::lock_guard lock(mutex_);
    ++stats_.misses;
    ++stats_.compile_failures;
    if (was_corrupt) ++stats_.corrupt_rebuilds;
    throw;
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  auto handle = std::make_shared<DlHandle>(so_path(key));
  (void)handle->symbol(kEntrySymbol);
  std::lock_guard lock(mutex_);
  ++stats_.misses;
  ++stats_.compiles;
  if (was_corrupt) ++stats_.corrupt_rebuilds;
  stats_.compile_ms += elapsed_ms;
  handles_[key] = handle;
  evict_lru_locked();
  return handle;
}

void ArtifactCache::evict_lru_locked() {
  // Bounded scan after each publish: collect (mtime, key) for every
  // .meta in the directory, drop the oldest beyond the cap. Keys with
  // live handles in this process are exempt (their artifact may be
  // re-opened by a sibling process at any time).
  std::vector<std::pair<fs::file_time_type, std::string>> entries;
  std::error_code ec;
  for (fs::directory_iterator it(options_.dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    const fs::path& p = it->path();
    if (p.extension() != ".meta") continue;
    const std::string key = p.stem().string();
    if (handles_.find(key) != handles_.end()) continue;
    std::error_code stat_ec;
    const auto mtime = fs::last_write_time(p, stat_ec);
    if (stat_ec) continue;
    entries.emplace_back(mtime, key);
  }
  const std::size_t live = handles_.size();
  const std::size_t cap =
      options_.max_artifacts > live ? options_.max_artifacts - live : 0;
  if (entries.size() <= cap) return;
  std::sort(entries.begin(), entries.end());
  const std::size_t excess = entries.size() - cap;
  for (std::size_t i = 0; i < excess; ++i) {
    const std::string& key = entries[i].second;
    std::error_code ignored;
    fs::remove(so_path(key), ignored);
    fs::remove(meta_path(key), ignored);
    fs::remove(lock_path(key), ignored);
    ++stats_.evictions;
  }
}

ArtifactCacheStats ArtifactCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace bat::jit
