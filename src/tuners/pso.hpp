// Particle swarm optimization on the value-index embedding: particles
// move in the continuous per-parameter index space and snap to the
// nearest legal value for evaluation. Batched (synchronous PSO): every
// ask() moves the whole swarm and the generation is evaluated through
// the backend in one parallel batch; personal/global bests update in
// tell().
//
// Single-run mutable state: one instance per session, driven by one
// thread (see the ownership notes in tuners/tuner.hpp).
#pragma once

#include "tuners/tuner.hpp"

namespace bat::tuners {

class ParticleSwarm final : public Tuner {
 public:
  struct Options {
    std::size_t particles = 16;
    double inertia = 0.7;
    double cognitive = 1.5;
    double social = 1.5;
  };

  ParticleSwarm() : options_(Options{}) {}
  explicit ParticleSwarm(Options options) : options_(options) {}

  [[nodiscard]] const std::string& name() const override {
    static const std::string kName = "pso";
    return kName;
  }

  [[nodiscard]] bool batched() const override { return true; }

 protected:
  void start(const core::SearchSpace& space, common::Rng& rng) override;
  std::vector<core::Config> ask(std::size_t remaining,
                                common::Rng& rng) override;
  void tell(const std::vector<core::Config>& configs,
            const std::vector<double>& objectives, common::Rng& rng) override;

 private:
  struct Particle {
    std::vector<double> position;
    std::vector<double> velocity;
    std::vector<double> best_position;
    double best_objective;
  };

  static constexpr std::size_t kInvalidSlot = static_cast<std::size_t>(-1);

  void move_swarm(common::Rng& rng);
  /// Snaps every particle, fills slots_ (kInvalidSlot for constraint
  /// violations) and returns the valid configurations to evaluate.
  std::vector<core::Config> snap_swarm();

  Options options_;
  const core::SearchSpace* space_ = nullptr;
  std::vector<Particle> swarm_;
  std::vector<double> global_best_position_;
  double global_best_ = 0.0;
  std::vector<std::size_t> slots_;  // particle -> batch slot
  bool seeded_ = false;             // first ask() evaluates init positions
};

}  // namespace bat::tuners
