// Particle swarm optimization on the value-index embedding: particles
// move in the continuous per-parameter index space and snap to the
// nearest legal value for evaluation.
#pragma once

#include "tuners/tuner.hpp"

namespace bat::tuners {

class ParticleSwarm final : public Tuner {
 public:
  struct Options {
    std::size_t particles = 16;
    double inertia = 0.7;
    double cognitive = 1.5;
    double social = 1.5;
  };

  ParticleSwarm() : options_(Options{}) {}
  explicit ParticleSwarm(Options options) : options_(options) {}

  [[nodiscard]] const std::string& name() const override {
    static const std::string kName = "pso";
    return kName;
  }

 protected:
  void optimize(core::CachingEvaluator& evaluator, common::Rng& rng) override;

 private:
  Options options_;
};

}  // namespace bat::tuners
