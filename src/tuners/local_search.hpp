// Randomized first-improvement local search with random restarts.
//
// This is the algorithm whose dynamics the fitness-flow graph models
// (paper §II-B2): from a random valid start, visit Hamming-1 neighbors in
// random order and move to the first strictly better one; restart when a
// local minimum is reached. Also serves as BAT's "basic reference tuner".
//
// Single-run mutable state: one instance per session, driven by one
// thread (see the ownership notes in tuners/tuner.hpp).
#pragma once

#include "tuners/tuner.hpp"

namespace bat::tuners {

class LocalSearch final : public Tuner {
 public:
  [[nodiscard]] const std::string& name() const override {
    static const std::string kName = "local";
    return kName;
  }

 protected:
  void optimize(core::CachingEvaluator& evaluator, common::Rng& rng) override;
};

}  // namespace bat::tuners
