// Sequential model-based search (SMAC-style): fit a GBDT surrogate on the
// evaluations so far, screen a pool of random candidates through it, and
// spend real evaluations only on the most promising ones (with
// epsilon-greedy exploration).
//
// Single-run mutable state: one instance per session, driven by one
// thread (see the ownership notes in tuners/tuner.hpp).
#pragma once

#include "tuners/tuner.hpp"

namespace bat::tuners {

class SurrogateTuner final : public Tuner {
 public:
  struct Options {
    std::size_t initial_random = 20;   // warm-up evaluations
    std::size_t candidate_pool = 400;  // surrogate-screened candidates
    std::size_t refit_every = 8;       // evaluations between refits
    double explore_fraction = 0.15;    // epsilon
  };

  SurrogateTuner() : options_(Options{}) {}
  explicit SurrogateTuner(Options options) : options_(options) {}

  [[nodiscard]] const std::string& name() const override {
    static const std::string kName = "surrogate";
    return kName;
  }

 protected:
  void optimize(core::CachingEvaluator& evaluator, common::Rng& rng) override;

 private:
  Options options_;
};

}  // namespace bat::tuners
