// Simulated annealing over the Hamming-1 neighborhood with geometric
// cooling (a standard optimizer in Kernel Tuner and KTT).
//
// Single-run mutable state: one instance per session, driven by one
// thread (see the ownership notes in tuners/tuner.hpp).
#pragma once

#include "tuners/tuner.hpp"

namespace bat::tuners {

class SimulatedAnnealing final : public Tuner {
 public:
  struct Options {
    double initial_temperature = 1.0;  // relative to objective spread
    double cooling = 0.98;             // per-step multiplier
    double restart_temperature = 1e-4;
  };

  SimulatedAnnealing() : options_(Options{}) {}
  explicit SimulatedAnnealing(Options options) : options_(options) {}

  [[nodiscard]] const std::string& name() const override {
    static const std::string kName = "annealing";
    return kName;
  }

 protected:
  void optimize(core::CachingEvaluator& evaluator, common::Rng& rng) override;

 private:
  Options options_;
};

}  // namespace bat::tuners
