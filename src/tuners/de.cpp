#include "tuners/de.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bat::tuners {

namespace {

core::Config snap(const core::ParamSpace& params,
                  const std::vector<double>& position) {
  core::Config config(params.num_params());
  for (std::size_t p = 0; p < config.size(); ++p) {
    const auto hi = static_cast<double>(params.param(p).cardinality() - 1);
    const double clamped = std::clamp(position[p], 0.0, hi);
    config[p] = params.param(p).value_at(
        static_cast<std::size_t>(std::llround(clamped)));
  }
  return config;
}

}  // namespace

void DifferentialEvolution::optimize(core::CachingEvaluator& evaluator,
                                     common::Rng& rng) {
  const auto& space = evaluator.problem().space();
  const auto& params = space.params();
  const std::size_t dims = params.num_params();
  const std::size_t n = std::max<std::size_t>(4, options_.population);

  std::vector<std::vector<double>> population(n, std::vector<double>(dims));
  std::vector<double> objective(n,
                                std::numeric_limits<double>::infinity());

  const auto eval_position = [&](const std::vector<double>& pos) {
    const core::Config config = snap(params, pos);
    return space.constraints().satisfied(config)
               ? evaluator(config)
               : std::numeric_limits<double>::infinity();
  };

  for (std::size_t i = 0; i < n; ++i) {
    const core::Config seed_config = space.random_valid_config(rng);
    for (std::size_t p = 0; p < dims; ++p) {
      population[i][p] =
          static_cast<double>(params.param(p).index_of(seed_config[p]));
    }
    objective[i] = eval_position(population[i]);
  }

  std::vector<double> trial(dims);
  while (true) {  // generations
    for (std::size_t i = 0; i < n; ++i) {
      // Pick three distinct partners != i.
      std::size_t a, b, c;
      do { a = rng.next_below(n); } while (a == i);
      do { b = rng.next_below(n); } while (b == i || b == a);
      do { c = rng.next_below(n); } while (c == i || c == a || c == b);

      const std::size_t forced = rng.next_below(dims);
      for (std::size_t p = 0; p < dims; ++p) {
        if (p == forced || rng.uniform() < options_.crossover_rate) {
          trial[p] = population[a][p] +
                     options_.weight * (population[b][p] - population[c][p]);
        } else {
          trial[p] = population[i][p];
        }
      }
      const double obj = eval_position(trial);
      if (obj <= objective[i]) {
        population[i] = trial;
        objective[i] = obj;
      }
    }
  }
}

}  // namespace bat::tuners
