#include "tuners/de.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bat::tuners {

namespace {

core::Config snap(const core::ParamSpace& params,
                  const std::vector<double>& position) {
  core::Config config(params.num_params());
  for (std::size_t p = 0; p < config.size(); ++p) {
    const auto hi = static_cast<double>(params.param(p).cardinality() - 1);
    const double clamped = std::clamp(position[p], 0.0, hi);
    config[p] = params.param(p).value_at(
        static_cast<std::size_t>(std::llround(clamped)));
  }
  return config;
}

}  // namespace

void DifferentialEvolution::start(const core::SearchSpace& space,
                                  common::Rng& rng) {
  space_ = &space;
  const auto& params = space.params();
  const std::size_t dims = params.num_params();
  const std::size_t n = std::max<std::size_t>(4, options_.population);

  population_.assign(n, std::vector<double>(dims));
  objective_.assign(n, std::numeric_limits<double>::infinity());
  trials_.clear();
  slots_.clear();
  seeded_ = false;

  for (std::size_t i = 0; i < n; ++i) {
    const core::Config seed_config = space.random_valid_config(rng);
    for (std::size_t p = 0; p < dims; ++p) {
      population_[i][p] =
          static_cast<double>(params.param(p).index_of(seed_config[p]));
    }
  }
}

std::vector<core::Config> DifferentialEvolution::breed(common::Rng& rng) {
  const auto& params = space_->params();
  const std::size_t dims = params.num_params();
  const std::size_t n = population_.size();

  std::vector<core::Config> batch;
  trials_.assign(n, std::vector<double>(dims));
  slots_.assign(n, kInvalidSlot);

  for (std::size_t i = 0; i < n; ++i) {
    // Pick three distinct partners != i.
    std::size_t a, b, c;
    do { a = rng.next_below(n); } while (a == i);
    do { b = rng.next_below(n); } while (b == i || b == a);
    do { c = rng.next_below(n); } while (c == i || c == a || c == b);

    auto& trial = trials_[i];
    const std::size_t forced = rng.next_below(dims);
    for (std::size_t p = 0; p < dims; ++p) {
      if (p == forced || rng.uniform() < options_.crossover_rate) {
        trial[p] = population_[a][p] +
                   options_.weight * (population_[b][p] - population_[c][p]);
      } else {
        trial[p] = population_[i][p];
      }
    }
    core::Config config = snap(params, trial);
    if (space_->constraints().satisfied(config)) {
      slots_[i] = batch.size();
      batch.push_back(std::move(config));
    }
  }
  return batch;
}

void DifferentialEvolution::select(const std::vector<double>& objectives) {
  for (std::size_t i = 0; i < population_.size(); ++i) {
    const double obj = slots_[i] == kInvalidSlot
                           ? std::numeric_limits<double>::infinity()
                           : objectives[slots_[i]];
    if (obj <= objective_[i]) {
      population_[i] = trials_[i];
      objective_[i] = obj;
    }
  }
}

std::vector<core::Config> DifferentialEvolution::ask(std::size_t,
                                                     common::Rng& rng) {
  if (!seeded_) {
    // Evaluate the initial population (valid by construction).
    seeded_ = true;
    const auto& params = space_->params();
    std::vector<core::Config> batch;
    batch.reserve(population_.size());
    slots_.assign(population_.size(), kInvalidSlot);
    for (std::size_t i = 0; i < population_.size(); ++i) {
      slots_[i] = batch.size();
      batch.push_back(snap(params, population_[i]));
    }
    trials_ = population_;  // selection keeps them (obj <= +inf)
    return batch;
  }

  auto batch = breed(rng);
  // An all-invalid generation evaluates nothing: apply the (+inf) trial
  // selection directly and breed again (bounded — a population frozen in
  // an invalid region will never recover; an empty batch ends the run).
  for (int attempts = 0; batch.empty() && attempts < 1000; ++attempts) {
    select({});
    batch = breed(rng);
  }
  return batch;
}

void DifferentialEvolution::tell(const std::vector<core::Config>&,
                                 const std::vector<double>& objectives,
                                 common::Rng&) {
  select(objectives);
}

}  // namespace bat::tuners
