#include "tuners/genetic.hpp"

#include <algorithm>

namespace bat::tuners {

void GeneticAlgorithm::start(const core::SearchSpace& space, common::Rng&) {
  space_ = &space;
  population_.clear();
  elites_.clear();
}

std::vector<core::Config> GeneticAlgorithm::ask(std::size_t,
                                                common::Rng& rng) {
  std::vector<core::Config> batch;

  if (population_.empty()) {  // initial generation
    batch.reserve(options_.population);
    for (std::size_t i = 0; i < options_.population; ++i) {
      batch.push_back(space_->random_valid_config(rng));
    }
    return batch;
  }

  const auto& params = space_->params();
  std::sort(population_.begin(), population_.end(),
            [](const Individual& a, const Individual& b) {
              return a.objective < b.objective;
            });
  elites_.assign(population_.begin(),
                 population_.begin() +
                     static_cast<std::ptrdiff_t>(
                         std::min(options_.elites, population_.size())));

  const auto tournament = [&]() -> const Individual& {
    const Individual* best = nullptr;
    for (std::size_t i = 0; i < options_.tournament; ++i) {
      const auto& contender =
          population_[static_cast<std::size_t>(
              rng.next_below(population_.size()))];
      if (best == nullptr || contender.objective < best->objective) {
        best = &contender;
      }
    }
    return *best;
  };

  batch.reserve(options_.population - elites_.size());
  while (batch.size() + elites_.size() < options_.population) {
    const Individual& a = tournament();
    const Individual& b = tournament();
    core::Config child = a.config;
    if (rng.uniform() < options_.crossover_rate) {
      for (std::size_t p = 0; p < child.size(); ++p) {
        if (rng.bernoulli(0.5)) child[p] = b.config[p];
      }
    }
    for (std::size_t p = 0; p < child.size(); ++p) {
      if (rng.uniform() < options_.mutation_rate) {
        child[p] = rng.pick(params.param(p).values());
      }
    }
    if (!space_->constraints().satisfied(child)) {
      // Repair by resampling a fresh valid configuration: simple and
      // unbiased, mirroring Kernel Tuner's GA handling of constraints.
      child = space_->random_valid_config(rng);
    }
    batch.push_back(std::move(child));
  }
  return batch;
}

void GeneticAlgorithm::tell(const std::vector<core::Config>& configs,
                            const std::vector<double>& objectives,
                            common::Rng&) {
  std::vector<Individual> next = std::move(elites_);
  elites_.clear();
  next.reserve(next.size() + configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    next.push_back(Individual{configs[i], objectives[i]});
  }
  population_ = std::move(next);
}

}  // namespace bat::tuners
