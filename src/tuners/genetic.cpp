#include "tuners/genetic.hpp"

#include <algorithm>

namespace bat::tuners {

namespace {

struct Individual {
  core::Config config;
  double objective = 0.0;
};

}  // namespace

void GeneticAlgorithm::optimize(core::CachingEvaluator& evaluator,
                                common::Rng& rng) {
  const auto& space = evaluator.problem().space();
  const auto& params = space.params();

  std::vector<Individual> population;
  population.reserve(options_.population);
  for (std::size_t i = 0; i < options_.population; ++i) {
    Individual ind;
    ind.config = space.random_valid_config(rng);
    ind.objective = evaluator(ind.config);
    population.push_back(std::move(ind));
  }

  const auto tournament = [&]() -> const Individual& {
    const Individual* best = nullptr;
    for (std::size_t i = 0; i < options_.tournament; ++i) {
      const auto& contender =
          population[static_cast<std::size_t>(rng.next_below(population.size()))];
      if (best == nullptr || contender.objective < best->objective) {
        best = &contender;
      }
    }
    return *best;
  };

  while (true) {  // generations
    std::sort(population.begin(), population.end(),
              [](const Individual& a, const Individual& b) {
                return a.objective < b.objective;
              });
    std::vector<Individual> next(
        population.begin(),
        population.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(options_.elites, population.size())));

    while (next.size() < options_.population) {
      const Individual& a = tournament();
      const Individual& b = tournament();
      core::Config child = a.config;
      if (rng.uniform() < options_.crossover_rate) {
        for (std::size_t p = 0; p < child.size(); ++p) {
          if (rng.bernoulli(0.5)) child[p] = b.config[p];
        }
      }
      for (std::size_t p = 0; p < child.size(); ++p) {
        if (rng.uniform() < options_.mutation_rate) {
          child[p] = rng.pick(params.param(p).values());
        }
      }
      if (!space.constraints().satisfied(child)) {
        // Repair by resampling a fresh valid configuration: simple and
        // unbiased, mirroring Kernel Tuner's GA handling of constraints.
        child = space.random_valid_config(rng);
      }
      Individual ind;
      ind.objective = evaluator(child);
      ind.config = std::move(child);
      next.push_back(std::move(ind));
    }
    population = std::move(next);
  }
}

}  // namespace bat::tuners
