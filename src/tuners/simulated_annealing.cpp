#include "tuners/simulated_annealing.hpp"

#include <cmath>

#include "core/compiled_space.hpp"

namespace bat::tuners {

void SimulatedAnnealing::optimize(core::CachingEvaluator& evaluator,
                                  common::Rng& rng) {
  const auto& space = evaluator.space();
  const auto& compiled = space.compiled();
  core::NeighborScratch scratch;
  std::vector<core::ConfigIndex> neighbors;  // reused across steps
  while (true) {  // reheat loop
    core::ConfigIndex current = space.random_valid_index(rng);
    double current_obj = evaluator.evaluate_index(current);
    // Normalize temperature by the first observed objective so the same
    // schedule works across benchmarks with very different time scales.
    double scale = std::isfinite(current_obj) && current_obj > 0.0
                       ? current_obj
                       : 1.0;
    double temperature = options_.initial_temperature;

    while (temperature > options_.restart_temperature) {
      neighbors.clear();
      compiled.for_each_valid_neighbor_index(
          current, scratch,
          [&](core::ConfigIndex n) { neighbors.push_back(n); });
      if (neighbors.empty()) break;
      const auto candidate =
          neighbors[static_cast<std::size_t>(rng.next_below(neighbors.size()))];
      const double obj = evaluator.evaluate_index(candidate);
      const double delta = (obj - current_obj) / scale;
      if (delta <= 0.0 ||
          rng.uniform() < std::exp(-delta / temperature)) {
        current = candidate;
        current_obj = obj;
        if (std::isfinite(obj) && obj > 0.0) scale = obj;
      }
      temperature *= options_.cooling;
    }
  }
}

}  // namespace bat::tuners
