#include "tuners/simulated_annealing.hpp"

#include <cmath>

namespace bat::tuners {

void SimulatedAnnealing::optimize(core::CachingEvaluator& evaluator,
                                  common::Rng& rng) {
  const auto& space = evaluator.space();
  while (true) {  // reheat loop
    core::Config current = space.random_valid_config(rng);
    double current_obj = evaluator(current);
    // Normalize temperature by the first observed objective so the same
    // schedule works across benchmarks with very different time scales.
    double scale = std::isfinite(current_obj) && current_obj > 0.0
                       ? current_obj
                       : 1.0;
    double temperature = options_.initial_temperature;

    while (temperature > options_.restart_temperature) {
      const auto neighbors = space.valid_neighbors(current);
      if (neighbors.empty()) break;
      const auto& candidate = rng.pick(neighbors);
      const double obj = evaluator(candidate);
      const double delta = (obj - current_obj) / scale;
      if (delta <= 0.0 ||
          rng.uniform() < std::exp(-delta / temperature)) {
        current = candidate;
        current_obj = obj;
        if (std::isfinite(obj) && obj > 0.0) scale = obj;
      }
      temperature *= options_.cooling;
    }
  }
}

}  // namespace bat::tuners
