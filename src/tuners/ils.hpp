// Greedy iterated local search (ILS): hill-climb to a local minimum,
// perturb a few parameters of the incumbent, climb again; accept the new
// local minimum if it improves. Matches the GreedyILS family evaluated by
// Schoonhoven et al.
//
// Single-run mutable state: one instance per session, driven by one
// thread (see the ownership notes in tuners/tuner.hpp).
#pragma once

#include "tuners/tuner.hpp"

namespace bat::tuners {

class IteratedLocalSearch final : public Tuner {
 public:
  struct Options {
    std::size_t perturbation_strength = 2;  // parameters re-randomized
    std::size_t max_no_improve = 4;         // perturbations before restart
  };

  IteratedLocalSearch() : options_(Options{}) {}
  explicit IteratedLocalSearch(Options options) : options_(options) {}

  [[nodiscard]] const std::string& name() const override {
    static const std::string kName = "ils";
    return kName;
  }

 protected:
  void optimize(core::CachingEvaluator& evaluator, common::Rng& rng) override;

 private:
  Options options_;
};

}  // namespace bat::tuners
