#include "tuners/tuner.hpp"

#include <stdexcept>

#include "tuners/de.hpp"
#include "tuners/genetic.hpp"
#include "tuners/ils.hpp"
#include "tuners/local_search.hpp"
#include "tuners/pso.hpp"
#include "tuners/random_search.hpp"
#include "tuners/simulated_annealing.hpp"
#include "tuners/surrogate.hpp"

namespace bat::tuners {

void Tuner::run(core::CachingEvaluator& evaluator, common::Rng& rng) {
  try {
    optimize(evaluator, rng);
  } catch (const core::BudgetExhausted&) {
    // Normal termination: the evaluator refused the next measurement.
  }
}

TuningRun run_tuner(Tuner& tuner, const core::Benchmark& bench,
                    core::DeviceIndex device, std::size_t budget,
                    std::uint64_t seed) {
  core::TuningProblem problem(bench, device);
  core::CachingEvaluator evaluator(problem, budget);
  common::Rng rng(seed);
  tuner.run(evaluator, rng);
  TuningRun result;
  result.tuner = tuner.name();
  result.trace = evaluator.trace();
  result.best = evaluator.best();
  result.best_so_far = evaluator.best_so_far();
  return result;
}

std::unique_ptr<Tuner> make_tuner(const std::string& name) {
  if (name == "random") return std::make_unique<RandomSearch>();
  if (name == "local" || name == "basic") return std::make_unique<LocalSearch>();
  if (name == "annealing") return std::make_unique<SimulatedAnnealing>();
  if (name == "genetic") return std::make_unique<GeneticAlgorithm>();
  if (name == "ils") return std::make_unique<IteratedLocalSearch>();
  if (name == "pso") return std::make_unique<ParticleSwarm>();
  if (name == "de") return std::make_unique<DifferentialEvolution>();
  if (name == "surrogate") return std::make_unique<SurrogateTuner>();
  throw std::out_of_range("unknown tuner: " + name);
}

std::vector<std::string> tuner_names() {
  return {"random", "local",     "annealing", "genetic",
          "ils",    "pso",       "de",        "surrogate"};
}

}  // namespace bat::tuners
