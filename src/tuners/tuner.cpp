#include "tuners/tuner.hpp"

#include <stdexcept>

#include "common/contracts.hpp"
#include "tuners/de.hpp"
#include "tuners/genetic.hpp"
#include "tuners/ils.hpp"
#include "tuners/local_search.hpp"
#include "tuners/pso.hpp"
#include "tuners/random_search.hpp"
#include "tuners/simulated_annealing.hpp"
#include "tuners/surrogate.hpp"

namespace bat::tuners {

void Tuner::run(core::CachingEvaluator& evaluator, common::Rng& rng) {
  try {
    optimize(evaluator, rng);
  } catch (const core::BudgetExhausted&) {
    // Normal termination: the evaluator refused the next measurement.
  }
}

void Tuner::optimize(core::CachingEvaluator& evaluator, common::Rng& rng) {
  // Default body: drive the ask/tell protocol. Exception-driven tuners
  // override optimize() instead and never reach this.
  BAT_EXPECTS(batched());
  start(evaluator.space(), rng);
  // A fully converged population can keep proposing already-cached
  // configurations forever without consuming budget; stop after enough
  // consecutive generations make no progress on the trace.
  constexpr std::size_t kMaxStallRounds = 128;
  std::size_t stalled = 0;
  while (!evaluator.exhausted() && stalled < kMaxStallRounds) {
    const std::size_t remaining = evaluator.budget() - evaluator.evaluations();
    const auto batch = ask(remaining, rng);
    if (batch.empty()) break;
    const std::size_t before = evaluator.evaluations();
    const auto objectives = evaluator.evaluate_batch(batch);
    tell(batch, objectives, rng);
    stalled = evaluator.evaluations() == before ? stalled + 1 : 0;
  }
}

void Tuner::start(const core::SearchSpace&, common::Rng&) {}

std::vector<core::Config> Tuner::ask(std::size_t, common::Rng&) { return {}; }

void Tuner::tell(const std::vector<core::Config>&, const std::vector<double>&,
                 common::Rng&) {}

TuningRun run_tuner(Tuner& tuner, core::EvaluationBackend& backend,
                    std::size_t budget, std::uint64_t seed) {
  return run_tuner(tuner, backend, budget, seed, core::EvaluationHooks{});
}

TuningRun run_tuner(Tuner& tuner, core::EvaluationBackend& backend,
                    std::size_t budget, std::uint64_t seed,
                    const core::EvaluationHooks& hooks) {
  core::CachingEvaluator evaluator(backend, budget, hooks);
  common::Rng rng(seed);
  tuner.run(evaluator, rng);
  TuningRun result;
  result.tuner = tuner.name();
  result.trace = evaluator.trace();
  result.best = evaluator.best();
  result.best_so_far = evaluator.best_so_far();
  result.cancelled = evaluator.cancelled();
  return result;
}

TuningRun run_tuner(Tuner& tuner, const core::Benchmark& bench,
                    core::DeviceIndex device, std::size_t budget,
                    std::uint64_t seed) {
  core::LiveBackend backend(bench, device);
  return run_tuner(tuner, backend, budget, seed);
}

std::unique_ptr<Tuner> make_tuner(const std::string& name) {
  if (name == "random") return std::make_unique<RandomSearch>();
  if (name == "local" || name == "basic") return std::make_unique<LocalSearch>();
  if (name == "annealing") return std::make_unique<SimulatedAnnealing>();
  if (name == "genetic") return std::make_unique<GeneticAlgorithm>();
  if (name == "ils") return std::make_unique<IteratedLocalSearch>();
  if (name == "pso") return std::make_unique<ParticleSwarm>();
  if (name == "de") return std::make_unique<DifferentialEvolution>();
  if (name == "surrogate") return std::make_unique<SurrogateTuner>();
  throw std::out_of_range("unknown tuner: " + name);
}

std::vector<std::string> tuner_names() {
  return {"random", "local",     "annealing", "genetic",
          "ils",    "pso",       "de",        "surrogate"};
}

}  // namespace bat::tuners
