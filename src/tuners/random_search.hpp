// Pure random search over valid configurations — the paper's convergence
// baseline (Fig 2).
#pragma once

#include "tuners/tuner.hpp"

namespace bat::tuners {

class RandomSearch final : public Tuner {
 public:
  [[nodiscard]] const std::string& name() const override {
    static const std::string kName = "random";
    return kName;
  }

 protected:
  void optimize(core::CachingEvaluator& evaluator, common::Rng& rng) override;
};

}  // namespace bat::tuners
