// Pure random search over valid configurations — the paper's convergence
// baseline (Fig 2). Batched: proposals are independent, so whole blocks
// of samples are evaluated through the backend in parallel. The trace is
// identical to sampling one configuration at a time (same rng stream,
// first-occurrence charging).
//
// Single-run mutable state: one instance per session, driven by one
// thread (see the ownership notes in tuners/tuner.hpp).
#pragma once

#include "tuners/tuner.hpp"

namespace bat::tuners {

class RandomSearch final : public Tuner {
 public:
  struct Options {
    std::size_t batch = 64;  // samples proposed per ask()
  };

  RandomSearch() : options_(Options{}) {}
  explicit RandomSearch(Options options) : options_(options) {}

  [[nodiscard]] const std::string& name() const override {
    static const std::string kName = "random";
    return kName;
  }

  [[nodiscard]] bool batched() const override { return true; }

 protected:
  void start(const core::SearchSpace& space, common::Rng& rng) override;
  std::vector<core::Config> ask(std::size_t remaining,
                                common::Rng& rng) override;

 private:
  Options options_;
  const core::SearchSpace* space_ = nullptr;
};

}  // namespace bat::tuners
