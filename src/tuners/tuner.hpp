// The tuner-side of the shared problem interface.
//
// A Tuner sees only a CachingEvaluator (objective + budget + trace) and
// the search space behind it — exactly the contract the paper defines so
// that Optuna/SMAC3/Kernel Tuner/KTT-style optimizers can drive any BAT
// benchmark. Tuners run until the evaluation budget is exhausted (the
// evaluator throws BudgetExhausted, which run() treats as the stop
// signal).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "core/evaluator.hpp"

namespace bat::tuners {

class Tuner {
 public:
  virtual ~Tuner() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Optimizes until the budget is exhausted. Implementations must treat
  /// core::BudgetExhausted as a normal termination signal.
  void run(core::CachingEvaluator& evaluator, common::Rng& rng);

 protected:
  /// Algorithm body; may simply let BudgetExhausted propagate.
  virtual void optimize(core::CachingEvaluator& evaluator,
                        common::Rng& rng) = 0;
};

/// Result of a full tuning run.
struct TuningRun {
  std::string tuner;
  std::vector<core::TraceEntry> trace;
  std::optional<core::TraceEntry> best;
  std::vector<double> best_so_far;
};

/// Convenience: builds an evaluator over (benchmark, device), runs the
/// tuner with an explicit seed, returns the collected run.
[[nodiscard]] TuningRun run_tuner(Tuner& tuner, const core::Benchmark& bench,
                                  core::DeviceIndex device, std::size_t budget,
                                  std::uint64_t seed);

/// Factory for all built-in tuners:
///   "random", "local", "annealing", "genetic", "ils", "pso", "de",
///   "surrogate", "basic" (alias of "local": the paper's reference tuner).
[[nodiscard]] std::unique_ptr<Tuner> make_tuner(const std::string& name);

/// Names of all built-in tuners (canonical order used by the examples).
[[nodiscard]] std::vector<std::string> tuner_names();

}  // namespace bat::tuners
