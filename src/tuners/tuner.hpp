// The tuner-side of the shared problem interface.
//
// A Tuner sees only a CachingEvaluator (objective + budget + trace) and
// the search space behind it — exactly the contract the paper defines so
// that Optuna/SMAC3/Kernel Tuner/KTT-style optimizers can drive any BAT
// benchmark. Two driving styles coexist:
//
//   * exception-driven (default): override optimize() and call
//     evaluator(config) until it throws BudgetExhausted, which run()
//     treats as the stop signal.
//   * batched ask/tell: override batched() to return true plus
//     start()/ask()/tell(). The framework then loops
//         batch = ask(remaining, rng)
//         objectives = evaluator.evaluate_batch(batch)
//         tell(batch, objectives, rng)
//     so population tuners (random, genetic, pso, de) evaluate whole
//     generations through the backend in one parallel batch.
//
// Both styles stop exactly at the evaluation budget, and neither knows
// (or cares) whether measurements are computed live or replayed from a
// dataset — that is the EvaluationBackend's business.
//
// Ownership / thread-safety: a Tuner instance is single-run mutable
// state — make one per run (tuners::make_tuner) and never share it
// across threads. run_tuner itself is safe to call concurrently with
// distinct tuner instances over a shared stateless backend; that is
// exactly how service::TuningService executes sessions in parallel,
// threading per-session EvaluationHooks (shared measurement cache,
// cancellation token) through the overload below.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/backend.hpp"
#include "core/evaluator.hpp"

namespace bat::tuners {

class Tuner {
 public:
  virtual ~Tuner() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;

  /// True if this tuner implements the batched ask/tell protocol.
  [[nodiscard]] virtual bool batched() const { return false; }

  /// Optimizes until the budget is exhausted. Implementations must treat
  /// core::BudgetExhausted as a normal termination signal.
  void run(core::CachingEvaluator& evaluator, common::Rng& rng);

 protected:
  /// Exception-driven algorithm body; may simply let BudgetExhausted
  /// propagate. The default drives the ask/tell protocol (only valid for
  /// batched tuners).
  virtual void optimize(core::CachingEvaluator& evaluator, common::Rng& rng);

  // --- batched ask/tell protocol (batched() == true) ---

  /// Resets internal state for a fresh run over `space`.
  virtual void start(const core::SearchSpace& space, common::Rng& rng);

  /// Proposes the next batch of configurations to evaluate. `remaining`
  /// is the number of distinct evaluations left in the budget (a hint:
  /// proposing more is allowed, the evaluator truncates at the
  /// boundary). An empty batch ends the run.
  virtual std::vector<core::Config> ask(std::size_t remaining,
                                        common::Rng& rng);

  /// Receives the objectives for the batch returned by the previous
  /// ask() (objectives[i] belongs to configs[i]).
  virtual void tell(const std::vector<core::Config>& configs,
                    const std::vector<double>& objectives, common::Rng& rng);
};

/// Result of a full tuning run.
struct TuningRun {
  std::string tuner;
  std::vector<core::TraceEntry> trace;
  std::optional<core::TraceEntry> best;
  std::vector<double> best_so_far;
  /// True when a cancellation hook cut the run short (the trace is the
  /// partial prefix), false for natural termination — budget exhausted
  /// *or* converged below budget.
  bool cancelled = false;
};

/// Runs the tuner against an arbitrary evaluation backend (live, replay,
/// ...) with an explicit seed and returns the collected run.
[[nodiscard]] TuningRun run_tuner(Tuner& tuner,
                                  core::EvaluationBackend& backend,
                                  std::size_t budget, std::uint64_t seed);

/// Same, with per-session hooks (cross-session measurement sharing and
/// cooperative cancellation — what service::TuningService threads in).
/// Hooks never change the produced trace, only where measurements come
/// from and whether the run may stop early at a batch boundary.
[[nodiscard]] TuningRun run_tuner(Tuner& tuner,
                                  core::EvaluationBackend& backend,
                                  std::size_t budget, std::uint64_t seed,
                                  const core::EvaluationHooks& hooks);

/// Convenience: live evaluation over (benchmark, device).
[[nodiscard]] TuningRun run_tuner(Tuner& tuner, const core::Benchmark& bench,
                                  core::DeviceIndex device, std::size_t budget,
                                  std::uint64_t seed);

/// Factory for all built-in tuners:
///   "random", "local", "annealing", "genetic", "ils", "pso", "de",
///   "surrogate", "basic" (alias of "local": the paper's reference tuner).
[[nodiscard]] std::unique_ptr<Tuner> make_tuner(const std::string& name);

/// Names of all built-in tuners (canonical order used by the examples).
[[nodiscard]] std::vector<std::string> tuner_names();

}  // namespace bat::tuners
