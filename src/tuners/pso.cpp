#include "tuners/pso.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bat::tuners {

namespace {

/// Snaps continuous per-parameter index positions to a configuration.
core::Config snap(const core::ParamSpace& params,
                  const std::vector<double>& position) {
  core::Config config(params.num_params());
  for (std::size_t p = 0; p < config.size(); ++p) {
    const auto hi = static_cast<double>(params.param(p).cardinality() - 1);
    const double clamped = std::clamp(position[p], 0.0, hi);
    config[p] = params.param(p).value_at(
        static_cast<std::size_t>(std::llround(clamped)));
  }
  return config;
}

}  // namespace

void ParticleSwarm::start(const core::SearchSpace& space, common::Rng& rng) {
  space_ = &space;
  const auto& params = space.params();
  const std::size_t dims = params.num_params();

  swarm_.assign(options_.particles, Particle{});
  global_best_position_.assign(dims, 0.0);
  global_best_ = std::numeric_limits<double>::infinity();
  slots_.clear();
  seeded_ = false;

  for (auto& particle : swarm_) {
    particle.position.resize(dims);
    particle.velocity.resize(dims);
    particle.best_objective = std::numeric_limits<double>::infinity();
    const core::Config seed_config = space.random_valid_config(rng);
    for (std::size_t p = 0; p < dims; ++p) {
      particle.position[p] =
          static_cast<double>(params.param(p).index_of(seed_config[p]));
      const auto span = static_cast<double>(params.param(p).cardinality());
      particle.velocity[p] = rng.uniform(-span * 0.25, span * 0.25);
    }
    particle.best_position = particle.position;
  }
}

void ParticleSwarm::move_swarm(common::Rng& rng) {
  const std::size_t dims = space_->params().num_params();
  for (auto& particle : swarm_) {
    for (std::size_t p = 0; p < dims; ++p) {
      const double r1 = rng.uniform();
      const double r2 = rng.uniform();
      particle.velocity[p] =
          options_.inertia * particle.velocity[p] +
          options_.cognitive * r1 *
              (particle.best_position[p] - particle.position[p]) +
          options_.social * r2 *
              (global_best_position_[p] - particle.position[p]);
      particle.position[p] += particle.velocity[p];
    }
  }
}

std::vector<core::Config> ParticleSwarm::snap_swarm() {
  const auto& params = space_->params();
  std::vector<core::Config> batch;
  slots_.assign(swarm_.size(), kInvalidSlot);
  for (std::size_t i = 0; i < swarm_.size(); ++i) {
    core::Config config = snap(params, swarm_[i].position);
    if (space_->constraints().satisfied(config)) {
      slots_[i] = batch.size();
      batch.push_back(std::move(config));
    }
  }
  return batch;
}

std::vector<core::Config> ParticleSwarm::ask(std::size_t, common::Rng& rng) {
  if (seeded_) {
    move_swarm(rng);
  } else {
    seeded_ = true;  // evaluate the freshly-seeded (valid) positions first
  }
  auto batch = snap_swarm();
  // An all-invalid swarm means nothing to evaluate this round (invalid
  // positions score +inf, which never improves a best); keep moving
  // until a particle lands on a valid configuration. A swarm frozen in
  // an invalid region will never recover — give up and end the run.
  for (int attempts = 0; batch.empty() && attempts < 1000; ++attempts) {
    move_swarm(rng);
    batch = snap_swarm();
  }
  return batch;
}

void ParticleSwarm::tell(const std::vector<core::Config>&,
                         const std::vector<double>& objectives,
                         common::Rng&) {
  for (std::size_t i = 0; i < swarm_.size(); ++i) {
    auto& particle = swarm_[i];
    const double obj = slots_[i] == kInvalidSlot
                           ? std::numeric_limits<double>::infinity()
                           : objectives[slots_[i]];
    if (obj < particle.best_objective) {
      particle.best_objective = obj;
      particle.best_position = particle.position;
    }
    if (obj < global_best_) {
      global_best_ = obj;
      global_best_position_ = particle.position;
    }
  }
}

}  // namespace bat::tuners
