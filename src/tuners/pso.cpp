#include "tuners/pso.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bat::tuners {

namespace {

/// Snaps continuous per-parameter index positions to a configuration.
core::Config snap(const core::ParamSpace& params,
                  const std::vector<double>& position) {
  core::Config config(params.num_params());
  for (std::size_t p = 0; p < config.size(); ++p) {
    const auto hi = static_cast<double>(params.param(p).cardinality() - 1);
    const double clamped = std::clamp(position[p], 0.0, hi);
    config[p] = params.param(p).value_at(
        static_cast<std::size_t>(std::llround(clamped)));
  }
  return config;
}

struct Particle {
  std::vector<double> position;
  std::vector<double> velocity;
  std::vector<double> best_position;
  double best_objective = std::numeric_limits<double>::infinity();
};

}  // namespace

void ParticleSwarm::optimize(core::CachingEvaluator& evaluator,
                             common::Rng& rng) {
  const auto& space = evaluator.problem().space();
  const auto& params = space.params();
  const std::size_t dims = params.num_params();

  std::vector<Particle> swarm(options_.particles);
  std::vector<double> global_best_position(dims, 0.0);
  double global_best = std::numeric_limits<double>::infinity();

  const auto evaluate_particle = [&](Particle& particle) {
    const core::Config config = snap(params, particle.position);
    const double obj = space.constraints().satisfied(config)
                           ? evaluator(config)
                           : std::numeric_limits<double>::infinity();
    if (obj < particle.best_objective) {
      particle.best_objective = obj;
      particle.best_position = particle.position;
    }
    if (obj < global_best) {
      global_best = obj;
      global_best_position = particle.position;
    }
  };

  for (auto& particle : swarm) {
    particle.position.resize(dims);
    particle.velocity.resize(dims);
    const core::Config seed_config = space.random_valid_config(rng);
    for (std::size_t p = 0; p < dims; ++p) {
      particle.position[p] =
          static_cast<double>(params.param(p).index_of(seed_config[p]));
      const auto span = static_cast<double>(params.param(p).cardinality());
      particle.velocity[p] = rng.uniform(-span * 0.25, span * 0.25);
    }
    particle.best_position = particle.position;
    evaluate_particle(particle);
  }

  while (true) {  // swarm iterations
    for (auto& particle : swarm) {
      for (std::size_t p = 0; p < dims; ++p) {
        const double r1 = rng.uniform();
        const double r2 = rng.uniform();
        particle.velocity[p] =
            options_.inertia * particle.velocity[p] +
            options_.cognitive * r1 *
                (particle.best_position[p] - particle.position[p]) +
            options_.social * r2 *
                (global_best_position[p] - particle.position[p]);
        particle.position[p] += particle.velocity[p];
      }
      evaluate_particle(particle);
    }
  }
}

}  // namespace bat::tuners
