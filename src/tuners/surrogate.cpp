#include "tuners/surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ml/gbdt.hpp"

namespace bat::tuners {

void SurrogateTuner::optimize(core::CachingEvaluator& evaluator,
                              common::Rng& rng) {
  const auto& space = evaluator.space();
  const auto& params = space.params();
  const std::size_t dims = params.num_params();

  // Observations (features = raw parameter values, target = objective).
  std::vector<std::vector<double>> x_rows;
  std::vector<double> y_vals;

  const auto observe = [&](const core::Config& config) {
    const double obj = evaluator(config);
    if (std::isfinite(obj) && obj > 0.0) {
      std::vector<double> row(dims);
      for (std::size_t p = 0; p < dims; ++p) {
        row[p] = static_cast<double>(config[p]);
      }
      x_rows.push_back(std::move(row));
      y_vals.push_back(obj);
    }
    return obj;
  };

  for (std::size_t i = 0; i < options_.initial_random; ++i) {
    (void)observe(space.random_valid_config(rng));
  }

  ml::GbdtParams gparams;
  gparams.num_trees = 80;  // refit often -> keep individual fits cheap
  gparams.tree.max_depth = 5;

  while (true) {
    // (Re)fit the surrogate on everything observed so far.
    ml::GbdtRegressor model(gparams);
    if (x_rows.size() >= 8) {
      model.fit(ml::Matrix::from_rows(x_rows), y_vals);
    }

    for (std::size_t step = 0; step < options_.refit_every; ++step) {
      if (!model.trained() || rng.uniform() < options_.explore_fraction) {
        (void)observe(space.random_valid_config(rng));
        continue;
      }
      // Screen a pool of random valid candidates through the surrogate
      // and evaluate the most promising one for real.
      core::Config best_candidate;
      double best_predicted = std::numeric_limits<double>::infinity();
      std::vector<double> row(dims);
      for (std::size_t i = 0; i < options_.candidate_pool; ++i) {
        core::Config candidate = space.random_valid_config(rng);
        for (std::size_t p = 0; p < dims; ++p) {
          row[p] = static_cast<double>(candidate[p]);
        }
        const double predicted = model.predict(row);
        if (predicted < best_predicted) {
          best_predicted = predicted;
          best_candidate = std::move(candidate);
        }
      }
      (void)observe(best_candidate);
    }
  }
}

}  // namespace bat::tuners
