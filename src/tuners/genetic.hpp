// Generational genetic algorithm: tournament selection, uniform
// crossover, per-parameter mutation, elitism.
#pragma once

#include "tuners/tuner.hpp"

namespace bat::tuners {

class GeneticAlgorithm final : public Tuner {
 public:
  struct Options {
    std::size_t population = 24;
    double crossover_rate = 0.9;
    double mutation_rate = 0.1;  // per parameter
    std::size_t tournament = 3;
    std::size_t elites = 2;
  };

  GeneticAlgorithm() : options_(Options{}) {}
  explicit GeneticAlgorithm(Options options) : options_(options) {}

  [[nodiscard]] const std::string& name() const override {
    static const std::string kName = "genetic";
    return kName;
  }

 protected:
  void optimize(core::CachingEvaluator& evaluator, common::Rng& rng) override;

 private:
  Options options_;
};

}  // namespace bat::tuners
