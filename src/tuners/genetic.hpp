// Generational genetic algorithm: tournament selection, uniform
// crossover, per-parameter mutation, elitism. Batched: every ask()
// breeds a full generation of children whose genomes depend only on the
// previous (already-evaluated) population, so the whole generation is
// evaluated through the backend in one parallel batch.
//
// Single-run mutable state: one instance per session, driven by one
// thread (see the ownership notes in tuners/tuner.hpp).
#pragma once

#include "tuners/tuner.hpp"

namespace bat::tuners {

class GeneticAlgorithm final : public Tuner {
 public:
  struct Options {
    std::size_t population = 24;
    double crossover_rate = 0.9;
    double mutation_rate = 0.1;  // per parameter
    std::size_t tournament = 3;
    std::size_t elites = 2;
  };

  GeneticAlgorithm() : options_(Options{}) {}
  explicit GeneticAlgorithm(Options options) : options_(options) {}

  [[nodiscard]] const std::string& name() const override {
    static const std::string kName = "genetic";
    return kName;
  }

  [[nodiscard]] bool batched() const override { return true; }

 protected:
  void start(const core::SearchSpace& space, common::Rng& rng) override;
  std::vector<core::Config> ask(std::size_t remaining,
                                common::Rng& rng) override;
  void tell(const std::vector<core::Config>& configs,
            const std::vector<double>& objectives, common::Rng& rng) override;

 private:
  struct Individual {
    core::Config config;
    double objective = 0.0;
  };

  Options options_;
  const core::SearchSpace* space_ = nullptr;
  std::vector<Individual> population_;  // previous generation, evaluated
  std::vector<Individual> elites_;     // carried over, objective known
};

}  // namespace bat::tuners
