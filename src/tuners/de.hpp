// Differential evolution (DE/rand/1/bin) on the value-index embedding.
#pragma once

#include "tuners/tuner.hpp"

namespace bat::tuners {

class DifferentialEvolution final : public Tuner {
 public:
  struct Options {
    std::size_t population = 20;
    double weight = 0.6;          // F
    double crossover_rate = 0.8;  // CR
  };

  DifferentialEvolution() : options_(Options{}) {}
  explicit DifferentialEvolution(Options options) : options_(options) {}

  [[nodiscard]] const std::string& name() const override {
    static const std::string kName = "de";
    return kName;
  }

 protected:
  void optimize(core::CachingEvaluator& evaluator, common::Rng& rng) override;

 private:
  Options options_;
};

}  // namespace bat::tuners
