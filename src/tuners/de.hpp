// Differential evolution (DE/rand/1/bin) on the value-index embedding.
// Batched (synchronous DE): every ask() builds one trial per population
// member from the previous generation's vectors, the whole trial set is
// evaluated through the backend in one parallel batch, and selection
// happens in tell().
//
// Single-run mutable state: one instance per session, driven by one
// thread (see the ownership notes in tuners/tuner.hpp).
#pragma once

#include "tuners/tuner.hpp"

namespace bat::tuners {

class DifferentialEvolution final : public Tuner {
 public:
  struct Options {
    std::size_t population = 20;
    double weight = 0.6;          // F
    double crossover_rate = 0.8;  // CR
  };

  DifferentialEvolution() : options_(Options{}) {}
  explicit DifferentialEvolution(Options options) : options_(options) {}

  [[nodiscard]] const std::string& name() const override {
    static const std::string kName = "de";
    return kName;
  }

  [[nodiscard]] bool batched() const override { return true; }

 protected:
  void start(const core::SearchSpace& space, common::Rng& rng) override;
  std::vector<core::Config> ask(std::size_t remaining,
                                common::Rng& rng) override;
  void tell(const std::vector<core::Config>& configs,
            const std::vector<double>& objectives, common::Rng& rng) override;

 private:
  static constexpr std::size_t kInvalidSlot = static_cast<std::size_t>(-1);

  /// Breeds one generation of trial vectors; fills trials_/slots_ and
  /// returns the constraint-valid configurations to evaluate.
  std::vector<core::Config> breed(common::Rng& rng);
  void select(const std::vector<double>& objectives);

  Options options_;
  const core::SearchSpace* space_ = nullptr;
  std::vector<std::vector<double>> population_;
  std::vector<double> objective_;
  std::vector<std::vector<double>> trials_;
  std::vector<std::size_t> slots_;  // population member -> batch slot
  bool seeded_ = false;
};

}  // namespace bat::tuners
