#include "tuners/random_search.hpp"

#include <algorithm>

namespace bat::tuners {

void RandomSearch::start(const core::SearchSpace& space, common::Rng&) {
  space_ = &space;
}

std::vector<core::Config> RandomSearch::ask(std::size_t remaining,
                                            common::Rng& rng) {
  const std::size_t n =
      std::max<std::size_t>(1, std::min(options_.batch, remaining));
  std::vector<core::Config> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(space_->random_valid_config(rng));
  }
  return batch;
}

}  // namespace bat::tuners
