#include "tuners/random_search.hpp"

namespace bat::tuners {

void RandomSearch::optimize(core::CachingEvaluator& evaluator,
                            common::Rng& rng) {
  const auto& space = evaluator.problem().space();
  while (true) {
    (void)evaluator(space.random_valid_config(rng));
  }
}

}  // namespace bat::tuners
