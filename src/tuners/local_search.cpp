#include "tuners/local_search.hpp"

namespace bat::tuners {

void LocalSearch::optimize(core::CachingEvaluator& evaluator,
                           common::Rng& rng) {
  const auto& space = evaluator.space();
  while (true) {  // restart loop; budget exhaustion exits via exception
    core::Config current = space.random_valid_config(rng);
    double current_obj = evaluator(current);

    bool improved = true;
    while (improved) {
      improved = false;
      auto neighbors = space.valid_neighbors(current);
      rng.shuffle(neighbors);
      for (const auto& candidate : neighbors) {
        const double obj = evaluator(candidate);
        if (obj < current_obj) {  // first improvement
          current = candidate;
          current_obj = obj;
          improved = true;
          break;
        }
      }
    }
  }
}

}  // namespace bat::tuners
