#include "tuners/local_search.hpp"

#include "core/compiled_space.hpp"

namespace bat::tuners {

void LocalSearch::optimize(core::CachingEvaluator& evaluator,
                           common::Rng& rng) {
  const auto& space = evaluator.space();
  const auto& compiled = space.compiled();
  core::NeighborScratch scratch;
  std::vector<core::ConfigIndex> neighbors;  // reused across steps
  while (true) {  // restart loop; budget exhaustion exits via exception
    core::ConfigIndex current = space.random_valid_index(rng);
    double current_obj = evaluator.evaluate_index(current);

    bool improved = true;
    while (improved) {
      improved = false;
      neighbors.clear();
      compiled.for_each_valid_neighbor_index(
          current, scratch,
          [&](core::ConfigIndex n) { neighbors.push_back(n); });
      rng.shuffle(neighbors);
      for (const auto candidate : neighbors) {
        const double obj = evaluator.evaluate_index(candidate);
        if (obj < current_obj) {  // first improvement
          current = candidate;
          current_obj = obj;
          improved = true;
          break;
        }
      }
    }
  }
}

}  // namespace bat::tuners
