#include "tuners/ils.hpp"

#include <algorithm>

#include "core/compiled_space.hpp"

namespace bat::tuners {

namespace {

/// Shared per-run buffers so descents allocate nothing per step.
struct IlsScratch {
  core::NeighborScratch neighbor;
  std::vector<core::ConfigIndex> neighbors;
  std::vector<std::uint32_t> digits;
};

/// Greedy first-improvement descent from `start`; returns the local
/// minimum and its objective. Index-native: candidates stay ConfigIndex.
std::pair<core::ConfigIndex, double> descend(core::CachingEvaluator& evaluator,
                                             const core::CompiledSpace& compiled,
                                             common::Rng& rng,
                                             IlsScratch& scratch,
                                             core::ConfigIndex start,
                                             double start_obj) {
  core::ConfigIndex current = start;
  double current_obj = start_obj;
  bool improved = true;
  while (improved) {
    improved = false;
    scratch.neighbors.clear();
    compiled.for_each_valid_neighbor_index(
        current, scratch.neighbor,
        [&](core::ConfigIndex n) { scratch.neighbors.push_back(n); });
    rng.shuffle(scratch.neighbors);
    for (const auto candidate : scratch.neighbors) {
      const double obj = evaluator.evaluate_index(candidate);
      if (obj < current_obj) {
        current = candidate;
        current_obj = obj;
        improved = true;
        break;
      }
    }
  }
  return {current, current_obj};
}

}  // namespace

void IteratedLocalSearch::optimize(core::CachingEvaluator& evaluator,
                                   common::Rng& rng) {
  const auto& space = evaluator.space();
  const auto& compiled = space.compiled();
  IlsScratch scratch;

  while (true) {  // restart loop
    const core::ConfigIndex start = space.random_valid_index(rng);
    auto [incumbent, incumbent_obj] = descend(
        evaluator, compiled, rng, scratch, start,
        evaluator.evaluate_index(start));

    std::size_t no_improve = 0;
    while (no_improve < options_.max_no_improve) {
      // Perturb: re-randomize a few digits of the incumbent.
      compiled.decode_digits(incumbent, scratch.digits);
      const std::size_t k =
          std::min(options_.perturbation_strength, scratch.digits.size());
      const auto picks = rng.sample_indices(scratch.digits.size(), k);
      for (const auto p : picks) {
        scratch.digits[p] =
            static_cast<std::uint32_t>(rng.next_below(compiled.radix(p)));
      }
      const core::ConfigIndex perturbed =
          compiled.index_of_digits(scratch.digits);
      if (!compiled.is_valid_index(perturbed)) continue;

      auto [candidate, candidate_obj] = descend(
          evaluator, compiled, rng, scratch, perturbed,
          evaluator.evaluate_index(perturbed));
      if (candidate_obj < incumbent_obj) {
        incumbent = candidate;
        incumbent_obj = candidate_obj;
        no_improve = 0;
      } else {
        ++no_improve;
      }
    }
  }
}

}  // namespace bat::tuners
