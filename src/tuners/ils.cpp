#include "tuners/ils.hpp"

#include <algorithm>

namespace bat::tuners {

namespace {

/// Greedy first-improvement descent from `start`; returns the local
/// minimum and its objective.
std::pair<core::Config, double> descend(core::CachingEvaluator& evaluator,
                                        common::Rng& rng, core::Config start,
                                        double start_obj) {
  const auto& space = evaluator.space();
  core::Config current = std::move(start);
  double current_obj = start_obj;
  bool improved = true;
  while (improved) {
    improved = false;
    auto neighbors = space.valid_neighbors(current);
    rng.shuffle(neighbors);
    for (const auto& candidate : neighbors) {
      const double obj = evaluator(candidate);
      if (obj < current_obj) {
        current = candidate;
        current_obj = obj;
        improved = true;
        break;
      }
    }
  }
  return {std::move(current), current_obj};
}

}  // namespace

void IteratedLocalSearch::optimize(core::CachingEvaluator& evaluator,
                                   common::Rng& rng) {
  const auto& space = evaluator.space();
  const auto& params = space.params();

  while (true) {  // restart loop
    core::Config start = space.random_valid_config(rng);
    auto [incumbent, incumbent_obj] =
        descend(evaluator, rng, start, evaluator(start));

    std::size_t no_improve = 0;
    while (no_improve < options_.max_no_improve) {
      // Perturb: re-randomize a few parameters of the incumbent.
      core::Config perturbed = incumbent;
      const std::size_t k =
          std::min(options_.perturbation_strength, perturbed.size());
      const auto picks = rng.sample_indices(perturbed.size(), k);
      for (const auto p : picks) {
        perturbed[p] = rng.pick(params.param(p).values());
      }
      if (!space.constraints().satisfied(perturbed)) continue;

      auto [candidate, candidate_obj] =
          descend(evaluator, rng, perturbed, evaluator(perturbed));
      if (candidate_obj < incumbent_obj) {
        incumbent = std::move(candidate);
        incumbent_obj = candidate_obj;
        no_improve = 0;
      } else {
        ++no_improve;
      }
    }
  }
}

}  // namespace bat::tuners
