// PeerSet: static cluster membership, per-peer health, ownership hash.
//
// Membership is a fixed host:port list agreed on at startup (`tune
// serve --peers a:1,b:2,c:3` — every node passes the same list and
// names itself by index). No discovery, no reconfiguration: the paper's
// workloads are batch tuning campaigns, and a static fleet keeps the
// ownership function a pure computation every node evaluates
// identically with zero coordination.
//
// Ownership: rendezvous (highest-random-weight) hashing of
// (workload, key-block) over ALL members. Deliberately health-blind —
// if ownership moved when a peer looked down, two nodes with different
// failure observations would route the same ordinal to different
// owners and exactly-once would silently break. A down owner instead
// means claimants fall back to evaluating locally (see
// DistributedMeasurementCache), trading duplicate work for liveness
// only while the peer is actually unreachable.
//
// Health: per-peer consecutive-failure counters fed by every RPC
// outcome (and the gossip loop); `fail_threshold` consecutive failures
// mark a peer down, one success marks it up. record_failure() reports
// the up->down transition exactly once so the caller can run
// dead-claimant sweeps without double-firing.
//
// Thread-safety: health counters are atomics; membership is immutable
// after construction. All methods are safe from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace bat::cluster {

struct PeerAddress {
  std::string host;  // IPv4 literal, e.g. "127.0.0.1"
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const {
    return host + ":" + std::to_string(port);
  }
  [[nodiscard]] bool operator==(const PeerAddress& o) const noexcept {
    return host == o.host && port == o.port;
  }
};

/// Parses "host:port"; throws std::invalid_argument on malformed input
/// (missing colon, non-numeric or out-of-range port).
[[nodiscard]] PeerAddress parse_peer_address(std::string_view text);

class PeerSet {
 public:
  struct Health {
    bool up = true;
    std::uint32_t consecutive_failures = 0;
    std::uint64_t rpcs_ok = 0;
    std::uint64_t rpcs_failed = 0;
  };

  /// `members` is the full cluster (self included), identical on every
  /// node; `self_index` names this node within it. Throws on an empty
  /// set or out-of-range self.
  PeerSet(std::vector<PeerAddress> members, std::size_t self_index,
          int fail_threshold = 3);

  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] std::size_t self_index() const noexcept { return self_; }
  [[nodiscard]] const PeerAddress& address(std::size_t i) const {
    return members_[i];
  }

  /// Owner of `block` for `workload`, over all members, health-blind.
  /// Pure: identical on every node for identical membership.
  [[nodiscard]] std::size_t owner_of(std::string_view workload,
                                     std::uint64_t block) const noexcept;

  void record_ok(std::size_t peer) noexcept;
  /// Returns true exactly when this failure transitions the peer from
  /// up to down (consecutive failures reached fail_threshold).
  [[nodiscard]] bool record_failure(std::size_t peer) noexcept;
  /// Self is always up; peers are up until fail_threshold consecutive
  /// failures and recover on the first successful RPC.
  [[nodiscard]] bool up(std::size_t peer) const noexcept;
  [[nodiscard]] Health health(std::size_t peer) const noexcept;

 private:
  struct State {
    std::atomic<std::uint32_t> consecutive{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> failed{0};
  };

  std::vector<PeerAddress> members_;
  std::size_t self_;
  std::uint32_t threshold_;
  std::unique_ptr<State[]> states_;  // atomics are not movable
};

}  // namespace bat::cluster
