// BATDFR01: the compact relay frame shipped between cluster peers.
//
// When a measurement is published at its owner, every other node wants
// it (their sessions will probe the same configuration — local minima
// attract every tuner). Naively each node would re-request it over a
// JSON RPC, or the owner would re-ship whole datasets. Instead the
// owner batches fresh publishes per destination and pushes one binary
// *delta frame* — only what the destination has not seen, in columns,
// the sketch-and-fill discipline of compact block relay applied to
// measurements.
//
// Wire layout (little-endian, matching the BATDSB01 dataset format's
// conventions — see docs/dataset-format.md):
//
//   magic      8 bytes   "BATDFR01"
//   wl_len     u32       workload id length
//   workload   wl_len    "kernel|device|backend" (UTF-8, no NUL)
//   count      u32       number of records
//   keys       varint[]  LEB128 deltas of the sorted ConfigIndex keys
//                        (first is absolute); sorted keys from one
//                        space compile to small gaps, so most deltas
//                        fit 1-2 bytes vs 8 raw
//   time_bits  u64[]     IEEE-754 bit patterns of time_ms, in key order
//                        (bit-exact by construction: the cluster's
//                        byte-identical-trace guarantee cannot survive
//                        a decimal round-trip)
//   status     u8[]      MeasureStatus, in key order
//   crc        u32       CRC-32 (io::crc32) of everything above
//
// decode_delta_frame() is strict: bad magic, truncation, overlong
// varints, key overflow, or a CRC mismatch all throw — a frame comes
// from the network and must not be trusted.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bat::cluster {

inline constexpr char kDeltaFrameMagic[8] = {'B', 'A', 'T', 'D',
                                             'F', 'R', '0', '1'};

struct DeltaRecord {
  std::uint64_t key = 0;        // raw ConfigIndex (wire key)
  std::uint64_t time_bits = 0;  // bit_cast of Measurement::time_ms
  std::uint8_t status = 0;      // core::MeasureStatus
};

struct DeltaFrame {
  std::string workload;  // "kernel|device|backend"
  std::vector<DeltaRecord> records;
};

/// Encodes a frame; records are sorted by key in place first (the
/// delta encoding requires it; duplicates are kept — last wins on
/// decode apply, and publishers never produce them anyway).
[[nodiscard]] std::string encode_delta_frame(DeltaFrame& frame);

/// Strict decode; throws std::runtime_error on any malformation.
[[nodiscard]] DeltaFrame decode_delta_frame(std::string_view bytes);

}  // namespace bat::cluster
