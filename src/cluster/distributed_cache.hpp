// DistributedMeasurementCache: the cluster-wide exactly-once layer.
//
// Implements core::SharedMeasurementCache over a whole peer set, so
// the service's claim/publish/abandon/wait dance (see
// core/shared_cache.hpp and CountingBackend) transparently dedupes
// evaluations *across nodes*, not just across sessions. The routing
// per probed index:
//
//   1. read-through cache: remote publishes (claim-RPC hits and relay
//      frames) land in a bounded local map — a repeat probe costs zero
//      RPCs and zero shard locks;
//   2. locally-owned keys (PeerSet::owner_of says self): straight into
//      the local ShardedMeasurementCache — the single-node fast path,
//      completely RPC-free;
//   3. remotely-owned keys: one claim RPC to the owner. kHit fills the
//      read-through cache; kClaimed means *this node* evaluates and
//      then publishes back to the owner (a route entry remembers the
//      pairing); kPending means some node is on it — wait() polls the
//      owner's lookup route;
//   4. owner down (health says so, or the RPC fails): fall back to
//      claiming in the *local* shard. Liveness beats global dedup
//      while a peer is actually unreachable; the duplicate work is
//      bounded by the outage and exactly-once is preserved whenever
//      the cluster is healthy.
//
// Ownership granularity: keys are grouped into blocks of `block_size`
// consecutive valid ordinals before hashing, so neighborhood sweeps
// (every local-search tuner) mostly talk to one owner instead of
// scattering RPCs across the fleet. Keys are the same valid-ordinal
// mapping ShardedMeasurementCache uses (dense via CompiledSpace::rank,
// invalid indices offset past num_valid) — deterministic from the
// kernel alone, so every node computes identical owners with zero
// coordination. The *wire* always carries the raw ConfigIndex; each
// side re-derives its own keys.
//
// PeerLink is the seam to the transport (implemented by ClusterNode,
// faked in tests): forwarding RPCs, health, relay announcements. It
// keeps this file free of HTTP and the node free of cache logic.
//
// Thread-safety: fully thread-safe (the SharedMeasurementCache
// contract); one mutex guards the read-through map + routes, the
// local shard has its own sharded locks, RPCs run lock-free.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "cluster/peer_client.hpp"
#include "core/compiled_space.hpp"
#include "core/shared_cache.hpp"
#include "service/sharded_cache.hpp"

namespace bat::cluster {

/// Transport + membership seam between the distributed cache and the
/// node (ClusterNode implements it; tests fake it). forward_* return
/// nullopt/false on transport failure — the caller falls back local.
class PeerLink {
 public:
  virtual ~PeerLink() = default;

  [[nodiscard]] virtual std::size_t self_index() const = 0;
  [[nodiscard]] virtual std::size_t owner_of(const std::string& workload,
                                             std::uint64_t block) const = 0;
  [[nodiscard]] virtual bool peer_up(std::size_t peer) const = 0;
  /// True once the node is shutting down (wait() stops polling).
  [[nodiscard]] virtual bool stopping() const = 0;

  [[nodiscard]] virtual std::optional<ClaimReply> forward_claim(
      std::size_t peer, const std::string& workload,
      std::uint64_t index) = 0;
  [[nodiscard]] virtual bool forward_publish(std::size_t peer,
                                             const std::string& workload,
                                             std::uint64_t index,
                                             const core::Measurement& m) = 0;
  virtual void forward_abandon(std::size_t peer, const std::string& workload,
                               std::uint64_t index) = 0;
  [[nodiscard]] virtual std::optional<LookupReply> forward_lookup(
      std::size_t peer, const std::string& workload,
      std::uint64_t index) = 0;

  /// A measurement owned here was just published locally: fan it out
  /// to the relay hub so peers warm their read-through caches.
  virtual void announce_publish(const std::string& workload,
                                std::uint64_t index,
                                const core::Measurement& m) = 0;
};

struct DistributedCacheOptions {
  /// Consecutive valid-ordinal keys per ownership block.
  std::uint64_t block_size = 64;
  /// Read-through map entry cap; on overflow the map is cleared (it is
  /// a pure cache — every entry refills via one RPC on next use).
  std::size_t remote_cache_cap = 1u << 20;
  /// wait()-side poll interval against a remote owner's lookup route.
  int wait_poll_ms = 1;
};

class DistributedMeasurementCache final
    : public core::SharedMeasurementCache {
 public:
  struct Stats {
    std::uint64_t cluster_cache_hits = 0;   // served by a remote publish
    std::uint64_t claims_forwarded = 0;     // claim RPCs sent
    std::uint64_t publishes_forwarded = 0;  // publish RPCs sent
    std::uint64_t fallback_claims = 0;      // owner down -> local claim
    std::uint64_t relay_records_stored = 0; // read-through fills via relay
  };

  /// `local` is this node's shard for the workload (also what
  /// /v1/peers/* handlers serve when this node is the owner);
  /// `compiled` may be null (raw-index keying, as in the local cache).
  DistributedMeasurementCache(
      std::string workload,
      std::shared_ptr<service::ShardedMeasurementCache> local,
      std::shared_ptr<const core::CompiledSpace> compiled, PeerLink& link,
      DistributedCacheOptions options = {});

  [[nodiscard]] Claim claim(core::ConfigIndex index) override;
  void publish(core::ConfigIndex index, const core::Measurement& m) override;
  void abandon(core::ConfigIndex index) override;
  [[nodiscard]] std::optional<core::Measurement> wait(
      core::ConfigIndex index) override;

  /// A relay frame (or forwarded hit) delivered a remote publish:
  /// fill the read-through cache. `raw` is the wire ConfigIndex.
  void store_remote(core::ConfigIndex raw, const core::Measurement& m,
                    bool from_relay);

  [[nodiscard]] const std::string& workload() const noexcept {
    return workload_;
  }
  [[nodiscard]] const std::shared_ptr<service::ShardedMeasurementCache>&
  local() const noexcept {
    return local_;
  }
  [[nodiscard]] Stats stats() const;

 private:
  [[nodiscard]] std::uint64_t key_of(core::ConfigIndex index) const;
  [[nodiscard]] std::size_t owner_of_key(std::uint64_t key) const;
  void store_remote_locked(std::uint64_t key, const core::Measurement& m);

  std::string workload_;
  std::shared_ptr<service::ShardedMeasurementCache> local_;
  std::shared_ptr<const core::CompiledSpace> compiled_;
  bool by_ordinal_ = false;
  std::uint64_t invalid_offset_ = 0;
  PeerLink& link_;
  DistributedCacheOptions options_;

  mutable std::mutex mutex_;
  /// Remote publishes, keyed by local key. Bounded (see options).
  std::unordered_map<std::uint64_t, core::Measurement> remote_ready_;
  /// kClaimed-via-RPC routes: key -> owner peer, so publish/abandon
  /// pair with the node that granted the claim (not whatever health
  /// says at publish time).
  std::unordered_map<std::uint64_t, std::size_t> routes_;
  Stats stats_;
};

}  // namespace bat::cluster
