// PeerClient: the JSON/binary RPC surface one node speaks to one peer.
//
// A thin, typed layer over net::HttpClient against the /v1/peers/*
// routes. One persistent keep-alive connection per peer, serialized by
// a mutex — peer RPCs are sub-millisecond loopback round trips and the
// claim protocol is deliberately chatty-but-small, so one connection
// per peer pair is plenty (and keeps the fleet's socket count linear).
//
// Every call throws std::runtime_error on transport failure, timeout
// or a non-2xx status; the ClusterNode wrapper translates throws into
// PeerSet health bookkeeping. Timeouts come from ClientOptions
// (finite by default here, unlike the interactive CLI): a hung peer
// costs one bounded stall, not a parked session worker.
//
// Wire conventions (documented in docs/cluster.md): u64 values
// (ConfigIndex, time bit patterns) travel as decimal *strings* in JSON
// bodies. common::Json stores integers as int64 and dumps doubles at 9
// significant digits; either path would silently corrupt bit patterns
// above 2^53, and byte-identical traces are a cluster invariant, not a
// nice-to-have. Binary relay frames (delta_frame.hpp) are POSTed raw.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "cluster/peer_set.hpp"
#include "common/json.hpp"
#include "core/measurement.hpp"
#include "net/http_client.hpp"

namespace bat::cluster {

/// Reply to a forwarded claim. Mirrors SharedMeasurementCache::Claim
/// (kHit carries the measurement) but is a distinct wire-facing type.
struct ClaimReply {
  enum class State { kHit, kClaimed, kPending };
  State state = State::kClaimed;
  core::Measurement measurement;  // meaningful only for kHit
};

/// Reply to a non-claiming lookup (the wait-side polling RPC).
struct LookupReply {
  enum class State { kReady, kPending, kAbsent };
  State state = State::kAbsent;
  core::Measurement measurement;  // meaningful only for kReady
};

/// Measurement <-> JSON fields ("time_bits" decimal string + "status"
/// int). Shared by PeerClient (requests) and ClusterNode (replies).
void measurement_to_json(const core::Measurement& m,
                         common::JsonObject& out);
[[nodiscard]] core::Measurement measurement_from_json(
    const common::Json& object);

/// Strict u64-as-decimal-string codec for JSON bodies (see header
/// comment). parse_u64_field throws on missing/malformed fields.
[[nodiscard]] std::string u64_to_string(std::uint64_t v);
[[nodiscard]] std::uint64_t parse_u64_field(const common::Json& object,
                                            const std::string& key);

class PeerClient {
 public:
  PeerClient(PeerAddress address, net::ClientOptions options);

  [[nodiscard]] const PeerAddress& address() const noexcept {
    return address_;
  }

  /// POST /v1/peers/claim — forwarded claim; `self` identifies the
  /// claimant for the owner's InflightIndex.
  [[nodiscard]] ClaimReply claim(const std::string& workload,
                                 std::uint64_t index, std::size_t self);

  /// POST /v1/peers/publish — fulfil a forwarded claim at the owner.
  void publish(const std::string& workload, std::uint64_t index,
               const core::Measurement& m, std::size_t self);

  /// POST /v1/peers/abandon — release a forwarded claim unfulfilled.
  void abandon(const std::string& workload, std::uint64_t index,
               std::size_t self);

  /// POST /v1/peers/lookup — non-claiming probe (wait-side polling).
  [[nodiscard]] LookupReply lookup(const std::string& workload,
                                   std::uint64_t index);

  /// POST /v1/peers/relay — pre-encoded binary delta frame.
  void relay(const std::string& frame_bytes);

  /// POST /v1/peers/gossip — health ping; returns the peer's reply.
  [[nodiscard]] common::Json gossip(std::size_t self);

 private:
  [[nodiscard]] common::Json post_json(const std::string& route,
                                       const common::Json& body);

  PeerAddress address_;
  std::mutex mutex_;  // serializes the single connection
  net::HttpClient http_;
};

}  // namespace bat::cluster
