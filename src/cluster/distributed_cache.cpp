#include "cluster/distributed_cache.hpp"

#include <chrono>
#include <thread>
#include <utility>

namespace bat::cluster {

DistributedMeasurementCache::DistributedMeasurementCache(
    std::string workload,
    std::shared_ptr<service::ShardedMeasurementCache> local,
    std::shared_ptr<const core::CompiledSpace> compiled, PeerLink& link,
    DistributedCacheOptions options)
    : workload_(std::move(workload)),
      local_(std::move(local)),
      compiled_(std::move(compiled)),
      link_(link),
      options_(options) {
  if (options_.block_size == 0) options_.block_size = 1;
  if (compiled_ && compiled_->has_valid_set()) {
    by_ordinal_ = true;
    invalid_offset_ = compiled_->num_valid();
  }
}

std::uint64_t DistributedMeasurementCache::key_of(
    core::ConfigIndex index) const {
  // Identical mapping to ShardedMeasurementCache::key_of: dense valid
  // ordinals (so block ownership really partitions the compiled space),
  // invalid indices offset past num_valid. CompiledSpace is a pure
  // function of the kernel, so every node derives the same keys.
  if (!by_ordinal_) return index;
  if (const auto ordinal = compiled_->rank(index)) return *ordinal;
  return invalid_offset_ + index;
}

std::size_t DistributedMeasurementCache::owner_of_key(
    std::uint64_t key) const {
  return link_.owner_of(workload_, key / options_.block_size);
}

void DistributedMeasurementCache::store_remote_locked(
    std::uint64_t key, const core::Measurement& m) {
  // Overflow policy: clear. The map is a pure read-through cache (the
  // owner's shard stays authoritative), so dropping it costs one claim
  // RPC per re-probed key, never correctness. Cheaper and simpler than
  // LRU chains at a cap this size.
  if (remote_ready_.size() >= options_.remote_cache_cap) {
    remote_ready_.clear();
  }
  remote_ready_[key] = m;
}

void DistributedMeasurementCache::store_remote(core::ConfigIndex raw,
                                               const core::Measurement& m,
                                               bool from_relay) {
  const auto key = key_of(raw);
  std::lock_guard lock(mutex_);
  store_remote_locked(key, m);
  if (from_relay) ++stats_.relay_records_stored;
}

DistributedMeasurementCache::Claim DistributedMeasurementCache::claim(
    core::ConfigIndex index) {
  const auto key = key_of(index);
  {
    std::lock_guard lock(mutex_);
    const auto it = remote_ready_.find(key);
    if (it != remote_ready_.end()) {
      ++stats_.cluster_cache_hits;
      return Claim{ClaimState::kHit, it->second};
    }
  }

  const std::size_t owner = owner_of_key(key);
  if (owner == link_.self_index()) {
    return local_->claim(index);  // single-node fast path, zero RPCs
  }
  if (!link_.peer_up(owner)) {
    std::lock_guard lock(mutex_);
    ++stats_.fallback_claims;
    return local_->claim(index);
  }

  {
    std::lock_guard lock(mutex_);
    ++stats_.claims_forwarded;
  }
  const auto reply = link_.forward_claim(owner, workload_, index);
  if (!reply) {
    // Transport failure mid-claim: the owner just went dark. Evaluate
    // locally — liveness over global dedup for the outage's duration.
    std::lock_guard lock(mutex_);
    ++stats_.fallback_claims;
    return local_->claim(index);
  }
  switch (reply->state) {
    case ClaimReply::State::kHit: {
      std::lock_guard lock(mutex_);
      store_remote_locked(key, reply->measurement);
      ++stats_.cluster_cache_hits;
      return Claim{ClaimState::kHit, reply->measurement};
    }
    case ClaimReply::State::kClaimed: {
      // This node evaluates; remember which peer granted the claim so
      // publish/abandon pair with it even if health flaps meanwhile.
      std::lock_guard lock(mutex_);
      routes_[key] = owner;
      return Claim{ClaimState::kClaimed, {}};
    }
    case ClaimReply::State::kPending:
      return Claim{ClaimState::kPending, {}};
  }
  return Claim{ClaimState::kPending, {}};  // unreachable
}

void DistributedMeasurementCache::publish(core::ConfigIndex index,
                                          const core::Measurement& m) {
  const auto key = key_of(index);
  std::optional<std::size_t> route;
  {
    std::lock_guard lock(mutex_);
    const auto it = routes_.find(key);
    if (it != routes_.end()) {
      route = it->second;
      routes_.erase(it);
      ++stats_.publishes_forwarded;
      // Local sessions re-probing this key hit the read-through map
      // without an RPC, exactly as if a relay frame had delivered it.
      store_remote_locked(key, m);
    }
  }
  if (route) {
    if (!link_.forward_publish(*route, workload_, index, m)) {
      // The owner vanished between claim and publish. Keep the value
      // usable on this node; the owner's dead-claimant sweep releases
      // its pending entry so nobody over there waits forever.
      (void)local_->force_publish(index, m);
    }
    return;
  }
  // No route: the claim was served by the local shard — either this
  // node owns the key or the owner was down at claim time (fallback).
  local_->publish(index, m);
  if (owner_of_key(key) == link_.self_index()) {
    link_.announce_publish(workload_, index, m);
  }
}

void DistributedMeasurementCache::abandon(core::ConfigIndex index) {
  const auto key = key_of(index);
  std::optional<std::size_t> route;
  {
    std::lock_guard lock(mutex_);
    const auto it = routes_.find(key);
    if (it != routes_.end()) {
      route = it->second;
      routes_.erase(it);
    }
  }
  if (route) {
    link_.forward_abandon(*route, workload_, index);  // best effort
    return;
  }
  (void)local_->try_abandon(index);
}

std::optional<core::Measurement> DistributedMeasurementCache::wait(
    core::ConfigIndex index) {
  const auto key = key_of(index);
  {
    std::lock_guard lock(mutex_);
    const auto it = remote_ready_.find(key);
    if (it != remote_ready_.end()) {
      ++stats_.cluster_cache_hits;
      return it->second;
    }
  }
  // Anything the local shard knows about (self-owned, or a fallback
  // claim raced here) resolves through the local condition variables.
  if (local_->probe(index).state !=
      service::ShardedMeasurementCache::ProbeState::kAbsent) {
    return local_->wait(index);
  }
  const std::size_t owner = owner_of_key(key);
  if (owner == link_.self_index()) return local_->wait(index);
  if (!link_.peer_up(owner)) return std::nullopt;  // caller re-claims

  // Poll the owner. The claim protocol guarantees the pending entry
  // resolves in finite time (its claimant publishes or abandons, or
  // the owner's dead-claimant sweep abandons for it), so this loop
  // terminates; `stopping` bounds it across node shutdown.
  while (!link_.stopping()) {
    const auto reply = link_.forward_lookup(owner, workload_, index);
    if (!reply) return std::nullopt;  // owner dark: re-claim, fall back
    switch (reply->state) {
      case LookupReply::State::kReady: {
        std::lock_guard lock(mutex_);
        store_remote_locked(key, reply->measurement);
        ++stats_.cluster_cache_hits;
        return reply->measurement;
      }
      case LookupReply::State::kAbsent:
        return std::nullopt;  // abandoned: re-claim and retry
      case LookupReply::State::kPending:
        break;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.wait_poll_ms));
  }
  return std::nullopt;
}

DistributedMeasurementCache::Stats DistributedMeasurementCache::stats()
    const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace bat::cluster
