#include "cluster/cluster_node.hpp"

#include <bit>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/log.hpp"
#include "obs/trace.hpp"

namespace bat::cluster {

using common::Json;
using common::JsonArray;
using common::JsonObject;

namespace {

net::HttpResponse json_response(int status, const Json& body) {
  net::HttpResponse response;
  response.status = status;
  response.headers.emplace_back("content-type", "application/json");
  response.body = body.dump();
  return response;
}

net::HttpResponse error_json(int status, std::string message) {
  JsonObject object;
  object.emplace("error", std::move(message));
  return json_response(status, Json(std::move(object)));
}

const std::string& string_field(const Json& body, const std::string& key) {
  const Json* field = body.find(key);
  if (field == nullptr || !field->is_string()) {
    throw std::runtime_error("peer rpc: missing or non-string '" + key +
                             "'");
  }
  return field->as_string();
}

std::size_t from_field(const Json& body) {
  const Json* field = body.find("from");
  if (field == nullptr || !field->is_int() || field->as_int() < 0) {
    throw std::runtime_error("peer rpc: missing or bad 'from'");
  }
  return static_cast<std::size_t>(field->as_int());
}

/// Observes the enclosing scope's wall time into `h` — including the
/// error paths, so timeout-bound failures show up in the tail.
class RpcTimer {
 public:
#ifndef BAT_OBS_OFF
  explicit RpcTimer(obs::Histogram* h) noexcept
      : h_(h), start_ns_(obs::monotonic_now_ns()) {}
  ~RpcTimer() {
    h_->observe(
        static_cast<double>(obs::monotonic_now_ns() - start_ns_) / 1e9);
  }

 private:
  obs::Histogram* h_;
  std::uint64_t start_ns_;
#else
  explicit RpcTimer(obs::Histogram*) noexcept {}
#endif
};

}  // namespace

ClusterNode::ClusterNode(ClusterOptions options)
    : options_(std::move(options)),
      peers_(options_.members, options_.self_index, options_.fail_threshold),
      relay_(options_.members.size(), options_.self_index,
             [this](std::size_t peer, const std::string& bytes) {
               send_frame(peer, bytes);
             },
             options_.relay) {
  const net::ClientOptions client_options{
      .connect_timeout_ms = options_.connect_timeout_ms,
      .io_timeout_ms = options_.io_timeout_ms,
  };
  clients_.reserve(peers_.size());
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    clients_.push_back(
        std::make_unique<PeerClient>(peers_.address(i), client_options));
  }

  metrics_ = options_.metrics ? options_.metrics
                              : std::make_shared<obs::MetricsRegistry>();
  peer_claims_served_ =
      metrics_->counter("bat_cluster_peer_claims_served_total",
                        "Inbound peer claims answered with a hit");
  peer_publishes_received_ =
      metrics_->counter("bat_cluster_peer_publishes_received_total",
                        "Inbound peer publish RPCs accepted");
  relay_frames_received_ = metrics_->counter(
      "bat_cluster_relay_frames_received_total", "Relay frames received");
  relay_records_received_ =
      metrics_->counter("bat_cluster_relay_records_received_total",
                        "Delta records received via relay frames");
  relay_bytes_received_ = metrics_->counter(
      "bat_cluster_relay_bytes_received_total", "Relay bytes received");
  relay_frames_ignored_ =
      metrics_->counter("bat_cluster_relay_frames_ignored_total",
                        "Relay frames for workloads with no local sessions");
  relay_frames_dropped_ =
      metrics_->counter("bat_cluster_relay_frames_dropped_total",
                        "Relay frames dropped (peer down or send failed)");
  // 100us..~3.3s log-scale; the io timeout bounds the +Inf tail.
  const auto rpc_bounds = obs::Histogram::exponential(1e-4, 2.0, 15);
  const auto rpc_histogram = [&](const char* rpc) {
    return metrics_->histogram("bat_cluster_peer_rpc_duration_seconds",
                               "Outbound peer RPC wall time, by rpc",
                               rpc_bounds, {{"rpc", rpc}});
  };
  rpc_claim_duration_ = rpc_histogram("claim");
  rpc_publish_duration_ = rpc_histogram("publish");
  rpc_abandon_duration_ = rpc_histogram("abandon");
  rpc_lookup_duration_ = rpc_histogram("lookup");
}

ClusterNode::~ClusterNode() { stop(); }

void ClusterNode::start() {
  {
    std::lock_guard lock(gossip_mutex_);
    if (started_) return;
    started_ = true;
    stopping_.store(false, std::memory_order_relaxed);
  }
  relay_.start();
  gossip_thread_ = std::thread([this] { gossip_main(); });
  common::log_info("cluster: node ", peers_.self_index(), "/",
                   peers_.size(), " up at ",
                   peers_.address(peers_.self_index()).to_string());
}

void ClusterNode::stop() {
  {
    std::lock_guard lock(gossip_mutex_);
    if (!started_) {
      stopping_.store(true, std::memory_order_relaxed);
      return;
    }
    started_ = false;
    stopping_.store(true, std::memory_order_relaxed);
  }
  gossip_cv_.notify_all();
  gossip_thread_.join();
  relay_.stop();
}

std::string ClusterNode::workload_id(const std::string& kernel,
                                     std::size_t device,
                                     const std::string& backend) {
  return kernel + "|" + std::to_string(device) + "|" + backend;
}

ClusterNode::Entry ClusterNode::snapshot_entry(const std::string& workload,
                                               bool create) {
  std::lock_guard lock(registry_mutex_);
  auto it = registry_.find(workload);
  if (it == registry_.end()) {
    if (!create) return {};
    // A peer touched this workload before any local session did: serve
    // it from a bare (raw-keyed) shard. cache_for() later reuses this
    // exact shard — swapping it would strand the peers' claims.
    it = registry_.emplace(workload, Entry{}).first;
    it->second.shard = std::make_shared<service::ShardedMeasurementCache>(
        nullptr, options_.cache_shards);
  }
  return it->second;
}

std::shared_ptr<DistributedMeasurementCache> ClusterNode::cache_for(
    const std::string& kernel, std::size_t device,
    const std::string& backend,
    std::shared_ptr<const core::CompiledSpace> compiled) {
  const std::string workload = workload_id(kernel, device, backend);
  std::lock_guard lock(registry_mutex_);
  Entry& entry = registry_[workload];
  if (entry.dist) return entry.dist;
  if (!entry.shard) {
    entry.shard = std::make_shared<service::ShardedMeasurementCache>(
        compiled, options_.cache_shards);
  }
  entry.dist = std::make_shared<DistributedMeasurementCache>(
      workload, entry.shard, std::move(compiled), *this, options_.cache);
  return entry.dist;
}

// --- outbound (PeerLink) -------------------------------------------

void ClusterNode::record_ok(std::size_t peer) { peers_.record_ok(peer); }

void ClusterNode::record_failure(std::size_t peer) {
  if (peers_.record_failure(peer)) {
    common::log_info("cluster: peer ", peer, " (",
                     peers_.address(peer).to_string(),
                     ") marked down; sweeping its claims");
    sweep_peer(peer);
  }
}

void ClusterNode::sweep_peer(std::size_t peer) {
  for (const auto& [workload, index] : inflight_.take_peer(peer)) {
    const Entry entry = snapshot_entry(workload, /*create=*/false);
    if (entry.shard) (void)entry.shard->try_abandon(index);
  }
}

std::optional<ClaimReply> ClusterNode::forward_claim(
    std::size_t peer, const std::string& workload, std::uint64_t index) {
  obs::ScopedSpan span("peer.claim");
  if (span.active()) span.set_detail("peer=" + std::to_string(peer));
  RpcTimer timer(rpc_claim_duration_);
  try {
    auto reply =
        clients_[peer]->claim(workload, index, peers_.self_index());
    record_ok(peer);
    return reply;
  } catch (const std::exception&) {
    record_failure(peer);
    return std::nullopt;
  }
}

bool ClusterNode::forward_publish(std::size_t peer,
                                  const std::string& workload,
                                  std::uint64_t index,
                                  const core::Measurement& m) {
  obs::ScopedSpan span("peer.publish");
  if (span.active()) span.set_detail("peer=" + std::to_string(peer));
  RpcTimer timer(rpc_publish_duration_);
  try {
    clients_[peer]->publish(workload, index, m, peers_.self_index());
    record_ok(peer);
    return true;
  } catch (const std::exception&) {
    record_failure(peer);
    return false;
  }
}

void ClusterNode::forward_abandon(std::size_t peer,
                                  const std::string& workload,
                                  std::uint64_t index) {
  obs::ScopedSpan span("peer.abandon");
  if (span.active()) span.set_detail("peer=" + std::to_string(peer));
  RpcTimer timer(rpc_abandon_duration_);
  try {
    clients_[peer]->abandon(workload, index, peers_.self_index());
    record_ok(peer);
  } catch (const std::exception&) {
    record_failure(peer);
    // Best effort only: if the owner is gone, its own down-detection
    // of *us* is irrelevant — a pending entry at a dead owner matters
    // to nobody until the owner restarts empty.
  }
}

std::optional<LookupReply> ClusterNode::forward_lookup(
    std::size_t peer, const std::string& workload, std::uint64_t index) {
  obs::ScopedSpan span("peer.lookup");
  if (span.active()) span.set_detail("peer=" + std::to_string(peer));
  RpcTimer timer(rpc_lookup_duration_);
  try {
    auto reply = clients_[peer]->lookup(workload, index);
    record_ok(peer);
    return reply;
  } catch (const std::exception&) {
    record_failure(peer);
    return std::nullopt;
  }
}

void ClusterNode::announce_publish(const std::string& workload,
                                   std::uint64_t index,
                                   const core::Measurement& m) {
  relay_.enqueue(workload,
                 DeltaRecord{index, std::bit_cast<std::uint64_t>(m.time_ms),
                             static_cast<std::uint8_t>(m.status)},
                 std::nullopt);
}

void ClusterNode::send_frame(std::size_t peer, const std::string& bytes) {
  if (!peers_.up(peer)) {
    // Don't burn a timeout per frame on a known-down peer; it re-warms
    // via claim RPCs once gossip sees it again.
    relay_frames_dropped_->add();
    return;
  }
  try {
    clients_[peer]->relay(bytes);
    record_ok(peer);
  } catch (const std::exception&) {
    relay_frames_dropped_->add();
    record_failure(peer);
  }
}

void ClusterNode::gossip_main() {
  std::unique_lock lock(gossip_mutex_);
  while (!stopping_.load(std::memory_order_relaxed)) {
    gossip_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.gossip_interval_ms),
        [this] { return stopping_.load(std::memory_order_relaxed); });
    if (stopping_.load(std::memory_order_relaxed)) break;
    lock.unlock();
    gossip_once();
    lock.lock();
  }
}

void ClusterNode::gossip_once() {
  for (std::size_t peer = 0; peer < peers_.size(); ++peer) {
    if (peer == peers_.self_index()) continue;
    try {
      (void)clients_[peer]->gossip(peers_.self_index());
      record_ok(peer);
    } catch (const std::exception&) {
      record_failure(peer);
    }
  }
}

// --- inbound (/v1/peers/*) -----------------------------------------

net::HttpResponse ClusterNode::handle_peers(
    const net::HttpRequest& request) {
  const std::string path =
      request.target.substr(0, request.target.find('?'));
  try {
    if (path == "/v1/peers/health") {
      if (request.method != "GET") {
        return error_json(405, "use GET on /v1/peers/health");
      }
      return json_response(200, health_json());
    }
    if (request.method != "POST") {
      return error_json(405, "peer routes are POST (health is GET)");
    }
    if (path == "/v1/peers/relay") return handle_relay(request.body);
    const Json body = Json::parse(request.body);
    if (path == "/v1/peers/claim") return handle_claim(body);
    if (path == "/v1/peers/publish") return handle_publish(body);
    if (path == "/v1/peers/abandon") return handle_abandon(body);
    if (path == "/v1/peers/lookup") return handle_lookup(body);
    if (path == "/v1/peers/gossip") return handle_gossip(body);
    return error_json(404, "no such peer endpoint: " + path);
  } catch (const std::exception& e) {
    return error_json(400, e.what());
  }
}

net::HttpResponse ClusterNode::handle_claim(const Json& body) {
  const std::string& workload = string_field(body, "workload");
  const std::uint64_t index = parse_u64_field(body, "index");
  const std::size_t from = from_field(body);
  const Entry entry = snapshot_entry(workload, /*create=*/true);

  const auto claim = entry.shard->claim(index);
  JsonObject reply;
  switch (claim.state) {
    case service::ShardedMeasurementCache::ClaimState::kHit:
      peer_claims_served_->add();
      reply["state"] = "hit";
      measurement_to_json(claim.measurement, reply);
      break;
    case service::ShardedMeasurementCache::ClaimState::kClaimed:
      // The remote claimant now owes publish/abandon; remember who, so
      // its death releases the entry instead of wedging every waiter.
      inflight_.record(from, workload, index);
      reply["state"] = "claimed";
      break;
    case service::ShardedMeasurementCache::ClaimState::kPending:
      reply["state"] = "pending";
      break;
  }
  return json_response(200, Json(std::move(reply)));
}

net::HttpResponse ClusterNode::handle_publish(const Json& body) {
  const std::string& workload = string_field(body, "workload");
  const std::uint64_t index = parse_u64_field(body, "index");
  const std::size_t from = from_field(body);
  const core::Measurement m = measurement_from_json(body);
  const Entry entry = snapshot_entry(workload, /*create=*/true);

  peer_publishes_received_->add();
  (void)inflight_.erase(workload, index);
  // force_publish: a late publish can race our dead-claimant sweep (the
  // entry is gone) or a local fallback evaluation (already ready) —
  // both are lost races to tolerate, not protocol bugs to assert on.
  if (entry.shard->force_publish(index, m)) {
    // Fan the fresh value out to everyone but its producer.
    relay_.enqueue(workload,
                   DeltaRecord{index,
                               std::bit_cast<std::uint64_t>(m.time_ms),
                               static_cast<std::uint8_t>(m.status)},
                   from);
  }
  JsonObject reply;
  reply["stored"] = true;
  return json_response(200, Json(std::move(reply)));
}

net::HttpResponse ClusterNode::handle_abandon(const Json& body) {
  const std::string& workload = string_field(body, "workload");
  const std::uint64_t index = parse_u64_field(body, "index");
  (void)from_field(body);  // validated for wire consistency
  (void)inflight_.erase(workload, index);
  const Entry entry = snapshot_entry(workload, /*create=*/false);
  const bool released = entry.shard && entry.shard->try_abandon(index);
  JsonObject reply;
  reply["released"] = released;
  return json_response(200, Json(std::move(reply)));
}

net::HttpResponse ClusterNode::handle_lookup(const Json& body) {
  const std::string& workload = string_field(body, "workload");
  const std::uint64_t index = parse_u64_field(body, "index");
  const Entry entry = snapshot_entry(workload, /*create=*/false);

  JsonObject reply;
  if (!entry.shard) {
    reply["state"] = "absent";
    return json_response(200, Json(std::move(reply)));
  }
  const auto probe = entry.shard->probe(index);
  switch (probe.state) {
    case service::ShardedMeasurementCache::ProbeState::kReady:
      reply["state"] = "ready";
      measurement_to_json(probe.measurement, reply);
      break;
    case service::ShardedMeasurementCache::ProbeState::kPending:
      reply["state"] = "pending";
      break;
    case service::ShardedMeasurementCache::ProbeState::kAbsent:
      reply["state"] = "absent";
      break;
  }
  return json_response(200, Json(std::move(reply)));
}

net::HttpResponse ClusterNode::handle_relay(const std::string& bytes) {
  const DeltaFrame frame = decode_delta_frame(bytes);
  relay_frames_received_->add();
  relay_bytes_received_->add(bytes.size());
  const Entry entry = snapshot_entry(frame.workload, /*create=*/false);
  if (!entry.dist) {
    // No local sessions on this workload (yet): nothing to warm. The
    // claim RPC path still covers a workload that shows up later.
    relay_frames_ignored_->add();
  } else {
    relay_records_received_->add(frame.records.size());
    for (const DeltaRecord& rec : frame.records) {
      core::Measurement m;
      m.time_ms = std::bit_cast<double>(rec.time_bits);
      m.status = static_cast<core::MeasureStatus>(rec.status);
      entry.dist->store_remote(rec.key, m, /*from_relay=*/true);
    }
  }
  JsonObject reply;
  reply["accepted"] = true;
  return json_response(200, Json(std::move(reply)));
}

net::HttpResponse ClusterNode::handle_gossip(const Json& body) {
  // An inbound gossip is positive evidence about its sender, which is
  // what re-discovers a peer that recovered while we had stopped
  // trying it anywhere else.
  const std::size_t from = from_field(body);
  if (from < peers_.size() && from != peers_.self_index()) {
    peers_.record_ok(from);
  }
  return json_response(200, health_json());
}

Json ClusterNode::health_json() const {
  JsonObject object;
  object.emplace("self",
                 static_cast<std::uint64_t>(peers_.self_index()));
  JsonArray peer_list;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    const auto health = peers_.health(i);
    JsonObject peer;
    peer.emplace("address", peers_.address(i).to_string());
    peer.emplace("self", i == peers_.self_index());
    peer.emplace("up", health.up);
    peer.emplace("consecutive_failures",
                 static_cast<std::uint64_t>(health.consecutive_failures));
    peer.emplace("rpcs_ok", health.rpcs_ok);
    peer.emplace("rpcs_failed", health.rpcs_failed);
    peer.emplace("inflight_claims",
                 static_cast<std::uint64_t>(inflight_.held_by(i)));
    peer_list.push_back(Json(std::move(peer)));
  }
  object.emplace("peers", Json(std::move(peer_list)));
  return Json(std::move(object));
}

Json ClusterNode::stats_json() const {
  DistributedMeasurementCache::Stats outbound;
  {
    std::lock_guard lock(registry_mutex_);
    for (const auto& [workload, entry] : registry_) {
      (void)workload;
      if (!entry.dist) continue;
      const auto s = entry.dist->stats();
      outbound.cluster_cache_hits += s.cluster_cache_hits;
      outbound.claims_forwarded += s.claims_forwarded;
      outbound.publishes_forwarded += s.publishes_forwarded;
      outbound.fallback_claims += s.fallback_claims;
      outbound.relay_records_stored += s.relay_records_stored;
    }
  }
  const auto relay = relay_.stats();

  JsonObject object;
  // The four headline counters the CI gate and operators read:
  object.emplace("cluster_cache_hits", outbound.cluster_cache_hits);
  object.emplace("peer_claims_forwarded", outbound.claims_forwarded);
  object.emplace("peer_publishes_relayed",
                 outbound.publishes_forwarded + relay.records_sent);
  object.emplace("relay_bytes",
                 relay.bytes_sent +
                     relay_bytes_received_->value());
  // Supporting detail:
  object.emplace("fallback_local_claims", outbound.fallback_claims);
  object.emplace("peer_claims_served",
                 peer_claims_served_->value());
  object.emplace("peer_publishes_received",
                 peer_publishes_received_->value());
  JsonObject relay_json;
  relay_json.emplace("frames_sent", relay.frames_sent);
  relay_json.emplace("records_sent", relay.records_sent);
  relay_json.emplace("bytes_sent", relay.bytes_sent);
  relay_json.emplace("frames_dropped",
                     relay_frames_dropped_->value());
  relay_json.emplace("frames_received",
                     relay_frames_received_->value());
  relay_json.emplace(
      "records_received",
      relay_records_received_->value());
  relay_json.emplace("records_stored", outbound.relay_records_stored);
  relay_json.emplace("bytes_received",
                     relay_bytes_received_->value());
  relay_json.emplace("frames_ignored",
                     relay_frames_ignored_->value());
  object.emplace("relay", Json(std::move(relay_json)));
  const Json health = health_json();
  object.emplace("self", *health.find("self"));
  object.emplace("peers", *health.find("peers"));
  return Json(std::move(object));
}

}  // namespace bat::cluster
