#include "cluster/peer_client.hpp"

#include <bit>
#include <stdexcept>

namespace bat::cluster {

void measurement_to_json(const core::Measurement& m,
                         common::JsonObject& out) {
  out["time_bits"] = u64_to_string(std::bit_cast<std::uint64_t>(m.time_ms));
  out["status"] = static_cast<std::int64_t>(m.status);
}

core::Measurement measurement_from_json(const common::Json& object) {
  core::Measurement m;
  m.time_ms = std::bit_cast<double>(parse_u64_field(object, "time_bits"));
  const common::Json* status = object.find("status");
  if (status == nullptr) {
    throw std::runtime_error("peer rpc: missing 'status'");
  }
  const auto raw = status->as_int();
  if (raw < 0 || raw > static_cast<std::int64_t>(
                           core::MeasureStatus::kInvalidDevice)) {
    throw std::runtime_error("peer rpc: 'status' out of range");
  }
  m.status = static_cast<core::MeasureStatus>(raw);
  return m;
}

std::string u64_to_string(std::uint64_t v) { return std::to_string(v); }

std::uint64_t parse_u64_field(const common::Json& object,
                              const std::string& key) {
  const common::Json* field = object.find(key);
  if (field == nullptr || !field->is_string()) {
    throw std::runtime_error("peer rpc: missing or non-string '" + key +
                             "'");
  }
  const std::string& text = field->as_string();
  if (text.empty() || text.size() > 20) {
    throw std::runtime_error("peer rpc: bad u64 in '" + key + "'");
  }
  std::uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw std::runtime_error("peer rpc: bad u64 in '" + key + "'");
    }
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) {
      throw std::runtime_error("peer rpc: u64 overflow in '" + key + "'");
    }
    v = v * 10 + digit;
  }
  return v;
}

PeerClient::PeerClient(PeerAddress address, net::ClientOptions options)
    : address_(std::move(address)),
      http_(address_.host, address_.port,
            net::ParseLimits{
                .max_head_bytes = 16 * 1024,
                .max_body_bytes = 64 * 1024 * 1024,
                .max_headers = 100,
            },
            options) {}

common::Json PeerClient::post_json(const std::string& route,
                                   const common::Json& body) {
  net::HttpResponse response;
  {
    std::lock_guard lock(mutex_);
    response = http_.post(route, body.dump());
  }
  if (response.status < 200 || response.status >= 300) {
    throw std::runtime_error("peer " + address_.to_string() + " " + route +
                             " -> " + std::to_string(response.status) +
                             ": " + response.body);
  }
  return common::Json::parse(response.body);
}

ClaimReply PeerClient::claim(const std::string& workload,
                             std::uint64_t index, std::size_t self) {
  common::JsonObject body;
  body["workload"] = workload;
  body["index"] = u64_to_string(index);
  body["from"] = static_cast<std::int64_t>(self);
  const common::Json reply = post_json("/v1/peers/claim", common::Json(body));
  const common::Json* state = reply.find("state");
  if (state == nullptr || !state->is_string()) {
    throw std::runtime_error("peer rpc: claim reply missing 'state'");
  }
  ClaimReply out;
  const std::string& s = state->as_string();
  if (s == "hit") {
    out.state = ClaimReply::State::kHit;
    out.measurement = measurement_from_json(reply);
  } else if (s == "claimed") {
    out.state = ClaimReply::State::kClaimed;
  } else if (s == "pending") {
    out.state = ClaimReply::State::kPending;
  } else {
    throw std::runtime_error("peer rpc: unknown claim state '" + s + "'");
  }
  return out;
}

void PeerClient::publish(const std::string& workload, std::uint64_t index,
                         const core::Measurement& m, std::size_t self) {
  common::JsonObject body;
  body["workload"] = workload;
  body["index"] = u64_to_string(index);
  body["from"] = static_cast<std::int64_t>(self);
  measurement_to_json(m, body);
  (void)post_json("/v1/peers/publish", common::Json(body));
}

void PeerClient::abandon(const std::string& workload, std::uint64_t index,
                         std::size_t self) {
  common::JsonObject body;
  body["workload"] = workload;
  body["index"] = u64_to_string(index);
  body["from"] = static_cast<std::int64_t>(self);
  (void)post_json("/v1/peers/abandon", common::Json(body));
}

LookupReply PeerClient::lookup(const std::string& workload,
                               std::uint64_t index) {
  common::JsonObject body;
  body["workload"] = workload;
  body["index"] = u64_to_string(index);
  const common::Json reply =
      post_json("/v1/peers/lookup", common::Json(body));
  const common::Json* state = reply.find("state");
  if (state == nullptr || !state->is_string()) {
    throw std::runtime_error("peer rpc: lookup reply missing 'state'");
  }
  LookupReply out;
  const std::string& s = state->as_string();
  if (s == "ready") {
    out.state = LookupReply::State::kReady;
    out.measurement = measurement_from_json(reply);
  } else if (s == "pending") {
    out.state = LookupReply::State::kPending;
  } else if (s == "absent") {
    out.state = LookupReply::State::kAbsent;
  } else {
    throw std::runtime_error("peer rpc: unknown lookup state '" + s + "'");
  }
  return out;
}

void PeerClient::relay(const std::string& frame_bytes) {
  net::HttpResponse response;
  {
    std::lock_guard lock(mutex_);
    response = http_.post("/v1/peers/relay", frame_bytes,
                          "application/octet-stream");
  }
  if (response.status < 200 || response.status >= 300) {
    throw std::runtime_error("peer " + address_.to_string() +
                             " relay -> " +
                             std::to_string(response.status));
  }
}

common::Json PeerClient::gossip(std::size_t self) {
  common::JsonObject body;
  body["from"] = static_cast<std::int64_t>(self);
  return post_json("/v1/peers/gossip", common::Json(body));
}

}  // namespace bat::cluster
