#include "cluster/delta_frame.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "io/binary_format.hpp"

namespace bat::cluster {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);  // little-endian: asserted repo-wide in io/
  out.append(b, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.append(b, 8);
}

/// LEB128 (unsigned): 7 value bits per byte, high bit = continue.
void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }

  std::string_view take(std::size_t n, const char* what) {
    if (bytes_.size() - pos_ < n) {
      throw std::runtime_error(std::string("delta frame truncated in ") +
                               what);
    }
    const auto view = bytes_.substr(pos_, n);
    pos_ += n;
    return view;
  }

  std::uint32_t u32(const char* what) {
    std::uint32_t v = 0;
    std::memcpy(&v, take(4, what).data(), 4);
    return v;
  }

  std::uint64_t u64(const char* what) {
    std::uint64_t v = 0;
    std::memcpy(&v, take(8, what).data(), 8);
    return v;
  }

  std::uint64_t varint(const char* what) {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const auto byte =
          static_cast<std::uint8_t>(take(1, what).front());
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        // Final byte must not set bits past 64 (shift 63 holds 1 bit).
        if (shift == 63 && (byte & 0x7e) != 0) break;
        return v;
      }
    }
    throw std::runtime_error(std::string("delta frame: overlong varint in ") +
                             what);
  }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string encode_delta_frame(DeltaFrame& frame) {
  std::sort(frame.records.begin(), frame.records.end(),
            [](const DeltaRecord& a, const DeltaRecord& b) {
              return a.key < b.key;
            });
  std::string out;
  // keys dominate at ~1-2 bytes each after delta coding; 16/record is a
  // comfortable upper-bound reservation.
  out.reserve(32 + frame.workload.size() + frame.records.size() * 16);
  out.append(kDeltaFrameMagic, sizeof kDeltaFrameMagic);
  put_u32(out, static_cast<std::uint32_t>(frame.workload.size()));
  out.append(frame.workload);
  put_u32(out, static_cast<std::uint32_t>(frame.records.size()));
  std::uint64_t previous = 0;
  bool first = true;
  for (const DeltaRecord& rec : frame.records) {
    put_varint(out, first ? rec.key : rec.key - previous);
    previous = rec.key;
    first = false;
  }
  for (const DeltaRecord& rec : frame.records) put_u64(out, rec.time_bits);
  for (const DeltaRecord& rec : frame.records) {
    out.push_back(static_cast<char>(rec.status));
  }
  put_u32(out, io::crc32(out.data(), out.size()));
  return out;
}

DeltaFrame decode_delta_frame(std::string_view bytes) {
  if (bytes.size() < sizeof kDeltaFrameMagic + 12) {
    throw std::runtime_error("delta frame: shorter than any valid frame");
  }
  // CRC covers everything before the trailing u32.
  const std::size_t body = bytes.size() - 4;
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + body, 4);
  if (io::crc32(bytes.data(), body) != stored_crc) {
    throw std::runtime_error("delta frame: CRC mismatch");
  }

  Reader reader(bytes.substr(0, body));
  const auto magic = reader.take(sizeof kDeltaFrameMagic, "magic");
  if (std::memcmp(magic.data(), kDeltaFrameMagic,
                  sizeof kDeltaFrameMagic) != 0) {
    throw std::runtime_error("delta frame: bad magic");
  }

  DeltaFrame frame;
  const std::uint32_t wl_len = reader.u32("workload length");
  frame.workload = std::string(reader.take(wl_len, "workload id"));
  const std::uint32_t count = reader.u32("record count");
  // A frame must physically hold count keys (>= 1 byte each) plus the
  // fixed-width columns; reject absurd counts before reserving.
  if (body - reader.pos() < static_cast<std::size_t>(count) * 10) {
    throw std::runtime_error("delta frame: record count exceeds payload");
  }
  frame.records.resize(count);
  std::uint64_t key = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t delta = reader.varint("keys");
    if (i > 0 && delta > UINT64_MAX - key) {
      throw std::runtime_error("delta frame: key overflow");
    }
    key = i == 0 ? delta : key + delta;
    frame.records[i].key = key;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    frame.records[i].time_bits = reader.u64("time columns");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    frame.records[i].status =
        static_cast<std::uint8_t>(reader.take(1, "status column").front());
  }
  if (reader.pos() != body) {
    throw std::runtime_error("delta frame: trailing bytes");
  }
  return frame;
}

}  // namespace bat::cluster
