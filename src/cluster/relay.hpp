// RelayHub: batches fresh publishes into per-peer delta frames.
//
// Owners announce every newly published measurement here; the hub
// appends it to a pending column per (destination, workload) and a
// background flusher encodes + sends delta frames whenever a batch
// reaches `max_batch` records or `flush_interval_ms` elapses —
// latency-bounded batching, so a quiet cluster still converges within
// one flush interval while a busy one amortizes the HTTP round trip
// over hundreds of records.
//
// The record's *source* peer (when it arrived via a forwarded publish)
// is excluded from the fan-out — it evidently already has the value —
// as is self. Sending is delegated to a SendFn so the hub stays
// transport-free (ClusterNode supplies the PeerClient call + health
// bookkeeping; tests supply a vector sink).
//
// Delivery is best-effort: a failed send drops the frame (stat only).
// Relay is a *cache warmer* — correctness never depends on it, because
// a node that missed a frame simply pays one claim RPC on next probe.
// That is what keeps the failure semantics trivial (no acks, no
// retransmit queue, no peer backlog growing unboundedly).
//
// Thread-safety: enqueue() under one mutex; flush() drains under the
// same mutex then sends outside it (SendFn does network I/O).
#pragma once

#include <cstdint>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/delta_frame.hpp"

namespace bat::cluster {

struct RelayOptions {
  std::size_t max_batch = 256;  // records per frame before early flush
  int flush_interval_ms = 20;   // latency bound for quiet workloads
};

class RelayHub {
 public:
  /// `send(peer, bytes)` ships one encoded frame; it must not throw
  /// (the ClusterNode wrapper converts transport failures into health
  /// bookkeeping and a dropped-frame stat).
  using SendFn = std::function<void(std::size_t peer,
                                    const std::string& bytes)>;

  RelayHub(std::size_t num_peers, std::size_t self, SendFn send,
           RelayOptions options = {});
  ~RelayHub();  // stop()

  RelayHub(const RelayHub&) = delete;
  RelayHub& operator=(const RelayHub&) = delete;

  void start();  // spawns the background flusher; idempotent
  void stop();   // final flush + join; idempotent

  /// Queues `record` of `workload` for every peer except self and
  /// `exclude` (the node the record came from, when forwarded).
  void enqueue(const std::string& workload, const DeltaRecord& record,
               std::optional<std::size_t> exclude);

  /// Synchronously drains everything pending (shutdown, tests).
  void flush();

  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t records_sent = 0;
    std::uint64_t bytes_sent = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Destination {
    std::map<std::string, std::vector<DeltaRecord>> pending;  // by workload
    std::size_t pending_records = 0;
  };

  void flusher_main();

  std::size_t self_;
  SendFn send_;
  RelayOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;  // batch threshold reached / stopping
  std::vector<Destination> destinations_;
  bool threshold_hit_ = false;
  bool stopping_ = false;
  bool started_ = false;
  Stats stats_;

  std::thread flusher_;
};

}  // namespace bat::cluster
