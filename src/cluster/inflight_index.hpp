// InflightIndex: which remote claims are outstanding, per claimant.
//
// Owner-side bookkeeping for the cluster claim protocol. When this node
// grants a forwarded claim (a /v1/peers/claim that returned kClaimed),
// the claimant peer now owes a publish or abandon for that key. If the
// claimant dies first, the entry would stay pending forever and every
// waiter — local sessions and other peers alike — would hang. The index
// remembers (workload, key) -> claimant so that the moment a peer is
// declared down, take_peer() hands back everything it owed and the
// owner abandons those claims; waiters wake, re-claim, and evaluate.
//
// The same shape as tracking in-flight per-peer block requests in
// compact-relay P2P stacks: a bounded ledger of promises outstanding,
// swept on disconnect.
//
// Thread-safety: one mutex; operations are map lookups on keys that
// number at most "claims currently being evaluated remotely" — tiny.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace bat::cluster {

class InflightIndex {
 public:
  using Key = std::pair<std::string, std::uint64_t>;  // (workload, index)

  /// Records that `peer` owns the evaluation of (workload, index).
  /// Re-recording overwrites (a re-claim after abandon is a new owner).
  void record(std::size_t peer, const std::string& workload,
              std::uint64_t index);

  /// Drops the entry (the claimant published or abandoned). Returns
  /// false when it was not tracked — e.g. already swept by take_peer(),
  /// which is exactly the race the tolerant cache variants absorb.
  bool erase(const std::string& workload, std::uint64_t index);

  /// Removes and returns every claim held by `peer` (dead-claimant
  /// sweep). The caller abandons each against its local shard.
  [[nodiscard]] std::vector<Key> take_peer(std::size_t peer);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t held_by(std::size_t peer) const;

 private:
  mutable std::mutex mutex_;
  std::map<Key, std::size_t> claims_;  // key -> claimant peer index
};

}  // namespace bat::cluster
