#include "cluster/relay.hpp"

#include <chrono>
#include <utility>

namespace bat::cluster {

RelayHub::RelayHub(std::size_t num_peers, std::size_t self, SendFn send,
                   RelayOptions options)
    : self_(self),
      send_(std::move(send)),
      options_(options),
      destinations_(num_peers) {
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.flush_interval_ms <= 0) options_.flush_interval_ms = 1;
}

RelayHub::~RelayHub() { stop(); }

void RelayHub::start() {
  std::lock_guard lock(mutex_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  flusher_ = std::thread([this] { flusher_main(); });
}

void RelayHub::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  flusher_.join();
  {
    std::lock_guard lock(mutex_);
    started_ = false;
  }
  flush();  // whatever raced in after the flusher's last pass
}

void RelayHub::enqueue(const std::string& workload,
                       const DeltaRecord& record,
                       std::optional<std::size_t> exclude) {
  bool wake = false;
  {
    std::lock_guard lock(mutex_);
    for (std::size_t peer = 0; peer < destinations_.size(); ++peer) {
      if (peer == self_ || (exclude && *exclude == peer)) continue;
      Destination& dest = destinations_[peer];
      dest.pending[workload].push_back(record);
      ++dest.pending_records;
      if (dest.pending_records >= options_.max_batch) {
        threshold_hit_ = true;
        wake = true;
      }
    }
  }
  if (wake) cv_.notify_all();
}

void RelayHub::flush() {
  // Move pending batches out under the lock, send outside it — SendFn
  // does blocking HTTP and must not hold up concurrent enqueues.
  std::vector<std::pair<std::size_t, std::string>> frames;
  {
    std::lock_guard lock(mutex_);
    for (std::size_t peer = 0; peer < destinations_.size(); ++peer) {
      Destination& dest = destinations_[peer];
      for (auto& [workload, records] : dest.pending) {
        if (records.empty()) continue;
        DeltaFrame frame{workload, std::move(records)};
        records.clear();
        const std::size_t count = frame.records.size();
        frames.emplace_back(peer, encode_delta_frame(frame));
        stats_.frames_sent += 1;
        stats_.records_sent += count;
        stats_.bytes_sent += frames.back().second.size();
      }
      dest.pending.clear();
      dest.pending_records = 0;
    }
    threshold_hit_ = false;
  }
  for (const auto& [peer, bytes] : frames) send_(peer, bytes);
}

RelayHub::Stats RelayHub::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void RelayHub::flusher_main() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.flush_interval_ms),
                 [this] { return stopping_ || threshold_hit_; });
    lock.unlock();
    flush();
    lock.lock();
  }
  lock.unlock();
  flush();  // drain on the way out
}

}  // namespace bat::cluster
