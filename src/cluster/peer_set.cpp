#include "cluster/peer_set.hpp"

#include <stdexcept>

namespace bat::cluster {

namespace {

/// splitmix64: the standard 64-bit finalizer-style mixer. Good enough
/// avalanche for rendezvous weights and dependency-free.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash_bytes(std::string_view s) noexcept {
  // FNV-1a, then mixed: workload ids are short strings.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return mix64(h);
}

}  // namespace

PeerAddress parse_peer_address(std::string_view text) {
  const auto colon = text.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= text.size()) {
    throw std::invalid_argument("peer address '" + std::string(text) +
                                "' is not host:port");
  }
  unsigned long port = 0;
  for (const char c : text.substr(colon + 1)) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("peer address '" + std::string(text) +
                                  "' has a non-numeric port");
    }
    port = port * 10 + static_cast<unsigned long>(c - '0');
    if (port > 65535) {
      throw std::invalid_argument("peer address '" + std::string(text) +
                                  "' port out of range");
    }
  }
  if (port == 0) {
    throw std::invalid_argument("peer address '" + std::string(text) +
                                "' needs an explicit nonzero port "
                                "(static membership cannot use ephemeral "
                                "ports)");
  }
  return PeerAddress{std::string(text.substr(0, colon)),
                     static_cast<std::uint16_t>(port)};
}

PeerSet::PeerSet(std::vector<PeerAddress> members, std::size_t self_index,
                 int fail_threshold)
    : members_(std::move(members)),
      self_(self_index),
      threshold_(fail_threshold > 0 ? static_cast<std::uint32_t>(fail_threshold)
                                    : 1u) {
  if (members_.empty()) {
    throw std::invalid_argument("peer set must not be empty");
  }
  if (self_ >= members_.size()) {
    throw std::invalid_argument("self index out of range of peer set");
  }
  states_ = std::make_unique<State[]>(members_.size());
}

std::size_t PeerSet::owner_of(std::string_view workload,
                              std::uint64_t block) const noexcept {
  // Highest-random-weight: every node scores every member and picks the
  // max. Ties cannot disagree across nodes (scores are identical), and
  // adding a member would remap only ~1/N of blocks — the property that
  // makes HRW the right shape even though this PR keeps membership
  // static.
  const std::uint64_t seed = hash_bytes(workload) ^ mix64(block);
  std::size_t best = 0;
  std::uint64_t best_score = 0;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const std::uint64_t score = mix64(seed ^ mix64(i + 1));
    if (i == 0 || score > best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

void PeerSet::record_ok(std::size_t peer) noexcept {
  if (peer >= members_.size()) return;
  states_[peer].ok.fetch_add(1, std::memory_order_relaxed);
  states_[peer].consecutive.store(0, std::memory_order_relaxed);
}

bool PeerSet::record_failure(std::size_t peer) noexcept {
  if (peer >= members_.size()) return false;
  states_[peer].failed.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t now =
      states_[peer].consecutive.fetch_add(1, std::memory_order_relaxed) + 1;
  return now == threshold_;  // the exact crossing, reported once
}

bool PeerSet::up(std::size_t peer) const noexcept {
  if (peer == self_) return true;
  if (peer >= members_.size()) return false;
  return states_[peer].consecutive.load(std::memory_order_relaxed) <
         threshold_;
}

PeerSet::Health PeerSet::health(std::size_t peer) const noexcept {
  Health h;
  if (peer >= members_.size()) return h;
  h.consecutive_failures =
      states_[peer].consecutive.load(std::memory_order_relaxed);
  h.up = peer == self_ || h.consecutive_failures < threshold_;
  h.rpcs_ok = states_[peer].ok.load(std::memory_order_relaxed);
  h.rpcs_failed = states_[peer].failed.load(std::memory_order_relaxed);
  return h;
}

}  // namespace bat::cluster
