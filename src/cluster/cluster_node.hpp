// ClusterNode: one node's membership in the tuning cluster.
//
// Owns the moving parts of the peer protocol and glues them together:
//
//   PeerSet          static membership + health + HRW ownership;
//   PeerClient[]     one keep-alive RPC connection per peer;
//   InflightIndex    forwarded claims outstanding per claimant;
//   RelayHub         delta-frame fan-out of fresh publishes;
//   registry         per-workload local shard + DistributedMeasurement-
//                    Cache (the thing TuningService sessions use).
//
// Two faces: PeerLink (the distributed cache's outbound transport —
// forward_claim/publish/lookup with health bookkeeping on every
// outcome) and handle_peers() (the inbound /v1/peers/* routes the
// ApiServer delegates, serving this node's shards to the fleet).
// Inbound handlers are strictly non-blocking — claim, publish, lookup
// and relay are map operations; the blocking wait() side of the
// protocol lives entirely at the claimant as lookup polling — so a
// bounded HTTP worker pool can never deadlock across nodes.
//
// Failure handling: every RPC outcome feeds PeerSet. When a peer
// crosses the down threshold, its outstanding forwarded claims are
// swept from the InflightIndex and abandoned against the local shards,
// so waiters (local sessions and polling peers alike) wake, re-claim
// and evaluate — the claimant-death path the sharded cache's tolerant
// variants exist for. A background gossip loop pings peers so a dead
// node is detected within a few intervals even when no claim traffic
// is flowing.
//
// Thread-safety: fully thread-safe; the registry has one mutex, all
// counters are atomics, per-peer clients serialize internally.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/distributed_cache.hpp"
#include "cluster/inflight_index.hpp"
#include "cluster/peer_client.hpp"
#include "cluster/peer_set.hpp"
#include "cluster/relay.hpp"
#include "common/json.hpp"
#include "net/http.hpp"
#include "obs/metrics.hpp"

namespace bat::cluster {

struct ClusterOptions {
  /// Full membership (self included), identical on every node.
  std::vector<PeerAddress> members;
  std::size_t self_index = 0;
  /// Peer RPC timeouts — finite, unlike the CLI's HttpClient defaults:
  /// a hung peer must cost one bounded stall, not a parked worker.
  int connect_timeout_ms = 2000;
  int io_timeout_ms = 2000;
  int fail_threshold = 3;
  int gossip_interval_ms = 500;
  /// Shards for locally-created per-workload caches.
  std::size_t cache_shards = 16;
  DistributedCacheOptions cache;
  RelayOptions relay;
  /// Registry hosting the bat_cluster_* series; null makes a private
  /// one. `tune serve` shares the process registry here.
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

class ClusterNode final : public PeerLink {
 public:
  explicit ClusterNode(ClusterOptions options);
  ~ClusterNode() override;  // stop()

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  void start();  // gossip + relay flusher threads; idempotent
  void stop();   // final relay flush, joins threads; idempotent

  /// The canonical workload id: "kernel|device|backend".
  [[nodiscard]] static std::string workload_id(const std::string& kernel,
                                               std::size_t device,
                                               const std::string& backend);

  /// The cluster-wide cache for one workload; TuningService calls this
  /// instead of building a bare ShardedMeasurementCache. Reuses the
  /// local shard if peer RPCs already created one for the workload
  /// (claims can arrive before any local session does).
  [[nodiscard]] std::shared_ptr<DistributedMeasurementCache> cache_for(
      const std::string& kernel, std::size_t device,
      const std::string& backend,
      std::shared_ptr<const core::CompiledSpace> compiled);

  /// Inbound /v1/peers/* dispatcher (ApiServer delegates here):
  /// claim, publish, abandon, lookup, relay, gossip, health.
  [[nodiscard]] net::HttpResponse handle_peers(
      const net::HttpRequest& request);

  /// The cluster section of /v1/stats: dedup counters, relay volume,
  /// per-peer health. Names documented in docs/http-api.md.
  [[nodiscard]] common::Json stats_json() const;

  [[nodiscard]] const PeerSet& peers() const noexcept { return peers_; }

  // --- PeerLink ----------------------------------------------------
  [[nodiscard]] std::size_t self_index() const override {
    return peers_.self_index();
  }
  [[nodiscard]] std::size_t owner_of(const std::string& workload,
                                     std::uint64_t block) const override {
    return peers_.owner_of(workload, block);
  }
  [[nodiscard]] bool peer_up(std::size_t peer) const override {
    return peers_.up(peer);
  }
  [[nodiscard]] bool stopping() const override {
    return stopping_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::optional<ClaimReply> forward_claim(
      std::size_t peer, const std::string& workload,
      std::uint64_t index) override;
  [[nodiscard]] bool forward_publish(std::size_t peer,
                                     const std::string& workload,
                                     std::uint64_t index,
                                     const core::Measurement& m) override;
  void forward_abandon(std::size_t peer, const std::string& workload,
                       std::uint64_t index) override;
  [[nodiscard]] std::optional<LookupReply> forward_lookup(
      std::size_t peer, const std::string& workload,
      std::uint64_t index) override;
  void announce_publish(const std::string& workload, std::uint64_t index,
                        const core::Measurement& m) override;

  /// Testing hook: force one gossip round synchronously.
  void gossip_once();

 private:
  struct Entry {
    std::shared_ptr<service::ShardedMeasurementCache> shard;
    std::shared_ptr<DistributedMeasurementCache> dist;  // null until built
  };

  [[nodiscard]] Entry snapshot_entry(const std::string& workload,
                                     bool create);
  void record_ok(std::size_t peer);
  void record_failure(std::size_t peer);
  /// Dead-claimant sweep: abandon everything `peer` still owed us.
  void sweep_peer(std::size_t peer);
  void send_frame(std::size_t peer, const std::string& bytes);
  void gossip_main();

  [[nodiscard]] net::HttpResponse handle_claim(const common::Json& body);
  [[nodiscard]] net::HttpResponse handle_publish(const common::Json& body);
  [[nodiscard]] net::HttpResponse handle_abandon(const common::Json& body);
  [[nodiscard]] net::HttpResponse handle_lookup(const common::Json& body);
  [[nodiscard]] net::HttpResponse handle_relay(const std::string& bytes);
  [[nodiscard]] net::HttpResponse handle_gossip(const common::Json& body);
  [[nodiscard]] common::Json health_json() const;

  ClusterOptions options_;
  PeerSet peers_;
  InflightIndex inflight_;
  std::vector<std::unique_ptr<PeerClient>> clients_;
  RelayHub relay_;

  mutable std::mutex registry_mutex_;
  std::map<std::string, Entry> registry_;

  // Inbound + relay counters (outbound per-workload counters live in
  // the DistributedMeasurementCache stats, aggregated by stats_json).
  // Registry-hosted: /v1/metrics and stats_json() read the same series.
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  obs::Counter* peer_claims_served_;
  obs::Counter* peer_publishes_received_;
  obs::Counter* relay_frames_received_;
  obs::Counter* relay_records_received_;
  obs::Counter* relay_bytes_received_;
  obs::Counter* relay_frames_ignored_;
  obs::Counter* relay_frames_dropped_;
  obs::Histogram* rpc_claim_duration_;
  obs::Histogram* rpc_publish_duration_;
  obs::Histogram* rpc_abandon_duration_;
  obs::Histogram* rpc_lookup_duration_;

  std::atomic<bool> stopping_{false};
  std::mutex gossip_mutex_;
  std::condition_variable gossip_cv_;
  bool started_ = false;
  std::thread gossip_thread_;
};

}  // namespace bat::cluster
