#include "cluster/inflight_index.hpp"

namespace bat::cluster {

void InflightIndex::record(std::size_t peer, const std::string& workload,
                           std::uint64_t index) {
  std::lock_guard lock(mutex_);
  claims_[Key{workload, index}] = peer;
}

bool InflightIndex::erase(const std::string& workload, std::uint64_t index) {
  std::lock_guard lock(mutex_);
  return claims_.erase(Key{workload, index}) > 0;
}

std::vector<InflightIndex::Key> InflightIndex::take_peer(std::size_t peer) {
  std::vector<Key> taken;
  std::lock_guard lock(mutex_);
  for (auto it = claims_.begin(); it != claims_.end();) {
    if (it->second == peer) {
      taken.push_back(it->first);
      it = claims_.erase(it);
    } else {
      ++it;
    }
  }
  return taken;
}

std::size_t InflightIndex::size() const {
  std::lock_guard lock(mutex_);
  return claims_.size();
}

std::size_t InflightIndex::held_by(std::size_t peer) const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& [key, holder] : claims_) {
    (void)key;
    n += holder == peer ? 1 : 0;
  }
  return n;
}

}  // namespace bat::cluster
