// Pnpoly benchmark (paper §IV-D, Table IV) — the point-in-polygon GPU
// kernel of a geospatial database operator for LiDAR point clouds.
//
// 20 million query points against a 600-vertex polygon. Each thread tests
// `tile_size` points against every polygon edge with the crossing-number
// algorithm; `between_method` and `use_method` select among algorithmic
// variants with different instruction mixes (the paper's Table IV).
// Parameters (in space order):
//   block_size_x    threads per block (32..1024 step 32)
//   tile_size       points per thread {1, 2, 4, ..., 20}
//   between_method  0..3  "is y between the edge endpoints" variant
//   use_method      0..2  inside/outside bookkeeping variant
#pragma once

#include "kernels/kernel_benchmark.hpp"
#include "kernels/models/pnpoly_model.hpp"

namespace bat::kernels {

struct PnpolyParams {
  int block_size_x, tile_size, between_method, use_method;
};

class PnpolyBenchmark final : public KernelBenchmark {
 public:
  static constexpr int kPoints = models::kPnpolyPoints;
  static constexpr int kVertices = models::kPnpolyVertices;

  PnpolyBenchmark();

  [[nodiscard]] static core::SearchSpace make_space();
  [[nodiscard]] static PnpolyParams decode(const core::Config& config);

 protected:
  [[nodiscard]] std::optional<double> model_time_ms(
      const core::Config& config,
      const gpusim::DeviceSpec& device) const override;
};

}  // namespace bat::kernels
