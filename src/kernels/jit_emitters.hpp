// Per-kernel C++ source emitters for the JIT backend (src/jit/).
//
// emit_jit_source lowers a (kernel, decoded config) to a complete,
// self-contained translation unit: the configuration values are baked
// into a constexpr struct and the shared analytical model header
// (kernels/models/*_model.hpp) is instantiated over it, so the emitted
// object computes bit-for-bit the same profile as the host path. See
// jit/abi.hpp for the entry-point contract.
#pragma once

#include <string>

#include "core/types.hpp"

namespace bat::kernels {

/// True when `kernel` has a JIT emitter (currently gemm, hotspot,
/// pnpoly).
[[nodiscard]] bool jit_emitter_available(const std::string& kernel);

/// Emits the specialized translation unit for one configuration.
/// `config` must be a decoded config of `kernel`'s search space.
/// Throws std::invalid_argument for kernels without an emitter.
[[nodiscard]] std::string emit_jit_source(const std::string& kernel,
                                          const core::Config& config);

}  // namespace bat::kernels
