// GEMM benchmark (paper §IV-A, Table I) — the CLBlast tunable kernel.
//
// C = alpha * A * B + beta * C with M = N = K = 4096 (single precision).
// Parameters (in space order):
//   MWG, NWG     per-block output tile
//   MDIMC, NDIMC thread-block dimensions
//   MDIMA, NDIMB load-rearrangement dimensions for A/B staging
//   VWM, VWN     vector widths for global loads/stores
//   SA, SB       shared-memory caching of A/B tiles
// Constraints are the CLBlast xgemm set (with KWG = 32), which yields
// exactly the paper's 17 956 constrained configurations.
#pragma once

#include "kernels/kernel_benchmark.hpp"
#include "kernels/models/gemm_model.hpp"

namespace bat::kernels {

struct GemmParams {
  int mwg, nwg, mdimc, ndimc, mdima, ndimb, vwm, vwn, sa, sb;
};

class GemmBenchmark final : public KernelBenchmark {
 public:
  static constexpr int kM = models::kGemmM;
  static constexpr int kN = models::kGemmN;
  static constexpr int kK = models::kGemmK;
  static constexpr int kKwg = models::kGemmKwg;  // k-loop blocking (fixed)

  GemmBenchmark();

  [[nodiscard]] static core::SearchSpace make_space();
  [[nodiscard]] static GemmParams decode(const core::Config& config);

 protected:
  [[nodiscard]] std::optional<double> model_time_ms(
      const core::Config& config,
      const gpusim::DeviceSpec& device) const override;
};

}  // namespace bat::kernels
