// N-body benchmark (paper §IV-B, Table II) — KTT's tunable version of the
// CUDA SDK all-pairs gravitational kernel.
//
// N = 131072 bodies, one force-computation step, single precision.
// Parameters (in space order):
//   block_size            threads per block
//   outer_unroll_factor   bodies computed per thread
//   inner_unroll_factor1  partial unroll of the global-memory j-loop
//   inner_unroll_factor2  partial unroll of the shared-memory j-loop
//   use_soa               structure-of-arrays (1) vs array-of-structures (0)
//   local_mem             shared memory as software-managed cache
//   vector_type           elements per load instruction (float, float2/4)
#pragma once

#include "kernels/kernel_benchmark.hpp"

namespace bat::kernels {

struct NbodyParams {
  int block_size, outer_unroll, inner_unroll1, inner_unroll2;
  int use_soa, local_mem, vector_type;
};

class NbodyBenchmark final : public KernelBenchmark {
 public:
  static constexpr int kBodies = 131072;
  static constexpr double kOpsPerPair = 22.0;  // 3 sub, 3 fma, rsqrt(4), ...

  NbodyBenchmark();

  [[nodiscard]] static core::SearchSpace make_space();
  [[nodiscard]] static NbodyParams decode(const core::Config& config);

 protected:
  [[nodiscard]] std::optional<double> model_time_ms(
      const core::Config& config,
      const gpusim::DeviceSpec& device) const override;
};

}  // namespace bat::kernels
