#include "kernels/expdist.hpp"

#include <algorithm>
#include <cmath>

#include "gpusim/launch_model.hpp"
#include "gpusim/perf_utils.hpp"

namespace bat::kernels {

namespace {

enum Pos {
  kBx,
  kBy,
  kTx,
  kTy,
  kUseSharedMem,
  kUnrollX,
  kUnrollY,
  kUseColumn,
  kNyBlocks
};

}  // namespace

ExpdistBenchmark::ExpdistBenchmark()
    : KernelBenchmark("expdist", make_space()) {}

core::SearchSpace ExpdistBenchmark::make_space() {
  core::ParamSpace space;
  space
      .add(core::Parameter::list("block_size_x",
                                 {32, 64, 128, 256, 512, 1024}))
      .add(core::Parameter::list("block_size_y", {1, 2, 4, 8, 16, 32}))
      .add(core::Parameter::range("tile_size_x", 1, 8))
      .add(core::Parameter::range("tile_size_y", 1, 8))
      .add(core::Parameter::list("use_shared_mem", {0, 1, 2}))
      .add(core::Parameter::range("loop_unroll_factor_x", 1, 8))
      .add(core::Parameter::range("loop_unroll_factor_y", 1, 8))
      .add(core::Parameter::list("use_column", {0, 1}))
      .add(core::Parameter::list(
          "n_y_blocks", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}));

  core::ConstraintSet constraints;
  constraints
      .add("loop_unroll_factor_x divides tile_size_x",
           {"tile_size_x", "loop_unroll_factor_x"},
           [](const core::Config& c) { return c[kTx] % c[kUnrollX] == 0; })
      .add("loop_unroll_factor_y divides tile_size_y",
           {"tile_size_y", "loop_unroll_factor_y"},
           [](const core::Config& c) { return c[kTy] % c[kUnrollY] == 0; })
      .add("n_y_blocks only meaningful in the column variant",
           {"use_column", "n_y_blocks"},
           [](const core::Config& c) {
             return c[kUseColumn] == 1 || c[kNyBlocks] == 1;
           });
  return core::SearchSpace(std::move(space), std::move(constraints));
}

ExpdistParams ExpdistBenchmark::decode(const core::Config& c) {
  return ExpdistParams{
      static_cast<int>(c[kBx]),        static_cast<int>(c[kBy]),
      static_cast<int>(c[kTx]),        static_cast<int>(c[kTy]),
      static_cast<int>(c[kUseSharedMem]),
      static_cast<int>(c[kUnrollX]),   static_cast<int>(c[kUnrollY]),
      static_cast<int>(c[kUseColumn]), static_cast<int>(c[kNyBlocks])};
}

std::optional<double> ExpdistBenchmark::model_time_ms(
    const core::Config& config, const gpusim::DeviceSpec& device) const {
  using gpusim::KernelProfile;
  const ExpdistParams p = decode(config);

  const int threads = p.bx * p.by;
  if (threads > device.max_threads_per_block) return std::nullopt;

  const double n = kLocalizations;
  const double pairs = n * n;
  const double flops = pairs * kOpsPerPair;

  // Grid: 2D over (i, j) tiles; the column variant fixes the y dimension.
  const std::uint64_t tiles_x = gpusim::div_up(
      kLocalizations, static_cast<std::uint64_t>(p.bx) * p.tx);
  std::uint64_t grid;
  if (p.use_column) {
    grid = tiles_x * static_cast<std::uint64_t>(p.n_y_blocks);
  } else {
    grid = tiles_x * gpusim::div_up(kLocalizations,
                                    static_cast<std::uint64_t>(p.by) * p.ty);
  }

  // Registers: 2D tile accumulators plus unroll temporaries.
  double regs = 30.0 + 2.0 * (p.tx * p.ty) + 1.0 * (p.unroll_x + p.unroll_y);
  if (device.arch == gpusim::Architecture::kAmpere) regs += 2.0;
  bool spills = false;
  if (regs > device.max_registers_per_thread) {
    spills = true;
    regs = device.max_registers_per_thread;
  }

  // Shared memory: variant 1 caches the j-side localizations (4 floats
  // each); variant 2 additionally stages block-level partial sums.
  int smem = 0;
  if (p.use_shared_mem >= 1) smem += p.by * p.ty * 16;
  if (p.use_shared_mem == 2) smem += threads * 8;
  if (smem > device.max_shared_mem_per_block) return std::nullopt;

  // --- Memory traffic ----------------------------------------------------
  // Localizations are tiny (32768 * 16 B = 512 KiB); L2 holds them after
  // the first pass, so DRAM is not the story — pipe utilization is.
  const double l2_miss = gpusim::cache_miss_fraction(
      2.0 * n * 16.0, device.l2_cache_bytes, 0.08);
  double dram_bytes = static_cast<double>(grid) * (p.by * p.ty) * 16.0 *
                          l2_miss +
                      2.0 * n * 16.0;
  // The column variant writes per-block partials that a second pass sums.
  if (p.use_column) {
    dram_bytes += static_cast<double>(grid) * 8.0 * 2.0;
  }

  const double smem_bytes =
      p.use_shared_mem >= 1 ? pairs * 16.0 / std::max(1, p.tx) : 0.0;

  // --- Compute -----------------------------------------------------------
  // exp() runs on the SFU: ~1/4 FP32 rate, partially overlapped.
  double compute_eff = 0.58;
  compute_eff *= gpusim::unroll_efficiency(p.unroll_x, 0.14, 4);
  compute_eff *= gpusim::unroll_efficiency(p.unroll_y, 0.14, 4);
  if (p.use_shared_mem == 0) compute_eff *= 0.78;  // repeated L1 hits
  if (p.use_shared_mem == 2) compute_eff *= 1.07;  // cheap accumulation
  if (spills) compute_eff *= 0.6;
  // The column variant loops j inside the kernel: fewer blocks, better
  // re-use, but too few y-blocks underfills the device.
  if (p.use_column) {
    const double fill =
        std::min(1.0, static_cast<double>(grid) /
                          (2.0 * device.sm_count));
    compute_eff *= 0.92 * (0.55 + 0.45 * fill);
  }
  compute_eff = std::clamp(compute_eff, 0.05, 1.0);

  KernelProfile prof;
  prof.grid_blocks = grid;
  prof.block_threads = threads;
  prof.regs_per_thread = static_cast<int>(regs);
  prof.smem_per_block = smem;
  prof.flops = flops;
  prof.dram_bytes = dram_bytes;
  prof.smem_bytes = smem_bytes;
  prof.mem_efficiency = 0.9;
  prof.compute_efficiency = compute_eff;
  prof.ilp = static_cast<double>(p.tx) * p.ty;
  return gpusim::LaunchModel::estimate_ms(device, prof);
}

}  // namespace bat::kernels
