#include "kernels/hotspot.hpp"

#include <algorithm>
#include <cmath>

#include "gpusim/launch_model.hpp"
#include "kernels/models/hotspot_model.hpp"

namespace bat::kernels {

namespace {

enum Pos { kBx, kBy, kTx, kTy, kTf, kUnrollT, kShPower, kBlocksPerSm };

}  // namespace

HotspotBenchmark::HotspotBenchmark()
    : KernelBenchmark("hotspot", make_space()) {}

core::SearchSpace HotspotBenchmark::make_space() {
  // Table III lists 37 values for block_size_x: {1,2,4,8} ∪ {32n} plus 16.
  std::vector<core::Value> bx{1, 2, 4, 8, 16};
  for (core::Value x = 32; x <= 1024; x += 32) bx.push_back(x);

  core::ParamSpace space;
  space.add(core::Parameter::list("block_size_x", bx))
      .add(core::Parameter::list("block_size_y", {1, 2, 4, 8, 16, 32}))
      .add(core::Parameter::range("tile_size_x", 1, 10))
      .add(core::Parameter::range("tile_size_y", 1, 10))
      .add(core::Parameter::range("temporal_tiling_factor", 1, 10))
      .add(core::Parameter::range("loop_unroll_factor_t", 1, 10))
      .add(core::Parameter::list("sh_power", {0, 1}))
      .add(core::Parameter::list("blocks_per_sm", {0, 1, 2, 3, 4}));

  core::ConstraintSet constraints;
  constraints.add("loop_unroll_factor_t divides temporal_tiling_factor",
                  {"temporal_tiling_factor", "loop_unroll_factor_t"},
                  [](const core::Config& c) {
                    return c[kTf] % c[kUnrollT] == 0;
                  });
  return core::SearchSpace(std::move(space), std::move(constraints));
}

HotspotParams HotspotBenchmark::decode(const core::Config& c) {
  return HotspotParams{
      static_cast<int>(c[kBx]),      static_cast<int>(c[kBy]),
      static_cast<int>(c[kTx]),      static_cast<int>(c[kTy]),
      static_cast<int>(c[kTf]),      static_cast<int>(c[kUnrollT]),
      static_cast<int>(c[kShPower]), static_cast<int>(c[kBlocksPerSm])};
}

std::optional<double> HotspotBenchmark::model_time_ms(
    const core::Config& config, const gpusim::DeviceSpec& device) const {
  // The arithmetic lives in models/hotspot_model.hpp so the JIT backend
  // can compile the identical expressions into a specialized shared
  // object.
  const auto prof = models::hotspot_profile(decode(config), device);
  if (!prof) return std::nullopt;
  return gpusim::LaunchModel::estimate_ms(device, *prof);
}

}  // namespace bat::kernels
