#include "kernels/gemm.hpp"

#include <algorithm>
#include <cmath>

#include "gpusim/launch_model.hpp"
#include "kernels/models/gemm_model.hpp"

namespace bat::kernels {

namespace {

enum Pos { kMwg, kNwg, kMdimc, kNdimc, kMdima, kNdimb, kVwm, kVwn, kSa, kSb };

}  // namespace

GemmBenchmark::GemmBenchmark() : KernelBenchmark("gemm", make_space()) {}

core::SearchSpace GemmBenchmark::make_space() {
  core::ParamSpace space;
  space.add(core::Parameter::list("MWG", {16, 32, 64, 128}))
      .add(core::Parameter::list("NWG", {16, 32, 64, 128}))
      .add(core::Parameter::list("MDIMC", {8, 16, 32}))
      .add(core::Parameter::list("NDIMC", {8, 16, 32}))
      .add(core::Parameter::list("MDIMA", {8, 16, 32}))
      .add(core::Parameter::list("NDIMB", {8, 16, 32}))
      .add(core::Parameter::list("VWM", {1, 2, 4, 8}))
      .add(core::Parameter::list("VWN", {1, 2, 4, 8}))
      .add(core::Parameter::list("SA", {0, 1}))
      .add(core::Parameter::list("SB", {0, 1}));

  core::ConstraintSet constraints;
  constraints
      .add("MWG % (MDIMC*VWM) == 0", {"MWG", "MDIMC", "VWM"},
           [](const core::Config& c) {
             return c[kMwg] % (c[kMdimc] * c[kVwm]) == 0;
           })
      .add("NWG % (NDIMC*VWN) == 0", {"NWG", "NDIMC", "VWN"},
           [](const core::Config& c) {
             return c[kNwg] % (c[kNdimc] * c[kVwn]) == 0;
           })
      .add("MWG % (MDIMA*VWM) == 0", {"MWG", "MDIMA", "VWM"},
           [](const core::Config& c) {
             return c[kMwg] % (c[kMdima] * c[kVwm]) == 0;
           })
      .add("NWG % (NDIMB*VWN) == 0", {"NWG", "NDIMB", "VWN"},
           [](const core::Config& c) {
             return c[kNwg] % (c[kNdimb] * c[kVwn]) == 0;
           })
      .add("KWG % ((MDIMC*NDIMC)/MDIMA) == 0", {"MDIMC", "NDIMC", "MDIMA"},
           [](const core::Config& c) {
             const auto threads = c[kMdimc] * c[kNdimc];
             return threads % c[kMdima] == 0 &&
                    GemmBenchmark::kKwg % (threads / c[kMdima]) == 0;
           })
      .add("KWG % ((MDIMC*NDIMC)/NDIMB) == 0", {"MDIMC", "NDIMC", "NDIMB"},
           [](const core::Config& c) {
             const auto threads = c[kMdimc] * c[kNdimc];
             return threads % c[kNdimb] == 0 &&
                    GemmBenchmark::kKwg % (threads / c[kNdimb]) == 0;
           });
  return core::SearchSpace(std::move(space), std::move(constraints));
}

GemmParams GemmBenchmark::decode(const core::Config& c) {
  return GemmParams{
      static_cast<int>(c[kMwg]),   static_cast<int>(c[kNwg]),
      static_cast<int>(c[kMdimc]), static_cast<int>(c[kNdimc]),
      static_cast<int>(c[kMdima]), static_cast<int>(c[kNdimb]),
      static_cast<int>(c[kVwm]),   static_cast<int>(c[kVwn]),
      static_cast<int>(c[kSa]),    static_cast<int>(c[kSb])};
}

std::optional<double> GemmBenchmark::model_time_ms(
    const core::Config& config, const gpusim::DeviceSpec& device) const {
  // The arithmetic lives in models/gemm_model.hpp so the JIT backend can
  // compile the identical expressions into a specialized shared object.
  const auto prof = models::gemm_profile(decode(config), device);
  if (!prof) return std::nullopt;
  return gpusim::LaunchModel::estimate_ms(device, *prof);
}

}  // namespace bat::kernels
