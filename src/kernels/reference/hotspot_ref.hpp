// Functional reference implementation of the Hotspot benchmark kernel:
// the Rodinia-style thermal stencil, plus a temporal-tiling variant that
// fuses several steps per "launch" the way the tunable GPU kernel does.
// Tests assert the fused version equals step-by-step application.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bat::kernels::ref {

struct HotspotGrid {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<float> temperature;
  std::vector<float> power;
};

/// Physical coefficients of the update (Rodinia defaults collapsed into
/// per-neighbor weights).
struct HotspotCoefficients {
  float cap = 0.5f;    // step_div_cap
  float rx = 1.0f;     // 1/Rx
  float ry = 1.0f;     // 1/Ry
  float rz = 0.0625f;  // 1/Rz (ambient coupling)
};

/// One explicit stencil step over the full grid (edge-clamped), writing
/// into `out` (same size as in.temperature).
void hotspot_step(const HotspotGrid& in, const HotspotCoefficients& coeff,
                  std::span<float> out);

/// Advances `steps` steps by repeated hotspot_step (ping-pong buffers).
[[nodiscard]] std::vector<float> hotspot_run(const HotspotGrid& grid,
                                             const HotspotCoefficients& coeff,
                                             std::size_t steps);

/// Advances `steps` steps using temporal tiling: processes output tiles of
/// (tile_w x tile_h) fusing `tf` steps per pass over an enlarged halo,
/// exactly like the tunable kernel's shared-memory pyramid. Bit-equal to
/// hotspot_run for any tile shape and tf >= 1.
[[nodiscard]] std::vector<float> hotspot_run_tiled(
    const HotspotGrid& grid, const HotspotCoefficients& coeff,
    std::size_t steps, std::size_t tile_w, std::size_t tile_h,
    std::size_t tf);

}  // namespace bat::kernels::ref
