// Functional reference implementation of the Pnpoly benchmark kernel:
// the crossing-number point-in-polygon test with the algorithmic variants
// exposed by the tunable parameters `between_method` (how "is py between
// the edge endpoints" is evaluated) and `use_method` (how the crossing
// parity is tracked). Tests assert all 12 variants agree.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bat::kernels::ref {

struct Point2D {
  float x, y;
};

/// Tests one point against a polygon using the selected variants.
/// between_method in 0..3, use_method in 0..2 (Table IV).
[[nodiscard]] bool pnpoly_test(const Point2D& point,
                               std::span<const Point2D> vertices,
                               int between_method, int use_method);

/// Batch version over many points; `tile` reproduces the per-thread
/// tiling of the GPU kernel (identical results for any tile >= 1).
[[nodiscard]] std::vector<std::uint8_t> pnpoly_batch(
    std::span<const Point2D> points, std::span<const Point2D> vertices,
    int between_method, int use_method, std::size_t tile = 1);

/// Builds a deterministic, non-self-intersecting test polygon with
/// `vertices` corners (a radial star shape).
[[nodiscard]] std::vector<Point2D> make_test_polygon(std::size_t vertices,
                                                     std::uint64_t seed);

}  // namespace bat::kernels::ref
