// Functional reference implementation of the N-body benchmark kernel:
// AoS and SoA all-pairs gravity with the softening term of the CUDA SDK
// sample. Tests assert the two layouts produce identical forces.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bat::kernels::ref {

struct Body {  // array-of-structures layout
  float x, y, z, mass;
};

struct BodiesSoA {  // structure-of-arrays layout
  std::vector<float> x, y, z, mass;

  [[nodiscard]] std::size_t size() const noexcept { return x.size(); }
  [[nodiscard]] static BodiesSoA from_aos(std::span<const Body> bodies);
};

/// Computes accelerations for all bodies (softened all-pairs gravity).
void nbody_forces_aos(std::span<const Body> bodies, float softening,
                      std::span<float> ax, std::span<float> ay,
                      std::span<float> az);

/// Same computation on the SoA layout; `tile` mimics the shared-memory
/// tile size of the GPU kernel (results are identical for any tile >= 1).
void nbody_forces_soa(const BodiesSoA& bodies, float softening,
                      std::span<float> ax, std::span<float> ay,
                      std::span<float> az, std::size_t tile = 1);

}  // namespace bat::kernels::ref
