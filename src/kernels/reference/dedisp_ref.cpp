#include "kernels/reference/dedisp_ref.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace bat::kernels::ref {

std::size_t DedispProblem::delay(std::size_t dm_index,
                                 std::size_t channel) const {
  const double dm = dm_step * static_cast<double>(dm_index);
  const double f_i =
      f_low_mhz + channel_bw_mhz * static_cast<double>(channel);
  const double f_h =
      f_low_mhz + channel_bw_mhz * static_cast<double>(channels);
  // Dispersion equation (seconds), with frequencies in MHz:
  // k = 4.15e3 * DM * (1/f_i^2 - 1/f_h^2)
  const double seconds = 4.15e3 * dm * (1.0 / (f_i * f_i) - 1.0 / (f_h * f_h));
  const double in_samples = seconds * sample_rate_khz * 1e3;
  return static_cast<std::size_t>(in_samples);
}

std::vector<float> dedisperse(const DedispProblem& p,
                              std::span<const float> input) {
  BAT_EXPECTS(input.size() == p.channels * p.samples);
  // Validate headroom for the largest delay once.
  const std::size_t max_delay = p.delay(p.dms - 1, 0);
  BAT_EXPECTS(p.out_samples + max_delay <= p.samples);

  std::vector<float> out(p.dms * p.out_samples, 0.0f);
  for (std::size_t dm = 0; dm < p.dms; ++dm) {
    for (std::size_t c = 0; c < p.channels; ++c) {
      const std::size_t d = p.delay(dm, c);
      const float* in_row = input.data() + c * p.samples + d;
      float* out_row = out.data() + dm * p.out_samples;
      for (std::size_t s = 0; s < p.out_samples; ++s) {
        out_row[s] += in_row[s];
      }
    }
  }
  return out;
}

std::vector<float> dedisperse_tiled(const DedispProblem& p,
                                    std::span<const float> input,
                                    std::size_t block_x, std::size_t block_y,
                                    std::size_t tile_x, std::size_t tile_y,
                                    bool stride_x, bool stride_y) {
  BAT_EXPECTS(input.size() == p.channels * p.samples);
  BAT_EXPECTS(block_x >= 1 && block_y >= 1 && tile_x >= 1 && tile_y >= 1);
  std::vector<float> out(p.dms * p.out_samples, 0.0f);

  // Index assignment identical to the GPU kernel: a "thread" (bx, by)
  // within a block handles tile_x x tile_y outputs, either consecutive
  // (stride flag 0: thread covers [t*tile, t*tile+tile)) or block-strided
  // (stride flag 1: thread covers {t, t+block, t+2*block, ...}).
  const auto element = [](std::size_t thread_id, std::size_t k,
                          std::size_t tile, std::size_t block,
                          bool strided) {
    return strided ? thread_id + k * block : thread_id * tile + k;
  };

  const std::size_t span_x = block_x * tile_x;
  const std::size_t span_y = block_y * tile_y;
  for (std::size_t gy = 0; gy < p.dms; gy += span_y) {
    for (std::size_t gx = 0; gx < p.out_samples; gx += span_x) {
      for (std::size_t ty = 0; ty < block_y; ++ty) {
        for (std::size_t tx = 0; tx < block_x; ++tx) {
          for (std::size_t ky = 0; ky < tile_y; ++ky) {
            const std::size_t dm =
                gy + element(ty, ky, tile_y, block_y, stride_y);
            if (dm >= p.dms) continue;
            for (std::size_t kx = 0; kx < tile_x; ++kx) {
              const std::size_t s =
                  gx + element(tx, kx, tile_x, block_x, stride_x);
              if (s >= p.out_samples) continue;
              float acc = 0.0f;
              for (std::size_t c = 0; c < p.channels; ++c) {
                acc += input[c * p.samples + s + p.delay(dm, c)];
              }
              out[dm * p.out_samples + s] = acc;
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace bat::kernels::ref
