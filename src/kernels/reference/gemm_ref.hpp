// Functional reference implementation of the GEMM benchmark kernel.
//
// Used by the test suite to validate that the blocked/tiled algorithm the
// tunable kernel implements is semantics-preserving for every legal
// blocking configuration, and by the examples as a workload generator.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bat::kernels::ref {

/// C = alpha * A(MxK) * B(KxN) + beta * C(MxN), row-major, naive loops.
void gemm_naive(std::size_t m, std::size_t n, std::size_t k, float alpha,
                std::span<const float> a, std::span<const float> b, float beta,
                std::span<float> c);

/// Same computation, blocked like the GPU kernel: (mwg x nwg) output tiles
/// with kwg-deep panels and (wpt_m x wpt_n) register tiles. Requires
/// mwg | m, nwg | n, kwg | k.
void gemm_blocked(std::size_t m, std::size_t n, std::size_t k, float alpha,
                  std::span<const float> a, std::span<const float> b,
                  float beta, std::span<float> c, std::size_t mwg,
                  std::size_t nwg, std::size_t kwg);

}  // namespace bat::kernels::ref
