#include "kernels/reference/nbody_ref.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace bat::kernels::ref {

BodiesSoA BodiesSoA::from_aos(std::span<const Body> bodies) {
  BodiesSoA out;
  out.x.reserve(bodies.size());
  out.y.reserve(bodies.size());
  out.z.reserve(bodies.size());
  out.mass.reserve(bodies.size());
  for (const auto& b : bodies) {
    out.x.push_back(b.x);
    out.y.push_back(b.y);
    out.z.push_back(b.z);
    out.mass.push_back(b.mass);
  }
  return out;
}

void nbody_forces_aos(std::span<const Body> bodies, float softening,
                      std::span<float> ax, std::span<float> ay,
                      std::span<float> az) {
  const std::size_t n = bodies.size();
  BAT_EXPECTS(ax.size() == n && ay.size() == n && az.size() == n);
  const float eps2 = softening * softening;
  for (std::size_t i = 0; i < n; ++i) {
    float fx = 0.0f, fy = 0.0f, fz = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      const float dx = bodies[j].x - bodies[i].x;
      const float dy = bodies[j].y - bodies[i].y;
      const float dz = bodies[j].z - bodies[i].z;
      const float dist2 = dx * dx + dy * dy + dz * dz + eps2;
      const float inv = 1.0f / std::sqrt(dist2);
      const float inv3 = inv * inv * inv;
      const float s = bodies[j].mass * inv3;
      fx += dx * s;
      fy += dy * s;
      fz += dz * s;
    }
    ax[i] = fx;
    ay[i] = fy;
    az[i] = fz;
  }
}

void nbody_forces_soa(const BodiesSoA& bodies, float softening,
                      std::span<float> ax, std::span<float> ay,
                      std::span<float> az, std::size_t tile) {
  const std::size_t n = bodies.size();
  BAT_EXPECTS(ax.size() == n && ay.size() == n && az.size() == n);
  BAT_EXPECTS(tile >= 1);
  const float eps2 = softening * softening;
  for (std::size_t i = 0; i < n; ++i) {
    float fx = 0.0f, fy = 0.0f, fz = 0.0f;
    for (std::size_t t = 0; t < n; t += tile) {
      const std::size_t end = std::min(n, t + tile);
      for (std::size_t j = t; j < end; ++j) {
        const float dx = bodies.x[j] - bodies.x[i];
        const float dy = bodies.y[j] - bodies.y[i];
        const float dz = bodies.z[j] - bodies.z[i];
        const float dist2 = dx * dx + dy * dy + dz * dz + eps2;
        const float inv = 1.0f / std::sqrt(dist2);
        const float inv3 = inv * inv * inv;
        const float s = bodies.mass[j] * inv3;
        fx += dx * s;
        fy += dy * s;
        fz += dz * s;
      }
    }
    ax[i] = fx;
    ay[i] = fy;
    az[i] = fz;
  }
}

}  // namespace bat::kernels::ref
