// Functional reference implementation of the ExpDist benchmark kernel:
// the Gaussian-overlap registration cost between two localization sets,
// in the direct row-parallel form and the column-blocked form selected by
// the kernel's use_column parameter. Tests assert both agree.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace bat::kernels::ref {

struct Localization {
  float x, y;
  float sigma;  // localization uncertainty
};

/// D = sum_i sum_j exp(-||t_i - m_j||^2 / (2 (sigma_t,i^2 + sigma_m,j^2)))
[[nodiscard]] double expdist_direct(std::span<const Localization> target,
                                    std::span<const Localization> model);

/// Column-blocked evaluation: the j-loop is split into `blocks` chunks
/// with per-chunk partial sums reduced at the end (mirrors use_column=1
/// with n_y_blocks = blocks). Equal to expdist_direct up to FP rounding.
[[nodiscard]] double expdist_column(std::span<const Localization> target,
                                    std::span<const Localization> model,
                                    std::size_t blocks);

/// Deterministic synthetic particle: `n` localizations scattered around a
/// ring with per-point sigmas, like super-resolution single-particle data.
[[nodiscard]] std::vector<Localization> make_test_particle(std::size_t n,
                                                           std::uint64_t seed);

}  // namespace bat::kernels::ref
