#include "kernels/reference/expdist_ref.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace bat::kernels::ref {

namespace {

double pair_term(const Localization& t, const Localization& m) {
  const double dx = static_cast<double>(t.x) - m.x;
  const double dy = static_cast<double>(t.y) - m.y;
  const double s2 = static_cast<double>(t.sigma) * t.sigma +
                    static_cast<double>(m.sigma) * m.sigma;
  return std::exp(-(dx * dx + dy * dy) / (2.0 * s2));
}

}  // namespace

double expdist_direct(std::span<const Localization> target,
                      std::span<const Localization> model) {
  double sum = 0.0;
  for (const auto& t : target) {
    for (const auto& m : model) {
      sum += pair_term(t, m);
    }
  }
  return sum;
}

double expdist_column(std::span<const Localization> target,
                      std::span<const Localization> model,
                      std::size_t blocks) {
  BAT_EXPECTS(blocks >= 1);
  std::vector<double> partial(blocks, 0.0);
  const std::size_t chunk = (model.size() + blocks - 1) / blocks;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * chunk;
    const std::size_t hi = std::min(model.size(), lo + chunk);
    double acc = 0.0;
    for (const auto& t : target) {
      for (std::size_t j = lo; j < hi; ++j) {
        acc += pair_term(t, model[j]);
      }
    }
    partial[b] = acc;
  }
  double total = 0.0;
  for (const double p : partial) total += p;
  return total;
}

std::vector<Localization> make_test_particle(std::size_t n,
                                             std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Localization> out;
  out.reserve(n);
  const double tau = 6.283185307179586;
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = rng.uniform(0.0, tau);
    const double radius = 25.0 + rng.normal(0.0, 1.5);
    out.push_back(Localization{
        static_cast<float>(radius * std::cos(angle)),
        static_cast<float>(radius * std::sin(angle)),
        static_cast<float>(0.5 + 0.5 * rng.uniform())});
  }
  return out;
}

}  // namespace bat::kernels::ref
