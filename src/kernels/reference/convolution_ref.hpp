// Functional reference implementation of the 2D convolution benchmark
// kernel: direct convolution and a tiled variant that stages halo-extended
// input tiles exactly like the GPU kernel's shared-memory scheme.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bat::kernels::ref {

/// Valid-mode 2D convolution: output[y][x] = sum_j sum_i
/// input[y+j][x+i] * filter[j][i]. Output is (w - fw + 1) x (h - fh + 1).
[[nodiscard]] std::vector<float> convolve2d(std::span<const float> input,
                                            std::size_t w, std::size_t h,
                                            std::span<const float> filter,
                                            std::size_t fw, std::size_t fh);

/// Same computation with (tile_w x tile_h) output tiles staged through a
/// local halo buffer; bit-identical to convolve2d for any tile shape.
[[nodiscard]] std::vector<float> convolve2d_tiled(
    std::span<const float> input, std::size_t w, std::size_t h,
    std::span<const float> filter, std::size_t fw, std::size_t fh,
    std::size_t tile_w, std::size_t tile_h);

}  // namespace bat::kernels::ref
