#include "kernels/reference/pnpoly_ref.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace bat::kernels::ref {

namespace {

/// Does the horizontal ray from `p` cross edge (a, b)?
bool edge_crossing(const Point2D& p, const Point2D& a, const Point2D& b,
                   int between_method) {
  // "p.y is between a.y and b.y" — four equivalent formulations that map
  // to different instruction mixes on the GPU.
  bool between = false;
  switch (between_method) {
    case 0:  // direct comparison pair
      between = (a.y > p.y) != (b.y > p.y);
      break;
    case 1:  // sign of the product of differences
      between = (a.y - p.y) * (b.y - p.y) < 0.0f ||
                (a.y > p.y) != (b.y > p.y);  // handles the zero-product edge
      break;
    case 2: {  // XOR of sign bits (branchless float trick)
      const bool sa = a.y > p.y;
      const bool sb = b.y > p.y;
      between = sa ^ sb;
      break;
    }
    case 3: {  // interval test after ordering
      const float lo = a.y < b.y ? a.y : b.y;
      const float hi = a.y < b.y ? b.y : a.y;
      between = p.y >= lo && p.y < hi && a.y != b.y;
      // Align the half-open orientation with the comparison variants.
      if (between) between = (a.y > p.y) != (b.y > p.y);
      break;
    }
    default:
      BAT_EXPECTS(false);
  }
  if (!between) return false;
  // Ray-edge intersection x-coordinate test (shared by all variants).
  return p.x < (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x;
}

}  // namespace

bool pnpoly_test(const Point2D& point, std::span<const Point2D> vertices,
                 int between_method, int use_method) {
  BAT_EXPECTS(vertices.size() >= 3);
  BAT_EXPECTS(between_method >= 0 && between_method <= 3);
  BAT_EXPECTS(use_method >= 0 && use_method <= 2);

  // Three parity-tracking variants.
  bool inside_flag = false;    // use_method 0: branchy toggle
  int crossings = 0;           // use_method 1: counter, odd => inside
  std::uint32_t parity = 0;    // use_method 2: xor bit
  const std::size_t n = vertices.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const bool crossed =
        edge_crossing(point, vertices[i], vertices[j], between_method);
    switch (use_method) {
      case 0:
        if (crossed) inside_flag = !inside_flag;
        break;
      case 1:
        crossings += crossed ? 1 : 0;
        break;
      case 2:
        parity ^= crossed ? 1u : 0u;
        break;
      default:
        BAT_EXPECTS(false);
    }
  }
  switch (use_method) {
    case 0: return inside_flag;
    case 1: return (crossings & 1) != 0;
    default: return parity != 0;
  }
}

std::vector<std::uint8_t> pnpoly_batch(std::span<const Point2D> points,
                                       std::span<const Point2D> vertices,
                                       int between_method, int use_method,
                                       std::size_t tile) {
  BAT_EXPECTS(tile >= 1);
  std::vector<std::uint8_t> out(points.size());
  // Tiled iteration order mirrors the GPU kernel's per-thread tiles.
  for (std::size_t base = 0; base < points.size(); base += tile) {
    const std::size_t end = std::min(points.size(), base + tile);
    for (std::size_t i = base; i < end; ++i) {
      out[i] = pnpoly_test(points[i], vertices, between_method, use_method)
                   ? 1
                   : 0;
    }
  }
  return out;
}

std::vector<Point2D> make_test_polygon(std::size_t vertices,
                                       std::uint64_t seed) {
  BAT_EXPECTS(vertices >= 3);
  common::Rng rng(seed);
  std::vector<Point2D> poly;
  poly.reserve(vertices);
  const double tau = 6.283185307179586;
  for (std::size_t i = 0; i < vertices; ++i) {
    const double angle = tau * static_cast<double>(i) /
                         static_cast<double>(vertices);
    const double radius = 0.5 + 0.45 * rng.uniform();  // star-shaped: no
                                                       // self-intersection
    poly.push_back(Point2D{static_cast<float>(radius * std::cos(angle)),
                           static_cast<float>(radius * std::sin(angle))});
  }
  return poly;
}

}  // namespace bat::kernels::ref
