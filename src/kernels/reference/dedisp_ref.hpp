// Functional reference implementation of the Dedispersion benchmark
// kernel: shifting-sum over frequency channels with the quadratic
// dispersion delay, in the direct form and a tiled form matching the
// GPU kernel's consecutive vs block-strided tile assignment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace bat::kernels::ref {

struct DedispProblem {
  std::size_t channels = 0;
  std::size_t samples = 0;     // input samples per channel
  std::size_t dms = 0;         // dispersion measures
  std::size_t out_samples = 0; // output samples per DM
  float f_low_mhz = 1220.0f;   // lowest channel frequency
  float channel_bw_mhz = 0.1953125f;
  float dm_step = 0.1f;
  float sample_rate_khz = 24.4f;

  /// Delay in samples for (dm_index, channel), per the dispersion
  /// equation k ~ 4150e3 * DM * (1/f_i^2 - 1/f_h^2) with f in MHz.
  [[nodiscard]] std::size_t delay(std::size_t dm_index,
                                  std::size_t channel) const;
};

/// out[dm][s] = sum_c in[c][s + delay(dm, c)]; input indexed
/// in[c * samples + s]. Requires samples >= out_samples + max delay.
[[nodiscard]] std::vector<float> dedisperse(const DedispProblem& problem,
                                            std::span<const float> input);

/// Tiled variant: each "thread" handles tile_x samples and tile_y DMs,
/// either consecutively (stride 0) or block-strided (stride 1), matching
/// the tunable kernel. Identical results for every tiling.
[[nodiscard]] std::vector<float> dedisperse_tiled(
    const DedispProblem& problem, std::span<const float> input,
    std::size_t block_x, std::size_t block_y, std::size_t tile_x,
    std::size_t tile_y, bool stride_x, bool stride_y);

}  // namespace bat::kernels::ref
