#include "kernels/reference/gemm_ref.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace bat::kernels::ref {

void gemm_naive(std::size_t m, std::size_t n, std::size_t k, float alpha,
                std::span<const float> a, std::span<const float> b, float beta,
                std::span<float> c) {
  BAT_EXPECTS(a.size() == m * k);
  BAT_EXPECTS(b.size() == k * n);
  BAT_EXPECTS(c.size() == m * n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        acc += a[i * k + p] * b[p * n + j];
      }
      c[i * n + j] = alpha * acc + beta * c[i * n + j];
    }
  }
}

void gemm_blocked(std::size_t m, std::size_t n, std::size_t k, float alpha,
                  std::span<const float> a, std::span<const float> b,
                  float beta, std::span<float> c, std::size_t mwg,
                  std::size_t nwg, std::size_t kwg) {
  BAT_EXPECTS(a.size() == m * k);
  BAT_EXPECTS(b.size() == k * n);
  BAT_EXPECTS(c.size() == m * n);
  BAT_EXPECTS(mwg > 0 && nwg > 0 && kwg > 0);
  BAT_EXPECTS(m % mwg == 0 && n % nwg == 0 && k % kwg == 0);

  // Per-tile accumulators play the role of the GPU kernel's register tile;
  // the staged A/B panels play the role of the shared-memory tiles.
  std::vector<float> acc(mwg * nwg);
  std::vector<float> a_panel(mwg * kwg);
  std::vector<float> b_panel(kwg * nwg);

  for (std::size_t bi = 0; bi < m; bi += mwg) {
    for (std::size_t bj = 0; bj < n; bj += nwg) {
      std::fill(acc.begin(), acc.end(), 0.0f);
      for (std::size_t bp = 0; bp < k; bp += kwg) {
        for (std::size_t i = 0; i < mwg; ++i) {
          for (std::size_t p = 0; p < kwg; ++p) {
            a_panel[i * kwg + p] = a[(bi + i) * k + (bp + p)];
          }
        }
        for (std::size_t p = 0; p < kwg; ++p) {
          for (std::size_t j = 0; j < nwg; ++j) {
            b_panel[p * nwg + j] = b[(bp + p) * n + (bj + j)];
          }
        }
        for (std::size_t i = 0; i < mwg; ++i) {
          for (std::size_t p = 0; p < kwg; ++p) {
            const float av = a_panel[i * kwg + p];
            for (std::size_t j = 0; j < nwg; ++j) {
              acc[i * nwg + j] += av * b_panel[p * nwg + j];
            }
          }
        }
      }
      for (std::size_t i = 0; i < mwg; ++i) {
        for (std::size_t j = 0; j < nwg; ++j) {
          float& out = c[(bi + i) * n + (bj + j)];
          out = alpha * acc[i * nwg + j] + beta * out;
        }
      }
    }
  }
}

}  // namespace bat::kernels::ref
