#include "kernels/reference/convolution_ref.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace bat::kernels::ref {

std::vector<float> convolve2d(std::span<const float> input, std::size_t w,
                              std::size_t h, std::span<const float> filter,
                              std::size_t fw, std::size_t fh) {
  BAT_EXPECTS(input.size() == w * h);
  BAT_EXPECTS(filter.size() == fw * fh);
  BAT_EXPECTS(w >= fw && h >= fh);
  const std::size_t ow = w - fw + 1;
  const std::size_t oh = h - fh + 1;
  std::vector<float> out(ow * oh, 0.0f);
  for (std::size_t y = 0; y < oh; ++y) {
    for (std::size_t x = 0; x < ow; ++x) {
      float acc = 0.0f;
      for (std::size_t j = 0; j < fh; ++j) {
        for (std::size_t i = 0; i < fw; ++i) {
          acc += input[(y + j) * w + (x + i)] * filter[j * fw + i];
        }
      }
      out[y * ow + x] = acc;
    }
  }
  return out;
}

std::vector<float> convolve2d_tiled(std::span<const float> input,
                                    std::size_t w, std::size_t h,
                                    std::span<const float> filter,
                                    std::size_t fw, std::size_t fh,
                                    std::size_t tile_w, std::size_t tile_h) {
  BAT_EXPECTS(input.size() == w * h);
  BAT_EXPECTS(filter.size() == fw * fh);
  BAT_EXPECTS(w >= fw && h >= fh);
  BAT_EXPECTS(tile_w >= 1 && tile_h >= 1);
  const std::size_t ow = w - fw + 1;
  const std::size_t oh = h - fh + 1;
  std::vector<float> out(ow * oh, 0.0f);

  // Staging buffer plays the role of the shared-memory input tile.
  std::vector<float> staged;
  for (std::size_t ty = 0; ty < oh; ty += tile_h) {
    for (std::size_t tx = 0; tx < ow; tx += tile_w) {
      const std::size_t cur_w = std::min(tile_w, ow - tx);
      const std::size_t cur_h = std::min(tile_h, oh - ty);
      const std::size_t in_w = cur_w + fw - 1;
      const std::size_t in_h = cur_h + fh - 1;
      staged.assign(in_w * in_h, 0.0f);
      for (std::size_t y = 0; y < in_h; ++y) {
        for (std::size_t x = 0; x < in_w; ++x) {
          staged[y * in_w + x] = input[(ty + y) * w + (tx + x)];
        }
      }
      for (std::size_t y = 0; y < cur_h; ++y) {
        for (std::size_t x = 0; x < cur_w; ++x) {
          float acc = 0.0f;
          for (std::size_t j = 0; j < fh; ++j) {
            for (std::size_t i = 0; i < fw; ++i) {
              acc += staged[(y + j) * in_w + (x + i)] * filter[j * fw + i];
            }
          }
          out[(ty + y) * ow + (tx + x)] = acc;
        }
      }
    }
  }
  return out;
}

}  // namespace bat::kernels::ref
