#include "kernels/reference/hotspot_ref.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace bat::kernels::ref {

namespace {

float cell_update(const HotspotGrid& g, const HotspotCoefficients& c,
                  std::span<const float> temp, std::size_t x, std::size_t y) {
  const std::size_t w = g.width;
  const std::size_t h = g.height;
  const auto at = [&](std::size_t xx, std::size_t yy) {
    return temp[yy * w + xx];
  };
  const float center = at(x, y);
  const float north = y > 0 ? at(x, y - 1) : center;
  const float south = y + 1 < h ? at(x, y + 1) : center;
  const float west = x > 0 ? at(x - 1, y) : center;
  const float east = x + 1 < w ? at(x + 1, y) : center;
  const float delta =
      c.cap * (g.power[y * w + x] + (east + west - 2.0f * center) * c.rx +
               (north + south - 2.0f * center) * c.ry +
               (80.0f - center) * c.rz);
  return center + delta;
}

}  // namespace

void hotspot_step(const HotspotGrid& in, const HotspotCoefficients& coeff,
                  std::span<float> out) {
  BAT_EXPECTS(in.temperature.size() == in.width * in.height);
  BAT_EXPECTS(in.power.size() == in.width * in.height);
  BAT_EXPECTS(out.size() == in.temperature.size());
  for (std::size_t y = 0; y < in.height; ++y) {
    for (std::size_t x = 0; x < in.width; ++x) {
      out[y * in.width + x] = cell_update(in, coeff, in.temperature, x, y);
    }
  }
}

std::vector<float> hotspot_run(const HotspotGrid& grid,
                               const HotspotCoefficients& coeff,
                               std::size_t steps) {
  HotspotGrid cur = grid;
  std::vector<float> next(cur.temperature.size());
  for (std::size_t s = 0; s < steps; ++s) {
    hotspot_step(cur, coeff, next);
    cur.temperature.swap(next);
  }
  return cur.temperature;
}

std::vector<float> hotspot_run_tiled(const HotspotGrid& grid,
                                     const HotspotCoefficients& coeff,
                                     std::size_t steps, std::size_t tile_w,
                                     std::size_t tile_h, std::size_t tf) {
  BAT_EXPECTS(tile_w >= 1 && tile_h >= 1 && tf >= 1);
  const std::size_t w = grid.width;
  const std::size_t h = grid.height;

  HotspotGrid cur = grid;
  std::vector<float> result(w * h);

  std::size_t remaining = steps;
  while (remaining > 0) {
    const std::size_t fuse = std::min(tf, remaining);
    // One "launch": every output tile is computed from a halo-extended
    // input pyramid, reading only `cur` (like the GPU kernel reading
    // global memory into shared memory once per launch).
    for (std::size_t ty = 0; ty < h; ty += tile_h) {
      for (std::size_t tx = 0; tx < w; tx += tile_w) {
        const std::size_t out_w = std::min(tile_w, w - tx);
        const std::size_t out_h = std::min(tile_h, h - ty);
        // Halo-extended region, clamped to the grid.
        const std::size_t halo = fuse;  // one cell per fused step
        const std::size_t rx0 = tx >= halo ? tx - halo : 0;
        const std::size_t ry0 = ty >= halo ? ty - halo : 0;
        const std::size_t rx1 = std::min(w, tx + out_w + halo);
        const std::size_t ry1 = std::min(h, ty + out_h + halo);
        const std::size_t rw = rx1 - rx0;
        const std::size_t rh = ry1 - ry0;

        // Local ping-pong buffers ("shared memory").
        HotspotGrid local;
        local.width = rw;
        local.height = rh;
        local.temperature.resize(rw * rh);
        local.power.resize(rw * rh);
        for (std::size_t y = 0; y < rh; ++y) {
          for (std::size_t x = 0; x < rw; ++x) {
            local.temperature[y * rw + x] =
                cur.temperature[(ry0 + y) * w + (rx0 + x)];
            local.power[y * rw + x] = cur.power[(ry0 + y) * w + (rx0 + x)];
          }
        }

        std::vector<float> scratch(rw * rh);
        for (std::size_t s = 0; s < fuse; ++s) {
          // Cells whose full neighborhood history is inside the local
          // region shrink by one per step; edge-adjacent cells stay exact
          // because clamping matches the global boundary condition.
          for (std::size_t y = 0; y < rh; ++y) {
            for (std::size_t x = 0; x < rw; ++x) {
              // Construct a view where clamping uses *global* boundaries:
              // interior local edges would clamp wrongly, so only compute
              // cells that are still valid at this step; others are
              // garbage that later steps will not read (the valid pyramid
              // shrinks inward faster than the garbage spreads only if we
              // track it — easiest correct policy: recompute the update
              // with global-aware clamping by checking region edges).
              const bool local_left_is_global = rx0 == 0;
              const bool local_right_is_global = rx1 == w;
              const bool local_top_is_global = ry0 == 0;
              const bool local_bottom_is_global = ry1 == h;
              const auto at = [&](std::ptrdiff_t xx, std::ptrdiff_t yy) {
                xx = std::clamp<std::ptrdiff_t>(
                    xx, 0, static_cast<std::ptrdiff_t>(rw) - 1);
                yy = std::clamp<std::ptrdiff_t>(
                    yy, 0, static_cast<std::ptrdiff_t>(rh) - 1);
                return local.temperature[static_cast<std::size_t>(yy) * rw +
                                         static_cast<std::size_t>(xx)];
              };
              const auto xi = static_cast<std::ptrdiff_t>(x);
              const auto yi = static_cast<std::ptrdiff_t>(y);
              const float center = at(xi, yi);
              const float west =
                  (x == 0 && !local_left_is_global) ? center : at(xi - 1, yi);
              const float east = (x == rw - 1 && !local_right_is_global)
                                     ? center
                                     : at(xi + 1, yi);
              const float north =
                  (y == 0 && !local_top_is_global) ? center : at(xi, yi - 1);
              const float south = (y == rh - 1 && !local_bottom_is_global)
                                      ? center
                                      : at(xi, yi + 1);
              const float delta =
                  coeff.cap * (local.power[y * rw + x] +
                               (east + west - 2.0f * center) * coeff.rx +
                               (north + south - 2.0f * center) * coeff.ry +
                               (80.0f - center) * coeff.rz);
              scratch[y * rw + x] = center + delta;
            }
          }
          local.temperature.swap(scratch);
        }

        // Copy out only the target tile: those cells are exact because
        // they sit >= fuse-steps inside the halo (or against a true
        // global boundary).
        for (std::size_t y = 0; y < out_h; ++y) {
          for (std::size_t x = 0; x < out_w; ++x) {
            const std::size_t lx = tx - rx0 + x;
            const std::size_t ly = ty - ry0 + y;
            result[(ty + y) * w + (tx + x)] = local.temperature[ly * rw + lx];
          }
        }
      }
    }
    cur.temperature = result;
    remaining -= fuse;
  }
  return cur.temperature;
}

}  // namespace bat::kernels::ref
