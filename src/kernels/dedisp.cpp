#include "kernels/dedisp.hpp"

#include <algorithm>
#include <cmath>

#include "gpusim/launch_model.hpp"
#include "gpusim/perf_utils.hpp"

namespace bat::kernels {

namespace {

enum Pos {
  kBx,
  kBy,
  kTx,
  kTy,
  kStrideX,
  kStrideY,
  kUnrollChannel,
  kBlocksPerSm
};

}  // namespace

DedispBenchmark::DedispBenchmark() : KernelBenchmark("dedisp", make_space()) {}

core::SearchSpace DedispBenchmark::make_space() {
  // Table VII: block_size_x in {1,2,4,8} ∪ {16n | n in [1,32]} (36 values),
  // block_size_y in {4n | n in [1,32]} (32 values).
  std::vector<core::Value> bx{1, 2, 4, 8};
  for (core::Value x = 16; x <= 512; x += 16) bx.push_back(x);
  std::vector<core::Value> by;
  for (core::Value y = 4; y <= 128; y += 4) by.push_back(y);

  core::ParamSpace space;
  space.add(core::Parameter::list("block_size_x", bx))
      .add(core::Parameter::list("block_size_y", by))
      .add(core::Parameter::range("tile_size_x", 1, 16))
      .add(core::Parameter::range("tile_size_y", 1, 16))
      .add(core::Parameter::list("tile_stride_x", {0, 1}))
      .add(core::Parameter::list("tile_stride_y", {0, 1}))
      .add(core::Parameter::list("loop_unroll_factor_channel",
                                 {0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64,
                                  96, 128, 192, 256, 384, 512, 768, 1536}))
      .add(core::Parameter::list("blocks_per_sm", {0, 1, 2, 3, 4}));

  core::ConstraintSet constraints;
  constraints
      .add("tile_stride_x needs tile_size_x > 1",
           {"tile_stride_x", "tile_size_x"},
           [](const core::Config& c) {
             return c[kStrideX] == 0 || c[kTx] > 1;
           })
      .add("tile_stride_y needs tile_size_y > 1",
           {"tile_stride_y", "tile_size_y"},
           [](const core::Config& c) {
             return c[kStrideY] == 0 || c[kTy] > 1;
           });
  return core::SearchSpace(std::move(space), std::move(constraints));
}

DedispParams DedispBenchmark::decode(const core::Config& c) {
  return DedispParams{static_cast<int>(c[kBx]),
                      static_cast<int>(c[kBy]),
                      static_cast<int>(c[kTx]),
                      static_cast<int>(c[kTy]),
                      static_cast<int>(c[kStrideX]),
                      static_cast<int>(c[kStrideY]),
                      static_cast<int>(c[kUnrollChannel]),
                      static_cast<int>(c[kBlocksPerSm])};
}

std::optional<double> DedispBenchmark::model_time_ms(
    const core::Config& config, const gpusim::DeviceSpec& device) const {
  using gpusim::KernelProfile;
  const DedispParams p = decode(config);

  const int threads = p.bx * p.by;
  if (threads > device.max_threads_per_block) return std::nullopt;

  const double outputs = static_cast<double>(kDMs) * kSamples;
  const double flops = outputs * kChannels * 2.0;  // load-add per channel

  const std::uint64_t grid =
      gpusim::div_up(kSamples, static_cast<std::uint64_t>(p.bx) * p.tx) *
      gpusim::div_up(kDMs, static_cast<std::uint64_t>(p.by) * p.ty);

  double regs = 24.0 + 1.8 * (p.tx * p.ty);
  if (p.unroll_channel > 8) regs += 6.0;
  if (device.arch == gpusim::Architecture::kAmpere) regs += 2.0;
  double spill_penalty = 1.0;
  if (p.blocks_per_sm > 0) {
    const double reg_cap = static_cast<double>(device.registers_per_sm) /
                           (p.blocks_per_sm * std::max(threads, 32));
    if (reg_cap < regs) {
      spill_penalty = 1.0 + std::min(1.5, 0.02 * (regs - reg_cap));
      regs = std::max(20.0, reg_cap);
    }
  }
  if (regs > device.max_registers_per_thread) {
    regs = device.max_registers_per_thread;
    spill_penalty *= 1.4;
  }

  // --- DRAM traffic --------------------------------------------------------
  // Input: channels x samples floats; every DM-tile row of blocks re-reads
  // the input at shifted offsets. Larger per-block DM tiles (by * ty) mean
  // fewer passes over the input; the L2 absorbs neighboring-delay overlap.
  const double input_bytes =
      static_cast<double>(kChannels) * (kSamples + 2048) * 4.0;
  const double dm_tiles =
      static_cast<double>(gpusim::div_up(kDMs, static_cast<std::uint64_t>(p.by) * p.ty));
  // Blocks of different DM tiles run concurrently and stream the input
  // window together, so the L2 turns most nominal re-reads into hits;
  // only a fraction of the per-tile passes reach DRAM.
  const double l2_miss = gpusim::cache_miss_fraction(
      input_bytes, device.l2_cache_bytes, 0.12);
  double dram_bytes =
      input_bytes * (1.0 + (dm_tiles - 1.0) * l2_miss * 0.25) + outputs * 4.0;
  dram_bytes *= spill_penalty;

  // Coalescing in x: consecutive threads read consecutive samples when
  // tile_stride_x == 1 (block-strided tiles) or tile_size_x == 1;
  // consecutive tiles per thread (stride 0, tile > 1) stride the warp.
  double stride_elems = 1.0;
  if (p.stride_x == 0 && p.tx > 1) stride_elems = p.tx;
  if (p.bx < 32) stride_elems = std::max(stride_elems, 32.0 / p.bx);
  const double mem_eff = std::clamp(
      gpusim::coalescing_efficiency(stride_elems, 4.0), 0.10, 1.0);

  // --- On-chip traffic: each output sums one L1-resident word per
  // channel; warp-contiguous sample access (wide bx, stride-friendly
  // tiling) turns those into full cache-line transactions.
  double l1_eff = 1.0;
  if (p.bx < 32) l1_eff = std::max(0.2, p.bx / 32.0);
  if (p.stride_x == 0 && p.tx > 1) {
    l1_eff /= std::min(2.5, static_cast<double>(p.tx));
  }
  const double l1_bytes = outputs * kChannels * 4.0 / (6.0 * l1_eff);

  // tile_stride_y shifts which DMs share delay tables; mild latency effect.
  double compute_eff = 0.70;
  if (p.unroll_channel == 0) {
    compute_eff *= 1.04;  // compiler picks a sane factor
  } else {
    compute_eff *= gpusim::unroll_efficiency(p.unroll_channel, 0.10, 8);
  }
  if (p.stride_y == 1) compute_eff *= 1.02;
  compute_eff /= spill_penalty;
  compute_eff = std::clamp(compute_eff, 0.05, 1.0);

  KernelProfile prof;
  prof.grid_blocks = grid;
  prof.block_threads = threads;
  prof.regs_per_thread = static_cast<int>(regs);
  prof.smem_per_block = 0;
  prof.flops = flops;
  prof.dram_bytes = dram_bytes;
  prof.smem_bytes = l1_bytes;
  prof.mem_efficiency = mem_eff;
  prof.compute_efficiency = compute_eff;
  prof.ilp = std::min(16.0, static_cast<double>(p.tx) * p.ty);
  return gpusim::LaunchModel::estimate_ms(device, prof);
}

}  // namespace bat::kernels
