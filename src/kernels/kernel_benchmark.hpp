// Base class for the seven simulated kernel benchmarks.
//
// Each concrete kernel supplies its search space (Tables I-VII) and a
// performance model mapping (decoded config, device) to milliseconds —
// or nullopt when the launch is impossible on that device. This base
// implements the core::Benchmark contract: constraint checking, device
// binding, and deterministic measurement noise.
#pragma once

#include <optional>
#include <string>

#include "core/benchmark.hpp"
#include "gpusim/device.hpp"
#include "gpusim/noise.hpp"

namespace bat::kernels {

class KernelBenchmark : public core::Benchmark {
 public:
  KernelBenchmark(std::string name, core::SearchSpace space,
                  double noise_amplitude = 0.004);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const core::SearchSpace& space() const override {
    return space_;
  }
  [[nodiscard]] std::size_t device_count() const override;
  [[nodiscard]] const std::string& device_name(
      core::DeviceIndex d) const override;

  [[nodiscard]] core::Measurement evaluate(
      const core::Config& config, core::DeviceIndex device) const override;

  /// Noise-free model time; exposed for calibration tests.
  [[nodiscard]] std::optional<double> model_time(
      const core::Config& config, core::DeviceIndex device) const;

  /// Measurement-noise parameters, exposed so alternative evaluation
  /// paths (the JIT backend) can reproduce evaluate()'s exact results.
  [[nodiscard]] double noise_amplitude() const noexcept {
    return noise_amplitude_;
  }
  [[nodiscard]] std::uint64_t kernel_noise_id() const noexcept {
    return kernel_id_;
  }

 protected:
  /// The per-kernel analytical model. `config` is already known to satisfy
  /// the static constraints. Returns nullopt for device-invalid launches.
  [[nodiscard]] virtual std::optional<double> model_time_ms(
      const core::Config& config,
      const gpusim::DeviceSpec& device) const = 0;

 private:
  std::string name_;
  core::SearchSpace space_;
  double noise_amplitude_;
  std::uint64_t kernel_id_;
};

}  // namespace bat::kernels
