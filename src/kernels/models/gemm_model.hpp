// The GEMM analytical model, factored out of GemmBenchmark so the JIT
// backend can compile the *same* expressions into a specialized shared
// object (src/kernels/jit_emitters.cpp bakes the parameters into a
// constexpr struct and instantiates this template). Host and JIT paths
// therefore agree bit-for-bit — parity is by construction, not by test
// tolerance. Depends only on header-only gpusim pieces so an emitted
// translation unit needs no symbols from libbat.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>

#include "gpusim/device.hpp"
#include "gpusim/launch_model.hpp"
#include "gpusim/perf_utils.hpp"

namespace bat::kernels::models {

inline constexpr int kGemmM = 4096;
inline constexpr int kGemmN = 4096;
inline constexpr int kGemmK = 4096;
inline constexpr int kGemmKwg = 32;  // k-loop blocking factor (fixed)

/// `P` supplies the decoded configuration as int members
/// mwg, nwg, mdimc, ndimc, mdima, ndimb, vwm, vwn, sa, sb
/// (GemmParams on the host, a baked constexpr struct in emitted code).
/// Returns the launch profile, or nullopt for a device-invalid launch
/// (GEMM has none, but the contract is uniform across the three models).
template <typename P>
[[nodiscard]] inline std::optional<gpusim::KernelProfile> gemm_profile(
    const P& p, const gpusim::DeviceSpec& device) {
  using gpusim::KernelProfile;

  const int threads = p.mdimc * p.ndimc;
  const int wpt_m = p.mwg / p.mdimc;  // outputs per thread in M
  const int wpt_n = p.nwg / p.ndimc;  // outputs per thread in N
  const std::uint64_t grid =
      gpusim::div_up(kGemmM, p.mwg) * gpusim::div_up(kGemmN, p.nwg);

  // Register estimate: accumulators dominate; staging buffers and index
  // arithmetic add a base cost. Wide vectors hold operands in registers.
  double regs = 28.0 + wpt_m * wpt_n + 1.5 * (wpt_m * p.vwm + wpt_n * p.vwn);
  if (device.arch == gpusim::Architecture::kAmpere) regs += 4.0;  // nvcc delta
  // Spilling is graded: a handful of spilled values live in L1 and cost
  // little; deep spills thrash local memory.
  const double excess_regs =
      std::max(0.0, regs - device.max_registers_per_thread);
  const double spill_factor = 1.0 + std::min(0.6, 0.025 * excess_regs);
  const bool spills = excess_regs > 0.0;
  if (spills) regs = device.max_registers_per_thread;

  // Shared-memory tiles for A and B (KWG-deep).
  const int smem = (p.sa ? kGemmKwg * p.mwg * 4 : 0) +
                   (p.sb ? kGemmKwg * p.nwg * 4 : 0);

  const double flops = 2.0 * kGemmM * kGemmN * static_cast<double>(kGemmK);

  // --- DRAM traffic ---------------------------------------------------
  // Block-level algorithm: each (MWG x NWG) block streams A (MWG x K) and
  // B (K x NWG). Without shared-memory staging the tile is re-fetched per
  // k-step; L1 absorbs part of the re-use, leaving a multiplier.
  const double a_traffic = static_cast<double>(kGemmM) * kGemmK * 4.0 *
                           (static_cast<double>(kGemmN) / p.nwg);
  const double b_traffic = static_cast<double>(kGemmK) * kGemmN * 4.0 *
                           (static_cast<double>(kGemmM) / p.mwg);
  const double c_traffic = 2.0 * kGemmM * static_cast<double>(kGemmN) * 4.0;
  const double a_nosmem_penalty = p.sa ? 1.0 : std::min(3.0, 9.0 / p.vwm);
  const double b_nosmem_penalty = p.sb ? 1.0 : std::min(3.0, 9.0 / p.vwn);

  // Blocks of the same wave share row/column panels: a wave of W blocks
  // arranged ~sqrt(W) x sqrt(W) touches only ~sqrt(W) distinct A panels,
  // so the L2 serves the rest. The reuse deepens with the wave size
  // (device dependent) and collapses if the panel set outgrows the L2.
  const double wave_blocks = 2.0 * device.sm_count;
  double panel_share = std::clamp(2.5 / std::sqrt(wave_blocks), 0.15, 1.0);
  const double panel_bytes =
      std::sqrt(wave_blocks) * (p.mwg + p.nwg) * 0.5 * kGemmK * 4.0;
  panel_share *= 1.0 + gpusim::cache_miss_fraction(
                           panel_bytes, device.l2_cache_bytes, 0.0);

  double dram_bytes =
      (a_traffic * a_nosmem_penalty + b_traffic * b_nosmem_penalty) *
          std::min(1.0, panel_share) +
      c_traffic;
  if (spills) dram_bytes += flops * 0.04 * (spill_factor - 1.0);

  // Coalescing of the staging loads: contiguous when the load-thread
  // shape times the vector width spans the tile width.
  const double stride_a =
      std::max(1.0, static_cast<double>(p.mwg) / (p.mdima * p.vwm));
  const double stride_b =
      std::max(1.0, static_cast<double>(p.nwg) / (p.ndimb * p.vwn));
  const double coalesce =
      0.5 * (gpusim::coalescing_efficiency(stride_a, 4.0 * p.vwm) +
             gpusim::coalescing_efficiency(stride_b, 4.0 * p.vwn));
  const double mem_eff =
      std::clamp(coalesce * gpusim::vector_load_boost(std::min(p.vwm, p.vwn)),
                 0.30, 1.0);

  // --- Shared-memory traffic -------------------------------------------
  // Each FMA reads one A and one B operand; register tiling re-uses each
  // fetched operand wpt times.
  // Register tiling re-uses each fetched operand wpt times, and 64/128-bit
  // shared loads (VWM/VWN wide) cut the transaction count — on Ampere,
  // whose FP32 rate doubled while shared bandwidth did not, wide vectors
  // are what keep the smem pipe off the critical path.
  double smem_bytes = 0.0;
  const double vec_a = 1.0 + 0.6 * (p.vwm - 1);
  const double vec_b = 1.0 + 0.6 * (p.vwn - 1);
  if (p.sa) {
    smem_bytes += (flops / 2.0) * 4.0 / (std::max(1, wpt_n) * vec_a);
  }
  if (p.sb) {
    smem_bytes += (flops / 2.0) * 4.0 / (std::max(1, wpt_m) * vec_b);
  }
  // Mismatched staging dimensions cause bank conflicts on the write side.
  double conflict = 1.0;
  if (p.sa && p.mdima != p.mdimc) conflict += 0.05;
  if (p.sb && p.ndimb != p.ndimc) conflict += 0.05;
  smem_bytes *= gpusim::bank_conflict_factor(conflict);

  // --- Compute efficiency ----------------------------------------------
  // Deep register tiles approach peak; tiny tiles pay loop overhead.
  const double tile_depth = static_cast<double>(wpt_m * wpt_n);
  double compute_eff = 0.50 + 0.50 * (1.0 - 1.0 / (1.0 + tile_depth / 12.0));
  // Very deep register tiles stall the scoreboard even before spilling.
  compute_eff /= 1.0 + 0.015 * std::max(0.0, tile_depth - 72.0);
  // Scalar staging loads occupy issue slots the FMAs need; 128-bit loads
  // amortize them.
  compute_eff /= 1.0 + 0.055 * (4.0 / p.vwm + 4.0 / p.vwn - 2.0);
  // Warp-scheduler sweet spot around 256 threads per block.
  compute_eff *=
      1.0 - 0.09 * std::abs(std::log2(static_cast<double>(threads) / 256.0));
  // Each mismatched staging shape costs an extra synchronization stage.
  if (p.sa && p.mdima != p.mdimc) compute_eff *= 0.97;
  if (p.sb && p.ndimb != p.ndimc) compute_eff *= 0.97;
  compute_eff /= spill_factor;
  compute_eff = std::clamp(compute_eff, 0.05, 1.0);

  KernelProfile prof;
  prof.grid_blocks = grid;
  prof.block_threads = threads;
  prof.regs_per_thread = static_cast<int>(regs);
  prof.smem_per_block = smem;
  prof.flops = flops;
  prof.dram_bytes = dram_bytes;
  prof.smem_bytes = smem_bytes;
  prof.mem_efficiency = mem_eff;
  prof.compute_efficiency = compute_eff;
  prof.ilp = tile_depth;
  return prof;
}

}  // namespace bat::kernels::models
