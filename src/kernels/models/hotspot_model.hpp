// The Hotspot analytical model, factored out of HotspotBenchmark for the
// JIT backend (see gemm_model.hpp for the why). Device-invalid launches
// (too few/many threads, shared-memory tile overflow) return nullopt.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>

#include "gpusim/device.hpp"
#include "gpusim/launch_model.hpp"
#include "gpusim/perf_utils.hpp"

namespace bat::kernels::models {

inline constexpr int kHotspotGrid = 4096;  // simulation grid (side length)
inline constexpr int kHotspotSteps = 60;   // time steps per measurement

// Calibrated model constants (see DESIGN.md "calibration notes").
inline constexpr double kL2HaloCompress = 0.35;  // halo re-reads absorbed by L2
inline constexpr double kOpsCell = 20.0;         // arithmetic ops per cell
inline constexpr double kSmemBufs = 1.0;  // single smem buffer + reg ping-pong

/// `P` supplies int members bx, by, tx, ty, tf, unroll_t, sh_power,
/// blocks_per_sm (HotspotParams on the host, a baked struct in emitted
/// code).
template <typename P>
[[nodiscard]] inline std::optional<gpusim::KernelProfile> hotspot_profile(
    const P& p, const gpusim::DeviceSpec& device) {
  using gpusim::KernelProfile;

  const int threads = p.bx * p.by;
  // The kernel requires at least one warp and at most a full block
  // (paper: "the kernel uses at least 32 and at most 1024 threads").
  if (threads < 32 || threads > device.max_threads_per_block) {
    return std::nullopt;
  }

  const int out_w = p.bx * p.tx;  // output tile per block
  const int out_h = p.by * p.ty;
  const int halo = 2 * p.tf;      // input halo for tf fused steps
  const int in_w = out_w + halo;
  const int in_h = out_h + halo;

  // Shared memory: two temperature buffers (ping-pong) plus optionally the
  // power grid for the input tile.
  const double smem_d = static_cast<double>(in_w) * in_h * 4.0 *
                        (kSmemBufs + (p.sh_power ? 1.0 : 0.0));
  if (smem_d > static_cast<double>(device.max_shared_mem_per_block)) {
    return std::nullopt;  // tile does not fit — invalid on this device
  }
  const int smem = static_cast<int>(smem_d);

  // Registers: per-thread tile state; the launch-bounds hint trades
  // registers for resident blocks.
  double regs = 22.0 + 2.2 * (p.tx * p.ty) + 1.0 * p.unroll_t;
  if (device.arch == gpusim::Architecture::kAmpere) regs += 2.0;
  double spill_penalty = 1.0;
  if (p.blocks_per_sm > 0) {
    const double reg_cap = static_cast<double>(device.registers_per_sm) /
                           (p.blocks_per_sm * std::max(threads, 32));
    if (reg_cap < regs) {
      spill_penalty = 1.0 + std::min(1.5, 0.02 * (regs - reg_cap));
      regs = std::max(20.0, reg_cap);
    }
  }
  if (regs > device.max_registers_per_thread) {
    regs = device.max_registers_per_thread;
    spill_penalty *= 1.4;
  }

  const int launches = static_cast<int>(
      gpusim::div_up(kHotspotSteps, static_cast<std::uint64_t>(p.tf)));
  const std::uint64_t grid =
      gpusim::div_up(kHotspotGrid, static_cast<std::uint64_t>(out_w)) *
      gpusim::div_up(kHotspotGrid, static_cast<std::uint64_t>(out_h));

  // --- Compute: the temporal-tiling pyramid recomputes halo cells. ------
  const double cells = static_cast<double>(kHotspotGrid) * kHotspotGrid;
  double amplification = 0.0;
  for (int s = 0; s < p.tf; ++s) {
    const double w = out_w + 2.0 * (p.tf - s - 1);
    const double h = out_h + 2.0 * (p.tf - s - 1);
    amplification += (w * h) / (static_cast<double>(out_w) * out_h);
  }
  amplification /= p.tf;  // normalized redundant-work factor (>= 1)
  const double flops = cells * kOpsCell * kHotspotSteps * amplification;

  // --- DRAM ---------------------------------------------------------------
  // Temperature: each launch reads the halo-extended input tile once and
  // writes the output tile once. Power: cached in shared memory it is read
  // once per launch; without sh_power the kernel re-reads it from global
  // memory on every fused time step — this interaction produces the >10x
  // high-performer cluster of Fig 1b.
  // Halos overlap between adjacent blocks, and the L2 serves about half of
  // those re-reads, compressing the raw geometric overhead.
  const double raw_overhead =
      (static_cast<double>(in_w) * in_h) /
      (static_cast<double>(out_w) * out_h);
  const double tile_read_overhead =
      1.0 + (raw_overhead - 1.0) * kL2HaloCompress;
  const double temp_bytes =
      static_cast<double>(launches) * cells * 4.0 * (tile_read_overhead + 1.0);
  const double power_reads = p.sh_power ? static_cast<double>(launches)
                                        : static_cast<double>(kHotspotSteps);
  // Un-cached power reads miss the streaming pattern (scattered by the
  // block tiling), costing extra sectors per access.
  const double power_penalty = p.sh_power ? 1.0 : 1.6;
  const double power_bytes =
      power_reads * cells * 4.0 * tile_read_overhead * power_penalty;
  double dram_bytes = (temp_bytes + power_bytes) * spill_penalty;
  // Without temporal fusion every step round-trips through L1/L2 with the
  // 5-point neighborhood, thrashing lines across block boundaries.
  if (p.tf == 1) dram_bytes *= 1.4;

  // Coalescing: narrow block_size_x wastes most of each 32-byte sector.
  const double mem_eff = std::clamp(
      gpusim::coalescing_efficiency(
          p.bx >= 32 ? 1.0 : 32.0 / std::max(1, p.bx), 4.0),
      0.08, 1.0);

  // --- Shared-memory traffic ------------------------------------------
  // The 5-point stencil re-uses west/center/east values across a thread's
  // x-tile through registers, leaving about two fresh shared loads per
  // computed cell.
  const double smem_bytes =
      flops / kOpsCell * 2.0 * 4.0 / std::min(4, std::max(1, p.tx));
  const double conflict =
      (p.bx % 32 != 0 && p.bx >= 16) ? 1.25 : 1.0;  // misaligned rows

  double compute_eff = 0.62 * gpusim::unroll_efficiency(p.unroll_t, 0.10, 4);
  compute_eff /= spill_penalty;
  compute_eff = std::clamp(compute_eff, 0.05, 1.0);

  KernelProfile prof;
  prof.grid_blocks = grid * static_cast<std::uint64_t>(launches);
  prof.block_threads = threads;
  prof.regs_per_thread = static_cast<int>(regs);
  prof.smem_per_block = smem;
  prof.flops = flops;
  prof.dram_bytes = dram_bytes;
  prof.smem_bytes = smem_bytes * gpusim::bank_conflict_factor(conflict);
  prof.mem_efficiency = mem_eff;
  prof.compute_efficiency = compute_eff;
  prof.ilp = static_cast<double>(p.tx) * p.ty;
  prof.launches = launches;
  return prof;
}

}  // namespace bat::kernels::models
