// The Pnpoly analytical model, factored out of PnpolyBenchmark for the
// JIT backend (see gemm_model.hpp for the why). The single device-invalid
// case (register file overflow) returns nullopt.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>

#include "gpusim/device.hpp"
#include "gpusim/launch_model.hpp"
#include "gpusim/perf_utils.hpp"

namespace bat::kernels::models {

inline constexpr int kPnpolyPoints = 20'000'000;
inline constexpr int kPnpolyVertices = 600;

/// `P` supplies int members block_size_x, tile_size, between_method,
/// use_method (PnpolyParams on the host, a baked struct in emitted code).
template <typename P>
[[nodiscard]] inline std::optional<gpusim::KernelProfile> pnpoly_profile(
    const P& p, const gpusim::DeviceSpec& device) {
  using gpusim::KernelProfile;

  const std::uint64_t grid = gpusim::div_up(
      kPnpolyPoints, static_cast<std::uint64_t>(p.block_size_x) * p.tile_size);

  // --- Instruction mix of the algorithmic variants -----------------------
  // between_method: 0 = division-based slope test, 1 = multiply-compare,
  // 2 = fma-based rearrangement, 3 = branchless integer/select tricks.
  // use_method: 0 = branchy crossing counter, 1 = XOR toggle, 2 = LUT.
  // The fma variant exploits Ampere's doubled FP32 pipes; the INT/select
  // variants co-issue on Turing's dedicated INT32 pipe. The resulting
  // architecture-specific best variant is what makes Pnpoly the paper's
  // worst portability case (58.5% moving a 3090 optimum to Turing).
  const bool turing = device.arch == gpusim::Architecture::kTuring;
  double ops_per_edge = 11.0;
  double method_eff = 1.0;
  switch (p.between_method) {
    case 0:  // division stalls the SFU pipe on every edge
      ops_per_edge = 16.0;
      method_eff = 0.50;
      break;
    case 1:  // multiply-compare: solid everywhere
      ops_per_edge = 11.5;
      method_eff = 1.00;
      break;
    case 2:  // fma rearrangement feeds Ampere's doubled FP32 datapath
      ops_per_edge = 10.0;
      method_eff = turing ? 0.90 : 1.32;
      break;
    case 3:  // integer/select tricks co-issue on Turing's INT pipe
      ops_per_edge = 10.5;
      method_eff = turing ? 1.30 : 0.92;
      break;
  }
  switch (p.use_method) {
    case 0: method_eff *= 0.85; break;                  // divergent branches
    case 1: method_eff *= 1.00; break;                  // xor toggle
    case 2: method_eff *= turing ? 1.12 : 0.94; break;  // LUT/select
  }
  const double flops =
      static_cast<double>(kPnpolyPoints) * kPnpolyVertices * (ops_per_edge + 2.0);
  // Each vertex-loop iteration fetches the edge endpoints once and tests
  // `tile_size` points against them, so larger tiles amortize the fetch
  // and loop overhead (with a register-pressure cliff handled below).
  const double amortize =
      (ops_per_edge * p.tile_size) / (ops_per_edge * p.tile_size + 14.0);
  // Block-size resonance with the warp schedulers / reorder window: the
  // empirically-best block size sits mid-range and differs per family.
  const double bx_peak =
      device.arch == gpusim::Architecture::kTuring ? 256.0 : 384.0;
  const double bx_resonance =
      1.0 - 0.09 * std::abs(std::log2(static_cast<double>(p.block_size_x) /
                                      bx_peak)) /
                2.0;
  double compute_eff =
      std::clamp(0.72 * method_eff * amortize * bx_resonance, 0.05, 1.0);

  // --- Registers / occupancy --------------------------------------------
  double regs = 18.0 + 2.6 * p.tile_size;
  if (p.between_method == 2) regs += 4.0;  // fma temporaries
  if (device.arch == gpusim::Architecture::kAmpere) regs += 4.0;
  if (regs * p.block_size_x > device.registers_per_sm) {
    return std::nullopt;  // block cannot be scheduled at all
  }

  // --- Memory: points streamed once, vertices from constant cache. ------
  const double dram_bytes =
      static_cast<double>(kPnpolyPoints) * (8.0 + 1.0);  // xy in, flag out
  // tile_size > 1 makes each thread read a strided column of points.
  const double mem_eff = std::clamp(
      gpusim::coalescing_efficiency(static_cast<double>(p.tile_size), 8.0),
      0.15, 1.0);

  KernelProfile prof;
  prof.grid_blocks = grid;
  prof.block_threads = p.block_size_x;
  prof.regs_per_thread = static_cast<int>(regs);
  prof.smem_per_block = 0;
  prof.flops = flops;
  prof.dram_bytes = dram_bytes;
  prof.smem_bytes = 0.0;
  prof.mem_efficiency = mem_eff;
  prof.compute_efficiency = compute_eff;
  prof.ilp = std::min(8.0, static_cast<double>(p.tile_size));
  return prof;
}

}  // namespace bat::kernels::models
