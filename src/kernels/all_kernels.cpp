#include "kernels/all_kernels.hpp"

namespace bat::kernels {

namespace {

/// Registers the seven paper benchmarks exactly once. Registration lives
/// here (not in per-kernel static initializers) so that linking any user
/// of make()/make_all() reliably pulls it in — static registrar objects
/// in an archive member nobody references get dead-stripped.
void ensure_registered() {
  static const bool done = [] {
    auto& registry = core::BenchmarkRegistry::instance();
    registry.register_factory(
        "gemm", [] { return std::make_unique<GemmBenchmark>(); });
    registry.register_factory(
        "nbody", [] { return std::make_unique<NbodyBenchmark>(); });
    registry.register_factory(
        "hotspot", [] { return std::make_unique<HotspotBenchmark>(); });
    registry.register_factory(
        "pnpoly", [] { return std::make_unique<PnpolyBenchmark>(); });
    registry.register_factory(
        "convolution", [] { return std::make_unique<ConvolutionBenchmark>(); });
    registry.register_factory(
        "expdist", [] { return std::make_unique<ExpdistBenchmark>(); });
    registry.register_factory(
        "dedisp", [] { return std::make_unique<DedispBenchmark>(); });
    return true;
  }();
  (void)done;
}

}  // namespace

std::vector<std::string> paper_benchmark_names() {
  return {"gemm",        "nbody",   "hotspot", "pnpoly",
          "convolution", "expdist", "dedisp"};
}

std::vector<std::unique_ptr<core::Benchmark>> make_all() {
  ensure_registered();
  std::vector<std::unique_ptr<core::Benchmark>> out;
  for (const auto& name : paper_benchmark_names()) {
    out.push_back(core::BenchmarkRegistry::instance().create(name));
  }
  return out;
}

std::unique_ptr<core::Benchmark> make(const std::string& name) {
  ensure_registered();
  return core::BenchmarkRegistry::instance().create(name);
}

}  // namespace bat::kernels
