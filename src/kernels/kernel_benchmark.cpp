#include "kernels/kernel_benchmark.hpp"

#include "common/contracts.hpp"

namespace bat::kernels {

KernelBenchmark::KernelBenchmark(std::string name, core::SearchSpace space,
                                 double noise_amplitude)
    : name_(std::move(name)),
      space_(std::move(space)),
      noise_amplitude_(noise_amplitude),
      kernel_id_(gpusim::stable_name_hash(name_)) {
  BAT_EXPECTS(noise_amplitude_ >= 0.0 && noise_amplitude_ < 0.5);
}

std::size_t KernelBenchmark::device_count() const {
  return gpusim::paper_devices().size();
}

const std::string& KernelBenchmark::device_name(core::DeviceIndex d) const {
  return gpusim::paper_devices().at(d).name;
}

core::Measurement KernelBenchmark::evaluate(const core::Config& config,
                                            core::DeviceIndex device) const {
  BAT_EXPECTS(device < device_count());
  if (!space_.is_valid(config)) {
    return core::Measurement::invalid(core::MeasureStatus::kInvalidConstraint);
  }
  const auto& spec = gpusim::paper_devices()[device];
  const auto time = model_time_ms(config, spec);
  if (!time) {
    return core::Measurement::invalid(core::MeasureStatus::kInvalidDevice);
  }
  const auto index = space_.params().index_of_config(config);
  const double noisy =
      *time * gpusim::noise_factor(kernel_id_, index,
                                   gpusim::stable_name_hash(spec.name),
                                   noise_amplitude_);
  return core::Measurement::valid(noisy);
}

std::optional<double> KernelBenchmark::model_time(
    const core::Config& config, core::DeviceIndex device) const {
  BAT_EXPECTS(device < device_count());
  if (!space_.is_valid(config)) return std::nullopt;
  return model_time_ms(config, gpusim::paper_devices()[device]);
}

}  // namespace bat::kernels
