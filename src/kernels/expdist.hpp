// ExpDist benchmark (paper §IV-F, Table VI) — the localization-microscopy
// particle-registration kernel (template-free particle fusion).
//
// Computes the Bhattacharya-like distance between two particles of
// 32 768 localizations each: a quadratic sum of Gaussian terms
// exp(-||x_t,i - M(x_m,j)||^2 / 2 sigma^2). Threads form a 2D grid over
// (i, j); `use_column == 1` switches to a column-looped variant with a
// fixed number of blocks in y (`n_y_blocks`) and per-block accumulation.
// Parameters (in space order):
//   block_size_x, block_size_y
//   tile_size_x, tile_size_y
//   use_shared_mem               0 = none, 1 = cache j-points,
//                                2 = also stage partial sums
//   loop_unroll_factor_x, loop_unroll_factor_y
//   use_column, n_y_blocks
#pragma once

#include "kernels/kernel_benchmark.hpp"

namespace bat::kernels {

struct ExpdistParams {
  int bx, by, tx, ty, use_shared_mem, unroll_x, unroll_y, use_column,
      n_y_blocks;
};

class ExpdistBenchmark final : public KernelBenchmark {
 public:
  static constexpr int kLocalizations = 32768;
  static constexpr double kOpsPerPair = 30.0;  // dist + exp + accumulate

  ExpdistBenchmark();

  [[nodiscard]] static core::SearchSpace make_space();
  [[nodiscard]] static ExpdistParams decode(const core::Config& config);

 protected:
  [[nodiscard]] std::optional<double> model_time_ms(
      const core::Config& config,
      const gpusim::DeviceSpec& device) const override;
};

}  // namespace bat::kernels
