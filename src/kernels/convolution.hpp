// 2D Convolution benchmark (paper §IV-E, Table V) — van Werkhoven's
// adaptive-tiling convolution library kernel.
//
// Input image 4096 x 4096, filter 17 x 17, single precision. Each block
// stages an input tile (block * tile + filter halo) in shared memory.
// Parameters (in space order):
//   block_size_x, block_size_y   thread-block shape
//   tile_size_x, tile_size_y     output pixels per thread
//   use_padding                  shared-memory padding against bank
//                                conflicts (only matters when
//                                block_size_x is not a multiple of 32)
//   read_only                    route input loads through the read-only
//                                (texture) cache
#pragma once

#include "kernels/kernel_benchmark.hpp"

namespace bat::kernels {

struct ConvolutionParams {
  int bx, by, tx, ty, use_padding, read_only;
};

class ConvolutionBenchmark final : public KernelBenchmark {
 public:
  static constexpr int kImage = 4096;
  static constexpr int kFilter = 17;

  ConvolutionBenchmark();

  [[nodiscard]] static core::SearchSpace make_space();
  [[nodiscard]] static ConvolutionParams decode(const core::Config& config);

 protected:
  [[nodiscard]] std::optional<double> model_time_ms(
      const core::Config& config,
      const gpusim::DeviceSpec& device) const override;
};

}  // namespace bat::kernels
