#include "kernels/convolution.hpp"

#include <algorithm>
#include <cmath>

#include "gpusim/launch_model.hpp"
#include "gpusim/perf_utils.hpp"

namespace bat::kernels {

namespace {

enum Pos { kBx, kBy, kTx, kTy, kPad, kReadOnly };

}  // namespace

ConvolutionBenchmark::ConvolutionBenchmark()
    : KernelBenchmark("convolution", make_space(),
                      /*noise_amplitude=*/0.010) {}
// Convolution gets slightly larger noise: the paper's CatBoost fits reach
// only R^2 = 0.927-0.936 on it versus >= 0.992 elsewhere, reflecting a
// less predictable kernel.

core::SearchSpace ConvolutionBenchmark::make_space() {
  core::ParamSpace space;
  space
      .add(core::Parameter::list(
          "block_size_x", {1, 2, 4, 8, 16, 32, 48, 64, 80, 96, 112, 128}))
      .add(core::Parameter::list("block_size_y", {1, 2, 4, 8, 16, 32}))
      .add(core::Parameter::range("tile_size_x", 1, 8))
      .add(core::Parameter::range("tile_size_y", 1, 8))
      .add(core::Parameter::list("use_padding", {0, 1}))
      .add(core::Parameter::list("read_only", {0, 1}));

  core::ConstraintSet constraints;
  constraints
      .add("at least one warp per block", {"block_size_x", "block_size_y"},
           [](const core::Config& c) { return c[kBx] * c[kBy] >= 32; })
      .add("at most 1024 threads per block", {"block_size_x", "block_size_y"},
           [](const core::Config& c) { return c[kBx] * c[kBy] <= 1024; })
      .add("padding only when block_size_x misaligns with banks",
           {"use_padding", "block_size_x"},
           [](const core::Config& c) {
             // Padding is a no-op variant when block_size_x is already a
             // multiple of the 32 shared-memory banks; the generator only
             // emits the padded kernel for misaligned widths.
             return c[kPad] == 0 || c[kBx] % 32 != 0;
           });
  return core::SearchSpace(std::move(space), std::move(constraints));
}

ConvolutionParams ConvolutionBenchmark::decode(const core::Config& c) {
  return ConvolutionParams{static_cast<int>(c[kBx]), static_cast<int>(c[kBy]),
                           static_cast<int>(c[kTx]), static_cast<int>(c[kTy]),
                           static_cast<int>(c[kPad]),
                           static_cast<int>(c[kReadOnly])};
}

std::optional<double> ConvolutionBenchmark::model_time_ms(
    const core::Config& config, const gpusim::DeviceSpec& device) const {
  using gpusim::KernelProfile;
  const ConvolutionParams p = decode(config);

  const int threads = p.bx * p.by;
  const int out_w = p.bx * p.tx;
  const int out_h = p.by * p.ty;
  const int halo = kFilter - 1;
  const int in_w = out_w + halo + (p.use_padding ? 1 : 0);
  const int in_h = out_h + halo;

  const double smem_d = static_cast<double>(in_w) * in_h * 4.0;
  if (smem_d > static_cast<double>(device.max_shared_mem_per_block)) {
    return std::nullopt;  // input tile does not fit in shared memory
  }

  double regs = 24.0 + 2.0 * (p.tx * p.ty) + 0.5 * p.tx * kFilter / 4.0;
  if (device.arch == gpusim::Architecture::kAmpere) regs += 3.0;
  bool spills = false;
  if (regs > device.max_registers_per_thread) {
    spills = true;
    regs = device.max_registers_per_thread;
  }

  const std::uint64_t grid =
      gpusim::div_up(kImage, static_cast<std::uint64_t>(out_w)) *
      gpusim::div_up(kImage, static_cast<std::uint64_t>(out_h));

  const double pixels = static_cast<double>(kImage) * kImage;
  const double flops = pixels * kFilter * kFilter * 2.0;

  // --- DRAM: tile halo overhead dominates; read-only path helps Turing. --
  const double tile_overhead = (static_cast<double>(in_w) * in_h) /
                               (static_cast<double>(out_w) * out_h);
  double dram_bytes = pixels * 4.0 * (tile_overhead + 1.0);
  if (spills) dram_bytes *= 1.3;
  double mem_eff = std::clamp(
      gpusim::coalescing_efficiency(p.bx >= 32 ? 1.0 : 32.0 / p.bx, 4.0), 0.08,
      1.0);
  if (p.read_only) {
    mem_eff = std::min(1.0, mem_eff * device.readonly_cache_boost);
  }
  // Cooperative staging of the halo tile: the block's bx threads sweep
  // rows of in_w elements, so the last chunk of each row is partial
  // unless bx divides in_w nicely — a fine-grained divisibility effect
  // that makes the space rugged (Convolution/GEMM need hundreds of
  // evaluations to reach 90% of optimum in Fig 2).
  const double row_chunks =
      std::ceil(static_cast<double>(in_w) / std::max(1, p.bx));
  const double stage_eff =
      static_cast<double>(in_w) / (row_chunks * std::max(1, p.bx));
  mem_eff = std::clamp(mem_eff * (0.55 + 0.45 * stage_eff), 0.05, 1.0);

  // --- Shared memory: every output pixel reads the full filter window. --
  double conflict = 1.0;
  if (p.bx % 32 != 0 && !p.use_padding) conflict = 1.8;
  const double smem_bytes =
      pixels * kFilter * kFilter * 4.0 / std::max(1, p.tx);  // row re-use
  // Filter weights come from constant cache (free), input from smem.

  // Register tiling drives ILP with a hard appetite: shallow tiles leave
  // the FMA pipes starved (worse on Ampere, whose lanes doubled), and the
  // deepest tiles run into register pressure.
  const double depth = static_cast<double>(p.tx) * p.ty;
  const bool ampere_arch = device.arch == gpusim::Architecture::kAmpere;
  const double appetite = ampere_arch ? 12.0 : 7.0;   // depth to fill pipes
  const double ceiling = ampere_arch ? 48.0 : 26.0;   // register-bound knee
  double compute_eff = 0.45 + 0.55 * (1.0 - 1.0 / (1.0 + depth / appetite));
  compute_eff /= 1.0 + 0.022 * std::max(0.0, depth - ceiling);
  // Warp-scheduler sweet spot (128 threads) and row-major tile loads that
  // prefer wide-and-flat blocks.
  compute_eff *=
      1.0 - 0.08 * std::abs(std::log2(static_cast<double>(threads) / 128.0));
  if (p.by > 4) {
    compute_eff *= 1.0 - 0.05 * std::log2(static_cast<double>(p.by) / 4.0);
  }
  if (spills) compute_eff *= 0.6;
  if (device.arch == gpusim::Architecture::kTuring && threads > 512) {
    compute_eff *= 0.90;  // scheduler pressure at Turing's SM thread cap
  }
  compute_eff = std::clamp(compute_eff, 0.05, 1.0);

  KernelProfile prof;
  prof.grid_blocks = grid;
  prof.block_threads = threads;
  prof.regs_per_thread = static_cast<int>(regs);
  prof.smem_per_block = static_cast<int>(smem_d);
  prof.flops = flops;
  prof.dram_bytes = dram_bytes;
  prof.smem_bytes = smem_bytes * gpusim::bank_conflict_factor(conflict);
  prof.mem_efficiency = mem_eff;
  prof.compute_efficiency = compute_eff;
  prof.ilp = static_cast<double>(p.tx) * p.ty;
  return gpusim::LaunchModel::estimate_ms(device, prof);
}

}  // namespace bat::kernels
