// Dedispersion benchmark (paper §IV-G, Table VII) — the AMBER pipeline
// kernel for single-pulse radio-astronomy transients (ARTS/Apertif setup:
// 24.4 kHz sampling, 2048 dispersion measures, 1536 channels).
//
// Each output (DM, sample) sums one input sample per channel at a
// DM-dependent delay. Threads tile samples in x and DMs in y;
// `tile_stride_*` chooses consecutive (0) or block-strided (1) element
// assignment, which flips the coalescing pattern.
// Parameters (in space order):
//   block_size_x, block_size_y
//   tile_size_x, tile_size_y
//   tile_stride_x, tile_stride_y
//   loop_unroll_factor_channel   divisor of 1536, 0 = compiler decides
//   blocks_per_sm                __launch_bounds__ hint
#pragma once

#include "kernels/kernel_benchmark.hpp"

namespace bat::kernels {

struct DedispParams {
  int bx, by, tx, ty, stride_x, stride_y, unroll_channel, blocks_per_sm;
};

class DedispBenchmark final : public KernelBenchmark {
 public:
  static constexpr int kChannels = 1536;
  static constexpr int kDMs = 1024;       // dispersion measures per launch
  static constexpr int kSamples = 4096;   // output samples per launch

  DedispBenchmark();

  [[nodiscard]] static core::SearchSpace make_space();
  [[nodiscard]] static DedispParams decode(const core::Config& config);

 protected:
  [[nodiscard]] std::optional<double> model_time_ms(
      const core::Config& config,
      const gpusim::DeviceSpec& device) const override;
};

}  // namespace bat::kernels
