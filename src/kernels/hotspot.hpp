// Hotspot benchmark (paper §IV-C, Table III) — BAT's from-scratch
// re-implementation of the Rodinia thermal-simulation stencil.
//
// Grid 4096 x 4096, 60 simulated time steps per measurement. The kernel
// supports arbitrary block shapes, per-thread tiling and temporal tiling:
// one launch advances `temporal_tiling_factor` steps by loading an
// enlarged halo into shared memory and recomputing the shrinking pyramid.
// Parameters (in space order):
//   block_size_x, block_size_y   thread-block shape
//   tile_size_x, tile_size_y     outputs per thread
//   temporal_tiling_factor       stencil steps fused per launch
//   loop_unroll_factor_t         unroll of the time loop inside the kernel
//   sh_power                     cache the power grid in shared memory
//   blocks_per_sm                __launch_bounds__ occupancy hint
#pragma once

#include "kernels/kernel_benchmark.hpp"
#include "kernels/models/hotspot_model.hpp"

namespace bat::kernels {

struct HotspotParams {
  int bx, by, tx, ty, tf, unroll_t, sh_power, blocks_per_sm;
};

class HotspotBenchmark final : public KernelBenchmark {
 public:
  static constexpr int kGrid = models::kHotspotGrid;   // grid side length
  static constexpr int kSteps = models::kHotspotSteps; // steps per measurement
  static constexpr double kOpsPerCell = 25.0;

  HotspotBenchmark();

  [[nodiscard]] static core::SearchSpace make_space();
  [[nodiscard]] static HotspotParams decode(const core::Config& config);

 protected:
  [[nodiscard]] std::optional<double> model_time_ms(
      const core::Config& config,
      const gpusim::DeviceSpec& device) const override;
};

}  // namespace bat::kernels
