#include "kernels/pnpoly.hpp"

#include <algorithm>
#include <cmath>

#include "gpusim/launch_model.hpp"
#include "kernels/models/pnpoly_model.hpp"

namespace bat::kernels {

namespace {

enum Pos { kBx, kTile, kBetween, kUse };

}  // namespace

PnpolyBenchmark::PnpolyBenchmark() : KernelBenchmark("pnpoly", make_space()) {}

core::SearchSpace PnpolyBenchmark::make_space() {
  // 31 values (Table IV): 32..992 step 32, giving the exact Table VIII
  // cardinality 4 092 = 31 * 11 * 4 * 3.
  std::vector<core::Value> bx;
  for (core::Value x = 32; x <= 992; x += 32) bx.push_back(x);
  std::vector<core::Value> tile{1};
  for (core::Value t = 2; t <= 20; t += 2) tile.push_back(t);  // 11 values

  core::ParamSpace space;
  space.add(core::Parameter::list("block_size_x", bx))
      .add(core::Parameter::list("tile_size", tile))
      .add(core::Parameter::list("between_method", {0, 1, 2, 3}))
      .add(core::Parameter::list("use_method", {0, 1, 2}));

  // Pnpoly has no static constraints: all 4 092 configurations compile
  // (Table VIII lists Cardinality == Constrained == 4 092).
  return core::SearchSpace(std::move(space), core::ConstraintSet{});
}

PnpolyParams PnpolyBenchmark::decode(const core::Config& c) {
  return PnpolyParams{static_cast<int>(c[kBx]), static_cast<int>(c[kTile]),
                      static_cast<int>(c[kBetween]),
                      static_cast<int>(c[kUse])};
}

std::optional<double> PnpolyBenchmark::model_time_ms(
    const core::Config& config, const gpusim::DeviceSpec& device) const {
  // The arithmetic lives in models/pnpoly_model.hpp so the JIT backend
  // can compile the identical expressions into a specialized shared
  // object.
  const auto prof = models::pnpoly_profile(decode(config), device);
  if (!prof) return std::nullopt;
  return gpusim::LaunchModel::estimate_ms(device, *prof);
}

}  // namespace bat::kernels
