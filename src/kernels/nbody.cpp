#include "kernels/nbody.hpp"

#include <algorithm>
#include <cmath>

#include "gpusim/launch_model.hpp"
#include "gpusim/perf_utils.hpp"

namespace bat::kernels {

namespace {

enum Pos {
  kBlockSize,
  kOuterUnroll,
  kInnerUnroll1,
  kInnerUnroll2,
  kUseSoa,
  kLocalMem,
  kVectorType
};

}  // namespace

NbodyBenchmark::NbodyBenchmark() : KernelBenchmark("nbody", make_space()) {}

core::SearchSpace NbodyBenchmark::make_space() {
  core::ParamSpace space;
  space.add(core::Parameter::list("block_size", {64, 128, 256, 512}))
      .add(core::Parameter::list("outer_unroll_factor", {1, 2, 4, 8}))
      .add(core::Parameter::list("inner_unroll_factor1",
                                 {0, 1, 2, 4, 8, 16, 32}))
      .add(core::Parameter::list("inner_unroll_factor2",
                                 {0, 1, 2, 4, 8, 16, 32}))
      .add(core::Parameter::list("use_soa", {0, 1}))
      .add(core::Parameter::list("local_mem", {0, 1}))
      .add(core::Parameter::list("vector_type", {1, 2, 4}));

  core::ConstraintSet constraints;
  constraints
      .add("inner_unroll_factor2 used only with local_mem",
           {"local_mem", "inner_unroll_factor2"},
           [](const core::Config& c) {
             // The second inner loop exists only in the shared-memory
             // variant of the kernel.
             return c[kLocalMem] == 1 || c[kInnerUnroll2] == 0;
           })
      .add("vector loads require AoS layout", {"use_soa", "vector_type"},
           [](const core::Config& c) {
             // float2/float4 loads fetch whole body records; with SoA the
             // components live in separate arrays and only scalar loads
             // are generated.
             return c[kUseSoa] == 0 || c[kVectorType] == 1;
           });
  return core::SearchSpace(std::move(space), std::move(constraints));
}

NbodyParams NbodyBenchmark::decode(const core::Config& c) {
  return NbodyParams{static_cast<int>(c[kBlockSize]),
                     static_cast<int>(c[kOuterUnroll]),
                     static_cast<int>(c[kInnerUnroll1]),
                     static_cast<int>(c[kInnerUnroll2]),
                     static_cast<int>(c[kUseSoa]),
                     static_cast<int>(c[kLocalMem]),
                     static_cast<int>(c[kVectorType])};
}

std::optional<double> NbodyBenchmark::model_time_ms(
    const core::Config& config, const gpusim::DeviceSpec& device) const {
  using gpusim::KernelProfile;
  const NbodyParams p = decode(config);

  const std::uint64_t grid = gpusim::div_up(
      kBodies, static_cast<std::uint64_t>(p.block_size) * p.outer_unroll);
  const double pairs = static_cast<double>(kBodies) * kBodies;
  const double flops = pairs * kOpsPerPair;

  // Register estimate: one body state per outer-unroll slot plus inner
  // unroll operand buffers.
  double regs = 26.0 + 6.0 * p.outer_unroll +
                1.2 * std::max(p.inner_unroll1, p.inner_unroll2) +
                3.0 * p.vector_type;
  if (device.arch == gpusim::Architecture::kAmpere) regs += 2.0;
  bool spills = false;
  if (regs > device.max_registers_per_thread) {
    spills = true;
    regs = device.max_registers_per_thread;
  }

  // Shared-memory tile: one body record (16 B) per thread in the block.
  const int smem = p.local_mem ? p.block_size * 16 : 0;

  // --- Memory traffic ---------------------------------------------------
  // With the software cache, each block streams all bodies once per outer
  // pass. Without it the loads go through L1/L2; all threads of a warp
  // read the same j-body (a broadcast), so traffic stays modest but the
  // layout matters: AoS without vector loads issues 4 strided scalar
  // loads per body.
  const double bytes_per_body = 16.0;
  double dram_bytes =
      static_cast<double>(grid) * kBodies * bytes_per_body;  // tile streaming
  double mem_eff = 1.0;
  if (p.local_mem == 0) {
    const double l2_miss = gpusim::cache_miss_fraction(
        kBodies * bytes_per_body, device.l2_cache_bytes, 0.10);
    dram_bytes *= (0.6 + l2_miss);
  }
  if (p.use_soa == 0) {
    // AoS: coalescing of the cooperative loads depends on vector width.
    mem_eff = gpusim::coalescing_efficiency(4.0 / p.vector_type,
                                            4.0 * p.vector_type);
  }
  mem_eff = std::clamp(mem_eff * gpusim::vector_load_boost(p.vector_type),
                       0.05, 1.0);

  // Shared-memory traffic: every pair interaction reads one cached body.
  const double smem_bytes = p.local_mem ? pairs * bytes_per_body /
                                              std::max(1, p.outer_unroll)
                                        : 0.0;

  // --- Compute efficiency ------------------------------------------------
  // The kernel is FMA+rsqrt dominated. AoS without vector loads inserts
  // address arithmetic and shuffles into the inner loop — the distinct
  // low-performance cluster of Fig 1f.
  double compute_eff = 0.82;
  if (p.use_soa == 0) {
    if (p.vector_type == 1) compute_eff *= 0.38;
    else if (p.vector_type == 2) compute_eff *= 0.62;
    else compute_eff *= 0.90;
  }
  const int inner = p.local_mem ? p.inner_unroll2 : p.inner_unroll1;
  // inner == 0 leaves unrolling to the compiler (a solid default).
  compute_eff *= inner == 0 ? 1.06 : gpusim::unroll_efficiency(inner, 0.10, 8);
  compute_eff *= gpusim::unroll_efficiency(p.outer_unroll, 0.06, 4);
  if (spills) compute_eff *= 0.6;
  compute_eff = std::clamp(compute_eff, 0.05, 1.0);

  KernelProfile prof;
  prof.grid_blocks = grid;
  prof.block_threads = p.block_size;
  prof.regs_per_thread = static_cast<int>(regs);
  prof.smem_per_block = smem;
  prof.flops = flops;
  prof.dram_bytes = dram_bytes;
  prof.smem_bytes = smem_bytes;
  prof.mem_efficiency = mem_eff;
  prof.compute_efficiency = compute_eff;
  prof.ilp = static_cast<double>(p.outer_unroll) * std::max(1, inner / 4 + 1);
  return gpusim::LaunchModel::estimate_ms(device, prof);
}

}  // namespace bat::kernels
