// Convenience aggregation of the seven paper benchmarks.
#pragma once

#include <memory>
#include <vector>

#include "kernels/convolution.hpp"
#include "kernels/dedisp.hpp"
#include "kernels/expdist.hpp"
#include "kernels/gemm.hpp"
#include "kernels/hotspot.hpp"
#include "kernels/kernel_benchmark.hpp"
#include "kernels/nbody.hpp"
#include "kernels/pnpoly.hpp"

namespace bat::kernels {

/// The paper's benchmark order: GEMM, Nbody, Hotspot, Pnpoly,
/// Convolution, Expdist, Dedisp (§IV).
[[nodiscard]] std::vector<std::string> paper_benchmark_names();

/// Instantiates every benchmark in paper order.
[[nodiscard]] std::vector<std::unique_ptr<core::Benchmark>> make_all();

/// Instantiates one by name via the registry.
[[nodiscard]] std::unique_ptr<core::Benchmark> make(const std::string& name);

}  // namespace bat::kernels
