// Traffic policing: token-bucket and RateLimiter properties under a
// hand-cranked fake clock — burst allowances, refill rates, per-IP-group
// quota isolation, deterministic 429 sequencing, and the bounded-map
// eviction rules. Every assertion is exact: time only moves when the
// test advances it, so there is no sleeping and no tolerance slop.
// tools/ci.sh runs this binary under ASan/UBSan and TSan.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/rate_limit.hpp"

namespace bat::net {
namespace {

constexpr std::uint64_t kSecond = 1'000'000'000ull;

/// Hand-cranked time source. Copies handed to RateLimiter share state.
struct FakeClock {
  std::shared_ptr<std::uint64_t> now_ns = std::make_shared<std::uint64_t>(0);

  RateLimiter::Clock fn() const {
    auto now = now_ns;
    return [now] { return *now; };
  }
  void advance_seconds(double seconds) {
    *now_ns += static_cast<std::uint64_t>(seconds * 1e9);
  }
};

// ------------------------------------------------------------ TokenBucket --

TEST(TokenBucket, FreshBucketHoldsFullBurstAllowance) {
  TokenBucket bucket(/*rate_per_sec=*/1.0, /*burst=*/5.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(bucket.try_acquire(0)) << "burst token " << i;
  }
  EXPECT_FALSE(bucket.try_acquire(0));
}

TEST(TokenBucket, RefillsAtConfiguredRateUpToBurstCap) {
  TokenBucket bucket(/*rate_per_sec=*/2.0, /*burst=*/4.0);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bucket.try_acquire(0));
  // 0.5s at 2 tokens/s = exactly one token back.
  EXPECT_TRUE(bucket.try_acquire(kSecond / 2));
  EXPECT_FALSE(bucket.try_acquire(kSecond / 2));
  // A long idle period refills to burst, never beyond it.
  EXPECT_DOUBLE_EQ(bucket.tokens(100 * kSecond), 4.0);
  EXPECT_TRUE(bucket.full(100 * kSecond));
}

TEST(TokenBucket, DenialLeavesTokensUntouched) {
  TokenBucket bucket(1.0, 2.0);
  EXPECT_FALSE(bucket.try_acquire(0, /*cost=*/5.0));
  // The failed oversized acquire consumed nothing.
  EXPECT_DOUBLE_EQ(bucket.tokens(0), 2.0);
  EXPECT_TRUE(bucket.try_acquire(0, 2.0));
}

TEST(TokenBucket, RetryAfterIsTheExactRefillTime) {
  TokenBucket bucket(/*rate_per_sec=*/2.0, /*burst=*/1.0);
  EXPECT_DOUBLE_EQ(bucket.retry_after_seconds(0), 0.0);  // full: available now
  EXPECT_TRUE(bucket.try_acquire(0));
  // Empty at 2 tokens/s: one token is 0.5s away. Probing must not
  // mutate the bucket — repeated asks give the same answer.
  EXPECT_DOUBLE_EQ(bucket.retry_after_seconds(0), 0.5);
  EXPECT_DOUBLE_EQ(bucket.retry_after_seconds(0), 0.5);
  // Halfway through the wait the hint shrinks to match.
  EXPECT_DOUBLE_EQ(bucket.retry_after_seconds(kSecond / 4), 0.25);
  EXPECT_TRUE(bucket.try_acquire(kSecond / 2));
}

// ------------------------------------------------------------ RateLimiter --

RateLimitOptions client_only(double rps, double burst = 0.0) {
  RateLimitOptions options;
  options.per_client_rps = rps;
  options.per_client_burst = burst;  // 0 defaults to rps
  return options;
}

TEST(RateLimiter, Deterministic429Sequence) {
  FakeClock clock;
  RateLimiter limiter(client_only(/*rps=*/1.0, /*burst=*/2.0), clock.fn());
  const std::uint32_t ip = 0x7f000001;  // 127.0.0.1

  // Burst of 2, then a denial whose Retry-After is the exact refill gap.
  EXPECT_TRUE(limiter.admit(ip).allowed);
  EXPECT_TRUE(limiter.admit(ip).allowed);
  const Admission denied = limiter.admit(ip);
  EXPECT_FALSE(denied.allowed);
  EXPECT_STREQ(denied.denied_by, "client");
  EXPECT_DOUBLE_EQ(denied.retry_after_seconds, 1.0);

  // Denials consume nothing: the hint does not drift as retries pile up.
  EXPECT_DOUBLE_EQ(limiter.admit(ip).retry_after_seconds, 1.0);
  EXPECT_DOUBLE_EQ(limiter.admit(ip).retry_after_seconds, 1.0);

  // Waiting the hinted time is exactly enough for one admission.
  clock.advance_seconds(1.0);
  EXPECT_TRUE(limiter.admit(ip).allowed);
  EXPECT_FALSE(limiter.admit(ip).allowed);
}

TEST(RateLimiter, ClientsAreIsolatedFromEachOther) {
  FakeClock clock;
  RateLimiter limiter(client_only(1.0, 1.0), clock.fn());
  EXPECT_TRUE(limiter.admit(0x0a000001).allowed);   // 10.0.0.1
  EXPECT_FALSE(limiter.admit(0x0a000001).allowed);  // its bucket is empty
  // A different client (even in the same /24) has its own allowance.
  EXPECT_TRUE(limiter.admit(0x0a000002).allowed);
  EXPECT_EQ(limiter.tracked_clients(), 2u);
}

TEST(RateLimiter, GroupQuotaBoundsASubnetOfPoliteClients) {
  RateLimitOptions options;
  options.per_client_rps = 100.0;  // generous per client
  options.per_group_rps = 1.0;
  options.per_group_burst = 3.0;  // the /24 shares 3 tokens
  FakeClock clock;
  RateLimiter limiter(options, clock.fn());

  // Three distinct clients in 10.0.0.0/24: each is far under its own
  // limit, but the fourth request exhausts the shared group bucket.
  EXPECT_TRUE(limiter.admit(0x0a000001).allowed);
  EXPECT_TRUE(limiter.admit(0x0a000002).allowed);
  EXPECT_TRUE(limiter.admit(0x0a000003).allowed);
  const Admission denied = limiter.admit(0x0a000004);
  EXPECT_FALSE(denied.allowed);
  EXPECT_STREQ(denied.denied_by, "group");
  EXPECT_DOUBLE_EQ(denied.retry_after_seconds, 1.0);

  // A client from a different /24 is untouched by that group's famine.
  EXPECT_TRUE(limiter.admit(0x0a000101).allowed);  // 10.0.1.1
}

TEST(RateLimiter, GroupDenialDoesNotChargeTheClientBucket) {
  RateLimitOptions options;
  options.per_client_rps = 1.0;
  options.per_client_burst = 1.0;
  options.per_group_rps = 1.0;
  options.per_group_burst = 1.0;
  FakeClock clock;
  RateLimiter limiter(options, clock.fn());

  EXPECT_TRUE(limiter.admit(0x0a000001).allowed);   // drains the group
  EXPECT_FALSE(limiter.admit(0x0a000002).allowed);  // group says no...
  clock.advance_seconds(1.0);                       // ...group refills
  // .2's own bucket must still be full — the denial charged neither
  // scope, so this admission succeeds on both.
  EXPECT_TRUE(limiter.admit(0x0a000002).allowed);
}

TEST(RateLimiter, GroupOfMasksTheConfiguredPrefix) {
  RateLimitOptions options;
  options.per_group_rps = 1.0;
  options.group_prefix_bits = 16;
  RateLimiter limiter(options, [] { return std::uint64_t{0}; });
  EXPECT_EQ(limiter.group_of(0x0a0b0c0d), limiter.group_of(0x0a0bffff));
  EXPECT_NE(limiter.group_of(0x0a0b0c0d), limiter.group_of(0x0a0c0c0d));
}

// max_tracked_clients is floored at 16 by the limiter (a smaller
// tracker would thrash under any real traffic), so the eviction tests
// work at that floor.
constexpr std::size_t kMapCap = 16;

TEST(RateLimiter, IdleClientsAreEvictedAtTheMapCap) {
  RateLimitOptions options = client_only(1.0, 1.0);
  options.max_tracked_clients = kMapCap;
  FakeClock clock;
  RateLimiter limiter(options, clock.fn());

  // Fill the map, then let every bucket refill to idle (full).
  for (std::uint32_t ip = 1; ip <= kMapCap; ++ip) {
    EXPECT_TRUE(limiter.admit(ip).allowed);
  }
  EXPECT_EQ(limiter.tracked_clients(), kMapCap);
  clock.advance_seconds(10.0);

  // New clients recycle idle buckets instead of being refused.
  for (std::uint32_t ip = 100; ip < 100 + kMapCap; ++ip) {
    EXPECT_TRUE(limiter.admit(ip).allowed);
  }
  EXPECT_LE(limiter.tracked_clients(), kMapCap);
}

TEST(RateLimiter, FailsClosedWhenSaturatedWithActiveClients) {
  RateLimitOptions options = client_only(/*rps=*/0.001, /*burst=*/1.0);
  options.max_tracked_clients = kMapCap;
  FakeClock clock;
  RateLimiter limiter(options, clock.fn());

  // Every tracked client spends its whole allowance; at 0.001 rps none
  // is anywhere near idle, so nothing is evictable.
  for (std::uint32_t ip = 1; ip <= kMapCap; ++ip) {
    EXPECT_TRUE(limiter.admit(ip).allowed);
  }
  // One more address cannot be tracked: deny (fail closed) rather than
  // hand an address-spraying attacker an untracked fast path.
  const Admission denied = limiter.admit(kMapCap + 1);
  EXPECT_FALSE(denied.allowed);
  EXPECT_GT(denied.retry_after_seconds, 0.0);
}

TEST(RateLimiter, DisabledScopesAdmitEverything) {
  RateLimitOptions options;  // no rates set
  EXPECT_FALSE(options.enabled());
  RateLimiter limiter(options, [] { return std::uint64_t{0}; });
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(limiter.admit(0x7f000001).allowed);
  }
}

TEST(RateLimiter, ExemptClientsBypassBothScopesWithoutCharging) {
  // Regression: a 3-node loopback cluster self-throttled because every
  // peer shares 127.0.0.0/24 — peer claim/publish bursts drained the
  // group bucket and starved real clients of the same quota. Exempt
  // addresses must bypass *and not charge* either scope.
  RateLimitOptions options;
  options.per_client_rps = 1.0;
  options.per_client_burst = 1.0;
  options.per_group_rps = 1.0;
  options.per_group_burst = 2.0;  // the /24 shares 2 tokens
  options.exempt = [](std::uint32_t ipv4) {
    return (ipv4 >> 24) == 127u;  // loopback only
  };
  FakeClock clock;
  RateLimiter limiter(options, clock.fn());

  // Peer-scale traffic from loopback: all admitted, nothing tracked.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(limiter.admit(0x7f000001).allowed);  // 127.0.0.1
    EXPECT_TRUE(limiter.admit(0x7f000002).allowed);  // 127.0.0.2
  }
  EXPECT_EQ(limiter.tracked_clients(), 0u);

  // Non-exempt clients are still policed exactly as before: the /24
  // group quota admits two, denies the third.
  EXPECT_TRUE(limiter.admit(0x0a000001).allowed);
  EXPECT_TRUE(limiter.admit(0x0a000002).allowed);
  const Admission denied = limiter.admit(0x0a000003);
  EXPECT_FALSE(denied.allowed);
  EXPECT_STREQ(denied.denied_by, "group");
}

TEST(RateLimiter, SameSubnetClientsThrottleWithoutExemption) {
  // The counterpart: with no exempt predicate installed, loopback
  // addresses share the /24 group bucket like anyone else — which is
  // the behavior the overload CI gate depends on.
  RateLimitOptions options;
  options.per_group_rps = 1.0;
  options.per_group_burst = 2.0;
  FakeClock clock;
  RateLimiter limiter(options, clock.fn());
  EXPECT_TRUE(limiter.admit(0x7f000001).allowed);
  EXPECT_TRUE(limiter.admit(0x7f000002).allowed);
  EXPECT_FALSE(limiter.admit(0x7f000003).allowed);
}

TEST(RateLimiter, CostWeightsChargeHeavyRequestsMore) {
  FakeClock clock;
  RateLimiter limiter(client_only(1.0, 4.0), clock.fn());
  const std::uint32_t ip = 1;
  // One cost-3 request (a session run) plus one cost-1 (a status probe)
  // drain the burst of 4 exactly.
  EXPECT_TRUE(limiter.admit(ip, 3.0).allowed);
  EXPECT_TRUE(limiter.admit(ip, 1.0).allowed);
  const Admission denied = limiter.admit(ip, 3.0);
  EXPECT_FALSE(denied.allowed);
  // Three tokens at 1/s are exactly 3 seconds away.
  EXPECT_DOUBLE_EQ(denied.retry_after_seconds, 3.0);
}

}  // namespace
}  // namespace bat::net
