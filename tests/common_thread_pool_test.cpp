#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace bat::common {
namespace {

TEST(ThreadPool, SizeDefaultsToHardware) {
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> counts(1000);
  parallel_for(0, counts.size(), [&](std::size_t i) { counts[i]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ChunksAreContiguousAndCoverRange) {
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for_chunked(10, 250,
                       [&](std::size_t lo, std::size_t hi, std::size_t) {
                         std::lock_guard lock(m);
                         chunks.emplace_back(lo, hi);
                       });
  std::sort(chunks.begin(), chunks.end());
  EXPECT_EQ(chunks.front().first, 10u);
  EXPECT_EQ(chunks.back().second, 250u);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first, chunks[i - 1].second);
  }
}

TEST(ThreadPool, ParallelReduceSumsCorrectly) {
  const auto total = ThreadPool::global().parallel_reduce<long long>(
      1, 10001, 0LL, [](std::size_t i) { return static_cast<long long>(i); },
      [](long long acc, long long v) { return acc + v; },
      [](long long a, long long b) { return a + b; });
  EXPECT_EQ(total, 50005000LL);
}

TEST(ThreadPool, ParallelCountIf) {
  const auto evens = parallel_count_if(
      0, 1001, [](std::size_t i) { return i % 2 == 0; });
  EXPECT_EQ(evens, 501u);
}

TEST(ThreadPool, WorkerExceptionsPropagate) {
  EXPECT_THROW(parallel_for(0, 100,
                            [](std::size_t i) {
                              if (i == 57) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ThreadPool, ReentrantUseFromResultsIsSafeSequentially) {
  // Two back-to-back parallel loops must both run to completion.
  std::atomic<int> first{0}, second{0};
  parallel_for(0, 100, [&](std::size_t) { first++; });
  parallel_for(0, 200, [&](std::size_t) { second++; });
  EXPECT_EQ(first.load(), 100);
  EXPECT_EQ(second.load(), 200);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  // Every task of the outer loop starts a nested loop on the same pool.
  // Nested calls must degrade to inline execution on the calling worker;
  // with queue re-entry this deadlocks as soon as all workers block.
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 16, [&](std::size_t) { inner_total++; });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPool, NestedCallOnGlobalPoolFromWorkerIsInline) {
  // Same property through the free functions (the global pool), the path
  // composed code (tuner run -> GBDT fit -> parallel_for) actually takes.
  std::atomic<int> total{0};
  parallel_for(0, 4, [&](std::size_t) {
    parallel_for(0, 32, [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 4 * 32);
}

TEST(ThreadPool, SingleElementRange) {
  int count = 0;
  parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace bat::common
