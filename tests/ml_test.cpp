#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ml/gbdt.hpp"
#include "ml/matrix.hpp"
#include "ml/pfi.hpp"
#include "ml/tree.hpp"

namespace bat::ml {
namespace {

/// y = 3*x0 + step(x1) + noise; x2 is pure noise.
std::pair<Matrix, std::vector<double>> synthetic_data(std::size_t n,
                                                      std::uint64_t seed) {
  common::Rng rng(seed);
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(0.0, 4.0);
    x(i, 1) = static_cast<double>(rng.uniform_int(0, 3));
    x(i, 2) = rng.uniform(-1.0, 1.0);
    y[i] = std::exp(0.5 * x(i, 0) + (x(i, 1) >= 2.0 ? 1.0 : 0.0) +
                    rng.normal(0.0, 0.01));
  }
  return {std::move(x), std::move(y)};
}

TEST(Matrix, FromRowsAndAccess) {
  const auto m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.row(0)[1], 2.0);
}

TEST(Matrix, PermutedColumnOnlyTouchesThatColumn) {
  const auto m = Matrix::from_rows({{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}});
  const auto p = m.with_permuted_column(1, {2, 0, 1});
  EXPECT_DOUBLE_EQ(p(0, 1), 30.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 10.0);
  EXPECT_DOUBLE_EQ(p(0, 0), 1.0);  // column 0 untouched
}

TEST(TrainTestSplit, SizesAndDeterminism) {
  const auto [x, y] = synthetic_data(100, 1);
  const auto s1 = train_test_split(x, y, 0.25, 7);
  const auto s2 = train_test_split(x, y, 0.25, 7);
  EXPECT_EQ(s1.x_train.rows(), 75u);
  EXPECT_EQ(s1.x_test.rows(), 25u);
  EXPECT_EQ(s1.y_test, s2.y_test);
  const auto s3 = train_test_split(x, y, 0.25, 8);
  EXPECT_NE(s1.y_test, s3.y_test);
}

TEST(RegressionTree, FitsAStepFunctionExactly) {
  Matrix x(100, 1);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = i < 50 ? 1.0 : 5.0;
  }
  std::vector<std::size_t> rows(100);
  for (std::size_t i = 0; i < 100; ++i) rows[i] = i;
  RegressionTree tree;
  tree.fit(x, y, rows, TreeParams{});
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{10.0}), 1.0);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{80.0}), 5.0);
}

TEST(RegressionTree, RespectsMinSamplesLeaf) {
  Matrix x(10, 1);
  std::vector<double> y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = static_cast<double>(i);
  }
  std::vector<std::size_t> rows(10);
  for (std::size_t i = 0; i < 10; ++i) rows[i] = i;
  TreeParams params;
  params.min_samples_leaf = 5;
  RegressionTree tree;
  tree.fit(x, y, rows, params);
  // Only one split is possible (5|5).
  EXPECT_LE(tree.node_count(), 3u);
}

TEST(RegressionTree, SplitGainsConcentrateOnInformativeFeature) {
  const auto [x, y] = synthetic_data(400, 2);
  std::vector<double> logy(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) logy[i] = std::log(y[i]);
  std::vector<std::size_t> rows(x.rows());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  RegressionTree tree;
  tree.fit(x, logy, rows, TreeParams{});
  const auto gains = tree.split_gains(3);
  EXPECT_GT(gains[0], gains[2]);
}

TEST(Gbdt, HighR2OnSmoothTarget) {
  const auto [x, y] = synthetic_data(600, 3);
  const auto split = train_test_split(x, y, 0.25, 11);
  GbdtRegressor model;
  model.fit(split.x_train, split.y_train);
  const auto pred = model.predict_all(split.x_test);
  EXPECT_GT(r2_score(split.y_test, pred), 0.95);
}

TEST(Gbdt, MoreTreesDoNotHurtTrainFit) {
  const auto [x, y] = synthetic_data(300, 4);
  GbdtParams small;
  small.num_trees = 10;
  GbdtParams large;
  large.num_trees = 150;
  GbdtRegressor m_small(small), m_large(large);
  m_small.fit(x, y);
  m_large.fit(x, y);
  const auto p_small = m_small.predict_all(x);
  const auto p_large = m_large.predict_all(x);
  EXPECT_GE(r2_score(y, p_large), r2_score(y, p_small));
}

TEST(Gbdt, DeterministicGivenSeed) {
  const auto [x, y] = synthetic_data(200, 5);
  GbdtRegressor a, b;
  a.fit(x, y);
  b.fit(x, y);
  EXPECT_DOUBLE_EQ(a.predict(x.row(0)), b.predict(x.row(0)));
}

TEST(Gbdt, LogTargetRequiresPositiveY) {
  Matrix x(4, 1);
  std::vector<double> y{1.0, 2.0, -1.0, 3.0};
  GbdtRegressor model;
  EXPECT_THROW(model.fit(x, y, /*log_target=*/true),
               common::ContractViolation);
  EXPECT_NO_THROW(model.fit(x, y, /*log_target=*/false));
}

TEST(Metrics, R2Properties) {
  const std::vector<double> truth{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r2_score(truth, truth), 1.0);
  const std::vector<double> mean_pred(4, 2.5);
  EXPECT_DOUBLE_EQ(r2_score(truth, mean_pred), 0.0);
  const std::vector<double> bad{4.0, 3.0, 2.0, 1.0};
  EXPECT_LT(r2_score(truth, bad), 0.0);
}

TEST(Metrics, Rmse) {
  const std::vector<double> truth{0.0, 0.0};
  const std::vector<double> pred{3.0, 4.0};
  EXPECT_DOUBLE_EQ(rmse(truth, pred), std::sqrt(12.5));
}

TEST(Pfi, InformativeFeaturesDominateNoise) {
  const auto [x, y] = synthetic_data(600, 6);
  GbdtRegressor model;
  model.fit(x, y);
  const auto result = permutation_importance(model, x, y);
  EXPECT_GT(result.baseline_r2, 0.9);
  EXPECT_GT(result.importance[0], 10.0 * result.importance[2] + 1e-9);
  EXPECT_GT(result.importance[1], result.importance[2]);
  EXPECT_GT(result.total(), 0.0);
}

TEST(Pfi, RequiresTrainedModel) {
  GbdtRegressor model;
  Matrix x(2, 1);
  std::vector<double> y{1.0, 2.0};
  EXPECT_THROW((void)permutation_importance(model, x, y),
               common::ContractViolation);
}

class GbdtDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(GbdtDepthSweep, DeeperTreesFitInteractionsBetter) {
  // y depends on XOR(x0 > .5, x1 > .5): needs depth >= 2.
  common::Rng rng(7);
  Matrix x(400, 2);
  std::vector<double> y(400);
  for (std::size_t i = 0; i < 400; ++i) {
    x(i, 0) = rng.uniform();
    x(i, 1) = rng.uniform();
    const bool a = x(i, 0) > 0.5, b = x(i, 1) > 0.5;
    y[i] = (a ^ b) ? 4.0 : 1.0;
  }
  GbdtParams params;
  params.tree.max_depth = GetParam();
  GbdtRegressor model(params);
  model.fit(x, y);
  const double r2 = r2_score(y, model.predict_all(x));
  if (GetParam() >= 2) {
    EXPECT_GT(r2, 0.9);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, GbdtDepthSweep, ::testing::Values(2, 4, 6));

}  // namespace
}  // namespace bat::ml
