#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/json.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

namespace bat::common {
namespace {

TEST(Csv, RoundTripSimpleRows) {
  CsvWriter w;
  w.write_row({"a", "b", "c"});
  w.write_row({"1", "2", "3"});
  const auto rows = CsvReader::parse(w.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(Csv, EscapesCommasQuotesNewlines) {
  CsvWriter w;
  w.write_row({"he,llo", "qu\"ote", "line\nbreak", "plain"});
  const auto rows = CsvReader::parse(w.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "he,llo");
  EXPECT_EQ(rows[0][1], "qu\"ote");
  EXPECT_EQ(rows[0][2], "line\nbreak");
  EXPECT_EQ(rows[0][3], "plain");
}

TEST(Csv, ToleratesCrlfAndEmptyCells) {
  const auto rows = CsvReader::parse("a,,c\r\nd,e,\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "");
  EXPECT_EQ(rows[1][2], "");
}

TEST(Csv, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/bat_csv_test.csv";
  CsvWriter w;
  w.write_row({"x", "y"});
  w.save(path);
  const auto rows = CsvReader::load(path);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "x");
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW((void)read_file("/nonexistent/bat/file.csv"),
               std::runtime_error);
}

TEST(Json, ScalarsAndEscapes) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(std::int64_t{42}).dump(), "42");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
  EXPECT_EQ(Json("a\"b\n").dump(), "\"a\\\"b\\n\"");
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, NestedStructure) {
  JsonObject obj;
  obj["name"] = Json("gemm");
  obj["values"] = Json::array(std::vector<double>{1.0, 2.0});
  const std::string compact = Json(obj).dump();
  EXPECT_EQ(compact, "{\"name\":\"gemm\",\"values\":[1,2]}");
}

TEST(Json, IndentedOutputContainsNewlines) {
  JsonObject obj;
  obj["k"] = Json(1);
  EXPECT_NE(Json(obj).dump(2).find('\n'), std::string::npos);
}

TEST(Table, AlignsColumns) {
  AsciiTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, RowArityIsChecked) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, AddRowValuesFormats) {
  AsciiTable t({"v"});
  t.add_row_values({1.2345}, 2);
  EXPECT_NE(t.to_string().find("1.23"), std::string::npos);
}

TEST(StringUtil, SplitJoinTrim) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(join({"a", "b"}, "-"), "a-b");
  EXPECT_EQ(trim("  x \t"), "x");
  EXPECT_EQ(trim(""), "");
}

TEST(StringUtil, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
}

struct GroupedCase {
  std::uint64_t value;
  const char* expected;
};

class FormatGrouped : public ::testing::TestWithParam<GroupedCase> {};

TEST_P(FormatGrouped, MatchesPaperStyle) {
  EXPECT_EQ(format_grouped(GetParam().value), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Values, FormatGrouped,
    ::testing::Values(GroupedCase{0, "0"}, GroupedCase{999, "999"},
                      GroupedCase{4092, "4 092"},
                      GroupedCase{82944, "82 944"},
                      GroupedCase{9732096, "9 732 096"},
                      GroupedCase{123863040, "123 863 040"}));

}  // namespace
}  // namespace bat::common
