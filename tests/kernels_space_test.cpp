// Validates the seven benchmark search spaces against the paper's
// Tables I-VII (value sets) and Table VIII (cardinalities; constrained
// counts per our reconstructed constraint sets — see EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "kernels/all_kernels.hpp"

namespace bat::kernels {
namespace {

struct SpaceExpectation {
  const char* name;
  std::size_t num_params;
  std::uint64_t cardinality;    // Table VIII, exact
  std::uint64_t constrained;    // our frozen constraint counts
};

class BenchmarkSpaceSweep
    : public ::testing::TestWithParam<SpaceExpectation> {};

TEST_P(BenchmarkSpaceSweep, CardinalityMatchesTable8) {
  const auto bench = make(GetParam().name);
  EXPECT_EQ(bench->space().params().num_params(), GetParam().num_params);
  EXPECT_EQ(bench->space().cardinality(), GetParam().cardinality);
}

TEST_P(BenchmarkSpaceSweep, ConstrainedCountIsStable) {
  const auto bench = make(GetParam().name);
  EXPECT_EQ(bench->space().count_constrained(), GetParam().constrained);
}

TEST_P(BenchmarkSpaceSweep, FourPaperDevices) {
  const auto bench = make(GetParam().name);
  ASSERT_EQ(bench->device_count(), 4u);
  EXPECT_EQ(bench->device_name(0), "RTX_2080Ti");
  EXPECT_EQ(bench->device_index("RTX_3090"), 2u);
  EXPECT_THROW((void)bench->device_index("A100"), std::out_of_range);
}

TEST_P(BenchmarkSpaceSweep, RandomValidConfigsEvaluateDeterministically) {
  const auto bench = make(GetParam().name);
  common::Rng rng(21);
  for (int i = 0; i < 5; ++i) {
    const auto config = bench->space().random_valid_config(rng);
    const auto a = bench->evaluate(config, i % 4);
    const auto b = bench->evaluate(config, i % 4);
    EXPECT_EQ(a.status, b.status);
    if (a.ok()) EXPECT_DOUBLE_EQ(a.time_ms, b.time_ms);
  }
}

TEST_P(BenchmarkSpaceSweep, ConstraintViolatingConfigIsRejected) {
  const auto bench = make(GetParam().name);
  if (bench->space().constraints().empty()) GTEST_SKIP();
  // Find a violating configuration by scanning the full product.
  const auto& space = bench->space();
  core::Config bad;
  for (core::ConfigIndex i = 0; i < space.cardinality(); ++i) {
    const auto config = space.params().config_at(i);
    if (!space.constraints().satisfied(config)) {
      bad = config;
      break;
    }
  }
  ASSERT_FALSE(bad.empty());
  const auto m = bench->evaluate(bad, 0);
  EXPECT_EQ(m.status, core::MeasureStatus::kInvalidConstraint);
}

// Cardinalities are the paper's Table VIII values, exactly. Constrained
// counts: GEMM matches the paper exactly (CLBlast constraint set =>
// 17 956); Pnpoly has no constraints (4 092, exact). The other counts
// come from our reconstruction of the upstream constraint sets and are
// frozen here as regression anchors (paper deltas in EXPERIMENTS.md).
INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkSpaceSweep,
    ::testing::Values(
        SpaceExpectation{"gemm", 10, 82944, 17956},
        SpaceExpectation{"nbody", 7, 9408, 3584},
        SpaceExpectation{"hotspot", 8, 22200000, 5994000},
        SpaceExpectation{"pnpoly", 4, 4092, 4092},
        SpaceExpectation{"convolution", 6, 18432, 9600},
        SpaceExpectation{"expdist", 9, 9732096, 518400},
        SpaceExpectation{"dedisp", 8, 123863040, 116242560}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(KernelRegistry, AllSevenRegistered) {
  const auto names = paper_benchmark_names();
  ASSERT_EQ(names.size(), 7u);
  const auto all = make_all();
  ASSERT_EQ(all.size(), 7u);
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(all[i]->name(), names[i]);
  }
  EXPECT_THROW((void)make("not_a_kernel"), std::out_of_range);
}

TEST(GemmSpace, TableOneParameterOrderAndValues) {
  const auto space = GemmBenchmark::make_space();
  const auto names = space.params().param_names();
  EXPECT_EQ(names, (std::vector<std::string>{"MWG", "NWG", "MDIMC", "NDIMC",
                                             "MDIMA", "NDIMB", "VWM", "VWN",
                                             "SA", "SB"}));
  EXPECT_EQ(space.params().param(0).values(),
            (std::vector<core::Value>{16, 32, 64, 128}));
  EXPECT_EQ(space.params().param(6).values(),
            (std::vector<core::Value>{1, 2, 4, 8}));
}

TEST(GemmSpace, DecodeRoundTrip) {
  const auto space = GemmBenchmark::make_space();
  const core::Config c{64, 32, 16, 8, 16, 8, 2, 4, 1, 0};
  const auto p = GemmBenchmark::decode(c);
  EXPECT_EQ(p.mwg, 64);
  EXPECT_EQ(p.ndimc, 8);
  EXPECT_EQ(p.vwn, 4);
  EXPECT_EQ(p.sa, 1);
  EXPECT_EQ(p.sb, 0);
}

TEST(HotspotSpace, TableThreeValueCounts) {
  const auto space = HotspotBenchmark::make_space();
  EXPECT_EQ(space.params().param(0).cardinality(), 37u);  // block_size_x
  EXPECT_EQ(space.params().param(1).cardinality(), 6u);
  EXPECT_EQ(space.params().param(4).cardinality(), 10u);  // temporal tiling
  EXPECT_EQ(space.params().param(7).values(),
            (std::vector<core::Value>{0, 1, 2, 3, 4}));
}

TEST(PnpolySpace, TableFourValueCounts) {
  const auto space = PnpolyBenchmark::make_space();
  EXPECT_EQ(space.params().param(0).cardinality(), 31u);
  EXPECT_EQ(space.params().param(1).cardinality(), 11u);
  EXPECT_EQ(space.params().param(1).values().front(), 1);
  EXPECT_EQ(space.params().param(1).values().back(), 20);
}

TEST(DedispSpace, TableSevenUnrollDivisors) {
  const auto space = DedispBenchmark::make_space();
  const auto& unroll =
      space.params().param(space.params().index_of(
          "loop_unroll_factor_channel"));
  EXPECT_EQ(unroll.cardinality(), 21u);
  for (const auto v : unroll.values()) {
    if (v != 0) EXPECT_EQ(DedispBenchmark::kChannels % v, 0);
  }
}

TEST(ExpdistSpace, ConstraintsCoupleColumnVariant) {
  const auto space = ExpdistBenchmark::make_space();
  // n_y_blocks > 1 without use_column must be invalid.
  core::Config c{32, 1, 1, 1, 0, 1, 1, 0, 2};
  EXPECT_FALSE(space.constraints().satisfied(c));
  c[7] = 1;  // use_column = 1
  EXPECT_TRUE(space.constraints().satisfied(c));
}

TEST(NbodySpace, VectorTypeRequiresAoS) {
  const auto space = NbodyBenchmark::make_space();
  core::Config c{128, 2, 0, 0, 1, 0, 4};  // SoA with vector_type 4
  EXPECT_FALSE(space.constraints().satisfied(c));
  c[6] = 1;
  EXPECT_TRUE(space.constraints().satisfied(c));
}

}  // namespace
}  // namespace bat::kernels
