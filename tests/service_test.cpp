// The service layer's two correctness pillars:
//  * exactly-once — N threads x M sessions sharing one
//    ShardedMeasurementCache evaluate every distinct valid-ordinal once
//    (the rest are cross-session hits), and traces are identical with
//    and without the cache (determinism);
//  * cancellation — shutdown() mid-run stops every session at its next
//    batch boundary with a partial trace and leaves no stuck workers.
// tools/ci.sh runs this binary under TSan in addition to ASan/UBSan.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <thread>
#include <vector>

#include "core/backend.hpp"
#include "core/runner.hpp"
#include "io/dataset_file.hpp"
#include "kernels/all_kernels.hpp"
#include "service/sharded_cache.hpp"
#include "service/tuning_service.hpp"
#include "tuners/tuner.hpp"

namespace bat::service {
namespace {

using core::SharedMeasurementCache;

// ------------------------------------------------ cache protocol, raw use --

TEST(ShardedMeasurementCache, ClaimPublishHitRoundTrip) {
  ShardedMeasurementCache cache(nullptr, 4);
  auto first = cache.claim(7);
  ASSERT_EQ(first.state, SharedMeasurementCache::ClaimState::kClaimed);
  EXPECT_EQ(cache.claim(7).state, SharedMeasurementCache::ClaimState::kPending);
  cache.publish(7, core::Measurement::valid(3.5));
  const auto hit = cache.claim(7);
  ASSERT_EQ(hit.state, SharedMeasurementCache::ClaimState::kHit);
  EXPECT_DOUBLE_EQ(hit.measurement.time_ms, 3.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedMeasurementCache, AbandonLetsTheNextClaimerTakeOver) {
  ShardedMeasurementCache cache(nullptr, 1);
  ASSERT_EQ(cache.claim(3).state, SharedMeasurementCache::ClaimState::kClaimed);
  cache.abandon(3);
  // wait() on an unclaimed key must not block.
  EXPECT_FALSE(cache.wait(3).has_value());
  EXPECT_EQ(cache.claim(3).state, SharedMeasurementCache::ClaimState::kClaimed);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.abandoned, 1u);
}

// The exactly-once core: T threads race through the same K keys in
// different orders; whoever wins a claim "evaluates" (bumps the per-key
// counter) and publishes, everyone else hits or waits. Every key must be
// evaluated exactly once and every thread must observe its measurement.
TEST(ShardedMeasurementCache, ExactlyOnceUnderContention) {
  constexpr std::size_t kKeys = 512;
  constexpr std::size_t kThreads = 8;
  ShardedMeasurementCache cache(nullptr, 16);
  std::vector<std::atomic<int>> evaluated(kKeys);

  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kKeys; ++i) {
        // Per-thread traversal order: thread t starts at key t * 61.
        const auto key =
            static_cast<core::ConfigIndex>((i * 61 + t * 67) % kKeys);
        const auto claim = cache.claim(key);
        switch (claim.state) {
          case SharedMeasurementCache::ClaimState::kClaimed:
            evaluated[key].fetch_add(1);
            cache.publish(key,
                          core::Measurement::valid(static_cast<double>(key)));
            break;
          case SharedMeasurementCache::ClaimState::kHit:
            if (claim.measurement.time_ms != static_cast<double>(key)) {
              failed = true;
            }
            break;
          case SharedMeasurementCache::ClaimState::kPending: {
            const auto m = cache.wait(key);
            if (!m || m->time_ms != static_cast<double>(key)) failed = true;
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_FALSE(failed.load());
  for (std::size_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(evaluated[k].load(), 1) << "key " << k;
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evaluations, kKeys);
  EXPECT_EQ(stats.lookups, kKeys * kThreads);
  EXPECT_EQ(cache.size(), kKeys);
}

// Claim-then-abandon under contention: the first winner of every key
// abandons instead of publishing (a cancelled session, a dead remote
// claimant being swept — same code path), so waiters must wake with
// nullopt, re-claim, and the key must still end up evaluated exactly
// once by whoever wins the re-claim.
TEST(ShardedMeasurementCache, ClaimThenAbandonUnderContention) {
  constexpr std::size_t kKeys = 256;
  constexpr std::size_t kThreads = 8;
  ShardedMeasurementCache cache(nullptr, 16);
  std::vector<std::atomic<bool>> abandoned_once(kKeys);
  std::vector<std::atomic<int>> evaluated(kKeys);

  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kKeys; ++i) {
        const auto key =
            static_cast<core::ConfigIndex>((i * 61 + t * 67) % kKeys);
        // Loop until this thread observes the key's final value: an
        // abandon means somebody (possibly us) must re-claim it.
        for (bool resolved = false; !resolved;) {
          const auto claim = cache.claim(key);
          switch (claim.state) {
            case SharedMeasurementCache::ClaimState::kClaimed:
              if (!abandoned_once[key].exchange(true)) {
                cache.abandon(key);  // first winner walks away
                break;               // and retries its own claim
              }
              evaluated[key].fetch_add(1);
              cache.publish(
                  key, core::Measurement::valid(static_cast<double>(key)));
              resolved = true;
              break;
            case SharedMeasurementCache::ClaimState::kHit:
              if (claim.measurement.time_ms != static_cast<double>(key)) {
                failed = true;
              }
              resolved = true;
              break;
            case SharedMeasurementCache::ClaimState::kPending: {
              const auto m = cache.wait(key);
              // nullopt = the claimant abandoned; go around and
              // re-claim. A value must be the final one.
              if (m) {
                if (m->time_ms != static_cast<double>(key)) failed = true;
                resolved = true;
              }
              break;
            }
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_FALSE(failed.load());
  for (std::size_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(evaluated[k].load(), 1) << "key " << k;
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evaluations, kKeys);
  EXPECT_EQ(stats.abandoned, kKeys);
  EXPECT_EQ(cache.size(), kKeys);
}

// The peer-tolerant variants the cluster layer leans on: probe never
// claims, force_publish fills without a prior claim (remote publish
// landing at the owner), try_abandon tolerates the entry being gone
// (dead-claimant sweep racing a late abandon).
TEST(ShardedMeasurementCache, PeerTolerantVariants) {
  ShardedMeasurementCache cache(nullptr, 4);
  using ProbeState = ShardedMeasurementCache::ProbeState;

  EXPECT_EQ(cache.probe(5).state, ProbeState::kAbsent);
  ASSERT_EQ(cache.claim(5).state, SharedMeasurementCache::ClaimState::kClaimed);
  EXPECT_EQ(cache.probe(5).state, ProbeState::kPending);

  // force_publish fulfils the pending claim (remote claimant publishing
  // back) and reports the transition; a duplicate does not.
  EXPECT_TRUE(cache.force_publish(5, core::Measurement::valid(1.0)));
  EXPECT_FALSE(cache.force_publish(5, core::Measurement::valid(2.0)));
  const auto probe = cache.probe(5);
  ASSERT_EQ(probe.state, ProbeState::kReady);
  EXPECT_DOUBLE_EQ(probe.measurement.time_ms, 1.0);  // first write wins

  // force_publish with no claim at all (relay/unclaimed publish).
  EXPECT_TRUE(cache.force_publish(9, core::Measurement::valid(3.0)));
  EXPECT_EQ(cache.probe(9).state, ProbeState::kReady);

  // try_abandon: released only while pending; absent and ready are
  // tolerated no-ops (unlike abandon(), which BAT_EXPECTS a claim).
  EXPECT_FALSE(cache.try_abandon(5));   // ready: stays
  EXPECT_FALSE(cache.try_abandon(77));  // absent: no-op
  ASSERT_EQ(cache.claim(6).state, SharedMeasurementCache::ClaimState::kClaimed);
  EXPECT_TRUE(cache.try_abandon(6));
  EXPECT_EQ(cache.probe(6).state, ProbeState::kAbsent);
  EXPECT_EQ(cache.claim(6).state, SharedMeasurementCache::ClaimState::kClaimed);
}

// ------------------------------------------------------- service sessions --

std::vector<SessionSpec> overlapping_specs(std::size_t sessions) {
  // Same kernel + tuner + budget, rotating seeds: concurrent sessions
  // probe heavily overlapping configurations (every third one repeats a
  // seed, so overlap is guaranteed even for short runs).
  std::vector<SessionSpec> specs;
  specs.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    SessionSpec spec;
    spec.kernel = "pnpoly";
    spec.tuner = s % 2 == 0 ? "local" : "annealing";
    spec.budget = 40;
    spec.seed = 7 + s % 3;
    spec.backend = "live";
    specs.push_back(spec);
  }
  return specs;
}

// The tentpole invariant: across M concurrent sessions on one space, the
// shared cache performs exactly one backend evaluation per *distinct*
// config the sessions collectively traced; every other resolution is a
// cross-session hit.
TEST(TuningService, SharedCacheEvaluatesEachDistinctConfigOnce) {
  ServiceOptions options;
  options.workers = 4;  // force real concurrency even on 1-core CI
  TuningService svc(options);
  const auto specs = overlapping_specs(12);
  const auto results = svc.run_all(specs);

  std::set<core::ConfigIndex> distinct;
  std::size_t traced = 0;
  for (const auto& r : results) {
    ASSERT_EQ(r.status, SessionStatus::kCompleted) << r.error;
    for (const auto& entry : r.run.trace) distinct.insert(entry.index);
    traced += r.run.trace.size();
  }

  const auto stats = svc.cache_stats();
  EXPECT_EQ(stats.evaluations, distinct.size());
  EXPECT_EQ(stats.cross_session_hits(), traced - distinct.size());
  EXPECT_GT(stats.cross_session_hits(), 0u);
  EXPECT_EQ(stats.abandoned, 0u);
}

// Determinism: routing a session through the service (pooled worker +
// shared cache) must reproduce the standalone run_tuner trace bit for
// bit — the cache only changes who computed a measurement, never its
// value, because backends are deterministic.
TEST(TuningService, SessionTraceMatchesStandaloneRun) {
  const auto specs = overlapping_specs(6);

  ServiceOptions options;
  options.workers = 3;
  TuningService svc(options);
  const auto results = svc.run_all(specs);

  const auto bench = kernels::make("pnpoly");
  core::LiveBackend backend(*bench, 0);
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const auto tuner = tuners::make_tuner(specs[s].tuner);
    const auto solo =
        tuners::run_tuner(*tuner, backend, specs[s].budget, specs[s].seed);
    ASSERT_EQ(results[s].run.trace.size(), solo.trace.size());
    for (std::size_t i = 0; i < solo.trace.size(); ++i) {
      EXPECT_EQ(results[s].run.trace[i].index, solo.trace[i].index);
      EXPECT_DOUBLE_EQ(results[s].run.trace[i].objective,
                       solo.trace[i].objective);
    }
  }
}

// A binary archive in dataset_dir serves replay sessions zero-copy
// (io::MmapReplayBackend over the mmap'ed columns) — and the traces it
// yields are identical to replaying the same rows from an in-memory
// registered dataset: where measurements live must never change what
// a session observes.
TEST(TuningService, ZeroCopyReplayFromDatasetDirMatchesInMemory) {
  namespace fs = std::filesystem;
  const auto dir = fs::path(::testing::TempDir()) / "svc_dataset_dir";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const auto bench = kernels::make("pnpoly");
  auto dataset = core::Runner::run_exhaustive(*bench, 0);
  io::save_dataset((dir / ("pnpoly_" + bench->device_name(0) + ".bin"))
                       .string(),
                   dataset, io::DatasetFormat::kBinary);

  SessionSpec spec;
  spec.kernel = "pnpoly";
  spec.tuner = "genetic";
  spec.budget = 120;
  spec.seed = 9;
  spec.backend = "replay";

  ServiceOptions from_disk;
  from_disk.dataset_dir = dir.string();
  TuningService disk_svc(from_disk);
  const auto disk_result = disk_svc.run_inline(spec);
  ASSERT_EQ(disk_result.status, SessionStatus::kCompleted)
      << disk_result.error;

  TuningService memory_svc;
  memory_svc.register_dataset("pnpoly", 0, std::move(dataset));
  const auto memory_result = memory_svc.run_inline(spec);
  ASSERT_EQ(memory_result.status, SessionStatus::kCompleted)
      << memory_result.error;

  ASSERT_EQ(disk_result.run.trace.size(), memory_result.run.trace.size());
  for (std::size_t i = 0; i < disk_result.run.trace.size(); ++i) {
    EXPECT_EQ(disk_result.run.trace[i].index,
              memory_result.run.trace[i].index);
    EXPECT_DOUBLE_EQ(disk_result.run.trace[i].objective,
                     memory_result.run.trace[i].objective);
  }
}

TEST(TuningService, CacheSharingCanBeDisabled) {
  ServiceOptions options;
  options.workers = 2;
  options.share_cache = false;
  TuningService svc(options);
  const auto results = svc.run_all(overlapping_specs(4));
  for (const auto& r : results) {
    EXPECT_EQ(r.status, SessionStatus::kCompleted) << r.error;
  }
  // Workload caches exist but nothing routed through them.
  const auto stats = svc.cache_stats();
  EXPECT_EQ(stats.lookups, 0u);
  EXPECT_EQ(stats.evaluations, 0u);
}

// run_inline executes on the calling thread but shares the workload
// cache with pooled sessions — an identical spec must come back all
// cross-session hits, and the result must match the pooled run exactly.
TEST(TuningService, RunInlineSharesTheWorkloadCache) {
  TuningService svc;
  SessionSpec spec;
  spec.kernel = "pnpoly";
  spec.tuner = "local";
  spec.budget = 30;
  spec.seed = 3;
  const auto pooled = svc.submit(spec).get();
  const auto before = svc.cache_stats();
  const auto inline_result = svc.run_inline(spec);
  const auto after = svc.cache_stats();

  ASSERT_EQ(pooled.status, SessionStatus::kCompleted) << pooled.error;
  ASSERT_EQ(inline_result.status, SessionStatus::kCompleted)
      << inline_result.error;
  ASSERT_EQ(inline_result.run.trace.size(), pooled.run.trace.size());
  for (std::size_t i = 0; i < pooled.run.trace.size(); ++i) {
    EXPECT_EQ(inline_result.run.trace[i].index, pooled.run.trace[i].index);
  }
  // Every inline miss resolved from the pooled session's measurements.
  EXPECT_EQ(after.evaluations, before.evaluations);
  EXPECT_EQ(after.cross_session_hits() - before.cross_session_hits(),
            inline_result.run.trace.size());
  EXPECT_EQ(svc.sessions_submitted(), 2u);

  svc.shutdown();
  EXPECT_THROW((void)svc.run_inline(spec), std::runtime_error);
}

TEST(TuningService, FailuresAreReportedInBandNotThrown) {
  TuningService svc;
  SessionSpec bad;
  bad.kernel = "no-such-kernel";
  const auto result = svc.submit(bad).get();
  EXPECT_EQ(result.status, SessionStatus::kFailed);
  EXPECT_FALSE(result.error.empty());
}

// ---------------------------------------------------------- cancellation --

// shutdown() mid-generation: every in-flight session stops at its next
// batch boundary (partial trace, status kCancelled), queued sessions are
// cancelled before starting, no worker is left stuck — the test itself
// hanging is the failure mode, bounded by the ctest timeout.
TEST(TuningService, ShutdownCancelsInFlightSessionsAndDrains) {
  ServiceOptions options;
  options.workers = 2;
  TuningService svc(options);

  std::vector<std::future<SessionResult>> futures;
  for (std::size_t s = 0; s < 8; ++s) {
    SessionSpec spec;
    spec.kernel = "gemm";  // large space: plenty of work per session
    spec.tuner = "random";
    spec.budget = 200'000;  // far beyond what can finish before shutdown
    spec.seed = 100 + s;
    futures.push_back(svc.submit(std::move(spec)));
  }
  svc.shutdown();

  std::size_t cancelled = 0;
  for (auto& f : futures) {
    const auto r = f.get();  // must resolve: no broken promises
    EXPECT_NE(r.status, SessionStatus::kFailed) << r.error;
    if (r.status == SessionStatus::kCancelled) ++cancelled;
    EXPECT_LT(r.run.trace.size(), 200'000u);
  }
  // With a 200k budget nothing can have completed in time.
  EXPECT_EQ(cancelled, futures.size());
  EXPECT_EQ(svc.sessions_active(), 0u);

  // The service refuses new work after shutdown, idempotently.
  EXPECT_THROW((void)svc.submit(SessionSpec{}), std::runtime_error);
  svc.shutdown();
}

// A pre-set cancellation token stops a tuner before it spends anything:
// the hook path the service relies on, exercised without the service.
TEST(EvaluationHooks, PreSetTokenYieldsEmptyTrace) {
  const auto bench = kernels::make("pnpoly");
  core::LiveBackend backend(*bench, 0);
  const std::atomic<bool> cancel{true};
  core::EvaluationHooks hooks;
  hooks.cancel = &cancel;
  const auto tuner = tuners::make_tuner("random");
  const auto run = tuners::run_tuner(*tuner, backend, 50, 1, hooks);
  EXPECT_TRUE(run.trace.empty());
  EXPECT_FALSE(run.best.has_value());
}

}  // namespace
}  // namespace bat::service
