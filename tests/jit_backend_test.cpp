// CompiledKernelBackend contract tests: emitted-object parity with
// LiveBackend across every kernel that has an emitter, warm-cache reuse
// across backend instances, the dedicated-compile-pool regression
// (satellite of the ThreadPool nested-inline rule), and the counted
// compile-failure fallback. Compiles invoke the real system compiler,
// so each test keeps its cold-config count small.
#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/backend.hpp"
#include "jit/artifact_cache.hpp"
#include "jit/compiled_backend.hpp"
#include "core/trace.hpp"
#include "kernels/all_kernels.hpp"
#include "kernels/jit_emitters.hpp"
#include "kernels/kernel_benchmark.hpp"
#include "service/session_log.hpp"
#include "service/tuning_service.hpp"

namespace bat::jit {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const auto dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);  // TempDir() persists across test-binary runs
  return dir.string();
}

const kernels::KernelBenchmark& as_kernel(const core::Benchmark& bench) {
  return dynamic_cast<const kernels::KernelBenchmark&>(bench);
}

std::vector<core::ConfigIndex> sample_valid(const core::Benchmark& bench,
                                            std::size_t n,
                                            std::uint64_t seed) {
  common::Rng rng(seed);
  const auto& params = bench.space().params();
  std::vector<core::ConfigIndex> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(
        params.index_of_config(bench.space().random_valid_config(rng)));
  }
  return out;
}

/// First index whose config is constraint-valid but device-invalid on
/// device 0 (model returns nullopt), found through the live path.
std::optional<core::ConfigIndex> find_device_invalid(
    const core::Benchmark& bench) {
  const auto& params = bench.space().params();
  const auto limit =
      std::min<core::ConfigIndex>(params.cardinality(), 200'000);
  core::Config scratch;
  for (core::ConfigIndex i = 0; i < limit; ++i) {
    bench.space().compiled().decode_into(i, scratch);
    if (!bench.space().is_valid(scratch)) continue;
    if (bench.evaluate(scratch, 0).status ==
        core::MeasureStatus::kInvalidDevice) {
      return i;
    }
  }
  return std::nullopt;
}

TEST(JitBackend, ParityWithLiveAcrossAllEmittedKernels) {
  for (const char* kernel : {"gemm", "hotspot", "pnpoly"}) {
    SCOPED_TRACE(kernel);
    const auto bench = kernels::make(kernel);
    CompiledBackendOptions options;
    options.artifact_dir = fresh_dir(std::string("jit_parity_") + kernel);
    CompiledKernelBackend jit(as_kernel(*bench), 0, options);
    core::LiveBackend live(*bench, 0);

    auto indices = sample_valid(*bench, 3, 7);
    // An always-invalid constraint case rides along when one exists in
    // the first few ordinals (index 0 is invalid for all three spaces).
    indices.push_back(0);

    const auto from_jit = jit.evaluate_batch(indices);
    const auto from_live = live.evaluate_batch(indices);
    ASSERT_EQ(from_jit.size(), from_live.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
      SCOPED_TRACE(indices[i]);
      EXPECT_EQ(from_jit[i].status, from_live[i].status);
      EXPECT_DOUBLE_EQ(from_jit[i].objective(), from_live[i].objective());
    }

    const auto stats = jit.stats();
    EXPECT_GT(stats.compiles, 0u);
    EXPECT_EQ(stats.compile_failures, 0u);
    EXPECT_EQ(stats.fallback_evals, 0u);
  }
}

TEST(JitBackend, DeviceInvalidConfigMatchesLiveStatus) {
  const auto bench = kernels::make("hotspot");
  const auto index = find_device_invalid(*bench);
  ASSERT_TRUE(index.has_value()) << "hotspot space lost its device-invalid "
                                    "configs; pick another kernel";
  CompiledBackendOptions options;
  options.artifact_dir = fresh_dir("jit_device_invalid");
  CompiledKernelBackend jit(as_kernel(*bench), 0, options);
  const auto m = jit.evaluate(*index);
  EXPECT_EQ(m.status, core::MeasureStatus::kInvalidDevice);
  EXPECT_EQ(jit.stats().fallback_evals, 0u);
}

TEST(JitBackend, SecondInstanceWarmLoadsFromDiskWithoutRecompiling) {
  const auto bench = kernels::make("pnpoly");
  const auto dir = fresh_dir("jit_warm_reuse");
  const auto indices = sample_valid(*bench, 2, 11);

  CompiledBackendOptions options;
  options.artifact_dir = dir;
  std::vector<core::Measurement> cold;
  {
    CompiledKernelBackend first(as_kernel(*bench), 0, options);
    cold = first.evaluate_batch(indices);
    EXPECT_GT(first.stats().compiles, 0u);
  }
  // A new instance models a fresh worker process sharing the cache dir:
  // everything must come off disk, nothing recompiles.
  CompiledKernelBackend second(as_kernel(*bench), 0, options);
  const auto warm = second.evaluate_batch(indices);
  const auto stats = second.stats();
  EXPECT_EQ(stats.compiles, 0u);
  EXPECT_EQ(stats.artifact_cache_misses, 0u);
  EXPECT_GT(stats.artifact_cache_hits, 0u);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_DOUBLE_EQ(warm[i].objective(), cold[i].objective());
  }
}

// Satellite regression: a compile submitted from a pool worker must not
// run inline on that worker (the global pool executes nested
// submissions inline, which would serialize the whole batch behind one
// cold compile). The structural assert — the compile thread is neither
// the caller nor any global-pool worker — holds on any machine,
// unlike a timing assert.
TEST(JitBackend, ColdCompileRunsOnDedicatedPoolNotCaller) {
  const auto bench = kernels::make("pnpoly");
  CompiledBackendOptions options;
  options.artifact_dir = fresh_dir("jit_compile_pool");
  CompiledKernelBackend jit(as_kernel(*bench), 0, options);
  const auto indices = sample_valid(*bench, 1, 13);

  std::thread::id worker_id;
  std::promise<void> done;
  common::ThreadPool::global().submit([&] {
    worker_id = std::this_thread::get_id();
    (void)jit.evaluate(indices[0]);  // cold: compiles
    done.set_value();
  });
  done.get_future().get();

  const auto compile_thread = jit.last_compile_thread();
  EXPECT_NE(compile_thread, std::thread::id());
  EXPECT_NE(compile_thread, worker_id);
  EXPECT_NE(compile_thread, std::this_thread::get_id());
  EXPECT_GT(jit.stats().compiles, 0u);
}

// While one thread sits in a cold compile, warm evaluations of other
// configs must keep flowing (they only need the handle cache).
TEST(JitBackend, WarmEvalsProceedDuringColdCompile) {
  const auto bench = kernels::make("pnpoly");
  CompiledBackendOptions options;
  options.artifact_dir = fresh_dir("jit_no_block");
  CompiledKernelBackend jit(as_kernel(*bench), 0, options);
  const auto indices = sample_valid(*bench, 2, 17);
  (void)jit.evaluate(indices[0]);  // warm up one artifact

  std::promise<void> cold_done;
  std::thread cold([&] {
    (void)jit.evaluate(indices[1]);
    cold_done.set_value();
  });
  // Warm evaluations on this thread while the compile is (likely) in
  // flight; correctness, not timing, is the assertion — none of these
  // may deadlock or fall back.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(jit.evaluate(indices[0]).status, core::MeasureStatus::kOk);
  }
  cold_done.get_future().get();
  cold.join();
  EXPECT_EQ(jit.stats().fallback_evals, 0u);
}

TEST(JitBackend, CompileFailureFallsBackToLiveExactly) {
  const auto bench = kernels::make("pnpoly");
  CompiledBackendOptions options;
  options.artifact_dir = fresh_dir("jit_fallback");
  options.extra_compiler_flags = "-this-flag-does-not-exist";
  CompiledKernelBackend jit(as_kernel(*bench), 0, options);
  core::LiveBackend live(*bench, 0);

  const auto indices = sample_valid(*bench, 2, 19);
  const auto from_jit = jit.evaluate_batch(indices);
  const auto from_live = live.evaluate_batch(indices);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(from_jit[i].status, from_live[i].status);
    EXPECT_DOUBLE_EQ(from_jit[i].objective(), from_live[i].objective());
  }
  const auto stats = jit.stats();
  EXPECT_EQ(stats.compiles, 0u);
  EXPECT_GT(stats.compile_failures, 0u);
  EXPECT_EQ(stats.fallback_evals, indices.size());

  // Failed keys are memoized: re-evaluating must not retry the compile.
  const auto failures_before = jit.stats().compile_failures;
  (void)jit.evaluate(indices[0]);
  EXPECT_EQ(jit.stats().compile_failures, failures_before);
}

TEST(JitBackend, KernelsWithoutEmittersAreRejectedAtConstruction) {
  EXPECT_FALSE(kernels::jit_emitter_available("nbody"));
  EXPECT_TRUE(kernels::jit_emitter_available("gemm"));
  const auto bench = kernels::make("nbody");
  EXPECT_THROW(CompiledKernelBackend(as_kernel(*bench), 0),
               std::invalid_argument);
  EXPECT_THROW((void)kernels::emit_jit_source("nbody", core::Config{}),
               std::invalid_argument);
}

TEST(JitBackend, CacheKeyCoversSourceCompilerAndFlags) {
  const auto base = cache_key("src", "g++ 1.0", "-O2");
  EXPECT_EQ(base, cache_key("src", "g++ 1.0", "-O2"));
  EXPECT_NE(base, cache_key("src2", "g++ 1.0", "-O2"));
  EXPECT_NE(base, cache_key("src", "g++ 2.0", "-O2"));
  EXPECT_NE(base, cache_key("src", "g++ 1.0", "-O3"));
}

// Service integration: a "jit" session produces the identical trace a
// "live" session does, and reports its compile cost through the new
// SessionResult dimension + service-level aggregation.
TEST(JitService, JitSessionMatchesLiveAndReportsCompileCost) {
  service::ServiceOptions options;
  options.artifact_dir = fresh_dir("jit_service_session");
  service::TuningService svc(options);

  service::SessionSpec spec;
  spec.kernel = "pnpoly";
  spec.tuner = "local";
  spec.budget = 6;
  spec.seed = 5;
  spec.backend = "jit";
  const auto jit_result = svc.run_inline(spec);
  ASSERT_EQ(jit_result.status, service::SessionStatus::kCompleted)
      << jit_result.error;
  EXPECT_GT(jit_result.jit.compiles, 0u);
  EXPECT_GT(jit_result.jit.compile_ms, 0.0);
  EXPECT_EQ(jit_result.jit.fallback_evals, 0u);

  spec.backend = "live";
  const auto live_result = svc.run_inline(spec);
  ASSERT_EQ(live_result.status, service::SessionStatus::kCompleted);
  EXPECT_EQ(live_result.jit.compiles, 0u);  // zero outside jit sessions
  ASSERT_EQ(jit_result.run.trace.size(), live_result.run.trace.size());
  for (std::size_t i = 0; i < jit_result.run.trace.size(); ++i) {
    EXPECT_EQ(jit_result.run.trace[i].index, live_result.run.trace[i].index);
    EXPECT_DOUBLE_EQ(jit_result.run.trace[i].objective,
                     live_result.run.trace[i].objective);
  }

  const auto stats = svc.jit_stats();
  EXPECT_EQ(stats.backends, 1u);  // the live workload does not count
  EXPECT_GT(stats.compiles, 0u);
}

TEST(JitService, SessionLogCodecRoundTripsCompileCost) {
  service::SessionResult result;
  result.status = service::SessionStatus::kCompleted;
  result.wall_ms = 12.5;
  result.run.trace.push_back(core::TraceEntry{3, 1.25});
  result.jit.compile_ms = 987.5;
  result.jit.compiles = 4;
  result.jit.artifact_cache_hits = 17;
  result.jit.artifact_cache_misses = 4;
  result.jit.fallback_evals = 1;

  const auto payload = service::SessionLog::encode_result(9, result);
  const auto [id, decoded] = service::SessionLog::decode_result(payload);
  EXPECT_EQ(id, 9u);
  ASSERT_EQ(decoded.run.trace.size(), 1u);
  EXPECT_EQ(decoded.run.trace[0].index, 3u);
  EXPECT_DOUBLE_EQ(decoded.jit.compile_ms, 987.5);
  EXPECT_EQ(decoded.jit.compiles, 4u);
  EXPECT_EQ(decoded.jit.artifact_cache_hits, 17u);
  EXPECT_EQ(decoded.jit.artifact_cache_misses, 4u);
  EXPECT_EQ(decoded.jit.fallback_evals, 1u);
}

}  // namespace
}  // namespace bat::jit
