#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/backend.hpp"
#include "core/evaluator.hpp"
#include "core/runner.hpp"
#include "kernels/all_kernels.hpp"

namespace bat::core {
namespace {

std::vector<ConfigIndex> sample_indices(const Benchmark& bench, std::size_t n,
                                        std::uint64_t seed) {
  common::Rng rng(seed);
  const auto& params = bench.space().params();
  std::vector<ConfigIndex> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(
        params.index_of_config(bench.space().random_valid_config(rng)));
  }
  return out;
}

TEST(LiveBackend, BatchMatchesElementWiseEvaluation) {
  const auto bench = kernels::make("pnpoly");
  LiveBackend backend(*bench, 0);
  const auto indices = sample_indices(*bench, 64, 1);  // above the threshold

  const auto batch = backend.evaluate_batch(indices);
  ASSERT_EQ(batch.size(), indices.size());
  const auto& params = bench->space().params();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto single = bench->evaluate(params.config_at(indices[i]), 0);
    EXPECT_DOUBLE_EQ(batch[i].objective(), single.objective());
    EXPECT_EQ(batch[i].status, single.status);
  }
}

TEST(LiveBackend, SmallBatchStaysSerialAndIdentical) {
  const auto bench = kernels::make("pnpoly");
  LiveBackend serial(*bench, 0, /*parallel_threshold=*/1'000'000);
  LiveBackend parallel(*bench, 0, /*parallel_threshold=*/2);
  const auto indices = sample_indices(*bench, 16, 2);
  const auto a = serial.evaluate_batch(indices);
  const auto b = parallel.evaluate_batch(indices);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].objective(), b[i].objective());
  }
}

TEST(ReplayBackend, ServesDatasetMeasurementsExactly) {
  const auto bench = kernels::make("pnpoly");
  const auto ds = Runner::run_exhaustive(*bench, 0);
  ReplayBackend backend(bench->space(), ds);
  EXPECT_EQ(backend.size(), ds.size());

  const auto indices = sample_indices(*bench, 32, 3);
  LiveBackend live(*bench, 0);
  const auto replayed = backend.evaluate_batch(indices);
  const auto lived = live.evaluate_batch(indices);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_DOUBLE_EQ(replayed[i].objective(), lived[i].objective());
    EXPECT_EQ(replayed[i].status, lived[i].status);
  }
}

TEST(ReplayBackend, ThrowsOnUncoveredIndex) {
  const auto bench = kernels::make("pnpoly");
  Dataset tiny(bench->name(), bench->device_name(0),
               bench->space().params().param_names());
  const auto config = bench->space().params().config_at(0);
  tiny.add(0, config, Measurement::valid(1.0));
  ReplayBackend backend(bench->space(), tiny);
  EXPECT_TRUE(backend.contains(0));
  EXPECT_FALSE(backend.contains(1));
  const ConfigIndex missing[1] = {1};
  EXPECT_THROW((void)backend.evaluate_batch(missing), std::out_of_range);
}

TEST(CountingBackend, CacheHitsAreFree) {
  const auto bench = kernels::make("pnpoly");
  LiveBackend live(*bench, 0);
  CountingBackend counting(live, 10);
  const auto indices = sample_indices(*bench, 4, 4);

  (void)counting.evaluate_batch(indices);
  EXPECT_LE(counting.evaluations(), 4u);  // distinct only
  const std::size_t after_first = counting.evaluations();
  (void)counting.evaluate_batch(indices);  // all hits
  EXPECT_EQ(counting.evaluations(), after_first);
}

TEST(CountingBackend, DuplicatesWithinABatchChargeOnce) {
  const auto bench = kernels::make("pnpoly");
  LiveBackend live(*bench, 0);
  CountingBackend counting(live, 10);
  const auto one = sample_indices(*bench, 1, 5);
  const std::vector<ConfigIndex> batch{one[0], one[0], one[0]};
  const auto results = counting.evaluate_batch(batch);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(counting.evaluations(), 1u);
  EXPECT_DOUBLE_EQ(results[0].objective(), results[2].objective());
}

TEST(CountingBackend, BudgetBoundaryIsExactForBatches) {
  const auto bench = kernels::make("pnpoly");
  const auto indices = sample_indices(*bench, 64, 6);
  std::vector<ConfigIndex> distinct;
  for (const auto i : indices) {  // keep first occurrences only
    bool seen = false;
    for (const auto d : distinct) seen = seen || d == i;
    if (!seen) distinct.push_back(i);
  }
  ASSERT_GE(distinct.size(), 8u);

  LiveBackend live(*bench, 0);
  CountingBackend counting(live, 5);
  // A batch crossing the boundary evaluates exactly up to the budget,
  // records those entries, then throws.
  EXPECT_THROW((void)counting.evaluate_batch(
                   std::span<const ConfigIndex>(distinct.data(), 8)),
               BudgetExhausted);
  EXPECT_EQ(counting.evaluations(), 5u);
  EXPECT_TRUE(counting.exhausted());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(counting.trace()[i].index, distinct[i]);
  }
  // Cache hits keep working after exhaustion; any further miss throws.
  const std::vector<ConfigIndex> hit{distinct[0]};
  EXPECT_NO_THROW((void)counting.evaluate_batch(hit));
  const std::vector<ConfigIndex> miss{distinct[6]};
  EXPECT_THROW((void)counting.evaluate_batch(miss), BudgetExhausted);
}

TEST(CountingBackend, BatchExactlyFillingBudgetDoesNotThrow) {
  const auto bench = kernels::make("pnpoly");
  const auto indices = sample_indices(*bench, 64, 7);
  std::vector<ConfigIndex> distinct;
  for (const auto i : indices) {
    bool seen = false;
    for (const auto d : distinct) seen = seen || d == i;
    if (!seen) distinct.push_back(i);
  }
  ASSERT_GE(distinct.size(), 5u);

  LiveBackend live(*bench, 0);
  CountingBackend counting(live, 5);
  EXPECT_NO_THROW((void)counting.evaluate_batch(
      std::span<const ConfigIndex>(distinct.data(), 5)));
  EXPECT_EQ(counting.evaluations(), 5u);
  EXPECT_TRUE(counting.exhausted());
}

TEST(CachingEvaluator, BatchedAndSerialProduceIdenticalTraces) {
  const auto bench = kernels::make("pnpoly");
  const auto& params = bench->space().params();
  const auto indices = sample_indices(*bench, 30, 8);
  std::vector<Config> configs;
  configs.reserve(indices.size());
  for (const auto i : indices) configs.push_back(params.config_at(i));

  LiveBackend live_a(*bench, 0);
  CachingEvaluator serial(live_a, 100);
  for (const auto& c : configs) (void)serial(c);

  LiveBackend live_b(*bench, 0);
  CachingEvaluator batched(live_b, 100);
  (void)batched.evaluate_batch(configs);

  ASSERT_EQ(serial.trace().size(), batched.trace().size());
  for (std::size_t i = 0; i < serial.trace().size(); ++i) {
    EXPECT_EQ(serial.trace()[i].index, batched.trace()[i].index);
    EXPECT_DOUBLE_EQ(serial.trace()[i].objective,
                     batched.trace()[i].objective);
  }
}

TEST(CachingEvaluator, ReplayAndLiveTracesAreIdentical) {
  const auto bench = kernels::make("pnpoly");
  const auto ds = Runner::run_exhaustive(*bench, 0);
  const auto& params = bench->space().params();
  const auto indices = sample_indices(*bench, 40, 9);
  std::vector<Config> configs;
  for (const auto i : indices) configs.push_back(params.config_at(i));

  LiveBackend live(*bench, 0);
  CachingEvaluator live_eval(live, 25);
  ReplayBackend replay(bench->space(), ds);
  CachingEvaluator replay_eval(replay, 25);

  const auto drive = [&](CachingEvaluator& eval) {
    try {
      (void)eval.evaluate_batch(configs);
    } catch (const BudgetExhausted&) {
    }
  };
  drive(live_eval);
  drive(replay_eval);

  ASSERT_EQ(live_eval.trace().size(), replay_eval.trace().size());
  for (std::size_t i = 0; i < live_eval.trace().size(); ++i) {
    EXPECT_EQ(live_eval.trace()[i].index, replay_eval.trace()[i].index);
    EXPECT_DOUBLE_EQ(live_eval.trace()[i].objective,
                     replay_eval.trace()[i].objective);
  }
}

TEST(TraceStats, BestAndBestSoFarHelpers) {
  const std::vector<TraceEntry> trace{
      {10, 3.0}, {11, 5.0}, {12, 2.0}, {13, 4.0}};
  const auto best = trace_best(trace);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->index, 12u);
  EXPECT_DOUBLE_EQ(best->objective, 2.0);
  EXPECT_EQ(trace_best_so_far(trace),
            (std::vector<double>{3.0, 3.0, 2.0, 2.0}));

  const std::vector<TraceEntry> all_invalid{
      {0, std::numeric_limits<double>::infinity()}};
  EXPECT_FALSE(trace_best(all_invalid).has_value());
  EXPECT_FALSE(trace_best({}).has_value());
}

// A dataset with rows outside this space's valid set (foreign space or
// constraint set) must degrade to hashed lookup — with a one-time
// warning naming the dataset — and still serve every row faithfully.
TEST(ReplayBackend, ForeignDatasetFallsBackToHashedLookup) {
  const auto bench = kernels::make("gemm");  // constrained + materialized
  const auto& space = bench->space();
  const auto& params = space.params();
  common::Rng rng(11);

  Dataset ds("gemm", "RTX_3090", params.param_names());
  std::vector<ConfigIndex> rows;
  for (std::size_t i = 0; i < 8; ++i) {
    const auto config = space.random_valid_config(rng);
    const auto index = params.index_of_config(config);
    rows.push_back(index);
    ds.add(index, config, Measurement::valid(1.0 + static_cast<double>(i)));
  }
  ConfigIndex foreign = 0;
  while (space.compiled().is_valid_index(foreign)) ++foreign;
  ds.add(foreign, params.config_at(foreign),
         Measurement::invalid(MeasureStatus::kInvalidConstraint));

  ReplayBackend backend(space, ds);  // logs the fallback warning once
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ConfigIndex one[1] = {rows[i]};
    EXPECT_DOUBLE_EQ(backend.evaluate_batch(one).front().objective(),
                     1.0 + static_cast<double>(i));
  }
  EXPECT_TRUE(backend.contains(foreign));
}

}  // namespace
}  // namespace bat::core
