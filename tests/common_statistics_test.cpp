#include "common/statistics.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/contracts.hpp"

namespace bat::common {
namespace {

const std::vector<double> kSample{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};

TEST(Statistics, Mean) { EXPECT_DOUBLE_EQ(mean(kSample), 31.0 / 8.0); }

TEST(Statistics, MinMaxArg) {
  EXPECT_DOUBLE_EQ(min_value(kSample), 1.0);
  EXPECT_DOUBLE_EQ(max_value(kSample), 9.0);
  EXPECT_EQ(argmin(kSample), 1u);  // first minimum wins
  EXPECT_EQ(argmax(kSample), 5u);
}

TEST(Statistics, VarianceMatchesHandComputation) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Statistics, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Statistics, QuantileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
}

TEST(Statistics, QuantileSingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.3), 7.0);
}

TEST(Statistics, QuantileRejectsBadInput) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)quantile(xs, 1.5), ContractViolation);
  EXPECT_THROW((void)mean(std::vector<double>{}), ContractViolation);
}

TEST(Statistics, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg(ys.rbegin(), ys.rend());
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(OnlineStats, MatchesBatchStatistics) {
  OnlineStats stats;
  for (const double x : kSample) stats.add(x);
  EXPECT_EQ(stats.count(), kSample.size());
  EXPECT_NEAR(stats.mean(), mean(kSample), 1e-12);
  EXPECT_NEAR(stats.variance(), variance(kSample), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(OnlineStats, MergeEqualsSinglePass) {
  OnlineStats a, b, whole;
  for (std::size_t i = 0; i < kSample.size(); ++i) {
    (i < 3 ? a : b).add(kSample[i]);
    whole.add(kSample[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-12);
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(Histogram, CountsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  for (const double x : {0.0, 1.9, 2.0, 9.99, 10.0}) h.add(x);
  h.add(-0.1);  // ignored
  h.add(10.1);  // ignored
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);  // 0.0, 1.9
  EXPECT_EQ(h.bin_count(1), 1u);  // 2.0
  EXPECT_EQ(h.bin_count(4), 2u);  // 9.99 and the x == hi edge case
}

TEST(Histogram, DensitiesSumToOne) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i / 100.0);
  double sum = 0.0;
  for (const double d : h.densities()) sum += d;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

class QuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantileSweep, SortedAndUnsortedAgree) {
  std::vector<double> xs{5.0, 3.0, 8.0, 1.0, 9.0, 2.0, 7.0};
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_DOUBLE_EQ(quantile(xs, GetParam()),
                   quantile_sorted(sorted, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Quantiles, QuantileSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           1.0));

}  // namespace
}  // namespace bat::common
